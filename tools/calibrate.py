"""Calibration sweep: measured vs paper baselines for every profile.

Development tool (not part of the library): prints SR/RR/SW/RW at
32 KiB for each Table 3 device after random-state enforcement, next to
the paper's numbers, plus the detected phases.

Usage: python tools/calibrate.py [profile ...]
"""

from __future__ import annotations

import sys
import time

import numpy as np

from repro.core import baselines, detect_phases, enforce_random_state, execute, rest_device
from repro.flashsim import build_device
from repro.paperdata import TABLE3
from repro.units import KIB, SEC


def measure(name: str) -> None:
    t0 = time.time()
    device = build_device(name)
    enforce_random_state(device)
    rest_device(device, 60 * SEC)
    paper = TABLE3.get(name)
    specs = baselines(
        io_size=32 * KIB,
        io_count=1280,
        random_target_size=device.capacity,
        sequential_target_size=device.capacity,
    )
    print(f"== {name} ({device.geometry.describe()})")
    for label in ("SR", "RR", "SW", "RW"):
        run = execute(device, specs[label])
        responses = np.array(run.trace.response_times())
        phases = detect_phases(responses)
        steady = responses[phases.startup :].mean() / 1000.0
        expected = getattr(paper, label.lower()) if paper else None
        expected_text = f"paper {expected:7.1f}" if expected else "paper     n/a"
        print(
            f"  {label}: {steady:8.3f} ms  {expected_text}   "
            f"startup={phases.startup:4d} period={phases.period}"
        )
        rest_device(device, 120 * SEC)
    print(f"  ({time.time() - t0:.1f}s wall)")


def main() -> None:
    names = sys.argv[1:] or list(TABLE3)
    for name in names:
        measure(name)


if __name__ == "__main__":
    main()
