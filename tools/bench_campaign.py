#!/usr/bin/env python
"""Wall-clock benchmark of multi-profile campaign dispatch.

Times the same multi-profile campaign through the executor's three
dispatch strategies (DESIGN.md §14):

* **sequential**: ``jobs=1`` — the bit-identical reference;
* **legacy**: parallel workers, parent-side serial enforcement, one
  pickled snapshot shipped through the pool pipe per cell;
* **warm**: zero-copy shared-memory snapshot distribution, warm-worker
  scheduling and pipelined worker-side enforcement.

The campaign is deliberately **distribution-bound**: a large
page-mapped SSD state (multi-MiB snapshot, cheap closed-form
enforcement) swept across many short cells, plus a small hybrid-FTL
USB-stick group for multi-profile coverage.  Short cells are the point,
not a cheat — per-cell simulation cost is identical across strategies,
so padding it would only dilute the quantity this benchmark exists to
measure: the per-cell cost of handing device state to a worker.

Each strategy is timed best-of-``--repeat`` on a fresh executor (fresh
StatePool, no run cache), so every repetition pays the full cold-start
cost the dispatch machinery is meant to hide.  The warm pass records
its scheduler counters (warm hits, skipped restores, snapshot bytes
shipped vs saved) and the resulting **warm ratio** — the fraction of
dispatched cells served by a resident warm device.  Payload equality
across all three strategies is asserted on every run, so a dispatch bug
fails the benchmark rather than producing fast-but-wrong numbers.

Usage::

    python tools/bench_campaign.py --out BENCH_campaign.json
    python tools/bench_campaign.py --quick --jobs 2 --baseline BENCH_campaign.json

With ``--baseline``, the run fails (exit 1) if the warm ratio drops
below half the committed value, or if the warm path starts shipping
snapshot bytes through the pool pipe again.  Both gates compare
machine-independent scheduler counters — they trip when the warm
machinery stops engaging, not on a slow CI runner (absolute times and
speedups vary with core count; this container may even be single-core,
where the warm win comes purely from eliminated serialization work).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.executor import CampaignExecutor, plan_cells  # noqa: E402
from repro.units import KIB, MIB, SEC  # noqa: E402

#: the campaign mix: (profile, capacity MiB, benchmarks, io_sizes KiB).
#: ``ideal_pagemap`` carries the distribution load (its page-mapped
#: snapshot is multi-MiB while closed-form enforcement stays cheap);
#: ``kingston_dti`` adds a second, hybrid-FTL profile so pipelined
#: enforcement and per-group affinity are exercised across groups.
DEFAULT_CAMPAIGN = (
    (
        "ideal_pagemap",
        2048,
        ("pause", "queue_depth", "partitioning"),
        (4, 8, 12, 16, 24, 32, 48, 64, 96, 128),
    ),
    ("kingston_dti", 64, ("pause",), (16, 32)),
)

#: scaled-down mix for CI smoke runs (--quick)
QUICK_CAMPAIGN = (
    (
        "ideal_pagemap",
        128,
        ("pause", "queue_depth", "partitioning"),
        (16, 32, 64),
    ),
    ("kingston_dti", 16, ("pause",), (16, 32)),
)

#: fraction of the committed warm ratio a gated run must retain; the
#: ratio is a pure scheduler-counter quantity, so a drop below this
#: means warm scheduling stopped engaging, not that the runner is slow
RATIO_RETENTION = 0.5

#: IOs per cell — short on purpose; see the module docstring
IO_COUNT = 4


def campaign_cells(quick: bool) -> list:
    """The benchmark campaign's cell list."""
    mix = QUICK_CAMPAIGN if quick else DEFAULT_CAMPAIGN
    cells = []
    for profile, capacity_mib, benchmarks, io_sizes in mix:
        for io_size_kib in io_sizes:
            cells.extend(
                plan_cells(
                    profile,
                    capacity_mib * MIB,
                    list(benchmarks),
                    io_size=io_size_kib * KIB,
                    io_count=IO_COUNT,
                    pause_usec=0.1 * SEC,
                )
            )
    return cells


def _payloads(outcomes) -> dict:
    return {
        (o.cell.profile, o.cell.capacity, o.cell.experiment): o.payload
        for o in outcomes
    }


def time_strategy(
    cells: list, jobs: int, warm: bool, repeat: int
) -> tuple[float, dict, dict]:
    """Best-of-``repeat`` wall time for one dispatch strategy.

    Every repetition uses a fresh executor (fresh StatePool, no cache),
    so each one pays the full enforcement cost — exactly the cold
    campaign the dispatch machinery is meant to accelerate.  Returns
    ``(best_seconds, sched_stats_of_best, payloads_of_best)``.
    """
    best = float("inf")
    sched: dict = {}
    payloads: dict = {}
    for _ in range(max(repeat, 1)):
        executor = CampaignExecutor(
            jobs=jobs,
            share_snapshots=warm,
            warm_workers=warm,
            pipeline_prepare=warm,
        )
        try:
            start = time.perf_counter()
            outcomes = executor.execute(cells)
            elapsed = time.perf_counter() - start
        finally:
            executor.close()
        if elapsed < best:
            best = elapsed
            sched = executor.sched.as_dict()
            payloads = _payloads(outcomes)
    return best, sched, payloads


def run_benchmark(quick: bool, jobs: int, repeat: int) -> dict:
    """Time all three strategies and assemble the results document."""
    cells = campaign_cells(quick)
    mix = QUICK_CAMPAIGN if quick else DEFAULT_CAMPAIGN
    print(
        f"campaign: {len(cells)} cells over {len(mix)} profiles, "
        f"jobs={jobs}, repeat={repeat}",
        flush=True,
    )

    print("timing sequential (jobs=1) ...", flush=True)
    seq_sec, _, seq_payloads = time_strategy(cells, 1, warm=False, repeat=repeat)
    print(f"  {seq_sec:.3f} s", flush=True)

    print(f"timing legacy dispatch (jobs={jobs}) ...", flush=True)
    legacy_sec, legacy_sched, legacy_payloads = time_strategy(
        cells, jobs, warm=False, repeat=repeat
    )
    print(f"  {legacy_sec:.3f} s", flush=True)

    print(f"timing warm dispatch (jobs={jobs}) ...", flush=True)
    warm_sec, warm_sched, warm_payloads = time_strategy(
        cells, jobs, warm=True, repeat=repeat
    )
    print(f"  {warm_sec:.3f} s", flush=True)

    # correctness before speed: all three strategies must agree
    # bit-for-bit, else the timing numbers are meaningless
    assert warm_payloads == seq_payloads, "warm dispatch diverged from jobs=1"
    assert legacy_payloads == seq_payloads, "legacy dispatch diverged from jobs=1"

    dispatched = warm_sched["warm_hits"] + warm_sched["cold_builds"]
    warm_ratio = warm_sched["warm_hits"] / max(dispatched, 1)
    return {
        "campaign": {
            "mix": [
                {
                    "profile": profile,
                    "capacity_mib": capacity_mib,
                    "benchmarks": list(benchmarks),
                    "io_sizes_kib": list(io_sizes),
                }
                for profile, capacity_mib, benchmarks, io_sizes in mix
            ],
            "cells": len(cells),
            "io_count": IO_COUNT,
            "jobs": jobs,
            "repeat": repeat,
            "quick": quick,
        },
        "sequential": {"wall_sec": round(seq_sec, 4)},
        "legacy": {
            "wall_sec": round(legacy_sec, 4),
            "bytes_shipped": legacy_sched["bytes_shipped"],
        },
        "warm": {
            "wall_sec": round(warm_sec, 4),
            **warm_sched,
        },
        "warm_ratio": round(warm_ratio, 4),
        "speedup_vs_legacy": round(legacy_sec / max(warm_sec, 1e-9), 2),
        "speedup_vs_sequential": round(seq_sec / max(warm_sec, 1e-9), 2),
    }


def check_baseline(results: dict, baseline_path: Path) -> list[str]:
    """Machine-independent regressions against the committed numbers."""
    baseline = json.loads(baseline_path.read_text())
    regressions = []
    old_ratio = baseline.get("warm_ratio", 0)
    new_ratio = results["warm_ratio"]
    if new_ratio < RATIO_RETENTION * old_ratio:
        regressions.append(
            f"warm ratio {new_ratio:.3f} vs baseline {old_ratio:.3f} "
            f"(< {RATIO_RETENTION}x retention): warm scheduling stopped engaging"
        )
    if results["warm"].get("bytes_shipped", 0) > 0:
        regressions.append(
            f"warm dispatch shipped {results['warm']['bytes_shipped']} "
            "snapshot bytes through the pool pipe (expected 0)"
        )
    return regressions


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="scaled-down campaign (128 MiB state) for CI",
    )
    parser.add_argument(
        "--jobs", type=int, default=4, help="worker count for parallel passes"
    )
    parser.add_argument(
        "--repeat",
        type=int,
        default=2,
        help="repetitions per strategy; the minimum time is reported",
    )
    parser.add_argument(
        "--out", type=Path, default=None, help="write results JSON here"
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="committed BENCH_campaign.json to gate against",
    )
    args = parser.parse_args(argv)

    results = run_benchmark(args.quick, args.jobs, args.repeat)
    print(json.dumps(results, indent=2))
    print(
        f"warm dispatch: {results['speedup_vs_legacy']}x vs legacy, "
        f"{results['speedup_vs_sequential']}x vs jobs=1, "
        f"warm ratio {results['warm_ratio']}"
    )

    if args.out:
        args.out.write_text(json.dumps(results, indent=2) + "\n")
        print(f"wrote {args.out}")

    if args.baseline:
        if not args.baseline.exists():
            print(f"baseline {args.baseline} missing; skipping gate")
        else:
            regressions = check_baseline(results, args.baseline)
            if regressions:
                print("PERF REGRESSION:")
                for line in regressions:
                    print(f"  {line}")
                return 1
            print("campaign perf gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
