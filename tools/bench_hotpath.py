#!/usr/bin/env python
"""Wall-clock benchmark of the controller→FTL→chip hot path.

Measures simulator throughput — not simulated device latency — for the
two phases that dominate real campaign time:

* **enforce**: random-state enforcement (random sector-aligned writes
  covering the whole device, Section 4.1 methodology), the workload the
  vectorized run kernel targets;
* **SR/RR/SW/RW**: the four baseline patterns of Section 3.1.

Each workload is timed twice per profile: once with the batch paths on
(the default) and once forced through the scalar per-page reference
path, so the speedup is visible in one report.  Results are written as
``{workload: {"usec_per_io": ..., "sim_ios_per_sec": ...}}`` where
workload keys look like ``ideal_pagemap/enforce`` (batch) and
``ideal_pagemap/enforce/scalar``.

Usage::

    python tools/bench_hotpath.py --quick --out BENCH_hotpath.json
    python tools/bench_hotpath.py --quick --baseline BENCH_hotpath.json

With ``--baseline``, the run fails (exit 1) if any shared workload's
``usec_per_io`` regresses more than 2x against the committed numbers —
the CI perf-smoke gate.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.methodology import enforce_random_state  # noqa: E402
from repro.core.patterns import baselines  # noqa: E402
from repro.core.runner import execute  # noqa: E402
from repro.flashsim.profiles import build_device, profile_names  # noqa: E402
from repro.units import KIB, MIB  # noqa: E402

#: baseline-pattern order follows the paper's Table 3 columns
PATTERN_ORDER = ("SR", "RR", "SW", "RW")

#: regression gate used by --baseline (CI perf smoke)
REGRESSION_FACTOR = 2.0

DEFAULT_PROFILES = ("ideal_pagemap", "memoright", "kingston_dti")


def _set_batch(device, enabled: bool) -> None:
    device.controller.batch_enabled = enabled
    device.ftl.batch_enabled = enabled


def _entry(elapsed_sec: float, io_count: int) -> dict[str, float]:
    elapsed_sec = max(elapsed_sec, 1e-9)
    return {
        "usec_per_io": round(elapsed_sec * 1e6 / max(io_count, 1), 3),
        "sim_ios_per_sec": round(max(io_count, 1) / elapsed_sec, 1),
    }


def _warm_up(profile: str) -> None:
    """Trigger numpy's lazy submodule imports (np.ma via np.unique) and
    fill code caches on a throwaway device, so they don't land inside
    the first timed workload."""
    import numpy as np

    np.unique(np.arange(4))
    for batch in (True, False):
        device = build_device(profile, logical_bytes=MIB)
        _set_batch(device, batch)
        enforce_random_state(device)


def bench_profile(
    profile: str, logical_bytes: int, io_count: int, batch: bool, repeat: int
) -> dict[str, dict[str, float]]:
    """Best-of-``repeat`` timings of enforcement and the four baselines.

    Each repetition runs the full workload sequence on a fresh device
    (the sequence is deterministic, so repetitions are identical work);
    the minimum elapsed time per workload is reported, which is robust
    against scheduler noise on shared machines.
    """
    suffix = "" if batch else "/scalar"
    best_sec: dict[str, float] = {}
    ios: dict[str, int] = {}
    specs = baselines(
        io_size=16 * KIB,
        io_count=io_count,
        random_target_size=logical_bytes,
        sequential_target_size=logical_bytes,
    )
    for _ in range(max(repeat, 1)):
        device = build_device(profile, logical_bytes=logical_bytes)
        _set_batch(device, batch)

        start = time.perf_counter()
        report = enforce_random_state(device)
        elapsed = time.perf_counter() - start
        key = f"{profile}/enforce{suffix}"
        best_sec[key] = min(best_sec.get(key, elapsed), elapsed)
        ios[key] = report.io_count

        for name in PATTERN_ORDER:
            start = time.perf_counter()
            execute(device, specs[name])
            elapsed = time.perf_counter() - start
            key = f"{profile}/{name}{suffix}"
            best_sec[key] = min(best_sec.get(key, elapsed), elapsed)
            ios[key] = io_count
    return {key: _entry(sec, ios[key]) for key, sec in best_sec.items()}


def check_baseline(
    results: dict[str, dict[str, float]], baseline_path: Path
) -> list[str]:
    """Workloads whose usec_per_io regressed past the gate."""
    baseline = json.loads(baseline_path.read_text())
    regressions = []
    for workload, entry in results.items():
        old = baseline.get(workload)
        if not old or "usec_per_io" not in old:
            continue
        if entry["usec_per_io"] > REGRESSION_FACTOR * old["usec_per_io"]:
            regressions.append(
                f"{workload}: {entry['usec_per_io']} usec/io vs "
                f"baseline {old['usec_per_io']} (> {REGRESSION_FACTOR}x)"
            )
    return regressions


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--profiles",
        default=",".join(DEFAULT_PROFILES),
        help="comma-separated profile names, or 'all'",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small device (4 MiB) and short sweeps for CI",
    )
    parser.add_argument(
        "--size-mib", type=int, default=0, help="logical capacity override (MiB)"
    )
    parser.add_argument(
        "--io-count", type=int, default=0, help="IOs per baseline pattern"
    )
    parser.add_argument(
        "--out", type=Path, default=None, help="write results JSON here"
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="committed BENCH_hotpath.json to gate against",
    )
    parser.add_argument(
        "--batch-only",
        action="store_true",
        help="skip the scalar reference measurements",
    )
    parser.add_argument(
        "--repeat",
        type=int,
        default=3,
        help="repetitions per workload; the minimum time is reported",
    )
    args = parser.parse_args(argv)

    if args.profiles == "all":
        profiles = profile_names()
    else:
        profiles = [p.strip() for p in args.profiles.split(",") if p.strip()]
    logical = (args.size_mib or (4 if args.quick else 16)) * MIB
    io_count = args.io_count or (128 if args.quick else 1024)

    _warm_up(profiles[0])
    results: dict[str, dict[str, float]] = {}
    for profile in profiles:
        for batch in (True,) if args.batch_only else (True, False):
            mode = "batch" if batch else "scalar"
            print(f"benchmarking {profile} ({mode}) ...", flush=True)
            results.update(
                bench_profile(profile, logical, io_count, batch, args.repeat)
            )

    print(json.dumps(results, indent=2))
    for profile in profiles:
        batch_key = f"{profile}/enforce"
        scalar_key = f"{profile}/enforce/scalar"
        if batch_key in results and scalar_key in results:
            speedup = (
                results[scalar_key]["usec_per_io"]
                / max(results[batch_key]["usec_per_io"], 1e-9)
            )
            print(f"{profile}: enforce speedup {speedup:.2f}x (scalar/batch)")

    if args.out:
        args.out.write_text(json.dumps(results, indent=2) + "\n")
        print(f"wrote {args.out}")

    if args.baseline:
        if not args.baseline.exists():
            print(f"baseline {args.baseline} missing; skipping gate")
        else:
            regressions = check_baseline(results, args.baseline)
            if regressions:
                print("PERF REGRESSION:")
                for line in regressions:
                    print(f"  {line}")
                return 1
            print("perf gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
