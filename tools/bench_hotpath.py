#!/usr/bin/env python
"""Wall-clock benchmark of the controller→FTL→chip hot path.

Measures simulator throughput — not simulated device latency — for the
two phases that dominate real campaign time:

* **enforce**: random-state enforcement (random sector-aligned writes
  covering the whole device, Section 4.1 methodology), the workload the
  vectorized run kernel targets;
* **SR/RR/SW/RW**: the four baseline patterns of Section 3.1;
* **run_RR_qd{1,4,32}**: a random-read sweep over NCQ queue depths
  through the engine's queued host; each entry also carries the
  *simulated* ``device_iops``, which should scale with depth up to the
  profile's channel count.
* **run_RW_gc / run_RR_qd32_analytic**: the closed-form kernel
  workloads — GC-crossing random writes on an enforced device (the
  GC-epoch kernel) and a depth-32 random-read run (the queued
  completion kernel), each with a ``/fallback`` twin forced through
  the hosts' per-IO reference loops.

Each workload is timed twice per profile: once with the batch paths on
(the default) and once forced through the scalar per-page reference
path, so the speedup is visible in one report.  Results are written as
``{workload: {"usec_per_io": ..., "sim_ios_per_sec": ...}}`` where
workload keys look like ``ideal_pagemap/enforce`` (batch) and
``ideal_pagemap/enforce/scalar``.

Usage::

    python tools/bench_hotpath.py --quick --out BENCH_hotpath.json
    python tools/bench_hotpath.py --quick --baseline BENCH_hotpath.json

With ``--baseline``, the run fails (exit 1) if any shared workload's
``usec_per_io`` regresses more than 2x against the committed numbers,
or if a profile's enforce or GC-epoch *speedup* (the slow-path/fast-path
ratio, which is largely machine-independent) drops below half the
committed ratio — the CI perf-smoke gate.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.engine import Engine  # noqa: E402
from repro.flashsim import analytic  # noqa: E402
from repro.core.methodology import enforce_random_state  # noqa: E402
from repro.core.patterns import (  # noqa: E402
    LocationKind,
    MixSpec,
    ParallelSpec,
    PatternSpec,
    baselines,
)
from repro.core.runner import execute  # noqa: E402
from repro.flashsim.ftl.pagemap import PageMapConfig  # noqa: E402
from repro.flashsim.profiles import (  # noqa: E402
    build_device,
    get_profile,
    profile_names,
    scaled_profile,
)
from repro.flashsim.recorder import FlightRecorder  # noqa: E402
from repro.flashsim.trace import pickled_sizes  # noqa: E402
from repro.iotypes import Mode  # noqa: E402
from repro.units import KIB, MIB  # noqa: E402

#: baseline-pattern order follows the paper's Table 3 columns
PATTERN_ORDER = ("SR", "RR", "SW", "RW")

#: regression gate used by --baseline (CI perf smoke)
REGRESSION_FACTOR = 2.0

#: fraction of the committed speedup (slow-path over fast-path
#: usec/io) a gated run must retain.  Unlike raw usec_per_io the ratio
#: cancels out machine speed, so a drop below this almost always means
#: the batch or analytic fast path stopped engaging, not a slow runner.
SPEEDUP_RETENTION = 0.5

#: speedup-gated workloads: (fast key stem, slow-twin suffix).  The
#: enforce ratio pins the vectorized write kernel; the run_RW_gc ratio
#: pins the GC-epoch kernel (its fallback twin runs the per-IO
#: reference loop with the batch controller paths still on).
SPEEDUP_GATES = (("enforce", "scalar"), ("run_RW_gc", "fallback"))

DEFAULT_PROFILES = ("ideal_pagemap", "memoright", "kingston_dti")


def _set_batch(device, enabled: bool) -> None:
    device.controller.batch_enabled = enabled
    device.ftl.batch_enabled = enabled


def _entry(elapsed_sec: float, io_count: int) -> dict[str, float]:
    elapsed_sec = max(elapsed_sec, 1e-9)
    return {
        "usec_per_io": round(elapsed_sec * 1e6 / max(io_count, 1), 3),
        "sim_ios_per_sec": round(max(io_count, 1) / elapsed_sec, 1),
    }


def _warm_up(profile: str) -> None:
    """Trigger numpy's lazy submodule imports (np.ma via np.unique) and
    fill code caches on a throwaway device, so they don't land inside
    the first timed workload."""
    import numpy as np

    np.unique(np.arange(4))
    for batch in (True, False):
        device = build_device(profile, logical_bytes=MIB)
        _set_batch(device, batch)
        enforce_random_state(device)


def bench_profile(
    profile: str, logical_bytes: int, io_count: int, batch: bool, repeat: int
) -> dict[str, dict[str, float]]:
    """Best-of-``repeat`` timings of enforcement and the four baselines.

    Each repetition runs the full workload sequence on a fresh device
    (the sequence is deterministic, so repetitions are identical work);
    the minimum elapsed time per workload is reported, which is robust
    against scheduler noise on shared machines.
    """
    suffix = "" if batch else "/scalar"
    best_sec: dict[str, float] = {}
    ios: dict[str, int] = {}
    specs = baselines(
        io_size=16 * KIB,
        io_count=io_count,
        random_target_size=logical_bytes,
        sequential_target_size=logical_bytes,
    )
    for _ in range(max(repeat, 1)):
        device = build_device(profile, logical_bytes=logical_bytes)
        _set_batch(device, batch)

        start = time.perf_counter()
        report = enforce_random_state(device)
        elapsed = time.perf_counter() - start
        key = f"{profile}/enforce{suffix}"
        best_sec[key] = min(best_sec.get(key, elapsed), elapsed)
        ios[key] = report.io_count

        for name in PATTERN_ORDER:
            start = time.perf_counter()
            execute(device, specs[name])
            elapsed = time.perf_counter() - start
            key = f"{profile}/{name}{suffix}"
            best_sec[key] = min(best_sec.get(key, elapsed), elapsed)
            ios[key] = io_count
    return {key: _entry(sec, ios[key]) for key, sec in best_sec.items()}


def _run_specs(logical_bytes: int, io_count: int) -> dict[str, object]:
    """The measured-run workloads: four baselines, a mix, a parallel."""
    specs = baselines(
        io_size=16 * KIB,
        io_count=io_count,
        random_target_size=logical_bytes // 2,
        sequential_target_size=logical_bytes // 2,
    )
    half = logical_bytes // 2
    primary = PatternSpec(
        mode=Mode.READ,
        location=LocationKind.RANDOM,
        io_size=16 * KIB,
        io_count=io_count,
        target_size=half,
    )
    secondary = PatternSpec(
        mode=Mode.WRITE,
        location=LocationKind.SEQUENTIAL,
        io_size=16 * KIB,
        io_count=io_count,
        target_offset=half,
        target_size=half,
    )
    workloads: dict[str, object] = {
        f"run_{name}": specs[name] for name in PATTERN_ORDER
    }
    workloads["run_mix"] = MixSpec(
        primary=primary, secondary=secondary, ratio=3, io_count=io_count
    )
    workloads["run_parallel"] = ParallelSpec(
        base=specs["SW"], parallel_degree=4
    )
    return workloads


def bench_measured_runs(
    profile: str, logical_bytes: int, io_count: int, columnar: bool, repeat: int
) -> dict[str, dict[str, float]]:
    """Best-of-``repeat`` timings of the engine's recording pipeline.

    The same six workloads run through ``Engine(columnar=True)`` (the
    default columnar recording path, plain keys) and
    ``Engine(columnar=False)`` (the legacy per-IO object path,
    ``/object`` suffix — mirroring the batch/scalar convention of the
    device-level workloads).  Both produce bit-identical traces, so the
    ratio is pure recording overhead.

    The columnar pass also reports the trace IPC sizes once per profile
    (``{profile}/trace_pickle``): pickle bytes of one RW run's trace in
    the packed columnar format vs the legacy object graph.
    """
    suffix = "" if columnar else "/object"
    best_sec: dict[str, float] = {}
    sizes: tuple[int, int] | None = None
    workloads = _run_specs(logical_bytes, io_count)
    for _ in range(max(repeat, 1)):
        device = build_device(profile, logical_bytes=logical_bytes)
        engine = Engine(device, columnar=columnar)
        for name, spec in workloads.items():
            start = time.perf_counter()
            run = engine.run(spec)
            elapsed = time.perf_counter() - start
            key = f"{profile}/{name}{suffix}"
            best_sec[key] = min(best_sec.get(key, elapsed), elapsed)
            if columnar and name == "run_RW" and sizes is None:
                sizes = pickled_sizes(run.trace)
    results = {key: _entry(sec, io_count) for key, sec in best_sec.items()}
    if sizes is not None:
        columnar_bytes, object_bytes = sizes
        results[f"{profile}/trace_pickle"] = {
            "columnar_bytes": columnar_bytes,
            "object_graph_bytes": object_bytes,
            "reduction": round(object_bytes / max(columnar_bytes, 1), 2),
        }
    return results


#: queue depths of the NCQ sweep (1 = the synchronous reference)
QUEUE_DEPTHS = (1, 4, 32)


def bench_queue_depths(
    profile: str, logical_bytes: int, io_count: int, repeat: int
) -> dict[str, dict[str, float]]:
    """Best-of-``repeat`` timings of a random-read run per queue depth.

    Each depth runs the same RR spec through the engine on a fresh
    device (``run_RR_qd1`` is the synchronous reference; deeper runs
    take the queued host).  Besides the usual host-side throughput
    numbers, each entry reports the *simulated* ``device_iops`` — IO
    count over the run's makespan — which is where channel-level overlap
    shows: on a multi-channel profile it should scale with depth up to
    the channel count.
    """
    spec = baselines(
        io_size=16 * KIB,
        io_count=io_count,
        random_target_size=logical_bytes,
    )["RR"]
    best_sec: dict[str, float] = {}
    sim_iops: dict[str, float] = {}
    for _ in range(max(repeat, 1)):
        for depth in QUEUE_DEPTHS:
            device = build_device(profile, logical_bytes=logical_bytes)
            engine = Engine(device)
            start = time.perf_counter()
            run = engine.run(spec.with_(queue_depth=depth))
            elapsed = time.perf_counter() - start
            key = f"{profile}/run_RR_qd{depth}"
            best_sec[key] = min(best_sec.get(key, elapsed), elapsed)
            trace = run.trace
            makespan = float(
                trace.column("completed_at").max()
                - trace.column("submitted_at").min()
            )
            sim_iops[key] = io_count / makespan * 1e6 if makespan > 0 else 0.0
    results = {}
    for key, sec in best_sec.items():
        entry = _entry(sec, io_count)
        entry["device_iops"] = round(sim_iops[key], 1)
        results[key] = entry
    return results


def bench_gc_epochs(
    profile: str, logical_bytes: int, io_count: int, repeat: int
) -> dict[str, dict[str, float]]:
    """Best-of-``repeat`` timings of the closed-form kernel workloads.

    Both workloads start from an *enforced* device, whose free pool
    sits at the GC watermark.  ``run_RW_gc`` issues random 16 KiB
    writes re-covering the device, so the stream crosses a collection
    every few IOs and the GC-epoch kernel carries the whole run as
    closed-form appends between real relocation steps.
    ``run_RR_qd32_analytic`` drives the same enforced state with
    depth-32 random reads through the queued completion kernel's
    vectorized event schedule.

    Each workload is timed twice: kernels on (plain key) and with the
    analytic layer switched off (``/fallback`` suffix), which sends the
    hosts through their per-IO reference loops.  The batch controller
    paths stay on in both passes, so the ratio isolates the closed-form
    kernels rather than the older batch machinery, and enforcement
    itself always runs with kernels on — both passes measure the same
    device state bit-identically.

    Page-map profiles are rebuilt as a tight-spare, foreground-GC
    variant of the same timing profile: the stock spare area plus
    background reclamation would take tens of MiB of writes before the
    first collection, so on the stock device ``run_RW_gc`` would mostly
    time the GC-free fill.  The tight variant reaches the watermark
    during enforcement, so the timed run sits in GC steady state from
    its first window.
    """
    if get_profile(profile).ftl_kind == "pagemap":
        variant = scaled_profile(
            profile,
            name=f"{profile}-gc-bench",
            spare_blocks=8,
            pagemap=PageMapConfig(gc_low_blocks=4, bg_enabled=False),
        )
        build = lambda: variant.build(logical_bytes)  # noqa: E731
    else:
        build = lambda: build_device(  # noqa: E731
            profile, logical_bytes=logical_bytes
        )
    write_spec = baselines(
        io_size=16 * KIB,
        io_count=io_count,
        random_target_size=logical_bytes,
    )["RW"]
    read_spec = baselines(
        io_size=16 * KIB,
        io_count=io_count,
        random_target_size=logical_bytes,
    )["RR"].with_(queue_depth=32)
    workloads = (
        ("run_RW_gc", write_spec),
        ("run_RR_qd32_analytic", read_spec),
    )
    best_sec: dict[str, float] = {}
    for _ in range(max(repeat, 1)):
        for enabled in (True, False):
            suffix = "" if enabled else "/fallback"
            for name, spec in workloads:
                device = build()
                enforce_random_state(device)
                engine = Engine(device)
                saved = analytic.ENABLED
                analytic.ENABLED = enabled
                try:
                    start = time.perf_counter()
                    engine.run(spec)
                    elapsed = time.perf_counter() - start
                finally:
                    analytic.ENABLED = saved
                key = f"{profile}/{name}{suffix}"
                best_sec[key] = min(best_sec.get(key, elapsed), elapsed)
    return {key: _entry(sec, io_count) for key, sec in best_sec.items()}


def bench_recorder(
    profile: str, logical_bytes: int, io_count: int, repeat: int
) -> dict[str, dict[str, float]]:
    """Best-of-``repeat`` timings of the RW run with/without the recorder.

    ``run_RW_recorder_off`` is the plain hot path on a device that never
    had a flight recorder attached — committed to the baseline so the
    gate pins the disabled-recorder cost (one attribute check per
    dispatch) at parity.  ``run_RW_recorder_on`` measures the full
    attribution pipeline (provenance scopes, partition walk,
    apportionment, trace columns) for the report; attribution is an
    opt-in campaign mode, so its absolute cost is informational.
    """
    spec = baselines(
        io_size=16 * KIB,
        io_count=io_count,
        random_target_size=logical_bytes // 2,
    )["RW"]
    best_sec: dict[str, float] = {}
    for _ in range(max(repeat, 1)):
        for attached in (False, True):
            device = build_device(profile, logical_bytes=logical_bytes)
            if attached:
                device.attach_recorder(FlightRecorder())
            engine = Engine(device)
            start = time.perf_counter()
            engine.run(spec)
            elapsed = time.perf_counter() - start
            key = f"{profile}/run_RW_recorder_{'on' if attached else 'off'}"
            best_sec[key] = min(best_sec.get(key, elapsed), elapsed)
    return {key: _entry(sec, io_count) for key, sec in best_sec.items()}


def bench_snapshot_pack(
    profile: str, logical_bytes: int, repeat: int
) -> dict[str, dict[str, float]]:
    """Snapshot distribution stats (``{profile}/snapshot_pack``).

    Best-of-``repeat`` timings of the campaign executor's state-handoff
    primitives on an enforced device: flat-buffer packing
    (:func:`~repro.flashsim.snapshot.pack_snapshot`, what the publisher
    pays once per state), unpack-plus-restore (what a worker pays per
    shared-memory attach), and the legacy whole-snapshot pickle for
    comparison.  ``packed_bytes`` vs ``pickled_bytes`` shows the size of
    a shared segment against the per-cell pipe traffic it replaces.
    Stat-only entry: no ``usec_per_io``, so the --baseline gate skips it.
    """
    import pickle

    from repro.flashsim.snapshot import pack_snapshot, unpack_snapshot

    device = build_device(profile, logical_bytes=logical_bytes)
    enforce_random_state(device)
    snapshot = device.snapshot()
    target = build_device(profile, logical_bytes=logical_bytes)
    pack_sec = unpack_sec = pickle_sec = float("inf")
    packed_bytes = pickled_bytes = 0
    for _ in range(max(repeat, 1)):
        start = time.perf_counter()
        packed = pack_snapshot(snapshot)
        pack_sec = min(pack_sec, time.perf_counter() - start)
        packed_bytes = packed.nbytes

        start = time.perf_counter()
        target.restore(unpack_snapshot(packed))
        unpack_sec = min(unpack_sec, time.perf_counter() - start)

        start = time.perf_counter()
        blob = pickle.dumps(snapshot, pickle.HIGHEST_PROTOCOL)
        pickle_sec = min(pickle_sec, time.perf_counter() - start)
        pickled_bytes = len(blob)
    return {
        f"{profile}/snapshot_pack": {
            "pack_usec": round(pack_sec * 1e6, 1),
            "unpack_restore_usec": round(unpack_sec * 1e6, 1),
            "pickle_usec": round(pickle_sec * 1e6, 1),
            "packed_bytes": packed_bytes,
            "pickled_bytes": pickled_bytes,
        }
    }


def _workload_speedup(
    entries: dict[str, dict[str, float]],
    profile: str,
    name: str,
    slow_suffix: str,
) -> float | None:
    """Speedup (slow-twin over fast usec/io) for one workload, or None
    when either side is absent (e.g. --batch-only runs)."""
    fast = entries.get(f"{profile}/{name}")
    slow = entries.get(f"{profile}/{name}/{slow_suffix}")
    if not fast or not slow:
        return None
    return slow["usec_per_io"] / max(fast["usec_per_io"], 1e-9)


def check_baseline(
    results: dict[str, dict[str, float]], baseline_path: Path
) -> list[str]:
    """Workloads whose usec_per_io (or enforce speedup) regressed past
    the gate."""
    baseline = json.loads(baseline_path.read_text())
    regressions = []
    for workload, entry in results.items():
        old = baseline.get(workload)
        # stat-only entries (e.g. trace_pickle sizes) carry no timing
        if not old or "usec_per_io" not in old or "usec_per_io" not in entry:
            continue
        if entry["usec_per_io"] > REGRESSION_FACTOR * old["usec_per_io"]:
            regressions.append(
                f"{workload}: {entry['usec_per_io']} usec/io vs "
                f"baseline {old['usec_per_io']} (> {REGRESSION_FACTOR}x)"
            )
    # the speedup gates: machine-independent, so far tighter than the
    # absolute-time factor — they trip when a fast path stops engaging
    profiles = {w.split("/", 1)[0] for w in results if "/" in w}
    for profile in sorted(profiles):
        for name, slow_suffix in SPEEDUP_GATES:
            new_ratio = _workload_speedup(results, profile, name, slow_suffix)
            old_ratio = _workload_speedup(baseline, profile, name, slow_suffix)
            if new_ratio is None or old_ratio is None:
                continue
            if new_ratio < SPEEDUP_RETENTION * old_ratio:
                regressions.append(
                    f"{profile}: {name} speedup {new_ratio:.2f}x vs baseline "
                    f"{old_ratio:.2f}x (< {SPEEDUP_RETENTION}x retention)"
                )
    return regressions


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--profiles",
        default=",".join(DEFAULT_PROFILES),
        help="comma-separated profile names, or 'all'",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small device (4 MiB) and short sweeps for CI",
    )
    parser.add_argument(
        "--size-mib", type=int, default=0, help="logical capacity override (MiB)"
    )
    parser.add_argument(
        "--io-count", type=int, default=0, help="IOs per baseline pattern"
    )
    parser.add_argument(
        "--out", type=Path, default=None, help="write results JSON here"
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="committed BENCH_hotpath.json to gate against",
    )
    parser.add_argument(
        "--batch-only",
        action="store_true",
        help="skip the scalar reference measurements",
    )
    parser.add_argument(
        "--repeat",
        type=int,
        default=3,
        help="repetitions per workload; the minimum time is reported",
    )
    args = parser.parse_args(argv)

    if args.profiles == "all":
        profiles = profile_names()
    else:
        profiles = [p.strip() for p in args.profiles.split(",") if p.strip()]
    logical = (args.size_mib or (4 if args.quick else 16)) * MIB
    io_count = args.io_count or (128 if args.quick else 1024)

    _warm_up(profiles[0])
    results: dict[str, dict[str, float]] = {}
    for profile in profiles:
        for batch in (True,) if args.batch_only else (True, False):
            mode = "batch" if batch else "scalar"
            print(f"benchmarking {profile} ({mode}) ...", flush=True)
            results.update(
                bench_profile(profile, logical, io_count, batch, args.repeat)
            )
        for columnar in (True,) if args.batch_only else (True, False):
            mode = "columnar" if columnar else "object"
            print(f"benchmarking {profile} runs ({mode}) ...", flush=True)
            results.update(
                bench_measured_runs(
                    profile, logical, io_count, columnar, args.repeat
                )
            )
        print(f"benchmarking {profile} queue depths ...", flush=True)
        results.update(
            bench_queue_depths(profile, logical, io_count, args.repeat)
        )
        print(f"benchmarking {profile} GC epochs ...", flush=True)
        results.update(
            bench_gc_epochs(profile, logical, io_count, args.repeat)
        )
        print(f"benchmarking {profile} flight recorder ...", flush=True)
        results.update(
            bench_recorder(profile, logical, io_count, args.repeat)
        )
        print(f"benchmarking {profile} snapshot packing ...", flush=True)
        results.update(
            bench_snapshot_pack(profile, logical, args.repeat)
        )

    print(json.dumps(results, indent=2))
    for profile in profiles:
        for name, slow_suffix in (
            *SPEEDUP_GATES,
            ("run_RR_qd32_analytic", "fallback"),
        ):
            speedup = _workload_speedup(results, profile, name, slow_suffix)
            if speedup is not None:
                print(
                    f"{profile}: {name} speedup {speedup:.2f}x "
                    f"({slow_suffix}/fast)"
                )
        for name in (*(f"run_{p}" for p in PATTERN_ORDER), "run_mix", "run_parallel"):
            plain = f"{profile}/{name}"
            legacy = f"{profile}/{name}/object"
            if plain in results and legacy in results:
                speedup = (
                    results[legacy]["usec_per_io"]
                    / max(results[plain]["usec_per_io"], 1e-9)
                )
                print(f"{profile}: {name} speedup {speedup:.2f}x (object/columnar)")
        pickle_key = f"{profile}/trace_pickle"
        if pickle_key in results:
            print(
                f"{profile}: trace pickle "
                f"{results[pickle_key]['reduction']}x smaller (columnar)"
            )
        pack_key = f"{profile}/snapshot_pack"
        if pack_key in results:
            entry = results[pack_key]
            print(
                f"{profile}: snapshot pack {entry['pack_usec']:.0f} usec, "
                f"restore {entry['unpack_restore_usec']:.0f} usec "
                f"({entry['packed_bytes'] // 1024} KiB shared vs "
                f"{entry['pickled_bytes'] // 1024} KiB pickled per cell)"
            )
        rec_off = f"{profile}/run_RW_recorder_off"
        rec_on = f"{profile}/run_RW_recorder_on"
        if rec_off in results and rec_on in results:
            overhead = (
                results[rec_on]["usec_per_io"]
                / max(results[rec_off]["usec_per_io"], 1e-9)
            )
            print(
                f"{profile}: flight-recorder attribution costs "
                f"{overhead:.2f}x on RW (opt-in)"
            )
        qd_low = f"{profile}/run_RR_qd{QUEUE_DEPTHS[0]}"
        qd_high = f"{profile}/run_RR_qd{QUEUE_DEPTHS[-1]}"
        if qd_low in results and qd_high in results:
            channels = get_profile(profile).timing.channels
            scaling = (
                results[qd_high]["device_iops"]
                / max(results[qd_low]["device_iops"], 1e-9)
            )
            print(
                f"{profile}: queued RR scaling "
                f"{scaling:.2f}x at qd{QUEUE_DEPTHS[-1]} "
                f"({channels} channels)"
            )

    if args.out:
        args.out.write_text(json.dumps(results, indent=2) + "\n")
        print(f"wrote {args.out}")

    if args.baseline:
        if not args.baseline.exists():
            print(f"baseline {args.baseline} missing; skipping gate")
        else:
            regressions = check_baseline(results, args.baseline)
            if regressions:
                print("PERF REGRESSION:")
                for line in regressions:
                    print(f"  {line}")
                return 1
            print("perf gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
