"""Shared fixtures: small, fast devices for unit and integration tests.

Device-dependent tests run against shrunken capacities (8-32 MiB) so
whole-device state enforcement stays in the millisecond range; the
behavioural resources (log pools, caches, spare blocks) keep their
profile sizes, so all pattern effects remain visible.
"""

from __future__ import annotations

import pytest

from repro.core import enforce_random_state, rest_device
from repro.flashsim import FlashChip, Geometry, build_device
from repro.flashsim.controller import Controller, ControllerConfig
from repro.flashsim.device import FlashDevice
from repro.flashsim.ftl.blockmap import BlockMapConfig, BlockMapFTL
from repro.flashsim.ftl.fast import FastConfig, FastFTL
from repro.flashsim.ftl.hybrid import HybridConfig, HybridLogFTL
from repro.flashsim.ftl.pagemap import PageMapConfig, PageMapFTL
from repro.flashsim.timing import TimingSpec
from repro.units import KIB, MIB, SEC

#: a small geometry used across FTL unit tests: 2 KiB pages, 8 pages per
#: block, 64 logical blocks (1 MiB logical) with generous spare
SMALL_GEOMETRY = Geometry(
    page_size=2 * KIB,
    pages_per_block=8,
    logical_bytes=1 * MIB,
    physical_blocks=64 + 24,
)


@pytest.fixture
def geometry() -> Geometry:
    return SMALL_GEOMETRY


@pytest.fixture
def chip(geometry: Geometry) -> FlashChip:
    return FlashChip(geometry)


@pytest.fixture
def hybrid_ftl(geometry: Geometry, chip: FlashChip) -> HybridLogFTL:
    return HybridLogFTL(
        geometry, chip, HybridConfig(seq_log_blocks=2, rnd_log_blocks=4)
    )


@pytest.fixture
def blockmap_ftl(geometry: Geometry, chip: FlashChip) -> BlockMapFTL:
    return BlockMapFTL(geometry, chip, BlockMapConfig(replacement_slots=2))


@pytest.fixture
def pagemap_ftl(geometry: Geometry, chip: FlashChip) -> PageMapFTL:
    return PageMapFTL(geometry, chip, PageMapConfig(gc_low_blocks=2))


def make_device(
    geometry: Geometry | None = None,
    ftl_kind: str = "hybrid",
    cache_bytes: int = 0,
    mapping_unit: int = 0,
    bg: bool = False,
    timing: TimingSpec | None = None,
) -> FlashDevice:
    """Assemble a bespoke small device for unit tests."""
    geometry = geometry or SMALL_GEOMETRY
    chip = FlashChip(geometry)
    if ftl_kind == "hybrid":
        config = HybridConfig(
            seq_log_blocks=2,
            rnd_log_blocks=4,
            bg_enabled=bg,
            bg_target_blocks=8 if bg else 0,
        )
        ftl = HybridLogFTL(geometry, chip, config)
    elif ftl_kind == "blockmap":
        ftl = BlockMapFTL(geometry, chip, BlockMapConfig(replacement_slots=2))
    elif ftl_kind == "fast":
        ftl = FastFTL(geometry, chip, FastConfig(shared_log_blocks=4))
    else:
        ftl = PageMapFTL(
            geometry,
            chip,
            PageMapConfig(gc_low_blocks=2, bg_enabled=bg, bg_target_blocks=8 if bg else 0),
        )
    controller = Controller(
        geometry,
        ftl,
        ControllerConfig(cache_bytes=cache_bytes, mapping_unit=mapping_unit),
    )
    return FlashDevice(
        name=f"test-{ftl_kind}",
        geometry=geometry,
        timing=timing or TimingSpec(),
        chip=chip,
        ftl=ftl,
        controller=controller,
    )


@pytest.fixture
def device() -> FlashDevice:
    return make_device()


@pytest.fixture(scope="session")
def enforced_mtron() -> FlashDevice:
    """A state-enforced scaled Mtron (the paper's phase/pause exemplar).

    Session-scoped: tests using it must not rely on exact device state,
    only on behaviour that is stable under the random-state assumption.
    """
    dev = build_device("mtron", logical_bytes=32 * MIB)
    enforce_random_state(dev)
    rest_device(dev, 60 * SEC)
    return dev


@pytest.fixture(scope="session")
def enforced_dti() -> FlashDevice:
    """A state-enforced scaled Kingston DTI (block-mapped low-end)."""
    dev = build_device("kingston_dti", logical_bytes=16 * MIB)
    enforce_random_state(dev)
    rest_device(dev, 60 * SEC)
    return dev
