"""Exception hierarchy: everything catches as ReproError, subsystem
errors discriminate."""

import pytest

from repro import errors


def test_all_errors_derive_from_repro_error():
    for name in dir(errors):
        obj = getattr(errors, name)
        if isinstance(obj, type) and issubclass(obj, Exception):
            assert issubclass(obj, errors.ReproError), name


def test_chip_error_family():
    for cls in (
        errors.ProgramError,
        errors.EraseError,
        errors.EnduranceError,
        errors.BadBlockError,
    ):
        assert issubclass(cls, errors.ChipError)


def test_out_of_space_is_an_ftl_error():
    assert issubclass(errors.OutOfSpaceError, errors.FTLError)


def test_single_catch_covers_subsystems():
    caught = []
    for raise_it in (
        lambda: (_ for _ in ()).throw(errors.PatternError("p")),
        lambda: (_ for _ in ()).throw(errors.AnalysisError("a")),
        lambda: (_ for _ in ()).throw(errors.ProgramError("c")),
    ):
        try:
            next(raise_it())
        except errors.ReproError as error:
            caught.append(type(error).__name__)
    assert caught == ["PatternError", "AnalysisError", "ProgramError"]


def test_library_raises_its_own_errors_not_builtins():
    """Spot-check: representative misuse raises ReproError subclasses,
    so callers never need bare ``except Exception``."""
    from repro.core.patterns import LocationKind, PatternSpec
    from repro.flashsim import build_device
    from repro.iotypes import Mode

    with pytest.raises(errors.PatternError):
        PatternSpec(mode=Mode.READ, location=LocationKind.SEQUENTIAL, io_size=0)
    with pytest.raises(errors.ProfileError):
        build_device("nonexistent")
    device = build_device("mtron", logical_bytes=8 * 1024 * 1024)
    with pytest.raises(errors.AddressError):
        device.read(device.capacity, 512)
