"""Documentation completeness: every public module, class and function
in the library carries a docstring (deliverable (e): doc comments on
every public item)."""

import ast
import pathlib

import pytest

SRC = pathlib.Path(__file__).parent.parent / "src" / "repro"

MODULES = sorted(SRC.rglob("*.py"))


def _public_definitions(tree: ast.Module):
    """Top-level and class-level public defs (name not starting with _)."""
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            if not node.name.startswith("_"):
                yield node
            if isinstance(node, ast.ClassDef):
                for child in node.body:
                    if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        if not child.name.startswith("_"):
                            yield child


@pytest.mark.parametrize("path", MODULES, ids=lambda p: str(p.relative_to(SRC)))
def test_module_has_docstring(path):
    tree = ast.parse(path.read_text())
    assert ast.get_docstring(tree), f"{path} has no module docstring"


@pytest.mark.parametrize("path", MODULES, ids=lambda p: str(p.relative_to(SRC)))
def test_public_items_have_docstrings(path):
    tree = ast.parse(path.read_text())
    missing = []
    for node in _public_definitions(tree):
        if ast.get_docstring(node) is None:
            # property getters named like attributes still deserve docs,
            # but trivial dunder-free data accessors are tolerated when
            # a decorator marks them (e.g. dataclass-generated __init__
            # never shows up here anyway)
            missing.append(f"{node.name} (line {node.lineno})")
    assert not missing, f"{path}: undocumented public items: {missing}"


def test_api_docs_are_current(tmp_path, monkeypatch):
    """docs/api.md must match what the generator produces (regenerate
    with `python tools/gen_api_docs.py` after API changes)."""
    import importlib.util

    spec = importlib.util.spec_from_file_location(
        "gen_api_docs",
        pathlib.Path(__file__).parent.parent / "tools" / "gen_api_docs.py",
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    committed = module.OUT
    assert committed.exists(), "run python tools/gen_api_docs.py"
    expected_parts = [
        module.render_package(package) for package in module.PACKAGES
    ]
    text = committed.read_text()
    for part in expected_parts:
        first_heading = part.splitlines()[0]
        assert first_heading in text
    # spot-check: a recently added public name is documented
    assert "autotune_run" in text
    assert "fingerprint" in text
