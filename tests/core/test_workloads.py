"""Composite workload builders and evaluation."""

import pytest

from repro.core.workloads import (
    WorkloadReport,
    btree_inserts,
    evaluate_workload,
    external_sort_merge,
    log_structured_writer,
    oltp_mix,
    wal_commit,
)
from repro.errors import PatternError
from repro.iotypes import Mode
from repro.units import KIB, MIB

from tests.conftest import make_device

CAPACITY = 1 * MIB


def test_oltp_mix_shape():
    mix = oltp_mix(CAPACITY, page_size=16 * KIB, io_count=40, reads_per_write=4)
    assert mix.ratio == 4
    assert mix.primary.mode is Mode.READ
    assert mix.secondary.mode is Mode.WRITE
    # components on disjoint halves
    assert mix.primary.footprint[1] <= mix.secondary.footprint[0]


def test_oltp_mix_working_set():
    mix = oltp_mix(CAPACITY, page_size=16 * KIB, working_set=64 * KIB)
    assert mix.primary.target_size == 64 * KIB
    assert mix.secondary.target_size == 64 * KIB
    with pytest.raises(PatternError):
        oltp_mix(CAPACITY, page_size=16 * KIB, working_set=1 * KIB)


def test_log_structured_writer_wraps_in_log_area():
    spec = log_structured_writer(CAPACITY, record_size=16 * KIB,
                                 io_count=128, log_bytes=256 * KIB)
    assert spec.target_size == 256 * KIB
    # wraps: IO 16 lands where IO 0 did
    assert spec.lba(16) == spec.lba(0)
    with pytest.raises(PatternError):
        log_structured_writer(CAPACITY, record_size=16 * KIB, log_bytes=1 * KIB)


def test_external_sort_merge_partitions():
    spec = external_sort_merge(CAPACITY, fan_out=4, run_bytes=128 * KIB,
                               io_size=16 * KIB)
    assert spec.partitions == 4
    assert spec.target_size == 4 * 128 * KIB
    with pytest.raises(PatternError):
        external_sort_merge(CAPACITY, fan_out=0)
    with pytest.raises(PatternError):
        external_sort_merge(CAPACITY, fan_out=64, run_bytes=1 * MIB)


def test_btree_inserts_components():
    mix = btree_inserts(CAPACITY, page_size=16 * KIB, io_count=64,
                        leaf_working_set=128 * KIB)
    assert mix.primary.target_size == 128 * KIB
    assert mix.secondary.location.value == "sequential"


def test_wal_commit_variants():
    naive = wal_commit(CAPACITY, flash_aware=False, io_count=32)
    aware = wal_commit(CAPACITY, flash_aware=True, io_count=32)
    assert naive.secondary.incr == 0  # the in-place header
    assert aware.primary.io_size == 32 * KIB
    assert aware.secondary.location.value == "sequential"


def test_evaluate_workload_reports():
    device = make_device()
    spec = log_structured_writer(device.capacity, record_size=16 * KIB,
                                 io_count=64)
    report = evaluate_workload(device, "log", spec)
    assert report.io_count == 64
    assert report.bytes_written == 64 * 16 * KIB
    assert report.throughput_mib_s > 0
    assert report.write_amplification >= 0.9  # every host page programmed
    assert "log:" in report.summary()


def test_evaluate_workload_mix():
    device = make_device()
    mix = oltp_mix(device.capacity, page_size=16 * KIB, io_count=64,
                   reads_per_write=3)
    report = evaluate_workload(device, "oltp", mix)
    assert report.io_count == 64
    # only the write quarter moves bytes into the store
    assert report.bytes_written == 16 * 16 * KIB


def test_flash_aware_wal_beats_naive_on_device():
    """The whole point of the workload library: designs are comparable
    on a simulated device in one call each."""
    device = make_device(ftl_kind="blockmap")
    naive = evaluate_workload(
        device, "naive", wal_commit(device.capacity, flash_aware=False,
                                    io_count=96)
    )
    aware = evaluate_workload(
        device, "aware", wal_commit(device.capacity, flash_aware=True,
                                    io_count=96)
    )
    # per-IO means are incomparable across record sizes; the design
    # comparison is throughput (bytes of log durably written per time)
    assert aware.throughput_mib_s > naive.throughput_mib_s
    assert aware.write_amplification <= naive.write_amplification * 1.1
