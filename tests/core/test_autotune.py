"""Adaptive experiment-length tuning (the paper's Section 6 future work)."""

import numpy as np
import pytest

from repro.core.autotune import autotune_run, confidence_halfwidth
from repro.core.patterns import LocationKind, PatternSpec
from repro.errors import AnalysisError
from repro.iotypes import Mode
from repro.units import KIB

from tests.conftest import make_device


def rw_spec(device, io_count=1):
    return PatternSpec(
        mode=Mode.WRITE,
        location=LocationKind.RANDOM,
        io_size=16 * KIB,
        io_count=io_count,
        target_size=(device.capacity // (16 * KIB)) * 16 * KIB,
    )


def sr_spec(io_count=1):
    return PatternSpec(
        mode=Mode.READ,
        location=LocationKind.SEQUENTIAL,
        io_size=16 * KIB,
        io_count=io_count,
    )


# ----------------------------------------------------------------------
# the confidence machinery
# ----------------------------------------------------------------------

def test_confidence_tightens_with_more_samples():
    rng = np.random.default_rng(0)
    small = rng.normal(100.0, 10.0, size=32)
    large = rng.normal(100.0, 10.0, size=512)
    half_small, __ = confidence_halfwidth(small)
    half_large, __ = confidence_halfwidth(large)
    assert half_large < half_small


def test_confidence_accounts_for_autocorrelation():
    rng = np.random.default_rng(1)
    independent = rng.normal(100.0, 10.0, size=256)
    # strongly correlated series with the same marginal spread
    correlated = np.repeat(rng.normal(100.0, 10.0, size=32), 8)
    half_ind, __ = confidence_halfwidth(independent)
    half_corr, __ = confidence_halfwidth(correlated)
    assert half_corr > half_ind


def test_confidence_degenerate_inputs():
    assert confidence_halfwidth(np.array([1.0, 2.0]))[0] == float("inf")
    half, rel = confidence_halfwidth(np.full(64, 5.0))
    assert half == 0.0 and rel == 0.0


# ----------------------------------------------------------------------
# the adaptive runner
# ----------------------------------------------------------------------

def test_autotune_converges_on_a_uniform_pattern():
    device = make_device()
    result = autotune_run(device, sr_spec(), relative_ci=0.10, min_ios=64,
                          max_ios=1024, chunk=32, min_running=32)
    assert result.converged
    assert result.io_count <= 256  # cheap pattern: small budget suffices
    assert result.io_ignore == 0
    assert result.relative_ci <= 0.10
    assert len(result.responses) == result.io_count


def test_autotune_skips_a_startup_phase():
    device = make_device(bg=True)
    # the background device has a free-pool head-room: the first random
    # writes are cheap; autotune must not converge inside them
    result = autotune_run(
        device, rw_spec(device), relative_ci=0.25, min_ios=128,
        max_ios=2048, chunk=32, min_running=48,
    )
    if result.phases.has_startup:
        assert result.io_ignore > 0
        # the tuned mean is close to the true running phase, not the
        # whole-trace mean
        values = np.asarray(result.responses)
        naive = values.mean()
        assert result.stats.mean_usec >= naive


def test_autotune_budget_hit_reports_nonconvergence():
    device = make_device()
    result = autotune_run(
        device, rw_spec(device), relative_ci=0.0001,  # unreachable
        min_ios=64, max_ios=192, chunk=32, min_running=32,
    )
    assert not result.converged
    assert result.io_count == 192
    assert "budget hit" in result.summary()


def test_autotune_validation():
    device = make_device()
    with pytest.raises(AnalysisError):
        autotune_run(device, sr_spec(), relative_ci=0.0)
    with pytest.raises(AnalysisError):
        autotune_run(device, sr_spec(), chunk=8)
    with pytest.raises(AnalysisError):
        autotune_run(device, sr_spec(), chunk=64, max_ios=32)
    with pytest.raises(AnalysisError):
        autotune_run(device, sr_spec(), min_ios=5000, max_ios=1024)


def test_autotune_respects_device_capacity():
    device = make_device()
    # a sequential pattern extended to max_ios must wrap, not overflow
    result = autotune_run(
        device, sr_spec(), relative_ci=0.10, min_ios=64,
        max_ios=4096, chunk=64, min_running=32,
    )
    assert result.io_count <= 4096


def test_autotune_beats_fixed_iocount_budget(enforced_mtron):
    """The point of the feature: fewer IOs than the paper's fixed rule
    for easy patterns, correct means for hard ones."""
    from repro.core import baselines

    device = enforced_mtron
    specs = baselines(
        io_size=32 * KIB, io_count=1,
        random_target_size=device.capacity,
    )
    read_result = autotune_run(device, specs["SR"], relative_ci=0.10)
    assert read_result.converged
    assert read_result.io_count < 1024  # the paper's fixed SSD IOCount
    write_result = autotune_run(device, specs["RW"], relative_ci=0.15)
    assert write_result.converged
    # the tuned mean is in the steady regime (far above the cheap phase)
    assert write_result.stats.mean_usec > 2_000.0
