"""Methodology: state enforcement and run-control rules (Sections 4/5.1)."""

import pytest

from repro.core.methodology import (
    enforce_random_state,
    enforce_sequential_state,
    recommended_io_count,
    recommended_io_ignore,
    run_control_for,
    spec_with_run_control,
)
from repro.core.patterns import LocationKind, PatternSpec
from repro.flashsim.chip import ERASED
from repro.iotypes import Mode
from repro.units import KIB

from tests.conftest import make_device


def test_random_enforcement_covers_capacity():
    device = make_device()
    report = enforce_random_state(device)
    assert report.method == "random"
    assert report.bytes_written >= device.capacity
    assert report.io_count > 0
    assert report.elapsed_usec > 0
    device.check_invariants()


def test_random_enforcement_uses_random_sizes():
    device = make_device()
    sizes = set()
    original = device.submit

    def spy(request, now):
        sizes.add(request.size)
        return original(request, now)

    device.submit = spy
    enforce_random_state(device)
    assert len(sizes) > 5  # many distinct sizes, 0.5K..block size
    assert max(sizes) <= device.geometry.block_size


def test_random_enforcement_is_deterministic_per_seed():
    a = make_device()
    b = make_device()
    report_a = enforce_random_state(a, seed=3)
    report_b = enforce_random_state(b, seed=3)
    assert report_a.io_count == report_b.io_count
    assert report_a.elapsed_usec == report_b.elapsed_usec


def test_sequential_enforcement_writes_whole_device():
    device = make_device()
    report = enforce_sequential_state(device, io_size=64 * KIB)
    assert report.method == "sequential"
    assert report.bytes_written == device.capacity
    # every page of the device is now written
    for lpage in (0, device.geometry.logical_pages - 1):
        assert device.ftl.read_token_quiet(lpage) != ERASED
    device.check_invariants()


def test_sequential_enforcement_is_faster_than_random():
    """Section 4.1: sequential state enforcement is faster (but less
    stable); random took 5 hours to 35 days on the paper's devices."""
    random_device = make_device()
    random_report = enforce_random_state(random_device)
    sequential_device = make_device()
    sequential_report = enforce_sequential_state(sequential_device)
    assert sequential_report.elapsed_usec < random_report.elapsed_usec


def test_coverage_validation():
    device = make_device()
    with pytest.raises(ValueError):
        enforce_random_state(device, coverage=0)


def test_recommended_io_count_rules():
    # the paper's rules at full scale (Section 5.1)
    assert recommended_io_count("SSD", "SR", scale=1.0) == 1024
    assert recommended_io_count("SSD", "RW", scale=1.0) == 5120
    assert recommended_io_count("USB", "RW", scale=1.0) == 512
    assert recommended_io_count("SD", "SW", scale=1.0) == 512
    # scaled values stay usable
    assert recommended_io_count("SSD", "RW", scale=0.1) == 512
    assert recommended_io_count("USB", "SR", scale=0.01) >= 32


def test_recommended_io_ignore():
    assert recommended_io_ignore(0) == 0
    assert recommended_io_ignore(100) == 126  # 25% margin


def test_run_control_for_covers_phases():
    io_ignore, io_count = run_control_for(startup=100, period=16, min_periods=8)
    assert io_ignore >= 100
    assert io_count - io_ignore >= 8 * 16


def test_run_control_without_oscillation():
    io_ignore, io_count = run_control_for(startup=0, period=None, floor=64)
    assert io_ignore == 0
    assert io_count >= 64


def test_spec_with_run_control():
    spec = PatternSpec(
        mode=Mode.WRITE,
        location=LocationKind.RANDOM,
        io_size=32 * KIB,
        io_count=64,
        target_size=4096 * KIB,
    )
    tuned = spec_with_run_control(spec, startup=50, period=10)
    assert tuned.io_ignore > 50
    assert tuned.io_count >= tuned.io_ignore + 64


# ----------------------------------------------------------------------
# StatePool bounds (LRU)
# ----------------------------------------------------------------------

def test_state_pool_rejects_nonpositive_cap():
    from repro.core.methodology import StatePool

    with pytest.raises(ValueError):
        StatePool(max_states=0)


def test_state_pool_unbounded_by_default():
    from repro.core.methodology import StatePool

    pool = StatePool()
    device = make_device()
    for seed in range(4):
        pool.ensure(device, coverage=0.25, seed=seed)
    assert len(pool) == 4
    assert pool.evictions == 0


def test_state_pool_lru_cap_evicts_oldest_and_counts():
    from repro.core.methodology import StatePool
    from repro.obs import metrics as obs_metrics

    registry = obs_metrics.install()
    try:
        pool = StatePool(max_states=2)
        device = make_device()
        first = pool.ensure(device, coverage=0.25, seed=1)
        pool.ensure(device, coverage=0.25, seed=2)
        # touching seed=1 makes seed=2 the LRU victim
        assert pool.ensure(device, coverage=0.25, seed=1) is first
        pool.ensure(device, coverage=0.25, seed=3)
        assert len(pool) == 2
        assert pool.evictions == 1
        snapshot = registry.snapshot()
        assert snapshot.counters["core.state_pool.evictions"] == 1
        # seed=1 survived (hit), seed=2 was evicted (re-enforces: miss)
        hits_before = pool.hits
        pool.ensure(device, coverage=0.25, seed=1)
        assert pool.hits == hits_before + 1
        misses_before = pool.misses
        pool.ensure(device, coverage=0.25, seed=2)
        assert pool.misses == misses_before + 1
    finally:
        obs_metrics.uninstall()


def test_state_pool_evicted_state_reenforces_identically():
    # enforcement starts from an out-of-box device each time (as the
    # executor's prepare() does), so an evicted state grows back with
    # the same fingerprint
    from repro.core.methodology import StatePool

    pool = StatePool(max_states=1)
    first = pool.ensure(make_device(), coverage=0.25, seed=7)
    fingerprint = first.fingerprint
    pool.ensure(make_device(), coverage=0.25, seed=8)  # evicts seed=7
    again = pool.ensure(make_device(), coverage=0.25, seed=7)
    assert again.fingerprint == fingerprint
