"""The unified engine: registry dispatch, reseeding, extensibility."""

import pytest

from repro.core.engine import (
    Engine,
    MixRun,
    ParallelMixRun,
    ParallelRun,
    Run,
    reseed,
)
from repro.core.experiment import execute_spec
from repro.core.patterns import (
    LocationKind,
    MixSpec,
    ParallelMixSpec,
    ParallelSpec,
    PatternSpec,
)
from repro.errors import ExperimentError
from repro.iotypes import Mode
from repro.units import KIB

from tests.conftest import make_device


def sw_spec(io_count=12, **kwargs):
    defaults = dict(
        mode=Mode.WRITE,
        location=LocationKind.SEQUENTIAL,
        io_size=16 * KIB,
        io_count=io_count,
    )
    defaults.update(kwargs)
    return PatternSpec(**defaults)


def sr_spec(io_count=12, **kwargs):
    return sw_spec(io_count=io_count, mode=Mode.READ, **kwargs)


def mix_spec():
    return MixSpec(
        primary=sr_spec(),
        secondary=sw_spec(target_offset=512 * KIB),
        ratio=2,
        io_count=12,
    )


def parallel_mix_spec():
    return ParallelMixSpec((sr_spec(), sw_spec(target_offset=512 * KIB)))


# ----------------------------------------------------------------------
# dispatch
# ----------------------------------------------------------------------

def test_engine_dispatches_every_spec_kind():
    device = make_device()
    engine = Engine(device)
    assert type(engine.run(sw_spec())) is Run
    assert type(engine.run(mix_spec())) is MixRun
    assert type(
        engine.run(ParallelSpec(base=sw_spec(target_size=12 * 16 * KIB),
                                parallel_degree=2))
    ) is ParallelRun
    assert type(engine.run(parallel_mix_spec())) is ParallelMixRun
    device.check_invariants()


def test_execute_spec_dispatches_parallel_mix():
    # regression: the old isinstance ladder never reached ParallelMixSpec
    device = make_device()
    result = execute_spec(device, parallel_mix_spec())
    assert isinstance(result, ParallelMixRun)
    assert len(result.runs) == 2
    assert result.stats.count == 24


def test_engine_rejects_unknown_spec_kind():
    class Alien:
        pass

    with pytest.raises(ExperimentError, match="no executor registered"):
        Engine(make_device()).run(Alien())


# ----------------------------------------------------------------------
# reseeding
# ----------------------------------------------------------------------

def test_reseed_bump_zero_returns_the_spec():
    spec = sw_spec()
    assert reseed(spec, 0) is spec


def test_reseed_shifts_every_component_seed():
    assert reseed(sw_spec(seed=7), 3).seed == 10

    mixed = reseed(mix_spec(), 2)
    assert mixed.primary.seed == mix_spec().primary.seed + 2
    assert mixed.secondary.seed == mix_spec().secondary.seed + 2

    parallel = reseed(ParallelSpec(base=sw_spec(seed=5), parallel_degree=2), 4)
    assert parallel.base.seed == 9
    assert parallel.parallel_degree == 2

    pmix = reseed(parallel_mix_spec(), 1)
    originals = parallel_mix_spec().components
    assert all(
        bumped.seed == original.seed + 1
        for bumped, original in zip(pmix.components, originals)
    )


def test_reseed_rejects_unknown_spec_kind():
    class Alien:
        pass

    with pytest.raises(ExperimentError, match="no reseeder registered"):
        reseed(Alien(), 1)


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------

def test_spec_subclasses_inherit_their_executor():
    class TaggedSpec(PatternSpec):
        """A spec subclass with no handler of its own."""

    device = make_device()
    run = Engine(device).run(
        TaggedSpec(
            mode=Mode.WRITE, location=LocationKind.SEQUENTIAL,
            io_size=16 * KIB, io_count=8,
        )
    )
    assert run.stats.count == 8


def test_new_spec_kinds_register_once_for_every_caller():
    class NullSpec:
        label = "null"
        seed = 0

    class NullRun:
        def __init__(self, spec):
            self.spec = spec

    try:
        @Engine.executor(NullSpec)
        def run_null(engine, spec, at):
            return NullRun(spec)

        @Engine.reseeder(NullSpec)
        def reseed_null(spec, bump):
            fresh = NullSpec()
            fresh.seed = spec.seed + bump
            return fresh

        spec = NullSpec()
        assert isinstance(Engine(make_device()).run(spec), NullRun)
        assert execute_spec(make_device(), spec).spec is spec
        assert reseed(spec, 5).seed == 5
    finally:
        Engine._executors.pop(NullSpec)
        Engine._reseeders.pop(NullSpec)
