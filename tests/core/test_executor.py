"""Campaign executor: cells, memoization, sequential/parallel parity."""

import json

import pytest

from repro.core.executor import (
    CACHE_VERSION,
    CampaignCell,
    CampaignExecutor,
    RunCache,
    plan_cells,
    results_by_experiment,
    run_cell,
)
from repro.errors import ExperimentError
from repro.units import KIB, MIB, SEC

PROFILE = "kingston_dti"
CAPACITY = 4 * MIB


def order_cells():
    return plan_cells(
        PROFILE,
        CAPACITY,
        ["order"],
        io_size=32 * KIB,
        io_count=8,
        pause_usec=0.1 * SEC,
    )


def test_plan_cells_enumerates_one_cell_per_experiment():
    cells = order_cells()
    assert [cell.experiment for cell in cells] == ["order/SR", "order/SW"]
    assert all(cell.profile == PROFILE for cell in cells)
    assert all(cell.capacity == CAPACITY for cell in cells)


def test_executor_rejects_nonpositive_jobs():
    with pytest.raises(ExperimentError):
        CampaignExecutor(jobs=0)


def test_run_cell_rejects_unknown_experiment():
    executor = CampaignExecutor(enforce=False)
    _, snapshot, _ = executor.prepare(PROFILE, CAPACITY)
    bogus = CampaignCell(
        profile=PROFILE, capacity=CAPACITY, benchmark="order",
        experiment="order/NOPE", io_size=32 * KIB, io_count=8,
    )
    with pytest.raises(ExperimentError):
        run_cell(bogus, snapshot)


def test_cache_misses_then_hits_with_identical_payloads(tmp_path):
    cells = order_cells()

    first = CampaignExecutor(jobs=1, cache=tmp_path / "cache")
    ran = first.execute(cells)
    assert [outcome.cached for outcome in ran] == [False, False]
    assert first.cache.misses == len(cells)
    assert first.cache.hits == 0

    # a brand-new executor (fresh StatePool, fresh cache object) against
    # the same directory re-runs zero cells
    second = CampaignExecutor(jobs=1, cache=tmp_path / "cache")
    served = second.execute(cells)
    assert [outcome.cached for outcome in served] == [True, True]
    assert second.cache.hits == len(cells)
    assert second.cache.misses == 0
    assert [outcome.payload for outcome in served] == [
        outcome.payload for outcome in ran
    ]


def test_cache_rejects_foreign_versions(tmp_path):
    cache = RunCache(tmp_path)
    cell = order_cells()[0]
    key = cache.key(cell, "fingerprint", "digest")
    path = cache.put(key, cell, {"rows": []})
    entry = json.loads(path.read_text())
    entry["version"] = CACHE_VERSION + 1
    path.write_text(json.dumps(entry))
    assert cache.get(key) is None
    assert cache.misses == 1


def test_parallel_execution_matches_sequential():
    cells = order_cells()
    sequential = CampaignExecutor(jobs=1).execute(cells)
    parallel = CampaignExecutor(jobs=2).execute(cells)
    assert [outcome.payload for outcome in parallel] == [
        outcome.payload for outcome in sequential
    ]


def test_results_by_experiment_round_trips():
    outcomes = CampaignExecutor(jobs=1).execute(order_cells())
    results = results_by_experiment(outcomes)
    assert set(results) == {"order/SR", "order/SW"}
    for result in results.values():
        assert all(row.mean_usec > 0 for row in result.rows)


def test_keep_traces_round_trips_through_cache(tmp_path):
    from repro.core.archive import payload_has_traces

    cells = order_cells()
    first = CampaignExecutor(jobs=1, cache=tmp_path / "cache", keep_traces=True)
    ran = first.execute(cells)
    assert all(payload_has_traces(outcome.payload) for outcome in ran)
    rows = ran[0].result().rows
    assert rows[0].traces and len(rows[0].traces[0]) == cells[0].io_count
    # the cache credited the columnar format's pickle saving
    assert first.cache.trace_bytes_saved > 0

    second = CampaignExecutor(jobs=1, cache=tmp_path / "cache", keep_traces=True)
    served = second.execute(cells)
    assert [outcome.cached for outcome in served] == [True, True]
    assert [outcome.payload for outcome in served] == [
        outcome.payload for outcome in ran
    ]


def test_stats_only_entries_do_not_satisfy_trace_campaigns(tmp_path):
    cells = order_cells()
    stats_only = CampaignExecutor(jobs=1, cache=tmp_path / "cache")
    stats_only.execute(cells)

    # the stats-only entries are misses for a trace-keeping campaign ...
    tracing = CampaignExecutor(jobs=1, cache=tmp_path / "cache", keep_traces=True)
    upgraded = tracing.execute(cells)
    assert [outcome.cached for outcome in upgraded] == [False, False]

    # ... and the upgraded (trace-carrying) entries satisfy both kinds
    third = CampaignExecutor(jobs=1, cache=tmp_path / "cache")
    served = third.execute(cells)
    assert [outcome.cached for outcome in served] == [True, True]


def test_attribution_implies_traces_and_attributes_every_cell():
    from repro.core.archive import payload_has_attribution, payload_has_traces

    executor = CampaignExecutor(jobs=1, attribution=True)
    assert executor.keep_traces  # attribution rides on kept traces
    outcomes = executor.execute(order_cells())
    for outcome in outcomes:
        assert payload_has_traces(outcome.payload)
        assert payload_has_attribution(outcome.payload)


def test_attribution_balances_in_executor_payloads():
    import numpy as np

    from repro.flashsim.trace import IOTrace

    outcomes = CampaignExecutor(jobs=1, attribution=True).execute(order_cells())
    checked = 0
    for outcome in outcomes:
        for row in outcome.payload["rows"]:
            for trace_payload in row["traces"]:
                trace = IOTrace.from_payload(trace_payload)
                assert not trace.attribution_balance().any()
                checked += len(trace)
    assert checked > 0


def test_parallel_attribution_matches_sequential():
    cells = order_cells()
    sequential = CampaignExecutor(jobs=1, attribution=True).execute(cells)
    parallel = CampaignExecutor(jobs=2, attribution=True).execute(cells)
    assert [outcome.payload for outcome in parallel] == [
        outcome.payload for outcome in sequential
    ]


def test_attribution_misses_unattributed_cache_entries(tmp_path):
    from repro.core.archive import payload_has_attribution

    cells = order_cells()
    plain = CampaignExecutor(jobs=1, cache=tmp_path / "cache", keep_traces=True)
    plain.execute(cells)

    # the cached entries carry traces but no attribution: an attribution
    # campaign must re-run them rather than serve unattributed payloads
    attributed = CampaignExecutor(
        jobs=1, cache=tmp_path / "cache", attribution=True
    )
    outcomes = attributed.execute(cells)
    assert all(not outcome.cached for outcome in outcomes)
    assert all(payload_has_attribution(o.payload) for o in outcomes)

    # ... and the re-run entries now satisfy attribution cache hits
    second = CampaignExecutor(
        jobs=1, cache=tmp_path / "cache", attribution=True
    )
    served = second.execute(cells)
    assert all(outcome.cached for outcome in served)
    assert all(payload_has_attribution(o.payload) for o in served)


def test_payload_has_attribution_edges():
    from repro.core.archive import payload_has_attribution

    assert not payload_has_attribution({"rows": []})
    assert not payload_has_attribution(
        {"rows": [{"traces": [{"submitted_at": [1.0]}]}]}
    )
    assert payload_has_attribution(
        {"rows": [{"traces": [{"submitted_at": [1.0], "attribution": {}}]}]}
    )
    # one unattributed non-empty trace poisons the whole payload ...
    assert not payload_has_attribution(
        {
            "rows": [
                {"traces": [{"submitted_at": [1.0], "attribution": {}}]},
                {"traces": [{"submitted_at": [1.0]}]},
            ]
        }
    )
    # ... but empty traces cannot carry attribution and are tolerated
    assert payload_has_attribution(
        {
            "rows": [
                {"traces": [{"submitted_at": [1.0], "attribution": {}}]},
                {"traces": [{"submitted_at": []}]},
            ]
        }
    )


def test_cache_tracks_payload_bytes_and_per_profile_stats(tmp_path):
    cells = order_cells()

    first = CampaignExecutor(jobs=1, cache=tmp_path / "cache")
    first.execute(cells)
    cache = first.cache
    assert cache.payload_bytes > 0
    stats = cache.profiles[PROFILE]
    assert stats["misses"] == len(cells)
    assert stats["hits"] == 0
    assert stats["payload_bytes"] == cache.payload_bytes
    # each stored entry records its own payload size on disk
    sizes = [
        json.loads(path.read_text())["payload_bytes"]
        for path in (tmp_path / "cache").glob("*.json")
    ]
    assert len(sizes) == len(cells)
    assert sum(sizes) == cache.payload_bytes

    second = CampaignExecutor(jobs=1, cache=tmp_path / "cache")
    second.execute(cells)
    served = second.cache.profiles[PROFILE]
    assert served["hits"] == len(cells)
    assert served["misses"] == 0
    assert served["bytes_saved"] > 0
    assert second.cache.bytes_saved == served["bytes_saved"]
