"""Two-phase model detection on synthetic and simulated traces."""

import numpy as np
import pytest

from repro.core.patterns import baselines
from repro.core.phases import PhaseProfile, detect_phases, measure_phases
from repro.errors import AnalysisError
from repro.units import KIB, MIB, SEC


def test_uniform_trace_has_no_phases():
    analysis = detect_phases([100.0] * 64)
    assert not analysis.has_startup
    assert not analysis.oscillates
    assert analysis.expensive_fraction == 0.0


def test_clean_startup_then_oscillation():
    # 40 cheap IOs, then oscillation: 7 cheap / 1 expensive
    trace = [400.0] * 40 + ([400.0] * 7 + [27_000.0]) * 20
    analysis = detect_phases(trace)
    assert analysis.has_startup
    assert 35 <= analysis.startup <= 48
    assert analysis.period == 8
    assert analysis.cheap_level_usec < 1000.0
    assert analysis.expensive_level_usec > 10_000.0


def test_oscillation_without_startup():
    # the Kingston DTI shape of Figure 4: period ~= 8, no start-up
    trace = ([1_000.0] * 7 + [100_000.0]) * 32
    analysis = detect_phases(trace)
    assert analysis.startup == 0
    assert analysis.period == 8


def test_tiny_cheap_prefix_not_mistaken_for_startup():
    trace = ([400.0] * 3 + [20_000.0]) * 32
    analysis = detect_phases(trace)
    assert analysis.startup == 0


def test_threshold_is_log_scale_midpoint():
    trace = [100.0] * 50 + [10_000.0] * 50
    analysis = detect_phases(trace)
    assert analysis.threshold_usec == pytest.approx(
        np.sqrt(analysis.cheap_level_usec * analysis.expensive_level_usec)
    )


def test_detect_needs_enough_data():
    with pytest.raises(AnalysisError):
        detect_phases([1.0] * 8)


def test_detect_rejects_nonpositive():
    with pytest.raises(AnalysisError):
        detect_phases([1.0] * 20 + [0.0])


def test_summary_text():
    analysis = detect_phases([400.0] * 40 + ([400.0] * 7 + [27_000.0]) * 20)
    text = analysis.summary()
    assert "startup=" in text and "period=" in text


def test_phase_profile_bounds():
    from repro.core.phases import PhaseAnalysis

    profile = PhaseProfile(
        analyses={
            "SR": PhaseAnalysis(0, None, 1, 1, 1, 0.0),
            "RW": PhaseAnalysis(120, 9, 1, 1, 1, 0.1),
            "SW": PhaseAnalysis(10, 16, 1, 1, 1, 0.1),
        }
    )
    assert profile.startup_bound == 120
    assert profile.period_bound == 16
    assert profile.startup_for("RW") == 120
    assert profile.startup_for("unknown") == 0


def test_measure_phases_on_mtron(enforced_mtron):
    """Section 5.1: Mtron shows an RW start-up phase; reads do not."""
    device = enforced_mtron
    specs = baselines(
        io_size=32 * KIB,
        io_count=512,
        random_target_size=device.capacity,
        sequential_target_size=device.capacity,
    )
    profile = measure_phases(device, specs)
    assert profile.analyses["SR"].startup == 0
    assert not profile.analyses["SR"].oscillates
    assert profile.analyses["RW"].has_startup
    assert profile.analyses["RW"].oscillates
    assert profile.startup_bound >= 50
