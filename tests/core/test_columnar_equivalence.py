"""Columnar/legacy equivalence: the columnar pipeline must be invisible.

The engine's default recording pipeline (``Engine(columnar=True)``)
drives the hosts' program runners, which record scalars straight into
column-backed :class:`~repro.flashsim.trace.IOTrace` storage; the
legacy path (``columnar=False``) builds one :class:`IORequest` and one
:class:`CompletedIO` per IO through the request-feed protocol.  The
columnar path is a pure performance optimisation: for every registered
spec kind it must produce bit-identical run statistics, byte-identical
trace CSV, identical per-row views and identical final device state
(``fingerprint``) on every profile.

Each case builds two fresh devices of the same profile, runs the same
spec through both engines and pins all four equivalences.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import Engine
from repro.core.patterns import (
    LocationKind,
    MixSpec,
    ParallelMixSpec,
    ParallelSpec,
    PatternSpec,
    TimingKind,
    baselines,
)
from repro.flashsim.profiles import build_device
from repro.iotypes import Mode
from repro.units import KIB, MIB

PROFILES = ("memoright", "kingston_dti")

BASELINE_KINDS = ("SR", "RR", "SW", "RW")


def _engine_pair(profile: str) -> tuple[Engine, Engine]:
    """Two engines over identical fresh devices: columnar and legacy."""
    columnar = Engine(build_device(profile, logical_bytes=4 * MIB), columnar=True)
    legacy = Engine(build_device(profile, logical_bytes=4 * MIB), columnar=False)
    return columnar, legacy


def _assert_traces_identical(trace_a, trace_b) -> None:
    assert len(trace_a) == len(trace_b)
    assert trace_a.to_csv() == trace_b.to_csv()
    assert np.array_equal(trace_a.response_times(), trace_b.response_times())
    # row views: CompletedIO and CostAccumulator compare field-by-field
    assert list(trace_a) == list(trace_b)


def _assert_runs_identical(run_a, run_b) -> None:
    assert run_a.stats == run_b.stats
    _assert_traces_identical(run_a.trace, run_b.trace)


@pytest.mark.parametrize("profile", PROFILES)
@pytest.mark.parametrize("kind", BASELINE_KINDS)
def test_baselines_columnar_legacy_identical(profile, kind):
    """SR/RR/SW/RW: same stats, CSV bytes, rows and device state."""
    spec = baselines(io_size=16 * KIB, io_count=64)[kind]
    columnar, legacy = _engine_pair(profile)
    _assert_runs_identical(columnar.run(spec), legacy.run(spec))
    assert columnar.device.fingerprint() == legacy.device.fingerprint()


@pytest.mark.parametrize("profile", PROFILES)
@pytest.mark.parametrize("timing", (TimingKind.PAUSE, TimingKind.BURST))
def test_timed_patterns_columnar_legacy_identical(profile, timing):
    """Pause/burst gaps feed the same submit-time recurrence."""
    spec = PatternSpec(
        mode=Mode.WRITE,
        location=LocationKind.RANDOM,
        io_size=16 * KIB,
        io_count=48,
        target_size=2 * MIB,
        timing=timing,
        pause_usec=750.0,
        burst=4 if timing is TimingKind.BURST else 0,
    )
    columnar, legacy = _engine_pair(profile)
    _assert_runs_identical(columnar.run(spec), legacy.run(spec))
    assert columnar.device.fingerprint() == legacy.device.fingerprint()


@pytest.mark.parametrize("profile", PROFILES)
def test_mix_columnar_legacy_identical(profile):
    """Mix runs: overall and per-component summaries all agree."""
    primary = PatternSpec(
        mode=Mode.READ,
        location=LocationKind.RANDOM,
        io_size=16 * KIB,
        io_count=32,
        target_size=2 * MIB,
    )
    secondary = PatternSpec(
        mode=Mode.WRITE,
        location=LocationKind.SEQUENTIAL,
        io_size=16 * KIB,
        io_count=32,
        target_offset=2 * MIB,
        target_size=512 * KIB,
    )
    spec = MixSpec(
        primary=primary, secondary=secondary, ratio=3, io_count=48, io_ignore=8
    )
    columnar, legacy = _engine_pair(profile)
    run_a, run_b = columnar.run(spec), legacy.run(spec)
    _assert_runs_identical(run_a, run_b)
    assert run_a.primary_stats == run_b.primary_stats
    assert run_a.secondary_stats == run_b.secondary_stats
    assert columnar.device.fingerprint() == legacy.device.fingerprint()


@pytest.mark.parametrize("profile", PROFILES)
def test_parallel_columnar_legacy_identical(profile):
    """Parallel runs: merged stats and every per-process trace agree."""
    base = PatternSpec(
        mode=Mode.WRITE,
        location=LocationKind.SEQUENTIAL,
        io_size=16 * KIB,
        io_count=48,
        target_size=48 * 16 * KIB,
    )
    spec = ParallelSpec(base=base, parallel_degree=3)
    columnar, legacy = _engine_pair(profile)
    run_a, run_b = columnar.run(spec), legacy.run(spec)
    assert run_a.stats == run_b.stats
    assert len(run_a.runs) == len(run_b.runs)
    for sub_a, sub_b in zip(run_a.runs, run_b.runs):
        _assert_runs_identical(sub_a, sub_b)
    assert columnar.device.fingerprint() == legacy.device.fingerprint()


@pytest.mark.parametrize("profile", PROFILES)
def test_parallel_mix_columnar_legacy_identical(profile):
    """Heterogeneous parallel runs interleave identically."""
    reads = PatternSpec(
        mode=Mode.READ,
        location=LocationKind.SEQUENTIAL,
        io_size=16 * KIB,
        io_count=24,
        target_size=512 * KIB,
    )
    writes = PatternSpec(
        mode=Mode.WRITE,
        location=LocationKind.RANDOM,
        io_size=16 * KIB,
        io_count=24,
        target_offset=2 * MIB,
        target_size=1 * MIB,
    )
    spec = ParallelMixSpec((reads, writes))
    columnar, legacy = _engine_pair(profile)
    run_a, run_b = columnar.run(spec), legacy.run(spec)
    assert run_a.stats == run_b.stats
    for sub_a, sub_b in zip(run_a.runs, run_b.runs):
        _assert_runs_identical(sub_a, sub_b)
    assert columnar.device.fingerprint() == legacy.device.fingerprint()


def test_restat_matches_on_columnar_trace():
    """Phase re-analysis cuts the cached response array identically."""
    spec = baselines(io_size=16 * KIB, io_count=64)["RW"]
    columnar, legacy = _engine_pair("memoright")
    run_a, run_b = columnar.run(spec), legacy.run(spec)
    for cut in (0, 8, 32, 63):
        assert run_a.restat(cut) == run_b.restat(cut)
