"""Inter-run interference probe (Section 4.3 / Figure 5)."""

from repro.core.interference import determine_pause
from repro.units import KIB, SEC

from tests.conftest import make_device


def test_device_without_background_shows_no_lingering(enforced_dti):
    result = determine_pause(
        enforced_dti, io_size=32 * KIB, reads_before=64,
        write_count=32, reads_after=256,
    )
    # at most a stray first read (map reload), no lingering tail
    assert result.affected_reads <= 1
    assert result.lingering_usec < 10_000.0
    # the paper still uses a conservative 1 s pause for such devices
    assert result.recommended_pause_usec == 1.0 * SEC


def test_background_device_shows_lingering_effect(enforced_mtron):
    result = determine_pause(
        enforced_mtron, io_size=32 * KIB, reads_before=128,
        write_count=256, reads_after=4096,
    )
    assert result.interferes
    assert result.affected_reads > 50
    assert result.lingering_usec > 0
    # the recommendation overestimates the observed lingering
    assert result.recommended_pause_usec >= 2.0 * result.lingering_usec
    # and the effect does end: not every read was affected
    assert result.affected_reads < 4096


def test_probe_returns_all_three_traces():
    device = make_device(bg=True)
    result = determine_pause(
        device, io_size=16 * KIB, reads_before=32, write_count=32, reads_after=64
    )
    assert len(result.reads_before) == 32
    assert len(result.writes) == 32
    assert len(result.reads_after) == 64
    assert result.baseline_read_usec > 0


def test_summary_text(enforced_dti):
    result = determine_pause(
        enforced_dti, io_size=32 * KIB, reads_before=32,
        write_count=16, reads_after=64,
    )
    assert "recommended pause" in result.summary()
