"""Run statistics: summaries, warm-up exclusion, convergence."""

import numpy as np
import pytest

from repro.core.stats import (
    converged,
    relative_difference,
    running_average,
    summarize,
)
from repro.errors import AnalysisError


def test_summarize_basic():
    stats = summarize([100.0, 200.0, 300.0])
    assert stats.count == 3
    assert stats.min_usec == 100.0
    assert stats.max_usec == 300.0
    assert stats.mean_usec == pytest.approx(200.0)
    assert stats.median_usec == pytest.approx(200.0)
    assert stats.total_usec == pytest.approx(600.0)


def test_summarize_excludes_warmup():
    # cheap start-up followed by the real running phase (Section 4.2)
    responses = [10.0] * 5 + [1000.0] * 10
    naive = summarize(responses)
    correct = summarize(responses, io_ignore=5)
    assert naive.mean_usec < correct.mean_usec
    assert correct.mean_usec == pytest.approx(1000.0)
    assert correct.ignored == 5
    assert correct.count == 10


def test_summarize_empty_rejected():
    with pytest.raises(AnalysisError):
        summarize([])


def test_summarize_ignore_everything_rejected():
    with pytest.raises(AnalysisError):
        summarize([1.0, 2.0], io_ignore=2)


def test_mean_msec_conversion():
    assert summarize([5000.0]).mean_msec == pytest.approx(5.0)


def test_running_average_includes_vs_excludes():
    # Figure 3's two overlays
    responses = [10.0] * 4 + [100.0] * 4
    incl = running_average(responses)
    excl = running_average(responses, skip=4)
    assert incl[-1] == pytest.approx(55.0)
    assert np.isnan(excl[:4]).all()
    assert excl[-1] == pytest.approx(100.0)
    # excluding the start-up converges to the true level faster
    assert abs(excl[-1] - 100.0) < abs(incl[-1] - 100.0)


def test_running_average_skip_too_big():
    with pytest.raises(AnalysisError):
        running_average([1.0, 2.0], skip=2)


def test_converged_on_stable_series():
    assert converged([100.0] * 64, io_ignore=0)


def test_not_converged_on_trend():
    rising = list(np.linspace(10.0, 1000.0, 64))
    assert not converged(rising, io_ignore=0)


def test_converged_needs_enough_samples():
    assert not converged([1.0] * 4, io_ignore=0)


def test_relative_difference():
    assert relative_difference(100.0, 100.0) == 0.0
    assert relative_difference(100.0, 95.0) == pytest.approx(0.05)
    assert relative_difference(0.0, 0.0) == 0.0


def test_summary_text():
    text = summarize([1000.0, 2000.0], io_ignore=0).summary()
    assert "mean=1.500ms" in text
    assert "n=2" in text
