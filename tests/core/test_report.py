"""Report rendering and export."""

import json

from repro.core.experiment import Experiment, run_experiment
from repro.core.patterns import LocationKind, PatternSpec
from repro.core.report import (
    experiment_to_csv,
    experiment_to_json,
    format_table,
    render_experiment,
    render_series,
)
from repro.iotypes import Mode
from repro.units import KIB

from tests.conftest import make_device


def sample_result():
    device = make_device()

    def build(size):
        return PatternSpec(
            mode=Mode.WRITE, location=LocationKind.SEQUENTIAL,
            io_size=size, io_count=4,
        )

    experiment = Experiment("granularity/SW", "IOSize", (4 * KIB, 16 * KIB), build)
    return run_experiment(device, experiment, pause_usec=1000.0)


def test_format_table_alignment():
    text = format_table(("a", "bbbb"), [("x", 1), ("yyyy", 22)])
    lines = text.splitlines()
    assert len(lines) == 4
    assert lines[1].startswith("-")
    # the separator row spans both columns
    assert lines[1] == "----  ----"
    assert "yyyy" in lines[3]


def test_render_experiment_contains_rows():
    text = render_experiment(sample_result())
    assert "granularity/SW" in text
    assert "IOSize" in text
    assert "mean (ms)" in text
    assert str(4 * KIB) in text


def test_render_series_shared_axis():
    text = render_series(
        "Figure 6",
        "IOSize",
        {
            "SR": ([1, 2, 3], [0.1, 0.2, 0.3]),
            "SW": ([1, 2, 3], [0.2, 0.4, 0.6]),
        },
    )
    assert "Figure 6" in text
    assert "SR" in text and "SW" in text
    assert "0.600" in text


def test_render_series_empty():
    assert render_series("t", "x", {}) == "t"


def test_csv_export():
    text = experiment_to_csv(sample_result())
    lines = text.strip().splitlines()
    assert lines[0] == "value,label,mean_usec,max_usec,repetitions"
    assert len(lines) == 3
    assert lines[1].split(",")[1] == "SW"


def test_json_export_round_trips():
    payload = json.loads(experiment_to_json(sample_result()))
    assert payload["experiment"] == "granularity/SW"
    assert payload["parameter"] == "IOSize"
    assert len(payload["rows"]) == 2
    first = payload["rows"][0]
    assert first["repetitions"][0]["count"] == 4
    assert first["mean_usec"] > 0


def test_render_mix_run_marks_component_without_stats():
    from repro.core.patterns import MixSpec
    from repro.core.report import render_mix_run
    from repro.core.runner import execute_mix

    device = make_device()
    primary = PatternSpec(
        mode=Mode.READ, location=LocationKind.SEQUENTIAL, io_size=4 * KIB,
        io_count=16,
    )
    secondary = PatternSpec(
        mode=Mode.WRITE, location=LocationKind.SEQUENTIAL, io_size=4 * KIB,
        io_count=16, target_offset=512 * KIB,
    )
    mix = MixSpec(
        primary=primary, secondary=secondary, ratio=7, io_count=15, io_ignore=8
    )
    run = execute_mix(device, mix)
    text = render_mix_run(run)
    assert "overall" in text and "primary" in text and "secondary" in text
    assert "n/a" in text
    assert "io_ignore" in text  # the footnote explains the n/a rows


def test_render_mix_run_full_components_have_no_footnote():
    from repro.core.patterns import MixSpec
    from repro.core.report import render_mix_run
    from repro.core.runner import execute_mix

    device = make_device()
    primary = PatternSpec(
        mode=Mode.READ, location=LocationKind.SEQUENTIAL, io_size=4 * KIB,
        io_count=16,
    )
    secondary = PatternSpec(
        mode=Mode.WRITE, location=LocationKind.SEQUENTIAL, io_size=4 * KIB,
        io_count=16, target_offset=512 * KIB,
    )
    run = execute_mix(
        device, MixSpec(primary=primary, secondary=secondary, ratio=3, io_count=32)
    )
    text = render_mix_run(run)
    assert "n/a" not in text
    assert "24" in text and "8" in text  # per-component IO counts
