"""Generators: feedback-driven scheduling, determinism, mix interleave."""

from repro.core.generator import MixGenerator, PatternGenerator
from repro.core.patterns import (
    LocationKind,
    MixSpec,
    PatternSpec,
    TimingKind,
)
from repro.flashsim.timing import CostAccumulator
from repro.iotypes import CompletedIO, IORequest, Mode
from repro.units import KIB, MIB


def completed(request, finished_at):
    return CompletedIO(
        request=request,
        submitted_at=request.scheduled_at,
        started_at=request.scheduled_at,
        completed_at=finished_at,
        cost=CostAccumulator(),
    )


def drive(generator, service_usec=100.0):
    """Run a generator to exhaustion with a fixed simulated service time."""
    out = []
    previous = None
    while True:
        request = generator(previous)
        if request is None:
            return out
        out.append(request)
        previous = completed(request, request.scheduled_at + service_usec)


def test_generator_produces_io_count_requests():
    spec = PatternSpec(
        mode=Mode.WRITE, location=LocationKind.SEQUENTIAL, io_count=7, io_size=32 * KIB
    )
    requests = drive(PatternGenerator(spec))
    assert len(requests) == 7
    assert [r.index for r in requests] == list(range(7))


def test_consecutive_schedules_at_previous_completion():
    spec = PatternSpec(
        mode=Mode.WRITE, location=LocationKind.SEQUENTIAL, io_count=4, io_size=32 * KIB
    )
    requests = drive(PatternGenerator(spec, start_at=50.0), service_usec=100.0)
    assert [r.scheduled_at for r in requests] == [50.0, 150.0, 250.0, 350.0]


def test_pause_adds_gap():
    spec = PatternSpec(
        mode=Mode.WRITE,
        location=LocationKind.SEQUENTIAL,
        io_count=3,
        io_size=32 * KIB,
        timing=TimingKind.PAUSE,
        pause_usec=40.0,
    )
    requests = drive(PatternGenerator(spec), service_usec=100.0)
    assert [r.scheduled_at for r in requests] == [0.0, 140.0, 280.0]


def test_burst_gaps_between_groups():
    spec = PatternSpec(
        mode=Mode.WRITE,
        location=LocationKind.SEQUENTIAL,
        io_count=5,
        io_size=32 * KIB,
        timing=TimingKind.BURST,
        pause_usec=1000.0,
        burst=2,
    )
    requests = drive(PatternGenerator(spec), service_usec=100.0)
    gaps = [
        later.scheduled_at - (earlier.scheduled_at + 100.0)
        for earlier, later in zip(requests, requests[1:])
    ]
    assert gaps == [0.0, 1000.0, 0.0, 1000.0]


def test_random_location_deterministic_per_seed():
    spec = PatternSpec(
        mode=Mode.WRITE,
        location=LocationKind.RANDOM,
        io_count=20,
        io_size=32 * KIB,
        target_size=2 * MIB,
        seed=7,
    )
    first = [r.lba for r in drive(PatternGenerator(spec))]
    second = [r.lba for r in drive(PatternGenerator(spec))]
    assert first == second
    different = [r.lba for r in drive(PatternGenerator(spec.with_(seed=8)))]
    assert first != different


def test_random_lbas_inside_target_and_aligned():
    spec = PatternSpec(
        mode=Mode.WRITE,
        location=LocationKind.RANDOM,
        io_count=50,
        io_size=32 * KIB,
        target_size=2 * MIB,
    )
    for request in drive(PatternGenerator(spec)):
        assert 0 <= request.lba < 2 * MIB
        assert request.lba % (32 * KIB) == 0


def test_mix_generator_interleaves_by_ratio():
    primary = PatternSpec(
        mode=Mode.READ, location=LocationKind.SEQUENTIAL, io_count=32, io_size=32 * KIB
    )
    secondary = PatternSpec(
        mode=Mode.WRITE,
        location=LocationKind.SEQUENTIAL,
        io_count=32,
        io_size=32 * KIB,
        target_offset=4 * MIB,
    )
    spec = MixSpec(primary=primary, secondary=secondary, ratio=3, io_count=12)
    generator = MixGenerator(spec)
    requests = drive(generator)
    assert len(requests) == 12
    modes = [r.mode for r in requests]
    assert modes.count(Mode.WRITE) == 3  # one per group of four
    assert generator.component_log == [0, 0, 0, 1] * 3


def test_mix_components_advance_independently():
    primary = PatternSpec(
        mode=Mode.READ, location=LocationKind.SEQUENTIAL, io_count=32, io_size=32 * KIB
    )
    secondary = PatternSpec(
        mode=Mode.WRITE,
        location=LocationKind.SEQUENTIAL,
        io_count=32,
        io_size=32 * KIB,
        target_offset=4 * MIB,
    )
    spec = MixSpec(primary=primary, secondary=secondary, ratio=1, io_count=8)
    requests = drive(MixGenerator(spec))
    reads = [r.lba for r in requests if r.mode is Mode.READ]
    writes = [r.lba for r in requests if r.mode is Mode.WRITE]
    assert reads == [0, 32 * KIB, 64 * KIB, 96 * KIB]
    assert writes == [4 * MIB + i * 32 * KIB for i in range(4)]


def test_issued_counter():
    spec = PatternSpec(
        mode=Mode.WRITE, location=LocationKind.SEQUENTIAL, io_count=3, io_size=32 * KIB
    )
    generator = PatternGenerator(spec)
    assert generator.issued == 0
    drive(generator)
    assert generator.issued == 3
