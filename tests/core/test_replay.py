"""Trace replay across devices."""

import pytest

from repro.core.patterns import LocationKind, PatternSpec
from repro.core.replay import (
    ReplayMode,
    remap_rows,
    replay,
    replay_csv,
)
from repro.core.runner import execute
from repro.errors import AnalysisError
from repro.flashsim.timing import TimingSpec
from repro.flashsim.trace import IOTrace
from repro.iotypes import Mode
from repro.units import KIB, MIB

from tests.conftest import make_device


def capture_trace(device=None, io_count=24, timing=None):
    device = device or make_device(timing=timing)
    spec = PatternSpec(
        mode=Mode.WRITE,
        location=LocationKind.RANDOM,
        io_size=16 * KIB,
        io_count=io_count,
        target_size=512 * KIB,
        seed=4,
    )
    run = execute(device, spec)
    return IOTrace.parse_csv(run.trace.to_csv())


def test_closed_loop_replay_reproduces_the_same_device():
    rows = capture_trace()
    target = make_device()
    result = replay(target, rows, mode=ReplayMode.CLOSED_LOOP)
    assert len(result.trace) == len(rows)
    # same device class, same workload: same-order spans
    assert result.speedup == pytest.approx(1.0, rel=0.3)
    lbas = [completed.request.lba for completed in result.trace]
    assert lbas == [row.lba for row in rows]


def test_replay_onto_a_faster_device_speeds_up():
    slow_rows = capture_trace(timing=TimingSpec(transfer_per_kib=200.0))
    fast_target = make_device(timing=TimingSpec(transfer_per_kib=1.0))
    result = replay(fast_target, slow_rows)
    assert result.speedup > 2.0


def test_timed_replay_preserves_think_time():
    rows = capture_trace()
    # stretch the recorded arrival times far apart
    stretched = [
        type(row)(
            **{
                **row.__dict__,
                "submitted_at": index * 50_000.0,
                "completed_at": index * 50_000.0 + row.response_usec,
            }
        )
        for index, row in enumerate(rows)
    ]
    target = make_device()
    timed = replay(target, stretched, mode=ReplayMode.TIMED)
    closed = replay(make_device(), stretched, mode=ReplayMode.CLOSED_LOOP)
    assert timed.replay_span_usec > 5 * closed.replay_span_usec


def test_replay_rejects_oversized_extents():
    rows = capture_trace()
    tiny = make_device()
    oversized = remap_rows(rows, tiny.capacity, 16 * KIB)
    # remapped rows fit; the raw rows against a fake small capacity don't
    assert replay(tiny, oversized).stats.count == len(rows)
    from repro.flashsim.geometry import Geometry

    small = make_device(
        geometry=Geometry(
            page_size=2 * KIB, pages_per_block=8, logical_bytes=256 * KIB,
            physical_blocks=16 + 24,
        )
    )
    with pytest.raises(AnalysisError):
        replay(small, rows)


def test_remap_folds_lbas():
    rows = capture_trace()
    remapped = remap_rows(rows, 256 * KIB, 16 * KIB)
    for row in remapped:
        assert row.lba + row.size <= 256 * KIB
    with pytest.raises(AnalysisError):
        remap_rows(rows, 1 * KIB, 16 * KIB)


def test_replay_empty_rejected():
    with pytest.raises(AnalysisError):
        replay(make_device(), [])


def test_replay_csv_round_trip(tmp_path):
    device = make_device()
    rows = capture_trace(device)
    path = tmp_path / "trace.csv"
    trace = IOTrace()
    # re-run to get CompletedIO objects to serialise
    spec = PatternSpec(
        mode=Mode.WRITE,
        location=LocationKind.RANDOM,
        io_size=16 * KIB,
        io_count=12,
        target_size=512 * KIB,
        seed=9,
    )
    run = execute(device, spec)
    run.trace.to_csv(path)
    result = replay_csv(make_device(), path)
    assert result.stats.count == 12


def test_replay_io_ignore():
    rows = capture_trace()
    result = replay(make_device(), rows, io_ignore=8)
    assert result.stats.ignored == 8
    assert result.stats.count == len(rows) - 8
