"""Async/sync equivalence: queued submission at depth 1 is invisible.

:class:`~repro.flashsim.host.AsyncHost` replaces the synchronous block
with NCQ-style queued submission; at ``queue_depth=1`` it must be a pure
refactor of :class:`~repro.flashsim.host.SyncHost` — bit-identical run
statistics, byte-identical trace CSV, identical per-row views and an
identical final device state (``fingerprint``) across every FTL family
and profile.  Each case drives the same program through both hosts on
identical fresh devices and pins all four equivalences, mirroring the
columnar/legacy suite in ``test_columnar_equivalence.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import Engine, rest_device
from repro.core.generator import MixGenerator, PatternGenerator
from repro.core.patterns import (
    LocationKind,
    MixSpec,
    PatternSpec,
    TimingKind,
    baselines,
)
from repro.core.stats import summarize
from repro.flashsim.host import AsyncHost, SyncHost
from repro.flashsim.profiles import build_device
from repro.iotypes import Mode
from repro.units import KIB, MIB

from ..conftest import make_device

PROFILES = ("memoright", "kingston_dti")
FTL_KINDS = ("pagemap", "hybrid", "blockmap", "fast")
BASELINE_KINDS = ("SR", "RR", "SW", "RW")


def _small_baselines() -> dict[str, PatternSpec]:
    """Baselines sized for the 1 MiB conftest geometry."""
    return baselines(
        io_size=8 * KIB,
        io_count=64,
        random_target_size=1 * MIB,
        sequential_target_size=512 * KIB,
    )


def _assert_traces_identical(trace_a, trace_b) -> None:
    assert len(trace_a) == len(trace_b)
    assert trace_a.to_csv() == trace_b.to_csv()
    assert np.array_equal(trace_a.response_times(), trace_b.response_times())
    assert list(trace_a) == list(trace_b)


def _run_both(spec, sync_device, async_device) -> None:
    """One spec through SyncHost and AsyncHost(depth=1); pin everything."""
    sync_trace = SyncHost(sync_device).run_program(
        PatternGenerator(spec).program()
    )
    async_trace = AsyncHost(async_device).run_program(
        PatternGenerator(spec).program(), queue_depth=1
    )
    assert async_device.in_flight == 0
    _assert_traces_identical(sync_trace, async_trace)
    assert summarize(sync_trace.response_times(), spec.io_ignore) == summarize(
        async_trace.response_times(), spec.io_ignore
    )
    assert sync_device.fingerprint() == async_device.fingerprint()
    assert sync_device.stats == async_device.stats


@pytest.mark.parametrize("ftl_kind", FTL_KINDS)
@pytest.mark.parametrize("kind", BASELINE_KINDS)
def test_ftl_families_async_depth1_identical(ftl_kind, kind):
    """SR/RR/SW/RW on every FTL family: depth-1 async == sync."""
    spec = _small_baselines()[kind]
    _run_both(spec, make_device(ftl_kind=ftl_kind), make_device(ftl_kind=ftl_kind))


@pytest.mark.parametrize("profile", PROFILES)
@pytest.mark.parametrize("kind", BASELINE_KINDS)
def test_profiles_async_depth1_identical(profile, kind):
    """Baselines on calibrated profiles: depth-1 async == sync."""
    spec = baselines(io_size=16 * KIB, io_count=64)[kind]
    _run_both(
        spec,
        build_device(profile, logical_bytes=4 * MIB),
        build_device(profile, logical_bytes=4 * MIB),
    )


@pytest.mark.parametrize("timing", (TimingKind.PAUSE, TimingKind.BURST))
def test_paced_patterns_async_depth1_identical(timing):
    """Pause/burst gaps feed the same submit-time recurrence at depth 1."""
    spec = PatternSpec(
        mode=Mode.WRITE,
        location=LocationKind.RANDOM,
        io_size=16 * KIB,
        io_count=48,
        target_size=2 * MIB,
        timing=timing,
        pause_usec=750.0,
        burst=4 if timing is TimingKind.BURST else 0,
    )
    _run_both(
        spec,
        build_device("memoright", logical_bytes=4 * MIB),
        build_device("memoright", logical_bytes=4 * MIB),
    )


def test_mix_async_depth1_identical():
    """A mix program through the queued host at depth 1 == sync."""
    primary = PatternSpec(
        mode=Mode.READ,
        location=LocationKind.RANDOM,
        io_size=16 * KIB,
        io_count=32,
        target_size=2 * MIB,
    )
    secondary = PatternSpec(
        mode=Mode.WRITE,
        location=LocationKind.SEQUENTIAL,
        io_size=16 * KIB,
        io_count=32,
        target_offset=2 * MIB,
        target_size=512 * KIB,
    )
    spec = MixSpec(primary=primary, secondary=secondary, ratio=3, io_count=48)
    sync_device = build_device("memoright", logical_bytes=4 * MIB)
    async_device = build_device("memoright", logical_bytes=4 * MIB)
    sync_trace = SyncHost(sync_device).run_program(
        MixGenerator(spec).program()
    )
    async_trace = AsyncHost(async_device).run_program(
        MixGenerator(spec).program(), queue_depth=1
    )
    _assert_traces_identical(sync_trace, async_trace)
    assert sync_device.fingerprint() == async_device.fingerprint()


def test_engine_depth1_spec_is_the_sync_path():
    """A ``queue_depth=1`` spec through the engine matches a manual
    sync run — the engine only reaches for the queued host past 1."""
    spec = baselines(io_size=16 * KIB, io_count=64)["RR"]
    assert spec.queue_depth == 1
    engine_device = build_device("memoright", logical_bytes=4 * MIB)
    manual_device = build_device("memoright", logical_bytes=4 * MIB)
    run = Engine(engine_device).run(spec)
    manual_trace = SyncHost(manual_device).run_program(
        PatternGenerator(spec).program()
    )
    _assert_traces_identical(run.trace, manual_trace)
    assert engine_device.fingerprint() == manual_device.fingerprint()


def test_engine_queue_depth_sweep_converges_at_one():
    """The engine's qd>1 path produces the same *work* (stats count,
    device wear) and returns a drained device; at qd=1 it is the sync
    reference exactly."""
    base = baselines(io_size=16 * KIB, io_count=64)["RR"]
    reference = None
    for depth in (1, 4, 16):
        device = build_device("memoright", logical_bytes=4 * MIB)
        run = Engine(device).run(base.with_(queue_depth=depth))
        assert device.in_flight == 0
        assert run.stats.count == base.io_count - base.io_ignore
        rest_device(device, 1000.0)
        device.check_invariants()
        if depth == 1:
            reference = run
        else:
            # queued random reads overlap across channels: the run must
            # not be slower than the synchronous reference
            assert run.stats.mean_usec <= reference.stats.mean_usec
