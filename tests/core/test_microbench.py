"""The nine micro-benchmark builders: ranges, spec shapes, bounds."""

import pytest

from repro.core.microbench import (
    BASELINE_LABELS,
    MICROBENCHMARKS,
    MIX_COMBOS,
    BenchContext,
    build_microbenchmark,
    table1_values,
)
from repro.core.patterns import (
    LocationKind,
    MixSpec,
    ParallelSpec,
    PatternSpec,
    TimingKind,
)
from repro.errors import PatternError
from repro.units import KIB, MIB, MSEC

CTX = BenchContext(capacity=32 * MIB, io_size=32 * KIB, io_count=64)


def test_registry_has_nine_plus_queue_depth():
    assert len(MICROBENCHMARKS) == 10
    assert set(MICROBENCHMARKS) == {
        "granularity",
        "alignment",
        "locality",
        "partitioning",
        "order",
        "parallelism",
        "mix",
        "pause",
        "bursts",
        "queue_depth",
    }


def test_unknown_microbenchmark_rejected():
    with pytest.raises(PatternError):
        build_microbenchmark("seek", CTX)


@pytest.mark.parametrize("name", sorted(MICROBENCHMARKS))
def test_every_builder_produces_wellformed_specs(name):
    bench = build_microbenchmark(name, CTX)
    assert bench.experiments
    for experiment in bench.experiments:
        assert experiment.values
        for value in experiment.values:
            spec = experiment.spec_for(value)
            if isinstance(spec, PatternSpec):
                assert spec.fits(CTX.capacity)
            elif isinstance(spec, ParallelSpec):
                for process_spec in spec.process_specs():
                    assert process_spec.fits(CTX.capacity)
            else:
                assert isinstance(spec, MixSpec)
                assert spec.primary.fits(CTX.capacity)
                assert spec.secondary.fits(CTX.capacity)


def test_granularity_varies_io_size():
    bench = build_microbenchmark("granularity", CTX)
    assert len(bench.experiments) == 4
    experiment = bench.experiment("RW")
    sizes = {experiment.spec_for(v).io_size for v in experiment.values}
    assert sizes == set(experiment.values)
    assert 512 in sizes and 32 * KIB in sizes


def test_granularity_includes_non_powers_of_two():
    values = table1_values("granularity")
    assert 3 * KIB in values and 24 * KIB in values


def test_alignment_varies_shift_up_to_io_size():
    bench = build_microbenchmark("alignment", CTX)
    experiment = bench.experiment("SW")
    shifts = [experiment.spec_for(v).io_shift for v in experiment.values]
    assert shifts[0] == 0
    assert max(shifts) == CTX.io_size
    assert all(s % 512 == 0 for s in shifts)


def test_locality_random_covers_full_table_range_capped():
    bench = build_microbenchmark("locality", CTX)
    rw = bench.experiment("RW")
    targets = [rw.spec_for(v).target_size for v in rw.values]
    assert targets[0] == CTX.io_size  # down to a single IO slot
    assert max(targets) <= CTX.capacity
    sr = bench.experiment("SR")
    assert max(sr.values) <= 256  # Table 1 sequential range 2^0..2^8


def test_partitioning_is_sequential_only():
    bench = build_microbenchmark("partitioning", CTX)
    labels = {e.name.split("/")[1] for e in bench.experiments}
    assert labels == {"SR", "SW"}
    spec = bench.experiment("SW").spec_for(4)
    assert spec.location is LocationKind.PARTITIONED
    assert spec.partitions == 4
    assert spec.target_size % 4 == 0


def test_order_includes_reverse_and_in_place():
    bench = build_microbenchmark("order", CTX)
    experiment = bench.experiment("SW")
    assert -1 in experiment.values and 0 in experiment.values
    in_place = experiment.spec_for(0)
    assert in_place.incr == 0
    assert in_place.location is LocationKind.ORDERED


def test_parallelism_replicates_baselines():
    bench = build_microbenchmark("parallelism", CTX)
    experiment = bench.experiment("SW")
    assert list(experiment.values) == [1, 2, 4, 8, 16]
    spec = experiment.spec_for(4)
    assert isinstance(spec, ParallelSpec)
    assert spec.parallel_degree == 4


def test_mix_covers_six_combinations():
    bench = build_microbenchmark("mix", CTX)
    assert len(bench.experiments) == len(MIX_COMBOS) == 6
    spec = bench.experiments[0].spec_for(4)
    assert isinstance(spec, MixSpec)
    assert spec.ratio == 4
    # components must be disjoint (validated by MixSpec itself)


def test_pause_values_follow_table1():
    values = table1_values("pause")
    assert values[0] == pytest.approx(0.1 * MSEC)
    assert values[-1] == pytest.approx(25.6 * MSEC)
    bench = build_microbenchmark("pause", CTX)
    spec = bench.experiment("RW").spec_for(values[0])
    assert spec.timing is TimingKind.PAUSE


def test_bursts_fixed_pause_varying_group():
    bench = build_microbenchmark("bursts", CTX)
    spec = bench.experiment("SW").spec_for(20)
    assert spec.timing is TimingKind.BURST
    assert spec.burst == 20
    assert spec.pause_usec == pytest.approx(100.0 * MSEC)


def test_queue_depth_varies_spec_depth():
    values = table1_values("queue_depth")
    assert values == (1, 2, 4, 8, 16, 32)
    bench = build_microbenchmark("queue_depth", CTX)
    assert len(bench.experiments) == 4
    experiment = bench.experiment("RR")
    assert experiment.parameter == "QueueDepth"
    depths = [experiment.spec_for(v).queue_depth for v in experiment.values]
    assert depths == list(values)
    # depth 1 is the synchronous reference pattern, unchanged otherwise
    assert experiment.spec_for(1) == CTX.baselines()["RR"]


def test_context_io_ignore_propagates():
    ctx = BenchContext(capacity=32 * MIB, io_count=64, io_ignore=16)
    bench = build_microbenchmark("granularity", ctx)
    spec = bench.experiment("SW").spec_for(32 * KIB)
    assert spec.io_ignore == 16


def test_baseline_labels_constant():
    assert BASELINE_LABELS == ("SR", "RR", "SW", "RW")
