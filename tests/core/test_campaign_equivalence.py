"""Equivalence suite: the throughput dispatch changes nothing but time.

DESIGN.md §14's contract — warm-worker scheduling, shared-memory
snapshot restore and pipelined worker-side enforcement must leave
campaign outcomes **bit-identical** to the sequential executor: same
payloads, same state fingerprints, same per-IO trace columns.  These
tests pin that contract at ``--jobs 4`` against ``jobs=1`` and against
the legacy parallel dispatch, with the scheduling machinery verifiably
active (warm hits observed, zero snapshot bytes through the pipe).
"""

import pytest

from repro.core.executor import CampaignExecutor, plan_cells
from repro.units import KIB, MIB, SEC

PROFILES = ("kingston_dti", "memoright")
CAPACITY = 4 * MIB


def campaign_cells(io_count: int = 8):
    """A small two-profile campaign: enough cells per group for warm
    reuse, two groups for pipelined enforcement."""
    cells = []
    for profile in PROFILES:
        cells.extend(
            plan_cells(
                profile,
                CAPACITY,
                ["granularity"],
                io_size=32 * KIB,
                io_count=io_count,
                pause_usec=0.1 * SEC,
            )
        )
    return cells


def by_experiment(outcomes):
    return {(o.cell.profile, o.cell.experiment): o for o in outcomes}


def group_fingerprints(executor):
    """The executor's prepared base-state fingerprints per group."""
    return {
        group: prep.fingerprint for group, prep in executor._prepared.items()
    }


def test_jobs4_warm_dispatch_bit_identical_to_sequential():
    cells = campaign_cells()

    sequential = CampaignExecutor(jobs=1)
    base = sequential.execute(cells)

    warm = CampaignExecutor(jobs=4)
    try:
        fast = warm.execute(cells)
        # the machinery this suite guards must actually be engaged:
        # resident devices hit, enforcement-fresh restores skipped, and
        # zero snapshot bytes shipped through the pool pipe
        assert warm.sched.warm_hits > 0
        assert warm.sched.restores_skipped > 0
        assert warm.sched.segments_published == len(PROFILES)
        assert warm.sched.bytes_shipped == 0
        assert warm.sched.bytes_saved > 0
        # worker-side enforcement produced the same base states the
        # parent side did (fingerprints key the run cache, so this is
        # what makes cache entries portable across dispatch modes);
        # captured before close() forgets segment-only groups
        assert group_fingerprints(warm) == group_fingerprints(sequential)
    finally:
        warm.close()

    assert [o.cell for o in fast] == [o.cell for o in base]
    for key, outcome in by_experiment(base).items():
        assert by_experiment(fast)[key].payload == outcome.payload


def test_jobs4_warm_dispatch_matches_legacy_dispatch():
    cells = campaign_cells()

    legacy = CampaignExecutor(
        jobs=4, share_snapshots=False, warm_workers=False, pipeline_prepare=False
    )
    warm = CampaignExecutor(jobs=4)
    try:
        old = legacy.execute(cells)
        new = warm.execute(cells)
    finally:
        legacy.close()
        warm.close()
    assert legacy.sched.warm_hits == 0
    assert legacy.sched.bytes_shipped > 0
    for key, outcome in by_experiment(old).items():
        assert by_experiment(new)[key].payload == outcome.payload


def test_trace_columns_identical_across_dispatch_modes():
    # keep_traces puts the full per-IO columnar traces into the payload,
    # so payload equality pins every trace column bit-for-bit
    cells = campaign_cells(io_count=6)

    sequential = CampaignExecutor(jobs=1, keep_traces=True)
    base = sequential.execute(cells)

    warm = CampaignExecutor(jobs=4, keep_traces=True)
    try:
        fast = warm.execute(cells)
        assert warm.sched.warm_hits > 0
    finally:
        warm.close()

    for key, outcome in by_experiment(base).items():
        other = by_experiment(fast)[key]
        assert other.payload == outcome.payload
        rows = outcome.payload["rows"]
        assert any(row.get("traces") for row in rows)


def test_repeated_execute_reuses_prepared_states_and_stays_identical():
    # second execute on the same executor: every group is already
    # prepared (no new enforcement), results unchanged
    cells = campaign_cells()
    warm = CampaignExecutor(jobs=4)
    try:
        first = warm.execute(cells)
        published = warm.sched.segments_published
        second = warm.execute(cells)
        assert warm.sched.segments_published == published
        for a, b in zip(first, second):
            assert a.payload == b.payload
    finally:
        warm.close()


def test_warm_dispatch_identical_with_cache_round_trip(tmp_path):
    # cold run (warm dispatch) populates the cache; the sequential
    # executor then serves every cell from it — cross-mode cache keys
    cells = campaign_cells()
    warm = CampaignExecutor(jobs=4, cache=tmp_path / "cache")
    try:
        cold = warm.execute(cells)
    finally:
        warm.close()
    sequential = CampaignExecutor(jobs=1, cache=tmp_path / "cache")
    served = sequential.execute(cells)
    assert all(o.cached for o in served)
    for a, b in zip(cold, served):
        assert a.payload == b.payload
