"""Campaign archives: round-trip, indexing, comparison."""

import json

import pytest

from repro.core.archive import (
    Campaign,
    compare_campaigns,
    list_campaigns,
    load_campaigns,
    render_comparison,
)
from repro.core.experiment import Experiment, run_experiment
from repro.core.patterns import LocationKind, PatternSpec
from repro.errors import AnalysisError
from repro.iotypes import Mode
from repro.units import KIB

from tests.conftest import make_device


def size_experiment(io_count=8):
    def build(io_size):
        return PatternSpec(
            mode=Mode.WRITE,
            location=LocationKind.SEQUENTIAL,
            io_size=io_size,
            io_count=io_count,
        )

    return Experiment("granularity/SW", "IOSize", (4 * KIB, 16 * KIB), build)


def make_campaign(label="run1", slow=False):
    from repro.flashsim.timing import TimingSpec

    timing = TimingSpec(transfer_per_kib=50.0) if slow else None
    device = make_device(timing=timing)
    result = run_experiment(device, size_experiment(), pause_usec=1000.0)
    campaign = Campaign(device="test-hybrid", label=label,
                        metadata={"seed": "42"})
    campaign.results["granularity/SW"] = result
    return campaign


def test_round_trip(tmp_path):
    campaign = make_campaign()
    path = campaign.save(tmp_path)
    loaded = Campaign.load(path)
    assert loaded.device == campaign.device
    assert loaded.label == campaign.label
    assert loaded.metadata == {"seed": "42"}
    original = campaign.results["granularity/SW"]
    restored = loaded.results["granularity/SW"]
    assert [row.value for row in restored.rows] == [row.value for row in original.rows]
    for row_a, row_b in zip(original.rows, restored.rows):
        assert row_b.mean_usec == pytest.approx(row_a.mean_usec)
        assert row_b.stats[0].p95_usec == pytest.approx(row_a.stats[0].p95_usec)


def test_archived_experiments_are_not_runnable(tmp_path):
    campaign = make_campaign()
    loaded = Campaign.load(campaign.save(tmp_path))
    with pytest.raises(AnalysisError):
        loaded.results["granularity/SW"].experiment.spec_for(4 * KIB)


def test_version_guard(tmp_path):
    campaign = make_campaign()
    path = campaign.save(tmp_path)
    payload = json.loads(path.read_text())
    payload["version"] = 99
    path.write_text(json.dumps(payload))
    with pytest.raises(AnalysisError):
        Campaign.load(path)


def test_index_lists_campaigns(tmp_path):
    make_campaign("alpha").save(tmp_path)
    make_campaign("beta").save(tmp_path)
    entries = list_campaigns(tmp_path)
    assert [entry["label"] for entry in entries] == ["alpha", "beta"]
    assert all(entry["device"] == "test-hybrid" for entry in entries)
    assert (tmp_path / "index.json").exists()


def test_index_skips_foreign_json(tmp_path):
    make_campaign("alpha").save(tmp_path)
    (tmp_path / "junk.json").write_text("{not json")
    (tmp_path / "other.json").write_text(json.dumps({"version": 99}))
    entries = list_campaigns(tmp_path)
    assert [entry["label"] for entry in entries] == ["alpha"]


def test_load_campaigns(tmp_path):
    make_campaign("alpha").save(tmp_path)
    make_campaign("beta").save(tmp_path)
    campaigns = load_campaigns(tmp_path)
    assert {campaign.label for campaign in campaigns} == {"alpha", "beta"}


def test_compare_campaigns_detects_regression():
    fast = make_campaign("fast")
    slow = make_campaign("slow", slow=True)
    deltas = compare_campaigns(fast, slow)
    assert len(deltas) == 1
    delta = deltas[0]
    assert delta.name == "granularity/SW"
    # the slow-transfer variant is slower at every size
    assert all(row.ratio > 1.0 for row in delta.rows)
    assert delta.max_regression > 1.0
    assert delta.max_improvement > 1.0


def test_compare_ignores_disjoint_experiments():
    a = make_campaign("a")
    b = make_campaign("b")
    b.results["other/exp"] = b.results.pop("granularity/SW")
    assert compare_campaigns(a, b) == []


def test_render_comparison():
    a = make_campaign("a")
    b = make_campaign("b", slow=True)
    text = render_comparison(a, b, compare_campaigns(a, b))
    assert "a (test-hybrid)  vs  b (test-hybrid)" in text
    assert "granularity/SW" in text
    assert "b/a" in text
