"""Benchmark plans: target allocation, ordering, state resets."""

import pytest

from repro.core.experiment import Experiment
from repro.core.patterns import LocationKind, MixSpec, ParallelSpec, PatternSpec
from repro.core.plan import (
    BenchmarkPlan,
    StateReset,
    TargetAllocator,
    needs_fresh_space,
    spec_footprint,
)
from repro.errors import PlanError
from repro.iotypes import Mode
from repro.units import KIB, MIB

from tests.conftest import make_device


def spec(mode=Mode.WRITE, location=LocationKind.SEQUENTIAL, **kwargs):
    defaults = dict(io_size=32 * KIB, io_count=8)
    defaults.update(kwargs)
    return PatternSpec(mode=mode, location=location, **defaults)


# ----------------------------------------------------------------------
# classification
# ----------------------------------------------------------------------

def test_sequential_writes_need_fresh_space():
    assert needs_fresh_space(spec())
    assert needs_fresh_space(spec(location=LocationKind.ORDERED, incr=0))
    assert needs_fresh_space(
        spec(location=LocationKind.PARTITIONED, partitions=2,
             target_size=8 * 32 * KIB)
    )


def test_reads_and_random_writes_preserve_state():
    assert not needs_fresh_space(spec(mode=Mode.READ))
    assert not needs_fresh_space(spec(location=LocationKind.RANDOM))
    assert not needs_fresh_space(
        spec(mode=Mode.READ, location=LocationKind.RANDOM)
    )


def test_mix_and_parallel_inherit_classification():
    seq_write = spec()
    random_read = spec(mode=Mode.READ, location=LocationKind.RANDOM,
                       target_offset=1 * MIB)
    assert needs_fresh_space(MixSpec(primary=random_read, secondary=seq_write))
    assert needs_fresh_space(ParallelSpec(base=spec(io_count=8), parallel_degree=2))
    assert not needs_fresh_space(
        ParallelSpec(base=spec(location=LocationKind.RANDOM, io_count=8),
                     parallel_degree=2)
    )


def test_spec_footprint():
    assert spec_footprint(spec(io_count=8)) == 8 * 32 * KIB
    assert spec_footprint(spec(io_count=8, io_shift=512)) == 8 * 32 * KIB + 512


# ----------------------------------------------------------------------
# allocator
# ----------------------------------------------------------------------

def test_allocator_bumps_aligned_offsets():
    allocator = TargetAllocator(capacity=1 * MIB, align=128 * KIB)
    first = allocator.try_allocate(100 * KIB)
    second = allocator.try_allocate(100 * KIB)
    assert first == 0
    assert second == 128 * KIB  # aligned up


def test_allocator_exhaustion_returns_none():
    allocator = TargetAllocator(capacity=256 * KIB, align=128 * KIB)
    assert allocator.try_allocate(128 * KIB) == 0
    assert allocator.try_allocate(128 * KIB) == 128 * KIB
    assert allocator.try_allocate(128 * KIB) is None
    allocator.reset()
    assert allocator.resets == 1
    assert allocator.try_allocate(128 * KIB) == 0


def test_allocator_rejects_oversized_requests():
    allocator = TargetAllocator(capacity=256 * KIB, align=128 * KIB)
    with pytest.raises(PlanError):
        allocator.try_allocate(1 * MIB)


def test_place_rewrites_only_disturbing_specs():
    allocator = TargetAllocator(capacity=1 * MIB, align=128 * KIB)
    random_spec = spec(location=LocationKind.RANDOM)
    assert allocator.place(random_spec) is random_spec
    placed = allocator.place(spec())
    assert placed.target_offset == 0
    placed2 = allocator.place(spec())
    assert placed2.target_offset > 0


def test_place_parallel_and_mix():
    allocator = TargetAllocator(capacity=2 * MIB, align=128 * KIB)
    parallel = ParallelSpec(base=spec(io_count=8), parallel_degree=2)
    placed = allocator.place(parallel)
    assert isinstance(placed, ParallelSpec)
    seq_write = spec()
    random_read = spec(mode=Mode.READ, location=LocationKind.RANDOM,
                       target_offset=1536 * KIB)
    mix = MixSpec(primary=random_read, secondary=seq_write)
    placed_mix = allocator.place(mix)
    assert isinstance(placed_mix, MixSpec)
    # the sequential-write component moved onto fresh space
    assert placed_mix.secondary.target_offset >= 256 * KIB


# ----------------------------------------------------------------------
# plan building & execution
# ----------------------------------------------------------------------

def experiment(name, build, values=(1, 2)):
    return Experiment(name=name, parameter="p", values=values, build=build)


def test_plan_orders_preserving_experiments_first():
    reads = experiment("reads", lambda v: spec(mode=Mode.READ))
    writes = experiment("writes", lambda v: spec())
    plan = BenchmarkPlan.build(
        [writes, reads], capacity=4 * MIB, align=128 * KIB
    )
    assert plan.steps[0].name == "reads"
    assert plan.steps[1].name == "writes"
    assert plan.reset_count == 0


def test_plan_inserts_reset_when_space_exhausted():
    big = experiment(
        "big-writes", lambda v: spec(io_count=32), values=tuple(range(8))
    )
    more = experiment(
        "more-writes", lambda v: spec(io_count=32), values=tuple(range(8))
    )
    # each experiment needs 8 x 1 MiB = 8 MiB of fresh space
    plan = BenchmarkPlan.build([big, more], capacity=8 * MIB, align=128 * KIB)
    assert plan.reset_count == 1
    reset_index = next(
        i for i, step in enumerate(plan.steps) if isinstance(step, StateReset)
    )
    assert reset_index == 1  # between the two write experiments


def test_plan_executes_with_state_enforcement():
    device = make_device()
    enforcements = []

    def enforce(dev):
        enforcements.append(dev)

    reads = experiment("reads", lambda v: spec(mode=Mode.READ, io_count=4))
    writes = experiment("writes", lambda v: spec(io_count=4))
    plan = BenchmarkPlan.build([reads, writes], capacity=1 * MIB, align=128 * KIB)
    results = plan.execute(device, enforce, pause_usec=1000.0)
    assert set(results) == {"reads", "writes"}
    assert len(enforcements) >= 1  # the up-front enforcement
    assert all(len(result.rows) == 2 for result in results.values())


def test_plan_runtime_guard_restores_on_exhaustion():
    device = make_device()  # 1 MiB capacity
    enforcements = []

    def enforce(dev):
        enforcements.append(dev)

    # 2 values x 16 IOs x 32 KiB = two 512 KiB target spaces per run; the
    # second experiment cannot fit without a reset
    writes_a = experiment("a", lambda v: spec(io_count=16), values=(1, 2))
    writes_b = experiment("b", lambda v: spec(io_count=16), values=(1, 2))
    plan = BenchmarkPlan.build([writes_a, writes_b], capacity=1 * MIB,
                               align=128 * KIB)
    results = plan.execute(device, enforce, pause_usec=1000.0)
    assert len(results) == 2
    # the state is enforced exactly once; resets restore the snapshot
    # instead of re-paying for a whole-device fill
    assert len(enforcements) == 1


def test_plan_estimate():
    reads = experiment("reads", lambda v: spec(mode=Mode.READ, io_count=8))
    writes = experiment("writes", lambda v: spec(io_count=8))
    plan = BenchmarkPlan.build([reads, writes], capacity=4 * MIB,
                               align=128 * KIB)
    estimate = plan.estimate(per_io_usec=1000.0, pause_usec=0.0)
    assert estimate.experiments == 2
    assert estimate.runs == 4  # 2 experiments x 2 values
    assert estimate.ios == 4 * 8
    # only the write experiment consumes fresh target space
    assert estimate.fresh_target_bytes == 2 * 8 * 32 * KIB
    assert estimate.simulated_usec == 32 * 1000.0
    assert "experiments" in estimate.summary()


def test_plan_estimate_counts_repetitions_and_resets():
    big = experiment("big", lambda v: spec(io_count=32), values=tuple(range(8)))
    more = experiment("more", lambda v: spec(io_count=32), values=tuple(range(8)))
    plan = BenchmarkPlan.build([big, more], capacity=8 * MIB, align=128 * KIB)
    estimate = plan.estimate(
        per_io_usec=100.0, reset_usec=1_000_000.0, repetitions=2,
        pause_usec=500.0,
    )
    assert estimate.resets == 1
    assert estimate.runs == 32  # 16 values x 2 repetitions
    assert estimate.ios == 32 * 32
    expected = 32 * 32 * 100.0 + 1 * 1_000_000.0 + 32 * 500.0
    assert estimate.simulated_usec == expected


def test_plan_estimate_parallel_and_mix_sizes():
    from repro.core.plan import _spec_io_count

    base = spec(io_count=16, target_size=16 * 32 * KIB)
    assert _spec_io_count(ParallelSpec(base=base, parallel_degree=4)) == 16
    random_read = spec(mode=Mode.READ, location=LocationKind.RANDOM,
                       target_offset=1 * MIB)
    assert _spec_io_count(MixSpec(primary=random_read, secondary=base,
                                  io_count=24)) == 24
