"""Pattern specs: the Table 1 formulas, exactly."""

import pytest

from repro.core.patterns import (
    LocationKind,
    MixSpec,
    ParallelSpec,
    PatternSpec,
    TimingKind,
    baselines,
)
from repro.errors import PatternError
from repro.iotypes import Mode
from repro.units import KIB, MIB


def seq_spec(**kwargs):
    defaults = dict(
        mode=Mode.WRITE, location=LocationKind.SEQUENTIAL, io_size=32 * KIB,
        io_count=16,
    )
    defaults.update(kwargs)
    return PatternSpec(**defaults)


# ----------------------------------------------------------------------
# LBA formulas (Table 1)
# ----------------------------------------------------------------------

def test_sequential_lba():
    spec = seq_spec()
    # Seq: TargetOffset + i x IOSize
    assert [spec.lba(i) for i in range(4)] == [0, 32 * KIB, 64 * KIB, 96 * KIB]


def test_sequential_with_offset_and_shift():
    spec = seq_spec(target_offset=1 * MIB, io_shift=512)
    assert spec.lba(0) == 1 * MIB + 512
    assert spec.lba(2) == 1 * MIB + 512 + 64 * KIB


def test_sequential_wraps_modulo_target_size():
    spec = seq_spec(io_count=16, target_size=4 * 32 * KIB)
    assert spec.lba(4) == spec.lba(0)
    assert spec.lba(7) == spec.lba(3)


def test_random_lba_uses_slot_draw():
    spec = seq_spec(location=LocationKind.RANDOM, target_size=8 * 32 * KIB)
    # Rnd: TargetOffset + random(TargetSize/IOSize) x IOSize
    assert spec.lba(0, slot_random=5) == 5 * 32 * KIB
    with pytest.raises(PatternError):
        spec.lba(0)  # needs a draw
    with pytest.raises(PatternError):
        spec.lba(0, slot_random=8)  # out of range


def test_ordered_positive_increment():
    spec = seq_spec(location=LocationKind.ORDERED, incr=4, target_size=64 * 32 * KIB)
    # Seq: TargetOffset + Incr x i x IOSize
    assert [spec.lba(i) for i in range(3)] == [0, 4 * 32 * KIB, 8 * 32 * KIB]


def test_ordered_reverse():
    spec = seq_spec(location=LocationKind.ORDERED, incr=-1, target_size=8 * 32 * KIB)
    assert spec.lba(0) == 0
    assert spec.lba(1) == 7 * 32 * KIB  # wraps to the top, then descends
    assert spec.lba(2) == 6 * 32 * KIB


def test_ordered_in_place():
    spec = seq_spec(location=LocationKind.ORDERED, incr=0, target_size=32 * KIB)
    assert all(spec.lba(i) == 0 for i in range(10))


def test_partitioned_formula():
    # PS = TargetSize/Partitions; Pi = i mod P; Oi = floor(i/P) x IOSize mod PS
    spec = seq_spec(
        location=LocationKind.PARTITIONED,
        partitions=4,
        target_size=16 * 32 * KIB,
        io_count=16,
    )
    partition_size = 4 * 32 * KIB
    assert spec.lba(0) == 0
    assert spec.lba(1) == partition_size
    assert spec.lba(4) == 32 * KIB  # back to partition 0, next slot
    assert spec.lba(5) == partition_size + 32 * KIB


def test_partitioned_round_robin_covers_all_partitions():
    spec = seq_spec(
        location=LocationKind.PARTITIONED,
        partitions=4,
        target_size=16 * 32 * KIB,
        io_count=16,
    )
    partition_size = spec.target_size // 4
    seen = {spec.lba(i) // partition_size for i in range(4)}
    assert seen == {0, 1, 2, 3}


def test_lbas_always_inside_footprint():
    for location, extra in (
        (LocationKind.SEQUENTIAL, {}),
        (LocationKind.ORDERED, {"incr": 7}),
        (LocationKind.ORDERED, {"incr": -3}),
        (LocationKind.PARTITIONED, {"partitions": 4}),
    ):
        spec = seq_spec(
            location=location, target_size=16 * 32 * KIB, io_count=64, **extra
        )
        start, end = spec.footprint
        for i in range(64):
            lba = spec.lba(i)
            assert start <= lba <= end - spec.io_size


# ----------------------------------------------------------------------
# timing functions
# ----------------------------------------------------------------------

def test_consecutive_has_no_gaps():
    spec = seq_spec()
    assert all(spec.inter_io_gap(i) == 0.0 for i in range(10))


def test_pause_inserts_gap_between_all_ios():
    spec = seq_spec(timing=TimingKind.PAUSE, pause_usec=500.0)
    assert spec.inter_io_gap(0) == 0.0  # nothing before the first IO
    assert all(spec.inter_io_gap(i) == 500.0 for i in range(1, 5))


def test_burst_pauses_between_groups():
    spec = seq_spec(timing=TimingKind.BURST, pause_usec=1000.0, burst=3)
    gaps = [spec.inter_io_gap(i) for i in range(9)]
    assert gaps == [0, 0, 0, 1000.0, 0, 0, 1000.0, 0, 0]


# ----------------------------------------------------------------------
# validation
# ----------------------------------------------------------------------

@pytest.mark.parametrize(
    "kwargs",
    [
        {"io_size": 0},
        {"io_count": 0},
        {"io_ignore": 20},  # > io_count
        {"target_offset": -1},
        {"target_size": 16 * KIB},  # < io_size
        {"target_size": 48 * KIB},  # not a multiple
        {"partitions": 0},
        {"timing": TimingKind.PAUSE},  # pause without pause_usec
        {"timing": TimingKind.BURST, "pause_usec": 1.0},  # burst without size
    ],
)
def test_invalid_specs_rejected(kwargs):
    with pytest.raises(PatternError):
        seq_spec(**kwargs)


def test_partitioned_validation():
    with pytest.raises(PatternError):
        seq_spec(
            location=LocationKind.PARTITIONED,
            partitions=3,
            target_size=16 * 32 * KIB,
        )


def test_default_target_size_is_footprint():
    spec = seq_spec(io_count=10)
    assert spec.target_size == 10 * 32 * KIB
    assert spec.slots == 10


def test_labels():
    assert seq_spec().label == "SW"
    assert seq_spec(mode=Mode.READ).label == "SR"
    assert seq_spec(location=LocationKind.RANDOM).label == "RW"
    assert seq_spec(location=LocationKind.ORDERED).label == "OW"


def test_with_updates_and_relabels():
    spec = seq_spec()
    changed = spec.with_(mode=Mode.READ)
    assert changed.label == "SR"
    assert changed.io_size == spec.io_size


def test_fits():
    spec = seq_spec(io_count=8)
    assert spec.fits(8 * 32 * KIB)
    assert not spec.fits(8 * 32 * KIB - 1)


# ----------------------------------------------------------------------
# mix and parallel wrappers
# ----------------------------------------------------------------------

def test_mix_requires_disjoint_targets():
    a = seq_spec(io_count=8)
    b = seq_spec(io_count=8)
    with pytest.raises(PatternError):
        MixSpec(primary=a, secondary=b)
    ok = MixSpec(primary=a, secondary=b.with_(target_offset=1 * MIB), ratio=2)
    assert ok.io_count == 16


def test_mix_component_schedule():
    a = seq_spec(io_count=8)
    b = seq_spec(io_count=8, target_offset=1 * MIB)
    mix = MixSpec(primary=a, secondary=b, ratio=3)
    # 3 primaries then 1 secondary, repeating
    schedule = [mix.component_for(i) for i in range(8)]
    assert schedule == [0, 0, 0, 1, 0, 0, 0, 1]


def test_mix_label():
    a = seq_spec(io_count=8, mode=Mode.READ)
    b = seq_spec(io_count=8, target_offset=1 * MIB)
    assert MixSpec(primary=a, secondary=b, ratio=2).label == "2 SR / 1 SW"


def test_parallel_splits_target_space():
    base = seq_spec(io_count=16, target_size=16 * 32 * KIB)
    parallel = ParallelSpec(base=base, parallel_degree=4)
    specs = parallel.process_specs()
    assert len(specs) == 4
    # Table 1: TargetOffset_p = p x TargetSize/Degree
    assert [s.target_offset for s in specs] == [
        0, 4 * 32 * KIB, 8 * 32 * KIB, 12 * 32 * KIB
    ]
    assert all(s.target_size == 4 * 32 * KIB for s in specs)
    assert all(s.io_count == 4 for s in specs)
    # footprints must not overlap
    ends = [s.footprint for s in specs]
    for (start_a, end_a), (start_b, __) in zip(ends, ends[1:]):
        assert end_a <= start_b


def test_parallel_validation():
    base = seq_spec(io_count=6, target_size=6 * 32 * KIB)
    with pytest.raises(PatternError):
        ParallelSpec(base=base, parallel_degree=4)  # 6 not divisible by 4


def test_baselines_cover_four_patterns():
    specs = baselines(io_size=32 * KIB, io_count=32)
    assert set(specs) == {"SR", "RR", "SW", "RW"}
    assert specs["SR"].mode is Mode.READ
    assert specs["RW"].location is LocationKind.RANDOM
    assert specs["SW"].target_size == 32 * 32 * KIB


def test_baselines_custom_areas():
    specs = baselines(
        io_size=32 * KIB, io_count=64,
        random_target_size=4 * MIB, sequential_target_size=1 * MIB,
    )
    assert specs["RR"].target_size == 4 * MIB
    assert specs["SW"].target_size == 1 * MIB  # capped
