"""Experiments: single varying parameter, repetitions, allocator hook."""

import pytest

from repro.core.experiment import Experiment, run_experiment
from repro.core.patterns import LocationKind, PatternSpec
from repro.errors import ExperimentError
from repro.iotypes import Mode
from repro.units import KIB

from tests.conftest import make_device


def size_experiment(io_count=8):
    def build(io_size):
        return PatternSpec(
            mode=Mode.WRITE,
            location=LocationKind.SEQUENTIAL,
            io_size=io_size,
            io_count=io_count,
        )

    return Experiment(
        name="granularity/SW",
        parameter="IOSize",
        values=(4 * KIB, 16 * KIB, 64 * KIB),
        build=build,
    )


def test_experiment_requires_values():
    with pytest.raises(ExperimentError):
        Experiment(name="x", parameter="p", values=(), build=lambda v: None)


def test_run_experiment_produces_row_per_value():
    device = make_device()
    result = run_experiment(device, size_experiment(), pause_usec=1000.0)
    values, means = result.series()
    assert values == [4 * KIB, 16 * KIB, 64 * KIB]
    assert len(means) == 3
    assert all(mean > 0 for mean in means)
    # bigger IOs take longer per IO (transfer dominated on this device)
    assert means[0] < means[2]


def test_row_lookup():
    device = make_device()
    result = run_experiment(device, size_experiment(), pause_usec=1000.0)
    row = result.row_for(16 * KIB)
    assert row.value == 16 * KIB
    with pytest.raises(ExperimentError):
        result.row_for(12345)


def test_repetitions_reseed_and_average():
    device = make_device()

    def build(size):
        return PatternSpec(
            mode=Mode.WRITE,
            location=LocationKind.RANDOM,
            io_size=size,
            io_count=8,
            target_size=512 * KIB,
            seed=1,
        )

    experiment = Experiment("rw", "IOSize", (16 * KIB,), build)
    result = run_experiment(device, experiment, pause_usec=1000.0, repetitions=3)
    row = result.rows[0]
    assert len(row.stats) == 3
    assert row.mean_usec == pytest.approx(
        sum(s.mean_usec for s in row.stats) / 3
    )
    # the simulator is deterministic enough for the paper's 5% check
    assert row.repeatable_within(0.5)


def test_repetitions_must_be_positive():
    device = make_device()
    with pytest.raises(ExperimentError):
        run_experiment(device, size_experiment(), repetitions=0)


def test_allocator_hook_rewrites_specs():
    device = make_device()
    seen = []

    def allocate(spec):
        seen.append(spec)
        return spec.with_(target_offset=256 * KIB)

    result = run_experiment(
        device, size_experiment(), pause_usec=1000.0, allocate=allocate
    )
    assert len(seen) == 3
    assert result.rows[0].stats[0].count == 8


def test_max_usec_row_aggregation():
    device = make_device()
    result = run_experiment(device, size_experiment(), pause_usec=1000.0)
    row = result.rows[0]
    assert row.max_usec >= row.mean_usec


def test_empty_row_raises_instead_of_dividing_by_zero():
    from repro.core.experiment import ExperimentRow

    row = ExperimentRow(value=4 * KIB, label="SW")
    with pytest.raises(ExperimentError, match="no recorded runs"):
        row.mean_usec
    with pytest.raises(ExperimentError, match="no recorded runs"):
        row.max_usec
