"""Runner: execution of basic, mixed and parallel patterns on a device."""

import pytest

from repro.core.patterns import (
    LocationKind,
    MixSpec,
    ParallelSpec,
    PatternSpec,
)
from repro.core.runner import (
    execute,
    execute_mix,
    execute_parallel,
    rest_device,
)
from repro.iotypes import Mode
from repro.units import KIB, MIB

from tests.conftest import make_device


def sw_spec(io_count=16, **kwargs):
    defaults = dict(
        mode=Mode.WRITE,
        location=LocationKind.SEQUENTIAL,
        io_size=16 * KIB,
        io_count=io_count,
    )
    defaults.update(kwargs)
    return PatternSpec(**defaults)


def test_execute_produces_full_trace_and_stats():
    device = make_device()
    run = execute(device, sw_spec())
    assert len(run.trace) == 16
    assert run.stats.count == 16
    assert run.label == "SW"
    device.check_invariants()


def test_execute_applies_io_ignore():
    device = make_device()
    run = execute(device, sw_spec(io_count=16, io_ignore=4))
    assert run.stats.ignored == 4
    assert run.stats.count == 12


def test_restat_changes_the_cut():
    device = make_device()
    run = execute(device, sw_spec())
    again = run.restat(io_ignore=8)
    assert again.count == 8


def test_runs_follow_each_other_in_simulated_time():
    device = make_device()
    first = execute(device, sw_spec())
    second = execute(device, sw_spec(target_offset=512 * KIB))
    assert second.trace[0].submitted_at >= first.trace[-1].completed_at


def test_rest_device_advances_time_and_flushes_cache():
    device = make_device(cache_bytes=32 * 2 * KIB)
    execute(device, sw_spec(io_count=8))
    assert device.controller.cache.dirty_pages > 0
    horizon = device.busy_until
    rest_device(device, 1_000_000.0)
    assert device.busy_until >= horizon + 1_000_000.0
    assert device.controller.cache.dirty_pages == 0


def test_execute_mix_splits_component_stats():
    device = make_device()
    primary = PatternSpec(
        mode=Mode.READ, location=LocationKind.SEQUENTIAL, io_size=16 * KIB,
        io_count=16,
    )
    secondary = sw_spec(io_count=16, target_offset=512 * KIB)
    mix = MixSpec(primary=primary, secondary=secondary, ratio=3, io_count=32)
    result = execute_mix(device, mix)
    assert result.stats.count == 32
    assert result.primary_stats.count == 24
    assert result.secondary_stats.count == 8
    assert result.label == "3 SR / 1 SW"


def test_execute_mix_respects_ignore():
    device = make_device()
    primary = PatternSpec(
        mode=Mode.READ, location=LocationKind.SEQUENTIAL, io_size=16 * KIB,
        io_count=16,
    )
    secondary = sw_spec(io_count=16, target_offset=512 * KIB)
    mix = MixSpec(
        primary=primary, secondary=secondary, ratio=1, io_count=16, io_ignore=8
    )
    result = execute_mix(device, mix)
    assert result.stats.ignored == 8
    assert result.primary_stats.count + result.secondary_stats.count == 8


def test_execute_parallel_runs_all_processes():
    device = make_device()
    base = sw_spec(io_count=16, target_size=16 * 16 * KIB)
    result = execute_parallel(device, ParallelSpec(base=base, parallel_degree=4))
    assert len(result.runs) == 4
    assert all(len(run.trace) == 4 for run in result.runs)
    assert result.stats is not None
    assert result.stats.count == 16
    assert result.label == "SW x4"


def test_parallel_degree_one_equals_sync():
    parallel_device = make_device()
    base = sw_spec(io_count=16)
    parallel = execute_parallel(
        parallel_device, ParallelSpec(base=base, parallel_degree=1)
    )
    sync_device = make_device()
    solo = execute(sync_device, base)
    assert parallel.stats.mean_usec == pytest.approx(solo.stats.mean_usec)


def test_parallel_mix_runs_distinct_patterns_concurrently():
    from repro.core.patterns import ParallelMixSpec
    from repro.core.runner import execute_parallel_mix

    device = make_device()
    reads = PatternSpec(
        mode=Mode.READ, location=LocationKind.SEQUENTIAL, io_size=16 * KIB,
        io_count=12,
    )
    writes = sw_spec(io_count=12, target_offset=512 * KIB)
    result = execute_parallel_mix(device, ParallelMixSpec((reads, writes)))
    assert len(result.runs) == 2
    assert result.runs[0].spec.mode is Mode.READ
    assert result.runs[1].spec.mode is Mode.WRITE
    assert result.stats.count == 24
    assert result.label == "SR || SW"
    # the two streams interleave on the single device queue
    all_ios = sorted(
        (c for run in result.runs for c in run.trace),
        key=lambda c: c.started_at,
    )
    modes = [c.request.mode for c in all_ios]
    assert Mode.READ in modes[:4] and Mode.WRITE in modes[:4]


def test_parallel_mix_requires_disjoint_components():
    from repro.core.patterns import ParallelMixSpec
    from repro.errors import PatternError

    overlapping = sw_spec(io_count=12)
    with pytest.raises(PatternError):
        ParallelMixSpec((overlapping, sw_spec(io_count=12)))
    with pytest.raises(PatternError):
        ParallelMixSpec((overlapping,))


def test_mix_component_without_measured_ios_has_none_stats():
    """A component with every IO inside the warm-up cut gets no summary
    (None), not a silent copy of the overall statistics."""
    device = make_device()
    primary = PatternSpec(
        mode=Mode.READ, location=LocationKind.SEQUENTIAL, io_size=16 * KIB,
        io_count=16,
    )
    secondary = sw_spec(io_count=16, target_offset=512 * KIB)
    # ratio=7, io_count=15: the only secondary IO is index 7, which the
    # warm-up cut (io_ignore=8) discards entirely
    mix = MixSpec(
        primary=primary, secondary=secondary, ratio=7, io_count=15, io_ignore=8
    )
    result = execute_mix(device, mix)
    assert result.secondary_stats is None
    assert result.primary_stats is not None
    assert result.primary_stats.count == 7
    assert result.stats.count == 7
