"""Analytic-kernel equivalence: closed-form windows must be invisible.

The whole-run kernels (:mod:`repro.flashsim.analytic`) simulate maximal
provably-transition-free windows of a homogeneous run in one vectorized
pass and decline — back to the per-IO reference path — the moment
garbage collection, background interference or a verification failure
could occur.  Like the batch and columnar layers they are a pure
performance optimisation: with the kernels enabled and disabled, state
enforcement and engine pattern runs must produce bit-identical device
state (``fingerprint``), identical metrics, identical run statistics
and byte-identical traces.

The second half pins the *bail-out exactness* contract: each decline
reason fires exactly when its state transition could occur, the window
is truncated exactly before the offending IO, and the fallback
reproduces the reference behaviour (including raised errors).
"""

from __future__ import annotations

import contextlib

import numpy as np
import pytest

from repro.core import enforce_random_state
from repro.core.engine import Engine
from repro.core.patterns import LocationKind, PatternSpec, TimingKind, baselines
from repro.flashsim import analytic
from repro.flashsim.profiles import build_device
from repro.iotypes import Mode
from repro.units import KIB, MIB

from ..conftest import make_device

#: one profile per kernel disposition: full coverage (page-map, GC
#: epochs included), full decline (hybrid + cache), full coverage
#: (block-map appends with reference replay at merge edges)
PROFILES = ("ideal_pagemap", "memoright", "kingston_dti")


@pytest.fixture(autouse=True)
def _isolated_stats():
    analytic.STATS.reset()
    yield
    analytic.STATS.reset()


@contextlib.contextmanager
def kernels_disabled():
    """Force the per-IO reference path for the enclosed block."""
    previous = analytic.ENABLED
    analytic.ENABLED = False
    try:
        yield
    finally:
        analytic.ENABLED = previous


def _report_tuple(report):
    return (
        report.method,
        report.io_count,
        report.bytes_written,
        report.elapsed_usec,
        report.mean_io_usec,
    )


# ----------------------------------------------------------------------
# whole-run equivalence
# ----------------------------------------------------------------------


@pytest.mark.parametrize("profile", PROFILES)
def test_enforce_analytic_reference_identical(profile):
    """State enforcement: same report, fingerprint and metrics."""
    kernel_dev = build_device(profile, logical_bytes=4 * MIB)
    reference_dev = build_device(profile, logical_bytes=4 * MIB)
    kernel_report = enforce_random_state(kernel_dev, seed=5)
    with kernels_disabled():
        reference_report = enforce_random_state(reference_dev, seed=5)
    assert _report_tuple(kernel_report) == _report_tuple(reference_report)
    assert kernel_dev.fingerprint() == reference_dev.fingerprint()
    assert kernel_dev.metrics() == reference_dev.metrics()
    kernel_dev.check_invariants()


def test_enforce_kernel_takes_pagemap_windows():
    """On the page-map profile the write kernel actually runs."""
    device = build_device("ideal_pagemap", logical_bytes=4 * MIB)
    report = enforce_random_state(device, seed=5)
    assert analytic.STATS.write_windows >= 1
    assert 0 < analytic.STATS.write_ios <= report.io_count


@pytest.mark.parametrize("kind", ("SR", "RR", "SW", "RW"))
def test_engine_baselines_analytic_reference_identical(kind):
    """SR/RR/SW/RW through the engine: stats, CSV and state agree."""
    spec = baselines(io_size=16 * KIB, io_count=64)[kind]
    kernel_engine = Engine(build_device("ideal_pagemap", logical_bytes=4 * MIB))
    reference_engine = Engine(build_device("ideal_pagemap", logical_bytes=4 * MIB))
    kernel_run = kernel_engine.run(spec)
    with kernels_disabled():
        reference_run = reference_engine.run(spec)
    assert kernel_run.stats == reference_run.stats
    assert kernel_run.trace.to_csv() == reference_run.trace.to_csv()
    assert kernel_engine.device.fingerprint() == reference_engine.device.fingerprint()


def test_gc_crossing_run_analytic_reference_identical():
    """A run long enough to trigger GC: the GC-epoch kernel absorbs the
    steady-state tail (no per-IO fallback), every collection still
    happens, and the final state is bit-identical."""
    kernel_dev = make_device(ftl_kind="pagemap")
    reference_dev = make_device(ftl_kind="pagemap")
    kernel_report = enforce_random_state(kernel_dev, seed=3, coverage=3.0)
    with kernels_disabled():
        reference_report = enforce_random_state(reference_dev, seed=3, coverage=3.0)
    assert _report_tuple(kernel_report) == _report_tuple(reference_report)
    assert kernel_dev.fingerprint() == reference_dev.fingerprint()
    assert kernel_dev.metrics() == reference_dev.metrics()
    assert kernel_dev.ftl.gc_collections > 0
    assert analytic.STATS.epoch_windows > 0
    assert analytic.STATS.epoch_collections == kernel_dev.ftl.gc_collections
    assert "write:gc-headroom" not in analytic.STATS.declines
    kernel_dev.check_invariants()


@pytest.mark.parametrize(
    ("logical_mib", "spare_blocks"),
    [(2, 7), (4, 8), (4, 24), (8, 12)],
    ids=["2MiB-tight", "4MiB-tight", "4MiB-roomy", "8MiB"],
)
def test_gc_epoch_across_capacities_and_overprovisioning(
    logical_mib, spare_blocks
):
    """The GC-epoch kernel must stay bit-identical as capacity and
    over-provisioning vary — the epoch boundaries (free-pool watermark,
    victim choice, relocation volume) all shift with the spare-block
    budget.  Background GC is disabled so the spare pool can be squeezed
    below the idle-target minimum: every collection is foreground."""
    from repro.flashsim.ftl.pagemap import PageMapConfig
    from repro.flashsim.profiles import scaled_profile

    profile = scaled_profile(
        "ideal_pagemap",
        name=f"pagemap-{logical_mib}m-{spare_blocks}s",
        spare_blocks=spare_blocks,
        pagemap=PageMapConfig(gc_low_blocks=4, bg_enabled=False),
    )
    kernel_dev = profile.build(logical_mib * MIB)
    reference_dev = profile.build(logical_mib * MIB)
    kernel_report = enforce_random_state(kernel_dev, seed=11, coverage=2.5)
    epoch_windows = analytic.STATS.epoch_windows
    with kernels_disabled():
        reference_report = enforce_random_state(
            reference_dev, seed=11, coverage=2.5
        )
    assert _report_tuple(kernel_report) == _report_tuple(reference_report)
    assert kernel_dev.fingerprint() == reference_dev.fingerprint()
    assert kernel_dev.metrics() == reference_dev.metrics()
    assert kernel_dev.ftl.gc_collections > 0
    assert epoch_windows > 0
    kernel_dev.check_invariants()


def test_write_window_declines_wear_levelling_exactly():
    """A wear-threshold config must keep every write window on the
    per-IO reference path (wear moves interleave with host appends in
    ways the kernel does not model) — and the fallback must still be
    bit-identical."""
    from repro.flashsim.ftl.pagemap import PageMapConfig
    from repro.flashsim.profiles import scaled_profile

    profile = scaled_profile(
        "ideal_pagemap",
        name="pagemap-wear",
        pagemap=PageMapConfig(
            gc_low_blocks=4,
            bg_enabled=True,
            bg_target_blocks=32,
            wear_threshold=8,
        ),
    )
    kernel_dev = profile.build(4 * MIB)
    reference_dev = profile.build(4 * MIB)
    kernel_report = enforce_random_state(kernel_dev, seed=3, coverage=2.0)
    assert analytic.STATS.declines.get("write:wear-levelling", 0) > 0
    assert analytic.STATS.write_windows == 0
    with kernels_disabled():
        reference_report = enforce_random_state(
            reference_dev, seed=3, coverage=2.0
        )
    assert _report_tuple(kernel_report) == _report_tuple(reference_report)
    assert kernel_dev.fingerprint() == reference_dev.fingerprint()
    assert kernel_dev.metrics() == reference_dev.metrics()


@pytest.mark.parametrize("kind", ("SR", "RR", "SW", "RW"))
def test_engine_baselines_blockmap_analytic_reference_identical(kind):
    """Block-map family through the engine: the kernel covers aligned
    appends in closed form and replays merge-heavy IOs through the
    reference controller — stats, CSV and state must agree."""
    spec = baselines(io_size=16 * KIB, io_count=64)[kind]
    kernel_engine = Engine(build_device("kingston_dti", logical_bytes=4 * MIB))
    reference_engine = Engine(build_device("kingston_dti", logical_bytes=4 * MIB))
    kernel_run = kernel_engine.run(spec)
    with kernels_disabled():
        reference_run = reference_engine.run(spec)
    assert kernel_run.stats == reference_run.stats
    assert kernel_run.trace.to_csv() == reference_run.trace.to_csv()
    assert kernel_engine.device.fingerprint() == reference_engine.device.fingerprint()
    assert kernel_engine.device.metrics() == reference_engine.device.metrics()


@pytest.mark.parametrize("profile", ("ideal_pagemap", "kingston_dti"))
@pytest.mark.parametrize("queue_depth", (4, 32))
def test_queued_reads_analytic_reference_identical(profile, queue_depth):
    """AsyncHost read programs at depth > 1: the queued completion
    kernel replays the submit/pop event schedule in closed form —
    stats, channel horizons, queue occupancy counters and the trace
    must be bit-identical to per-IO timeline stepping."""
    spec = PatternSpec(
        mode=Mode.READ,
        location=LocationKind.RANDOM,
        io_size=16 * KIB,
        io_count=128,
        target_size=2 * MIB,
        timing=TimingKind.CONSECUTIVE,
        queue_depth=queue_depth,
    )
    kernel_engine = Engine(build_device(profile, logical_bytes=4 * MIB))
    reference_engine = Engine(build_device(profile, logical_bytes=4 * MIB))
    enforce_random_state(kernel_engine.device, seed=7)
    with kernels_disabled():
        enforce_random_state(reference_engine.device, seed=7)
    assert kernel_engine.device.fingerprint() == reference_engine.device.fingerprint()
    analytic.STATS.reset()
    kernel_run = kernel_engine.run(spec)
    assert analytic.STATS.queued_windows >= 1
    assert analytic.STATS.queued_ios == spec.io_count
    with kernels_disabled():
        reference_run = reference_engine.run(spec)
    assert kernel_run.stats == reference_run.stats
    assert kernel_run.trace.to_csv() == reference_run.trace.to_csv()
    assert kernel_engine.device.fingerprint() == reference_engine.device.fingerprint()
    assert kernel_engine.device.metrics() == reference_engine.device.metrics()


def test_queued_writes_decline_but_match_reference():
    """Depth-d write programs stay on the reference loop (writes mutate
    FTL state in submission order, which the event-schedule kernel does
    not model) — with identical results."""
    spec = PatternSpec(
        mode=Mode.WRITE,
        location=LocationKind.RANDOM,
        io_size=16 * KIB,
        io_count=64,
        target_size=2 * MIB,
        timing=TimingKind.CONSECUTIVE,
        queue_depth=8,
    )
    kernel_engine = Engine(build_device("ideal_pagemap", logical_bytes=4 * MIB))
    reference_engine = Engine(build_device("ideal_pagemap", logical_bytes=4 * MIB))
    kernel_run = kernel_engine.run(spec)
    assert analytic.STATS.declines.get("queued:writes", 0) > 0
    with kernels_disabled():
        reference_run = reference_engine.run(spec)
    assert kernel_run.stats == reference_run.stats
    assert kernel_run.trace.to_csv() == reference_run.trace.to_csv()
    assert kernel_engine.device.fingerprint() == reference_engine.device.fingerprint()


# ----------------------------------------------------------------------
# bail-out exactness
# ----------------------------------------------------------------------


def _columns(device, count=4, size=16 * KIB):
    lbas = np.arange(count, dtype=np.int64) * size
    sizes = np.full(count, size, dtype=np.int64)
    return lbas, sizes


def test_write_window_declines_non_pagemap_family():
    device = build_device("memoright", logical_bytes=4 * MIB)
    lbas, sizes = _columns(device)
    done, end = analytic.write_window(device, lbas, sizes, device.busy_until)
    assert done == 0 and end == device.busy_until
    assert analytic.STATS.declines == {"write:ftl-family": 1}


def test_write_window_declines_batch_disabled():
    device = build_device("ideal_pagemap", logical_bytes=4 * MIB)
    device.ftl.batch_enabled = False
    lbas, sizes = _columns(device)
    done, _ = analytic.write_window(device, lbas, sizes, device.busy_until)
    assert done == 0
    assert analytic.STATS.declines == {"write:batch-disabled": 1}


def test_write_window_declines_cache():
    device = make_device(ftl_kind="pagemap", cache_bytes=64 * KIB)
    lbas, sizes = _columns(device, size=device.geometry.page_size)
    done, _ = analytic.write_window(device, lbas, sizes, device.busy_until)
    assert done == 0
    assert analytic.STATS.declines == {"write:cache": 1}


def test_read_window_declines_background_pending():
    """Pending background GC means every read grants credit — a state
    transition per IO, so the read kernel must stand aside."""
    device = make_device(ftl_kind="pagemap", bg=True)
    page = device.geometry.page_size
    cap = device.geometry.logical_bytes
    now = device.busy_until
    for i in range(2 * cap // page):
        now = device.write((i * page) % cap, page, now).completed_at
    assert device.ftl.background_work_pending()
    lbas, sizes = _columns(device, size=page)
    done, _ = analytic.read_window(device, lbas, sizes, device.busy_until)
    assert done == 0
    assert analytic.STATS.declines == {"read:background-pending": 1}


def test_queued_kernel_declines_background_pending():
    """The queued kernel must stand aside at background-unit
    boundaries too: pending GC turns every queued read into a state
    transition (interference + credit-funded background units)."""
    from repro.core.generator import PatternGenerator
    from repro.flashsim.host import AsyncHost

    kernel_dev = make_device(ftl_kind="pagemap", bg=True)
    reference_dev = make_device(ftl_kind="pagemap", bg=True)
    page = kernel_dev.geometry.page_size
    cap = kernel_dev.geometry.logical_bytes
    for device in (kernel_dev, reference_dev):
        now = device.busy_until
        for i in range(2 * cap // page):
            now = device.write((i * page) % cap, page, now).completed_at
    assert kernel_dev.ftl.background_work_pending()
    spec = PatternSpec(
        mode=Mode.READ,
        location=LocationKind.SEQUENTIAL,
        io_size=page,
        io_count=32,
        target_size=cap,
        timing=TimingKind.CONSECUTIVE,
        queue_depth=4,
    )
    program = PatternGenerator(spec).program()
    analytic.STATS.reset()
    kernel_trace = AsyncHost(kernel_dev).run_program(
        program, start_at=kernel_dev.busy_until
    )
    assert analytic.STATS.queued_windows == 0
    assert analytic.STATS.declines.get("queued:background-pending", 0) == 1
    with kernels_disabled():
        reference_trace = AsyncHost(reference_dev).run_program(
            program, start_at=reference_dev.busy_until
        )
    assert kernel_trace.to_csv() == reference_trace.to_csv()
    assert kernel_dev.fingerprint() == reference_dev.fingerprint()


def test_read_window_truncates_before_verification_failure():
    """The read window ends exactly before the IO whose read-your-writes
    verification would raise; the reference path raises on replay."""
    device = build_device("ideal_pagemap", logical_bytes=4 * MIB)
    assert device.controller.config.verify
    page = device.geometry.page_size
    now = device.busy_until
    for i in range(4):
        now = device.write(i * page, page, now).completed_at
    # corrupt the flash copy of the third page: reads 0-1 are fine,
    # read 2 must fail verification in both paths
    ppage = int(device.ftl._l2p[2])
    device.chip._tokens[ppage] ^= 1
    lbas = np.arange(4, dtype=np.int64) * page
    sizes = np.full(4, page, dtype=np.int64)
    done, _ = analytic.read_window(device, lbas, sizes, device.busy_until)
    assert done == 2  # truncated exactly before the corrupted page
    done, _ = analytic.read_window(device, lbas[2:], sizes[2:], device.busy_until)
    assert done == 0
    assert analytic.STATS.declines == {"read:verify": 1}


def test_paced_program_declines_but_matches_reference():
    """Pause-timed runs (inter-IO gaps) disqualify the whole-program
    kernel up front; the host's reference loop must take over with
    identical results."""
    spec = PatternSpec(
        mode=Mode.WRITE,
        location=LocationKind.RANDOM,
        io_size=16 * KIB,
        io_count=32,
        target_size=2 * MIB,
        timing=TimingKind.PAUSE,
        pause_usec=500.0,
    )
    kernel_engine = Engine(build_device("ideal_pagemap", logical_bytes=4 * MIB))
    reference_engine = Engine(build_device("ideal_pagemap", logical_bytes=4 * MIB))
    kernel_run = kernel_engine.run(spec)
    assert analytic.STATS.declines.get("program:paced", 0) > 0
    with kernels_disabled():
        reference_run = reference_engine.run(spec)
    assert kernel_run.stats == reference_run.stats
    assert kernel_run.trace.to_csv() == reference_run.trace.to_csv()
    assert kernel_engine.device.fingerprint() == reference_engine.device.fingerprint()
