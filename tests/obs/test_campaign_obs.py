"""Campaign-level observability: metrics and spans through the executor."""

import os

from repro.core.executor import (
    CampaignExecutor,
    merge_outcome_metrics,
    plan_cells,
)
from repro.obs import metrics as obs_metrics
from repro.obs import tracing as obs_tracing
from repro.units import KIB, MIB, SEC

PROFILE = "kingston_dti"
CAPACITY = 4 * MIB


def order_cells():
    return plan_cells(
        PROFILE,
        CAPACITY,
        ["order"],
        io_size=32 * KIB,
        io_count=8,
        pause_usec=0.1 * SEC,
    )


def test_disabled_observability_leaves_outcomes_bare(tmp_path):
    outcomes = CampaignExecutor(jobs=1).execute(order_cells())
    assert all(outcome.metrics is None for outcome in outcomes)
    assert merge_outcome_metrics(outcomes) == {}


def test_executed_cells_carry_device_metric_deltas():
    with obs_metrics.installed(obs_metrics.MetricsRegistry()) as registry:
        outcomes = CampaignExecutor(jobs=1).execute(order_cells())
        snapshot = registry.snapshot()
    assert all(outcome.metrics is not None for outcome in outcomes)
    merged = merge_outcome_metrics(outcomes)
    assert merged["chip.page_programs"] > 0
    assert merged["device.writes"] > 0
    assert snapshot.counters["core.executor.cells_executed"] == len(outcomes)
    assert snapshot.counters["core.executor.cells_total"] == len(outcomes)
    assert snapshot.counters["core.engine.runs"] > 0
    wall = snapshot.histograms["core.executor.cell_wall_usec"]
    assert wall.count == len(outcomes)


def test_cache_hit_metrics_match_cached_outcomes(tmp_path):
    cells = order_cells()
    with obs_metrics.installed(obs_metrics.MetricsRegistry()):
        first = CampaignExecutor(jobs=1, cache=tmp_path / "cache").execute(cells)
    with obs_metrics.installed(obs_metrics.MetricsRegistry()) as registry:
        executor = CampaignExecutor(jobs=1, cache=tmp_path / "cache")
        second = executor.execute(cells)
        snapshot = registry.snapshot()
    cached = sum(1 for outcome in second if outcome.cached)
    assert cached == len(cells)
    assert snapshot.counters["core.executor.cells_cached"] == cached
    assert executor.cache.hits == cached
    assert executor.cache.bytes_saved == sum(
        cell.io_count * cell.io_size * max(1, cell.repetitions) for cell in cells
    )
    # cache entries preserve the metrics recorded when the cell ran
    assert merge_outcome_metrics(second) == merge_outcome_metrics(first)


def test_parallel_with_observability_matches_sequential():
    cells = order_cells()
    sequential = CampaignExecutor(jobs=1).execute(cells)
    with obs_metrics.installed(obs_metrics.MetricsRegistry()) as registry:
        with obs_tracing.installed(obs_tracing.Tracer()):
            parallel = CampaignExecutor(jobs=2).execute(cells)
        snapshot = registry.snapshot()
    assert [outcome.payload for outcome in parallel] == [
        outcome.payload for outcome in sequential
    ]
    assert snapshot.counters["core.executor.cells_executed"] == len(cells)
    assert merge_outcome_metrics(parallel)["chip.page_programs"] > 0


def test_parallel_spans_land_in_worker_lanes():
    tracer = obs_tracing.Tracer()
    with obs_tracing.installed(tracer):
        CampaignExecutor(jobs=2).execute(order_cells())
    names = {span.name for span in tracer.spans}
    assert {"campaign", "prepare", "cell", "run"} <= names
    own = os.getpid()
    cell_tids = {span.tid for span in tracer.spans if span.name == "cell"}
    assert cell_tids and own not in cell_tids  # cells ran in worker lanes
    assert all(span.pid == own for span in tracer.spans)


def test_sequential_spans_nest_on_main_lane():
    tracer = obs_tracing.Tracer()
    with obs_tracing.installed(tracer):
        CampaignExecutor(jobs=1).execute(order_cells())
    campaign = [span for span in tracer.spans if span.name == "campaign"]
    cells = [span for span in tracer.spans if span.name == "cell"]
    assert len(campaign) == 1 and campaign[0].depth == 0
    assert cells and all(span.depth > 0 for span in cells)
    assert {span.tid for span in tracer.spans} == {os.getpid()}
