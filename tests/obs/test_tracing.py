"""Tracing: span nesting, process re-basing, Chrome trace export."""

import json

import pytest

from repro.obs import tracing
from repro.obs.tracing import Span, Tracer


def test_spans_record_nesting_depth():
    tracer = Tracer()
    with tracer.span("outer", cat="test"):
        with tracer.span("inner", cat="test"):
            pass
    # spans append on exit, so the inner one lands first
    inner, outer = tracer.spans
    assert (inner.name, inner.depth) == ("inner", 1)
    assert (outer.name, outer.depth) == ("outer", 0)
    assert outer.dur_usec >= inner.dur_usec


def test_span_records_on_exception():
    tracer = Tracer()
    with pytest.raises(RuntimeError):
        with tracer.span("doomed"):
            raise RuntimeError("boom")
    assert [span.name for span in tracer.spans] == ["doomed"]


def test_span_keeps_attribute_args():
    tracer = Tracer()
    with tracer.span("run", cat="engine", label="SR", value=4):
        pass
    assert tracer.spans[0].args == {"label": "SR", "value": 4}


def test_span_payload_round_trip():
    span = Span(
        name="cell",
        cat="executor",
        start_usec=100.0,
        dur_usec=50.0,
        pid=1,
        tid=2,
        args={"profile": "x"},
        depth=1,
    )
    assert Span.from_payload(span.to_payload()) == span


def test_absorb_rebases_pid_and_keeps_worker_tid():
    parent = Tracer(pid=100, tid=100)
    worker = Tracer(pid=200, tid=200)
    with worker.span("cell"):
        pass
    parent.absorb([span.to_payload() for span in worker.spans])
    absorbed = parent.spans[0]
    assert absorbed.pid == 100
    assert absorbed.tid == 200


def test_chrome_export_schema():
    parent = Tracer(pid=1, tid=1)
    with parent.span("campaign", cat="executor"):
        pass
    worker = Tracer(pid=2, tid=2)
    with worker.span("cell"):
        pass
    parent.absorb([span.to_payload() for span in worker.spans])
    document = parent.to_chrome()
    assert set(document) == {"traceEvents", "displayTimeUnit"}
    events = document["traceEvents"]
    metadata = [event for event in events if event["ph"] == "M"]
    lanes = {event["args"]["name"] for event in metadata}
    assert lanes == {"main", "worker-2"}
    complete = [event for event in events if event["ph"] == "X"]
    assert {event["name"] for event in complete} == {"campaign", "cell"}
    for event in complete:
        assert event["ts"] >= 0
        assert event["dur"] >= 0
        assert event["pid"] == 1
    json.dumps(document)  # must be JSON-serialisable as-is


def test_write_emits_loadable_json(tmp_path):
    tracer = Tracer()
    with tracer.span("campaign"):
        pass
    path = tracer.write(tmp_path / "trace.json")
    document = json.loads(path.read_text())
    assert any(event["ph"] == "X" for event in document["traceEvents"])


def test_module_span_is_noop_when_disabled():
    assert tracing.current() is None
    assert tracing.span("anything") is tracing._NULL
    with tracing.span("anything", cat="x", detail=1):
        pass  # the shared nullcontext must be reusable


def test_module_span_records_when_installed():
    tracer = tracing.install()
    try:
        with tracing.span("run", cat="engine"):
            pass
        assert [span.name for span in tracer.spans] == ["run"]
    finally:
        tracing.uninstall()


def test_installed_none_shadows_active_tracer():
    outer = tracing.install()
    try:
        with tracing.installed(None):
            assert tracing.current() is None
            with tracing.span("lost"):
                pass
        assert tracing.current() is outer
        assert outer.spans == []
    finally:
        tracing.uninstall()


def test_absorb_many_workers_distinct_lanes_no_negative_times():
    """Parallel campaigns (--jobs > 1): each worker's spans land on its
    own lane and export re-bases everything against the parent origin —
    no negative timestamps or durations, whichever process started
    first."""
    parent = Tracer(pid=1, tid=1)
    with parent.span("campaign", cat="executor"):
        pass
    workers = []
    for worker_pid in (201, 202, 203):
        worker = Tracer(pid=worker_pid, tid=worker_pid)
        # worker origins precede the parent's earliest span on purpose:
        # the export origin must be the min over *all* spans
        worker.spans.append(
            Span(
                name="cell",
                cat="executor",
                start_usec=parent.spans[0].start_usec - 500.0 * worker_pid,
                dur_usec=250.0,
                pid=worker_pid,
                tid=worker_pid,
                args={},
            )
        )
        workers.append(worker)
    for worker in workers:
        parent.absorb([span.to_payload() for span in worker.spans])

    assert {span.tid for span in parent.spans} == {1, 201, 202, 203}
    assert all(span.pid == 1 for span in parent.spans)

    document = parent.to_chrome()
    complete = [e for e in document["traceEvents"] if e["ph"] == "X"]
    assert len(complete) == 4
    assert all(e["ts"] >= 0 for e in complete)
    assert all(e["dur"] >= 0 for e in complete)
    assert min(e["ts"] for e in complete) == 0.0
    lanes = {
        e["args"]["name"]
        for e in document["traceEvents"]
        if e["ph"] == "M"
    }
    assert lanes == {"main", "worker-201", "worker-202", "worker-203"}


def test_add_lane_labels_synthetic_tid():
    tracer = Tracer(pid=1, tid=1)
    with tracer.span("cell"):
        pass
    tracer.add_lane(1 << 22, "device ch0")
    tracer.add_events(
        [
            {
                "name": "read",
                "cat": "device",
                "ph": "X",
                "ts": tracer.spans[0].start_usec + 1.0,
                "dur": 2.0,
                "tid": 1 << 22,
                "args": {},
            }
        ]
    )
    document = tracer.to_chrome()
    labels = {
        e["tid"]: e["args"]["name"]
        for e in document["traceEvents"]
        if e["ph"] == "M"
    }
    assert labels[1 << 22] == "device ch0"
    assert labels[1] == "main"
    device = [e for e in document["traceEvents"] if e.get("cat") == "device"]
    assert len(device) == 1
    assert device[0]["ts"] >= 0
    assert device[0]["pid"] == 1  # defaulted onto the tracer's process


def test_extra_events_rebase_against_common_origin():
    tracer = Tracer(pid=1, tid=1)
    with tracer.span("cell"):
        pass
    span_start = tracer.spans[0].start_usec
    # an injected event *earlier* than every span moves the origin
    tracer.add_events(
        [
            {
                "name": "early",
                "cat": "device",
                "ph": "X",
                "ts": span_start - 100.0,
                "dur": 1.0,
                "tid": 7,
                "args": {},
            }
        ]
    )
    document = tracer.to_chrome()
    complete = {e["name"]: e for e in document["traceEvents"] if e["ph"] == "X"}
    assert complete["early"]["ts"] == 0.0
    assert abs(complete["cell"]["ts"] - 100.0) < 1e-6
