"""Tracing: span nesting, process re-basing, Chrome trace export."""

import json

import pytest

from repro.obs import tracing
from repro.obs.tracing import Span, Tracer


def test_spans_record_nesting_depth():
    tracer = Tracer()
    with tracer.span("outer", cat="test"):
        with tracer.span("inner", cat="test"):
            pass
    # spans append on exit, so the inner one lands first
    inner, outer = tracer.spans
    assert (inner.name, inner.depth) == ("inner", 1)
    assert (outer.name, outer.depth) == ("outer", 0)
    assert outer.dur_usec >= inner.dur_usec


def test_span_records_on_exception():
    tracer = Tracer()
    with pytest.raises(RuntimeError):
        with tracer.span("doomed"):
            raise RuntimeError("boom")
    assert [span.name for span in tracer.spans] == ["doomed"]


def test_span_keeps_attribute_args():
    tracer = Tracer()
    with tracer.span("run", cat="engine", label="SR", value=4):
        pass
    assert tracer.spans[0].args == {"label": "SR", "value": 4}


def test_span_payload_round_trip():
    span = Span(
        name="cell",
        cat="executor",
        start_usec=100.0,
        dur_usec=50.0,
        pid=1,
        tid=2,
        args={"profile": "x"},
        depth=1,
    )
    assert Span.from_payload(span.to_payload()) == span


def test_absorb_rebases_pid_and_keeps_worker_tid():
    parent = Tracer(pid=100, tid=100)
    worker = Tracer(pid=200, tid=200)
    with worker.span("cell"):
        pass
    parent.absorb([span.to_payload() for span in worker.spans])
    absorbed = parent.spans[0]
    assert absorbed.pid == 100
    assert absorbed.tid == 200


def test_chrome_export_schema():
    parent = Tracer(pid=1, tid=1)
    with parent.span("campaign", cat="executor"):
        pass
    worker = Tracer(pid=2, tid=2)
    with worker.span("cell"):
        pass
    parent.absorb([span.to_payload() for span in worker.spans])
    document = parent.to_chrome()
    assert set(document) == {"traceEvents", "displayTimeUnit"}
    events = document["traceEvents"]
    metadata = [event for event in events if event["ph"] == "M"]
    lanes = {event["args"]["name"] for event in metadata}
    assert lanes == {"main", "worker-2"}
    complete = [event for event in events if event["ph"] == "X"]
    assert {event["name"] for event in complete} == {"campaign", "cell"}
    for event in complete:
        assert event["ts"] >= 0
        assert event["dur"] >= 0
        assert event["pid"] == 1
    json.dumps(document)  # must be JSON-serialisable as-is


def test_write_emits_loadable_json(tmp_path):
    tracer = Tracer()
    with tracer.span("campaign"):
        pass
    path = tracer.write(tmp_path / "trace.json")
    document = json.loads(path.read_text())
    assert any(event["ph"] == "X" for event in document["traceEvents"])


def test_module_span_is_noop_when_disabled():
    assert tracing.current() is None
    assert tracing.span("anything") is tracing._NULL
    with tracing.span("anything", cat="x", detail=1):
        pass  # the shared nullcontext must be reusable


def test_module_span_records_when_installed():
    tracer = tracing.install()
    try:
        with tracing.span("run", cat="engine"):
            pass
        assert [span.name for span in tracer.spans] == ["run"]
    finally:
        tracing.uninstall()


def test_installed_none_shadows_active_tracer():
    outer = tracing.install()
    try:
        with tracing.installed(None):
            assert tracing.current() is None
            with tracing.span("lost"):
                pass
        assert tracing.current() is outer
        assert outer.spans == []
    finally:
        tracing.uninstall()
