"""Progress reporting: logging configuration and the per-cell line."""

import io
import logging

from repro.obs.progress import (
    LOGGER_NAME,
    ProgressReporter,
    configure_logging,
    get_logger,
    metrics_table,
)


def _flagged_handlers(logger):
    return [
        handler
        for handler in logger.handlers
        if getattr(handler, "_repro_progress_handler", False)
    ]


def teardown_function(function):
    logger = logging.getLogger(LOGGER_NAME)
    for handler in _flagged_handlers(logger):
        logger.removeHandler(handler)


def test_verbosity_maps_to_levels():
    assert configure_logging(2).level == logging.DEBUG
    assert configure_logging(1).level == logging.DEBUG
    assert configure_logging(0).level == logging.INFO
    assert configure_logging(-1).level == logging.WARNING
    assert configure_logging(-2).level == logging.ERROR


def test_reconfiguring_replaces_only_our_handler():
    foreign = logging.NullHandler()
    logger = logging.getLogger(LOGGER_NAME)
    logger.addHandler(foreign)
    try:
        configure_logging(0)
        configure_logging(1)
        assert len(_flagged_handlers(logger)) == 1
        assert foreign in logger.handlers
    finally:
        logger.removeHandler(foreign)


def test_reporter_logs_cell_line():
    from repro.core.executor import CampaignCell, CellOutcome
    from repro.units import SEC

    stream = io.StringIO()
    configure_logging(0, stream=stream)
    cell = CampaignCell(
        profile="p", capacity=None, benchmark="b", experiment="exp.one",
        io_size=1, io_count=1,
    )
    reporter = ProgressReporter(total=2, label="dev")
    reporter.status("warming up")
    reporter.cell_done(
        CellOutcome(cell=cell, payload={}, cached=True), done=1, total=2
    )
    reporter.cell_done(
        CellOutcome(cell=cell, payload={}, wall_usec=1.5 * SEC), done=2, total=2
    )
    lines = stream.getvalue().splitlines()
    assert lines[0] == "warming up"
    assert lines[1].startswith("[1/2] dev:exp.one")
    assert "cached" in lines[1]
    assert "[2/2]" in lines[2] and "ran" in lines[2] and "1.50s" in lines[2]


def test_quiet_suppresses_progress():
    stream = io.StringIO()
    configure_logging(-1, stream=stream)
    ProgressReporter(total=1).status("should not appear")
    get_logger().warning("should appear")
    assert stream.getvalue() == "should appear\n"


def test_metrics_table_formats_ints_and_floats():
    table = metrics_table({"chip.page_reads": 4.0, "device.wait": 1.234}, title="t")
    assert table.startswith("t\n")
    assert "chip.page_reads" in table
    assert " 4" in table
    assert "1.23" in table
