"""Progress reporting: logging configuration and the per-cell line."""

import io
import logging

from repro.obs.progress import (
    LOGGER_NAME,
    ProgressReporter,
    configure_logging,
    get_logger,
    metrics_table,
)


def _flagged_handlers(logger):
    return [
        handler
        for handler in logger.handlers
        if getattr(handler, "_repro_progress_handler", False)
    ]


def teardown_function(function):
    logger = logging.getLogger(LOGGER_NAME)
    for handler in _flagged_handlers(logger):
        logger.removeHandler(handler)


def test_verbosity_maps_to_levels():
    assert configure_logging(2).level == logging.DEBUG
    assert configure_logging(1).level == logging.DEBUG
    assert configure_logging(0).level == logging.INFO
    assert configure_logging(-1).level == logging.WARNING
    assert configure_logging(-2).level == logging.ERROR


def test_reconfiguring_replaces_only_our_handler():
    foreign = logging.NullHandler()
    logger = logging.getLogger(LOGGER_NAME)
    logger.addHandler(foreign)
    try:
        configure_logging(0)
        configure_logging(1)
        assert len(_flagged_handlers(logger)) == 1
        assert foreign in logger.handlers
    finally:
        logger.removeHandler(foreign)


def test_reporter_logs_cell_line():
    from repro.core.executor import CampaignCell, CellOutcome
    from repro.units import SEC

    stream = io.StringIO()
    configure_logging(0, stream=stream)
    cell = CampaignCell(
        profile="p", capacity=None, benchmark="b", experiment="exp.one",
        io_size=1, io_count=1,
    )
    reporter = ProgressReporter(total=2, label="dev")
    reporter.status("warming up")
    reporter.cell_done(
        CellOutcome(cell=cell, payload={}, cached=True), done=1, total=2
    )
    reporter.cell_done(
        CellOutcome(cell=cell, payload={}, wall_usec=1.5 * SEC), done=2, total=2
    )
    lines = stream.getvalue().splitlines()
    assert lines[0] == "warming up"
    assert lines[1].startswith("[1/2] dev:exp.one")
    assert "cached" in lines[1]
    assert "[2/2]" in lines[2] and "ran" in lines[2] and "1.50s" in lines[2]


def test_quiet_suppresses_progress():
    stream = io.StringIO()
    configure_logging(-1, stream=stream)
    ProgressReporter(total=1).status("should not appear")
    get_logger().warning("should appear")
    assert stream.getvalue() == "should appear\n"


def test_metrics_table_formats_ints_and_floats():
    table = metrics_table({"chip.page_reads": 4.0, "device.wait": 1.234}, title="t")
    assert table.startswith("t\n")
    assert "chip.page_reads" in table
    assert " 4" in table
    assert "1.23" in table


def _outcome(cell, *, cached, wall_sec):
    from repro.core.executor import CellOutcome
    from repro.units import SEC

    return CellOutcome(
        cell=cell, payload={}, cached=cached, wall_usec=wall_sec * SEC
    )


def _cell():
    from repro.core.executor import CampaignCell

    return CampaignCell(
        profile="p", capacity=None, benchmark="b", experiment="exp.one",
        io_size=1, io_count=1,
    )


def test_eta_zero_before_any_cell_and_after_the_last():
    reporter = ProgressReporter(total=4)
    assert reporter.eta_seconds(0) == 0.0
    reporter.cell_done(_outcome(_cell(), cached=False, wall_sec=2.0), 4, 4)
    assert reporter.eta_seconds(4) == 0.0


def test_eta_tracks_uniform_cell_times():
    configure_logging(-2)  # silence
    reporter = ProgressReporter(total=4)
    for done in (1, 2):
        reporter.cell_done(
            _outcome(_cell(), cached=False, wall_sec=2.0), done, 4
        )
    # two identical 2 s cells seen, two remaining -> ~4 s
    assert reporter.eta_seconds(2) == 4.0


def test_eta_weights_cached_cells_separately():
    configure_logging(-2)
    reporter = ProgressReporter(total=8)
    # half the landed cells were millisecond cache hits, half 10 s runs;
    # a single blended EMA would estimate ~5 s per remaining cell even
    # if the tail is all hits — the split EMA keeps both signals
    for done in (1, 2):
        reporter.cell_done(
            _outcome(_cell(), cached=True, wall_sec=0.01), done, 8
        )
    for done in (3, 4):
        reporter.cell_done(
            _outcome(_cell(), cached=False, wall_sec=10.0), done, 8
        )
    eta = reporter.eta_seconds(4)
    # 4 remaining x (0.5 * 0.01 + 0.5 * 10.0) = ~20 s
    assert 19.0 < eta < 21.0


def test_eta_ema_follows_slowing_cells():
    configure_logging(-2)
    reporter = ProgressReporter(total=10)
    for done in range(1, 6):
        reporter.cell_done(
            _outcome(_cell(), cached=False, wall_sec=1.0), done, 10
        )
    flat = reporter.eta_seconds(5)
    reporter.cell_done(_outcome(_cell(), cached=False, wall_sec=5.0), 6, 10)
    slowed = reporter.eta_seconds(6)
    # 4 cells remain after the slow one; the EMA must have moved up
    assert slowed > flat * 4 / 5


def test_cell_line_carries_eta():
    import io as _io

    stream = _io.StringIO()
    configure_logging(0, stream=stream)
    reporter = ProgressReporter(total=2)
    reporter.cell_done(_outcome(_cell(), cached=False, wall_sec=1.5), 1, 2)
    line = stream.getvalue().splitlines()[0]
    assert "eta" in line
    assert "1.5s" in line
