"""Metrics: instrument semantics, snapshot delta/merge, pickling."""

import pickle
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    HistogramState,
    MetricsRegistry,
    MetricsSnapshot,
    current,
    diff_counts,
    install,
    installed,
    merge_counts,
    uninstall,
)


def test_counter_increments():
    counter = Counter()
    counter.inc()
    counter.inc(2.5)
    assert counter.value == 3.5


def test_counter_rejects_negative():
    with pytest.raises(ValueError):
        Counter().inc(-1)


def test_gauge_goes_up_and_down():
    gauge = Gauge()
    gauge.set(7)
    gauge.set(3)
    assert gauge.value == 3.0


def test_histogram_buckets_are_non_cumulative():
    histogram = Histogram(bounds=(10.0, 100.0))
    for value in (5, 50, 50, 500):
        histogram.observe(value)
    assert histogram.counts == [1, 2, 1]  # (..10], (10..100], overflow
    assert histogram.count == 4
    assert histogram.total == 605.0
    assert histogram.mean == pytest.approx(151.25)


def test_histogram_boundary_value_lands_in_lower_bucket():
    histogram = Histogram(bounds=(10.0, 100.0))
    histogram.observe(10.0)
    assert histogram.counts == [1, 0, 0]


def test_histogram_needs_bounds():
    with pytest.raises(ValueError):
        Histogram(bounds=())


def test_histogram_state_delta_and_merge():
    histogram = Histogram(bounds=(10.0,))
    histogram.observe(5)
    earlier = histogram.state()
    histogram.observe(50)
    later = histogram.state()
    delta = later.delta(earlier)
    assert delta.counts == (0, 1)
    assert delta.count == 1
    assert delta.total == 50.0
    merged = earlier.merge(delta)
    assert merged.counts == later.counts
    assert merged.count == later.count


def test_histogram_state_rejects_mismatched_bounds():
    a = Histogram(bounds=(10.0,)).state()
    b = Histogram(bounds=(20.0,)).state()
    with pytest.raises(ValueError):
        a.delta(b)
    with pytest.raises(ValueError):
        a.merge(b)


def test_registry_returns_same_instrument():
    registry = MetricsRegistry()
    assert registry.counter("a") is registry.counter("a")
    assert registry.gauge("g") is registry.gauge("g")
    assert registry.histogram("h") is registry.histogram("h")


def test_snapshot_delta_counters_subtract_gauges_keep_later():
    registry = MetricsRegistry()
    registry.counter("c").inc(2)
    registry.gauge("g").set(5)
    earlier = registry.snapshot()
    registry.counter("c").inc(3)
    registry.gauge("g").set(1)
    delta = registry.snapshot().delta(earlier)
    assert delta.counters["c"] == 3.0
    assert delta.gauges["g"] == 1.0


def test_snapshot_merge_counters_add_gauges_max():
    a = MetricsSnapshot(counters={"c": 2.0}, gauges={"g": 5.0})
    b = MetricsSnapshot(counters={"c": 3.0, "d": 1.0}, gauges={"g": 1.0})
    merged = a.merge(b)
    assert merged.counters == {"c": 5.0, "d": 1.0}
    assert merged.gauges == {"g": 5.0}


def test_snapshot_merge_histograms_add():
    left = Histogram(bounds=(10.0,))
    left.observe(5)
    right = Histogram(bounds=(10.0,))
    right.observe(50)
    merged = MetricsSnapshot(histograms={"h": left.state()}).merge(
        MetricsSnapshot(histograms={"h": right.state()})
    )
    assert merged.histograms["h"].counts == (1, 1)
    assert merged.histograms["h"].count == 2


def test_snapshot_dict_round_trip():
    registry = MetricsRegistry()
    registry.counter("c").inc(4)
    registry.gauge("g").set(2)
    registry.histogram("h", bounds=(10.0,)).observe(3)
    snapshot = registry.snapshot()
    restored = MetricsSnapshot.from_dict(snapshot.to_dict())
    assert restored == snapshot


def test_snapshot_pickles():
    registry = MetricsRegistry()
    registry.counter("c").inc(4)
    registry.histogram("h").observe(123.0)
    snapshot = registry.snapshot()
    assert pickle.loads(pickle.dumps(snapshot)) == snapshot


def _child_snapshot(amount):
    """Worker-side helper: build a registry and ship its snapshot home."""
    registry = MetricsRegistry()
    registry.counter("child.work").inc(amount)
    return registry.snapshot()


def test_snapshot_crosses_process_boundary():
    with ProcessPoolExecutor(max_workers=1) as pool:
        snapshot = pool.submit(_child_snapshot, 7).result()
    parent = MetricsRegistry()
    parent.counter("child.work").inc(1)
    parent.absorb(snapshot)
    assert parent.counter("child.work").value == 8.0


def test_absorb_folds_every_instrument():
    source = MetricsRegistry()
    source.counter("c").inc(2)
    source.gauge("g").set(9)
    source.histogram("h", bounds=(10.0,)).observe(5)
    target = MetricsRegistry()
    target.gauge("g").set(3)
    target.absorb(source.snapshot())
    assert target.counter("c").value == 2.0
    assert target.gauge("g").value == 9.0
    assert target.histogram("h", bounds=(10.0,)).counts == [1, 0]


def test_install_uninstall_current():
    assert current() is None
    registry = install()
    try:
        assert current() is registry
    finally:
        assert uninstall() is registry
    assert current() is None


def test_installed_none_shadows_active_registry():
    outer = install()
    try:
        with installed(None):
            assert current() is None
        assert current() is outer
    finally:
        uninstall()


def test_diff_counts_drops_unchanged_names():
    delta = diff_counts({"a": 5.0, "b": 2.0, "new": 1.0}, {"a": 5.0, "b": 1.0})
    assert delta == {"b": 1.0, "new": 1.0}


def test_merge_counts_skips_none():
    assert merge_counts({"a": 1.0}, None, {"a": 2.0, "b": 3.0}) == {
        "a": 3.0,
        "b": 3.0,
    }


# ----------------------------------------------------------------------
# observe_many and the engine's queue-occupancy sampling
# ----------------------------------------------------------------------

def test_histogram_observe_many_matches_loop():
    bounds = (1.0, 2.0, 4.0)
    bulk = Histogram(bounds)
    loop = Histogram(bounds)
    bulk.observe_many(2.0, 5)
    bulk.observe_many(8.0, 2)
    for _ in range(5):
        loop.observe(2.0)
    for _ in range(2):
        loop.observe(8.0)
    assert bulk.counts == loop.counts
    assert bulk.total == loop.total
    assert bulk.count == loop.count


def test_histogram_observe_many_edge_counts():
    histogram = Histogram((1.0,))
    histogram.observe_many(1.0, 0)  # no-op
    assert histogram.count == 0
    with pytest.raises(ValueError):
        histogram.observe_many(1.0, -1)


def test_engine_samples_queue_occupancy():
    """A queued engine run fills the occupancy gauge and the in-flight
    depth histogram; a synchronous run leaves them untouched."""
    from repro.core.engine import Engine
    from repro.core.patterns import baselines
    from repro.flashsim.profiles import build_device
    from repro.units import KIB, MIB

    spec = baselines(io_size=16 * KIB, io_count=32)["RR"]
    registry = install(MetricsRegistry())
    try:
        Engine(build_device("memoright", logical_bytes=4 * MIB)).run(spec)
        snap = registry.snapshot()
        assert "device.queue.occupancy" not in snap.gauges
        assert "device.queue.inflight_depth" not in snap.histograms

        Engine(build_device("memoright", logical_bytes=4 * MIB)).run(
            spec.with_(queue_depth=8)
        )
        snap = registry.snapshot()
        occupancy = snap.gauges["device.queue.occupancy"]
        assert 1.0 < occupancy <= 8.0
        histogram = snap.histograms["device.queue.inflight_depth"]
        assert histogram.count == 32  # one depth sample per submission
    finally:
        uninstall()


# ----------------------------------------------------------------------
# bucketed percentile estimation
# ----------------------------------------------------------------------

def test_percentile_interpolates_within_bucket():
    from repro.obs.metrics import Histogram

    histogram = Histogram(bounds=(100.0, 200.0))
    for _ in range(10):
        histogram.observe(150.0)  # all land in (100, 200]
    # rank q*10 observations into the second bucket: linear within it
    assert histogram.percentile(0.5) == 150.0
    assert histogram.percentile(1.0) == 200.0
    assert histogram.percentile(0.0) == 100.0


def test_percentile_first_bucket_interpolates_from_zero():
    from repro.obs.metrics import Histogram

    histogram = Histogram(bounds=(100.0, 200.0))
    histogram.observe_many(50.0, 4)
    assert histogram.percentile(0.5) == 50.0
    assert histogram.percentile(0.25) == 25.0


def test_percentile_overflow_clamps_to_last_bound():
    from repro.obs.metrics import Histogram

    histogram = Histogram(bounds=(100.0,))
    histogram.observe(1e9)
    assert histogram.percentile(0.99) == 100.0


def test_percentile_empty_histogram_is_zero():
    from repro.obs.metrics import Histogram

    assert Histogram().percentile(0.95) == 0.0


def test_percentile_rejects_out_of_range_fraction():
    import pytest

    from repro.obs.metrics import Histogram

    with pytest.raises(ValueError):
        Histogram().percentile(1.5)


def test_percentile_spans_buckets_monotonically():
    from repro.obs.metrics import Histogram

    histogram = Histogram(bounds=(10.0, 100.0, 1000.0))
    histogram.observe_many(5.0, 50)
    histogram.observe_many(50.0, 45)
    histogram.observe_many(500.0, 5)
    p50, p95, p99 = (
        histogram.percentile(0.50),
        histogram.percentile(0.95),
        histogram.percentile(0.99),
    )
    assert p50 <= p95 <= p99
    assert p50 <= 10.0  # median sits in the first bucket
    assert 10.0 < p95 <= 100.0
    assert 100.0 < p99 <= 1000.0


def test_percentile_on_state_matches_live_histogram():
    from repro.obs.metrics import Histogram

    histogram = Histogram()
    for value in (50.0, 500.0, 5_000.0, 50_000.0):
        histogram.observe(value)
    state = histogram.state()
    for q in (0.5, 0.95, 0.99):
        assert state.percentile(q) == histogram.percentile(q)


def test_histogram_table_shows_percentiles_not_buckets():
    from repro.obs.metrics import Histogram
    from repro.obs.progress import histogram_table

    histogram = Histogram(bounds=(100.0, 1000.0))
    histogram.observe_many(50.0, 10)
    table = histogram_table({"lat": histogram.state()}, title="t")
    assert table.startswith("t\n")
    for column in ("count", "mean", "p50", "p95", "p99"):
        assert column in table
    assert "10" in table  # the count, not raw bucket arrays
