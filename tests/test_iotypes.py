"""Shared IO types and the paper-data reference module."""

import pytest

from repro.flashsim.timing import CostAccumulator
from repro.iotypes import CompletedIO, IORequest, Mode
from repro.paperdata import (
    FIG5_MTRON,
    PHASES,
    TABLE3,
    table3_devices,
)
from repro.units import KIB


def test_mode_values():
    assert Mode("read") is Mode.READ
    assert Mode("write") is Mode.WRITE
    assert str(Mode.READ) == "read"


def test_request_validation():
    IORequest(0, 0, 4 * KIB, Mode.READ)
    with pytest.raises(ValueError):
        IORequest(0, 0, 0, Mode.READ)
    with pytest.raises(ValueError):
        IORequest(0, -1, 4 * KIB, Mode.READ)


def test_completed_io_timings():
    request = IORequest(0, 0, 4 * KIB, Mode.WRITE, scheduled_at=10.0)
    completed = CompletedIO(
        request=request,
        submitted_at=10.0,
        started_at=25.0,
        completed_at=125.0,
        cost=CostAccumulator(page_programs=2),
    )
    assert completed.response_usec == pytest.approx(115.0)
    assert completed.service_usec == pytest.approx(100.0)
    assert completed.response_usec > completed.service_usec  # queued


def test_completed_io_default_cost_is_fresh():
    request = IORequest(0, 0, 4 * KIB, Mode.READ)
    a = CompletedIO(request, 0.0, 0.0, 1.0)
    b = CompletedIO(request, 0.0, 0.0, 1.0)
    a.cost.page_reads += 1
    assert b.cost.page_reads == 0  # no shared mutable default


# ----------------------------------------------------------------------
# paper reference data sanity
# ----------------------------------------------------------------------

def test_table3_has_the_seven_presented_devices():
    assert len(TABLE3) == 7
    assert table3_devices() == list(TABLE3)


def test_table3_rows_internally_consistent():
    for name, row in TABLE3.items():
        # costs are positive and ordered: random writes dominate
        assert 0 < row.sr <= row.rw
        assert 0 < row.sw <= row.rw
        # locality fields are paired
        assert (row.locality_mb is None) == (row.locality_factor is None)
        assert row.partitions >= 1
        assert row.reverse > 0 and row.in_place > 0 and row.large_incr > 0


def test_pause_effect_only_on_the_two_high_end_ssds():
    with_pause = {name for name, row in TABLE3.items() if row.pause_rw is not None}
    assert with_pause == {"memoright", "mtron"}


def test_phase_anchors_match_table3():
    assert set(PHASES) == set(TABLE3)
    startups = {name for name, (__, has) in PHASES.items() if has}
    assert startups == {"memoright", "mtron"}
    assert PHASES["mtron"][0] == 128


def test_fig5_anchor_values():
    assert FIG5_MTRON["affected_reads"] == 3_000
    assert FIG5_MTRON["recommended_pause_sec"] > FIG5_MTRON["lingering_sec"]
