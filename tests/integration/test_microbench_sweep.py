"""Execution sweep: every experiment of all nine micro-benchmarks runs
end to end against real devices (small value subsets).

The builder unit tests check spec shapes; this sweep guarantees that
every builder's output actually *executes* — target spaces fit, timing
functions schedule, mixes interleave, parallel specs split — on both a
hybrid and a block-mapped device.
"""

import pytest

from repro.core import BenchContext, build_microbenchmark, rest_device
from repro.core.experiment import execute_spec
from repro.core.microbench import MICROBENCHMARKS
from repro.units import KIB, MSEC, SEC

from tests.conftest import make_device

#: small value subsets per micro-benchmark (full Table 1 ranges are
#: exercised by the benchmarks directory)
SMALL_VALUES = {
    "granularity": {"sizes": (4 * KIB, 32 * KIB)},
    "alignment": {"shifts": (0, 512)},
    "locality": {
        "multipliers_random": (4, 16),
        "multipliers_sequential": (4,),
    },
    "partitioning": {"partition_counts": (1, 4)},
    "order": {"increments": (-1, 0, 2)},
    "parallelism": {"degrees": (1, 2)},
    "mix": {"ratios": (2,)},
    "pause": {"pauses_usec": (0.5 * MSEC,)},
    "bursts": {"burst_sizes": (4,), "pause_usec": 10.0 * MSEC},
    "queue_depth": {"depths": (1, 4)},
}


@pytest.fixture(scope="module")
def sweep_devices():
    return {
        "hybrid": make_device(),
        "blockmap": make_device(ftl_kind="blockmap"),
    }


@pytest.mark.parametrize("name", sorted(MICROBENCHMARKS))
@pytest.mark.parametrize("kind", ("hybrid", "blockmap"))
def test_microbenchmark_executes(name, kind, sweep_devices):
    device = sweep_devices[kind]
    ctx = BenchContext(
        capacity=device.capacity, io_size=16 * KIB, io_count=16, seed=3
    )
    bench = build_microbenchmark(name, ctx, **SMALL_VALUES[name])
    for experiment in bench.experiments:
        for value in experiment.values:
            spec = experiment.spec_for(value)
            run = execute_spec(device, spec)
            stats = run.stats
            assert stats is not None and stats.count > 0, (name, value)
            assert stats.mean_usec > 0
            rest_device(device, 1 * SEC)
    device.check_invariants()
