"""Qualitative reproduction checks: the paper's headline shapes.

These assert *who wins, by roughly what factor, and where the
crossovers fall* — the reproduction contract for every major claim in
Section 5 — on the scaled devices.
"""

import numpy as np
import pytest

from repro.core import (
    baselines,
    detect_phases,
    enforce_random_state,
    execute,
    execute_mix,
    execute_parallel,
    rest_device,
)
from repro.core.patterns import (
    LocationKind,
    MixSpec,
    ParallelSpec,
    PatternSpec,
    TimingKind,
)
from repro.flashsim import build_device
from repro.iotypes import Mode
from repro.units import KIB, MIB, SEC


def steady_mean(device, spec):
    run = execute(device, spec)
    responses = np.array(run.trace.response_times())
    cut = detect_phases(responses).startup
    rest_device(device, 30 * SEC)
    return float(responses[cut:].mean())


@pytest.fixture(scope="module")
def mtron():
    device = build_device("mtron", logical_bytes=32 * MIB)
    enforce_random_state(device)
    rest_device(device, 60 * SEC)
    return device


def specs_for(device, io_count=512):
    return baselines(
        io_size=32 * KIB,
        io_count=io_count,
        random_target_size=device.capacity,
        sequential_target_size=device.capacity,
    )


def test_reads_cheap_writes_random_expensive(mtron):
    """Figure 6's backbone: SR ~= SW << RW; reads are excellent."""
    specs = specs_for(mtron)
    sr = steady_mean(mtron, specs["SR"])
    sw = steady_mean(mtron, specs["SW"])
    rw = steady_mean(mtron, specs["RW"])
    assert sw < 2.5 * sr
    assert rw > 8 * sw


def test_random_write_oscillation(mtron):
    """Figure 3: random writes oscillate between cheap writes and
    expensive reclamation, with a start-up phase on high-end SSDs."""
    specs = specs_for(mtron, io_count=768)
    run = execute(mtron, specs["RW"])
    rest_device(mtron, 60 * SEC)
    phases = detect_phases(run.trace.response_times())
    assert phases.has_startup
    assert phases.oscillates
    assert phases.expensive_level_usec > 10 * phases.cheap_level_usec


def test_underestimated_iocount_distorts_results(mtron):
    """Section 4.2's pitfall: measuring only the start-up phase
    underestimates random-write cost."""
    specs = specs_for(mtron, io_count=768)
    run = execute(mtron, specs["RW"])
    rest_device(mtron, 60 * SEC)
    responses = run.trace.response_times()
    startup = detect_phases(responses).startup
    short_mean = np.mean(responses[: max(8, startup // 2)])
    true_mean = np.mean(responses[startup:])
    assert short_mean < 0.5 * true_mean


def test_out_of_box_pitfall():
    """Section 4.1: out-of-the-box random writes look great; after the
    device has been written once, they degrade dramatically (Samsung:
    almost an order of magnitude)."""
    device = build_device("samsung", logical_bytes=32 * MIB)
    fresh_spec = PatternSpec(
        mode=Mode.WRITE,
        location=LocationKind.RANDOM,
        io_size=16 * KIB,
        io_count=256,
        target_size=device.capacity,
    )
    out_of_box = execute(device, fresh_spec).stats.mean_usec
    enforce_random_state(device)
    rest_device(device, 30 * SEC)
    enforced = steady_mean(device, fresh_spec.with_(seed=77, io_count=512))
    assert enforced > 4 * out_of_box


def test_locality_helps_random_writes(mtron):
    """Figure 8: random writes confined to a small area cost close to
    sequential writes; over the whole device they do not."""
    sw = steady_mean(mtron, specs_for(mtron)["SW"])
    focused = steady_mean(
        mtron,
        PatternSpec(
            mode=Mode.WRITE,
            location=LocationKind.RANDOM,
            io_size=32 * KIB,
            io_count=512,
            target_size=4 * MIB,
        ),
    )
    wide = steady_mean(mtron, specs_for(mtron)["RW"])
    assert focused < 4 * sw
    assert wide > 2.5 * focused


def test_pause_absorbs_reclamation_on_high_end(mtron):
    """Table 3's Pause column: inserting a pause equal to the RW cost
    makes random writes respond like sequential writes — on devices
    with asynchronous reclamation."""
    specs = specs_for(mtron)
    rw = steady_mean(mtron, specs["RW"])
    sw = steady_mean(mtron, specs["SW"])
    paused = steady_mean(
        mtron,
        specs["RW"].with_(timing=TimingKind.PAUSE, pause_usec=rw, seed=5),
    )
    assert paused < 3 * sw
    assert paused < rw / 3


def test_pause_does_not_help_low_end():
    device = build_device("kingston_dti", logical_bytes=16 * MIB)
    enforce_random_state(device)
    rest_device(device, 30 * SEC)
    specs = baselines(
        io_size=32 * KIB, io_count=128,
        random_target_size=device.capacity,
        sequential_target_size=device.capacity,
    )
    rw = steady_mean(device, specs["RW"])
    paused = steady_mean(
        device,
        specs["RW"].with_(timing=TimingKind.PAUSE, pause_usec=rw, seed=5),
    )
    assert paused > 0.7 * rw  # no benefit


def test_pause_saves_no_total_time(mtron):
    """Section 5.2: no true response-time savings — the total workload
    time with pauses is no shorter."""
    specs = specs_for(mtron, io_count=256)
    plain = execute(mtron, specs["RW"])
    plain_span = plain.trace[-1].completed_at - plain.trace[0].submitted_at
    rest_device(mtron, 60 * SEC)
    paused_spec = specs["RW"].with_(
        timing=TimingKind.PAUSE, pause_usec=8_000.0, seed=5
    )
    paused = execute(mtron, paused_spec)
    paused_span = paused.trace[-1].completed_at - paused.trace[0].submitted_at
    rest_device(mtron, 60 * SEC)
    assert paused_span >= plain_span * 0.9


def test_in_place_pathological_on_blockmap():
    """Table 3: in-place writes cost x40+ on the Kingston DTI."""
    device = build_device("kingston_dti", logical_bytes=16 * MIB)
    enforce_random_state(device)
    rest_device(device, 30 * SEC)
    sw = steady_mean(
        device,
        PatternSpec(
            mode=Mode.WRITE,
            location=LocationKind.SEQUENTIAL,
            io_size=32 * KIB,
            io_count=128,
        ),
    )
    # fill the target block completely first (a database page update
    # rewrites a page inside a fully populated block)
    block = device.geometry.block_size
    execute(
        device,
        PatternSpec(
            mode=Mode.WRITE,
            location=LocationKind.SEQUENTIAL,
            io_size=32 * KIB,
            io_count=block // (32 * KIB),
            target_offset=8 * MIB,
        ),
    )
    rest_device(device, 10 * SEC)
    in_place = steady_mean(
        device,
        PatternSpec(
            mode=Mode.WRITE,
            location=LocationKind.ORDERED,
            incr=0,
            io_size=32 * KIB,
            io_count=128,
            target_size=32 * KIB,
            target_offset=8 * MIB,
        ),
    )
    assert in_place > 20 * sw


def test_mix_neutrality(mtron):
    """Section 5.2: mixes do not blow up the combined cost (unlike
    disks, where mixing patterns is catastrophic)."""
    half = (mtron.capacity // 2 // (32 * KIB)) * 32 * KIB
    specs = baselines(
        io_size=32 * KIB, io_count=256, random_target_size=half,
        sequential_target_size=half,
    )
    sr = steady_mean(mtron, specs["SR"])
    rr = steady_mean(mtron, specs["RR"].with_(target_offset=half))
    mix = execute_mix(
        mtron,
        MixSpec(
            primary=specs["SR"],
            secondary=specs["RR"].with_(target_offset=half),
            ratio=1,
            io_count=256,
        ),
    )
    rest_device(mtron, 30 * SEC)
    expected = (sr + rr) / 2
    assert mix.stats.mean_usec == pytest.approx(expected, rel=0.3)


def test_parallelism_gains_nothing(mtron):
    """Section 5.2 / Hint 7: parallel submission does not improve
    throughput on flash."""
    base = PatternSpec(
        mode=Mode.READ,
        location=LocationKind.RANDOM,
        io_size=32 * KIB,
        io_count=256,
        target_size=(mtron.capacity // (32 * KIB) // 4) * 4 * 32 * KIB,
    )
    solo = execute(mtron, base)
    solo_span = solo.trace[-1].completed_at - solo.trace[0].submitted_at
    rest_device(mtron, 30 * SEC)
    par = execute_parallel(mtron, ParallelSpec(base=base, parallel_degree=4))
    par_span = max(r.trace[-1].completed_at for r in par.runs) - min(
        r.trace[0].submitted_at for r in par.runs
    )
    rest_device(mtron, 30 * SEC)
    assert par_span >= solo_span * 0.95


def test_high_end_beats_low_end_everywhere():
    """Section 5.3's second conclusion, at the 32 KiB operating point."""
    results = {}
    for name in ("memoright", "kingston_dti"):
        device = build_device(name, logical_bytes=16 * MIB)
        enforce_random_state(device)
        rest_device(device, 30 * SEC)
        specs = baselines(
            io_size=32 * KIB, io_count=192,
            random_target_size=device.capacity,
            sequential_target_size=device.capacity,
        )
        results[name] = {
            label: steady_mean(device, spec) for label, spec in specs.items()
        }
    for label in ("SR", "RR", "SW", "RW"):
        assert results["memoright"][label] < results["kingston_dti"][label]
    # and the gap explodes for random writes (x5 vs x50+)
    assert results["kingston_dti"]["RW"] > 20 * results["memoright"]["RW"]
