"""Behavioural smoke-coverage of the profiles without Table 3 rows.

The seven presented devices are pinned by the calibration tests; the
remaining Table 2 devices (GSKILL, Transcend 16 GB, Corsair, Kingston
SD) and the synthetic page-mapped reference must still behave like
flash: random writes cost more than sequential, reads are cheap, and
the simulator's invariants hold after a full workout.
"""

import numpy as np
import pytest

from repro.core import baselines, detect_phases, enforce_random_state, execute, rest_device
from repro.flashsim import build_device, profile_names
from repro.paperdata import TABLE3
from repro.units import KIB, MIB, SEC

OTHER_PROFILES = sorted(set(profile_names()) - set(TABLE3))


@pytest.mark.parametrize("name", OTHER_PROFILES)
def test_profile_flash_shape(name):
    device = build_device(name, logical_bytes=16 * MIB)
    enforce_random_state(device)
    rest_device(device, 60 * SEC)
    specs = baselines(
        io_size=32 * KIB,
        io_count=384,
        random_target_size=device.capacity,
        sequential_target_size=device.capacity,
    )
    means = {}
    for label in ("SR", "RR", "SW", "RW"):
        run = execute(device, specs[label])
        responses = np.array(run.trace.response_times())
        cut = detect_phases(responses).startup
        means[label] = float(responses[cut:].mean())
        rest_device(device, 30 * SEC)
    # flash shape: reads cheap and uniform, writes dearer, random writes
    # the most expensive operation
    assert means["RR"] >= means["SR"] * 0.95
    assert means["RW"] > means["RR"], name
    if name == "ideal_pagemap":
        # the page-mapped reference absorbs random writes almost
        # entirely (its generous spare pool rarely needs GC at this
        # scale) — the property the FTL ablation quantifies
        assert means["SW"] * 0.9 <= means["RW"] < 4 * means["SW"]
    else:
        # hybrids and block-maps pay real merges on random writes
        assert means["RW"] > 1.5 * means["SW"], name
    device.check_invariants()
