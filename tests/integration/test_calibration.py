"""Calibration regression tests: every Table 3 device's baselines must
stay near the paper's numbers.

These are the guardrails for profile edits — the benchmarks print
paper-vs-measured, but only a failing test stops a drive-by change from
silently de-calibrating a device.
"""

import numpy as np
import pytest

from repro.core import baselines, detect_phases, enforce_random_state, execute, rest_device
from repro.flashsim import build_device
from repro.paperdata import PHASES, TABLE3
from repro.units import KIB, MIB, SEC

#: measured-vs-paper tolerance for the 32 KiB baselines (multiplicative)
TOLERANCE = 2.5


def measure_baselines(name: str) -> dict[str, tuple[float, int]]:
    device = build_device(name, logical_bytes=32 * MIB)
    enforce_random_state(device)
    rest_device(device, 60 * SEC)
    specs = baselines(
        io_size=32 * KIB,
        io_count=768,
        random_target_size=device.capacity,
        sequential_target_size=device.capacity,
    )
    out = {}
    for label in ("SR", "RR", "SW", "RW"):
        run = execute(device, specs[label])
        responses = np.array(run.trace.response_times())
        startup = detect_phases(responses).startup
        out[label] = (float(responses[startup:].mean()) / 1000.0, startup)
        rest_device(device, 60 * SEC)
    return out


@pytest.mark.slow
@pytest.mark.parametrize("name", sorted(TABLE3))
def test_baselines_within_tolerance(name):
    measured = measure_baselines(name)
    paper = TABLE3[name]
    for label in ("SR", "RR", "SW", "RW"):
        value, __ = measured[label]
        expected = getattr(paper, label.lower())
        assert expected / TOLERANCE <= value <= expected * TOLERANCE, (
            f"{name}.{label}: measured {value:.2f} ms vs paper {expected} ms"
        )
    # ordering inside the row: random writes dominate, reads are cheap
    assert measured["RW"][0] > measured["SW"][0]
    assert measured["RW"][0] > measured["RR"][0]
    # start-up phase present exactly where the paper reports one
    __, paper_has_startup = PHASES[name]
    __, rw_startup = measured["RW"]
    if paper_has_startup:
        assert rw_startup > 30, f"{name}: expected an RW start-up phase"
    else:
        # a short cache-fill prefix is tolerated; a long one is not
        assert rw_startup <= 120, f"{name}: unexpected RW start-up {rw_startup}"


@pytest.mark.slow
def test_device_ordering_matches_table3():
    """The cross-device ordering of random-write costs is the paper's
    central empirical result; it must survive any recalibration."""
    measured = {name: measure_baselines(name)["RW"][0] for name in TABLE3}
    paper_order = sorted(TABLE3, key=lambda name: TABLE3[name].rw)
    measured_order = sorted(measured, key=measured.get)
    # the three high-end SSDs come first in both orders
    assert set(paper_order[:3]) == set(measured_order[:3])
    # and the three sticks/MLC devices come last in both
    assert set(paper_order[-3:]) == set(measured_order[-3:])
