"""CLI: every subcommand exercised on tiny devices."""

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


def test_devices_lists_profiles(capsys):
    code, out = run_cli(capsys, "devices")
    assert code == 0
    assert "memoright" in out
    assert "kingston_sd" in out
    assert "$943" in out


def test_run_subcommand(capsys):
    code, out = run_cli(
        capsys,
        "run",
        "--device", "mtron",
        "--capacity", "8M",
        "--mode", "write",
        "--location", "random",
        "--count", "64",
    )
    assert code == 0
    assert "RW on mtron" in out
    assert "mean=" in out


def test_run_with_plot(capsys):
    code, out = run_cli(
        capsys,
        "run",
        "--device", "mtron",
        "--capacity", "8M",
        "--count", "32",
        "--plot",
        "--skip-state",
    )
    assert code == 0
    assert "IO number" in out


def test_microbench_subcommand(capsys):
    code, out = run_cli(
        capsys,
        "microbench",
        "granularity",
        "--device", "kingston_dti",
        "--capacity", "8M",
        "--count", "16",
        "--pattern", "SW",
    )
    assert code == 0
    assert "granularity/SW" in out
    assert "IOSize" in out


def test_phases_subcommand(capsys):
    code, out = run_cli(
        capsys,
        "phases",
        "--device", "mtron",
        "--capacity", "16M",
        "--count", "384",
    )
    assert code == 0
    assert "startup=" in out
    assert "bounds:" in out


def test_pause_subcommand(capsys):
    code, out = run_cli(
        capsys,
        "pause",
        "--device", "kingston_dti",
        "--capacity", "8M",
        "--reads-after", "128",
    )
    assert code == 0
    assert "recommended pause" in out


def test_hints_subcommand(capsys):
    code, out = run_cli(
        capsys,
        "hints",
        "--device", "mtron",
        "--capacity", "16M",
    )
    assert code == 0
    assert "HOLDS" in out
    assert "Flash devices do incur latency" in out


@pytest.mark.slow
def test_table3_subcommand(capsys):
    code, out = run_cli(capsys, "table3", "kingston_dti", "--classify")
    assert code == 0
    assert "kingston_dti" in out
    assert "(paper: Kingston DTI)" in out
    assert "low-end" in out


def test_autotune_subcommand(capsys):
    code, out = run_cli(
        capsys,
        "autotune",
        "--device", "mtron",
        "--capacity", "16M",
        "--ci", "0.2",
        "--max-ios", "1024",
    )
    assert code == 0
    assert "converged" in out or "budget hit" in out
    assert "IOIgnore=" in out


def test_energy_subcommand(capsys):
    code, out = run_cli(
        capsys,
        "energy",
        "--device", "kingston_dti",
        "--capacity", "8M",
        "--count", "48",
    )
    assert code == 0
    assert "uJ per IO" in out
    assert "RW" in out


def test_lifetime_subcommand(capsys):
    code, out = run_cli(
        capsys,
        "lifetime",
        "--device", "mtron",
        "--capacity", "16M",
        "--count", "192",
        "--pattern", "RW",
    )
    assert code == 0
    assert "wear now:" in out
    assert "projection under sustained RW" in out


def test_campaign_and_report_subcommands(capsys, tmp_path):
    code, out = run_cli(
        capsys,
        "campaign",
        "order",
        "--device", "kingston_dti",
        "--capacity", "8M",
        "--count", "16",
        "--label", "t1",
        "--out", str(tmp_path),
    )
    assert code == 0
    assert "campaign archived" in out
    archive = tmp_path / "t1.json"
    assert archive.exists()

    code, out = run_cli(capsys, "report", str(archive))
    assert code == 0
    assert "# uFLIP campaign: t1" in out
    assert "## order/SW" in out

    # compare a campaign against itself: no regressions
    out_md = tmp_path / "report.md"
    code, out = run_cli(
        capsys, "report", str(archive), "--compare", str(archive),
        "--out", str(out_md),
    )
    assert code == 0
    assert out_md.exists()
    assert "no experiment regressed" in out_md.read_text()


def test_replay_subcommand(capsys, tmp_path):
    # capture a small trace first
    from repro.core import baselines, execute
    from repro.flashsim import build_device
    from repro.units import KIB, MIB

    source = build_device("mtron", logical_bytes=8 * MIB)
    spec = baselines(
        io_size=32 * KIB, io_count=24,
        random_target_size=source.capacity,
    )["RW"]
    run = execute(source, spec)
    trace_path = tmp_path / "trace.csv"
    run.trace.to_csv(trace_path)

    code, out = run_cli(
        capsys,
        "replay",
        str(trace_path),
        "--device", "memoright",
        "--capacity", "8M",
    )
    assert code == 0
    assert "replayed 24 IOs on memoright" in out
    assert "speedup" in out
