"""End-to-end: the complete uFLIP methodology pipeline on one device.

Mirrors the paper's workflow (Section 5.1): enforce the random state,
measure start-up/period, derive run control, determine the inter-run
pause, build a benchmark plan over several micro-benchmarks, execute
it, and check that the results are coherent.
"""

import pytest

from repro.core import (
    BenchContext,
    BenchmarkPlan,
    baselines,
    build_microbenchmark,
    determine_pause,
    enforce_random_state,
    measure_phases,
    rest_device,
    run_control_for,
)
from repro.flashsim import build_device
from repro.units import KIB, MIB, SEC


@pytest.mark.slow
def test_full_methodology_pipeline():
    device = build_device("mtron", logical_bytes=32 * MIB)

    # 1. state enforcement
    report = enforce_random_state(device)
    assert report.bytes_written >= device.capacity
    rest_device(device, 60 * SEC)

    # 2. start-up and running phases (Section 4.2)
    specs = baselines(
        io_size=32 * KIB,
        io_count=512,
        random_target_size=device.capacity,
        sequential_target_size=device.capacity,
    )
    phases = measure_phases(device, specs)
    io_ignore, io_count = run_control_for(
        phases.startup_bound, phases.period_bound
    )
    assert io_ignore > 0  # this device has an RW start-up phase
    rest_device(device, 60 * SEC)

    # 3. inter-run pause (Section 4.3)
    pause = determine_pause(
        device, reads_before=128, write_count=192, reads_after=2048
    )
    assert pause.recommended_pause_usec >= 1.0 * SEC
    rest_device(device, pause.recommended_pause_usec)

    # 4. benchmark plan over several micro-benchmarks
    ctx = BenchContext(
        capacity=device.capacity,
        io_size=32 * KIB,
        io_count=min(io_count, 160),
        io_ignore=min(io_ignore, 100),
    )
    experiments = []
    for name in ("granularity", "locality", "order"):
        bench = build_microbenchmark(
            name,
            ctx,
            **(
                {"sizes": (8 * KIB, 32 * KIB)}
                if name == "granularity"
                else {"increments": (-1, 0, 1)}
                if name == "order"
                else {"multipliers_random": (16, 256), "multipliers_sequential": (16,)}
            ),
        )
        experiments.extend(bench.experiments)
    plan = BenchmarkPlan.build(
        experiments, capacity=device.capacity, align=device.geometry.block_size
    )

    enforcements = []

    def enforce(dev):
        enforcements.append(1)
        enforce_random_state(dev, seed=len(enforcements))

    results = plan.execute(
        device, enforce, pause_usec=pause.recommended_pause_usec
    )

    # 5. coherence of the results
    assert len(results) == len(experiments)
    granularity_rw = results["granularity/RW"]
    small, large = granularity_rw.rows[0], granularity_rw.rows[-1]
    assert small.value < large.value
    assert all(row.mean_usec > 0 for row in granularity_rw.rows)
    locality_rw = results["locality/RW"]
    focused = locality_rw.row_for(16).mean_usec
    wide = locality_rw.row_for(256).mean_usec
    assert focused < wide
    device.check_invariants()
