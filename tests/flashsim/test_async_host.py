"""The queued host and NCQ device interface past depth 1.

Depth-1 bit-equivalence lives in ``tests/core/test_async_equivalence``;
this module covers what only exists *above* depth 1: channel overlap,
out-of-order completions landing in submission-order trace rows,
determinism across repeated runs, the paced-pattern recurrence, and the
queue's error edges (overflow, drain with IOs in flight).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.generator import IOProgram, PatternGenerator
from repro.core.patterns import PatternSpec, TimingKind, baselines
from repro.errors import QueueError
from repro.flashsim.host import AsyncHost, ParallelHost, SyncHost
from repro.flashsim.profiles import build_device
from repro.flashsim.timing import TimingSpec
from repro.units import KIB, MIB

from ..conftest import make_device

#: a four-channel timing spec for the small conftest geometry
FOUR_CHANNELS = TimingSpec(parallelism=4.0)


def _program(lbas, sizes, writes, gaps=None) -> IOProgram:
    count = len(lbas)
    return IOProgram(
        lbas=np.asarray(lbas, dtype=np.int64),
        sizes=np.asarray(sizes, dtype=np.int64),
        writes=np.asarray(writes, dtype=np.bool_),
        gaps=(
            np.zeros(count, dtype=np.float64)
            if gaps is None
            else np.asarray(gaps, dtype=np.float64)
        ),
    )


def _read_program(count: int, io_size: int = 4 * KIB) -> IOProgram:
    return _program(
        lbas=[(i * io_size) % (1 * MIB) for i in range(count)],
        sizes=[io_size] * count,
        writes=[False] * count,
    )


def test_queued_reads_overlap_across_channels():
    """At depth 4 on a four-channel device the run's makespan shrinks
    toward 1/4 of the synchronous one."""
    sync_device = make_device(timing=FOUR_CHANNELS)
    async_device = make_device(timing=FOUR_CHANNELS)
    program = _read_program(32)
    sync_trace = SyncHost(sync_device).run_program(program)
    async_trace = AsyncHost(async_device).run_program(program, queue_depth=4)
    sync_span = float(sync_trace.column("completed_at").max())
    async_span = float(async_trace.column("completed_at").max())
    assert async_span < sync_span
    # reads are uniform, so four channels should cut close to 4x
    assert async_span < 0.35 * sync_span
    assert async_device.in_flight == 0


def test_out_of_order_completions_land_in_submission_order():
    """A slow write followed by fast reads completes out of order; the
    trace must still be row-per-submission-index."""
    device = make_device(timing=FOUR_CHANNELS)
    page = device.geometry.page_size
    program = _program(
        lbas=[0, 8 * page, 16 * page, 24 * page],
        sizes=[16 * page, page, page, page],
        writes=[True, False, False, False],
    )
    trace = AsyncHost(device).run_program(program, queue_depth=4)
    completed = trace.column("completed_at")
    # the big write (row 0) outlives at least one of the later reads
    assert completed[0] > completed[1:].min()
    assert list(trace.column("index")) == [0, 1, 2, 3]
    submitted = trace.column("submitted_at")
    assert (np.diff(submitted) >= 0).all()
    # row columns mirror the program, not the completion interleaving
    assert list(trace.column("lba")) == list(program.lbas)
    assert list(trace.column("write")) == list(program.writes)


def test_repeated_queued_runs_identical():
    """Same program, fresh identical devices: byte-identical traces and
    equal fingerprints run after run."""
    spec = baselines(io_size=16 * KIB, io_count=64)["RR"]
    results = []
    for _ in range(2):
        device = build_device("memoright", logical_bytes=4 * MIB)
        trace = AsyncHost(device).run_program(
            PatternGenerator(spec).program(), queue_depth=8
        )
        results.append((trace.to_csv(), device.fingerprint()))
    assert results[0] == results[1]


def test_paced_pattern_stays_synchronous_at_any_depth():
    """Every positive gap waits on the previous completion, so a Pause
    pattern produces the synchronous trace even at depth 8."""
    spec = baselines(io_size=16 * KIB, io_count=48)["RW"].with_(
        timing=TimingKind.PAUSE, pause_usec=500.0
    )
    sync_device = build_device("memoright", logical_bytes=4 * MIB)
    async_device = build_device("memoright", logical_bytes=4 * MIB)
    sync_trace = SyncHost(sync_device).run_program(
        PatternGenerator(spec).program()
    )
    async_trace = AsyncHost(async_device).run_program(
        PatternGenerator(spec).program(), queue_depth=8
    )
    assert sync_trace.to_csv() == async_trace.to_csv()
    assert sync_device.fingerprint() == async_device.fingerprint()


def test_burst_pattern_overlaps_only_within_bursts():
    """Burst gaps separate groups; IOs inside a group overlap, so a
    queued burst run finishes earlier but keeps the group boundaries."""
    spec = baselines(io_size=16 * KIB, io_count=32)["RR"].with_(
        timing=TimingKind.BURST, pause_usec=10_000.0, burst=8
    )
    sync_device = build_device("memoright", logical_bytes=4 * MIB)
    async_device = build_device("memoright", logical_bytes=4 * MIB)
    sync_trace = SyncHost(sync_device).run_program(
        PatternGenerator(spec).program()
    )
    async_trace = AsyncHost(async_device).run_program(
        PatternGenerator(spec).program(), queue_depth=8
    )
    async_span = float(async_trace.column("completed_at").max())
    sync_span = float(sync_trace.column("completed_at").max())
    assert async_span < sync_span
    # the inter-burst pauses dominate: both runs still pay 3 full gaps
    assert async_span > 3 * spec.pause_usec


def test_submit_past_queue_depth_raises():
    device = make_device(timing=FOUR_CHANNELS)
    device.queue_depth = 2
    device._queue.depth = 2
    page = device.geometry.page_size
    device.submit_async(0, page, False, now=0.0, tag=0)
    device.submit_async(page, page, False, now=0.0, tag=1)
    with pytest.raises(QueueError):
        device.submit_async(2 * page, page, False, now=0.0, tag=2)


def test_drain_with_inflight_ios_raises():
    device = make_device(timing=FOUR_CHANNELS)
    device.submit_async(0, device.geometry.page_size, False, now=0.0, tag=0)
    with pytest.raises(QueueError):
        device.drain()
    device.pop_next_completion()
    device.drain()  # empty queue drains fine


def test_poll_completions_respects_horizon():
    device = make_device(timing=FOUR_CHANNELS)
    page = device.geometry.page_size
    first = device.submit_async(0, page, False, now=0.0, tag=0)
    second = device.submit_async(page, 4 * page, False, now=0.0, tag=1)
    assert first.completed_at < second.completed_at
    early = device.poll_completions(first.completed_at)
    assert [entry.tag for entry in early] == [0]
    rest = device.poll_completions(second.completed_at)
    assert [entry.tag for entry in rest] == [1]
    assert device.in_flight == 0


def test_pop_empty_queue_raises():
    device = make_device(timing=FOUR_CHANNELS)
    with pytest.raises(QueueError):
        device.pop_next_completion()


def test_snapshot_restore_preserves_inflight_queue():
    """A snapshot with queued IOs restores them; fingerprints track the
    pending set."""
    device = make_device(timing=FOUR_CHANNELS)
    page = device.geometry.page_size
    device.submit_async(0, page, False, now=0.0, tag=0)
    device.submit_async(page, page, False, now=0.0, tag=1)
    snap = device.snapshot()
    fp_pending = device.fingerprint()
    device.pop_next_completion()
    device.pop_next_completion()
    assert device.fingerprint() != fp_pending
    device.restore(snap)
    assert device.in_flight == 2
    assert device.fingerprint() == fp_pending
    tags = [device.pop_next_completion().tag for _ in range(2)]
    assert tags == [0, 1]


def test_queue_occupancy_counters_monotone():
    device = make_device(timing=FOUR_CHANNELS)
    program = _read_program(16)
    AsyncHost(device).run_program(program, queue_depth=4)
    counts = device.metrics()
    assert counts["device.queue.submitted"] == 16.0
    assert counts["device.queue.active_usec"] > 0.0
    # mean in-flight depth while active must land in (1, depth]
    occupancy = (
        counts["device.queue.depth_time_usec"]
        / counts["device.queue.active_usec"]
    )
    assert 1.0 < occupancy <= 4.0
    assert counts["device.queue.at_depth_4"] > 0.0


def test_parallel_host_unaffected_by_queue_plumbing():
    """ParallelHost still runs the synchronous single-queue model, and
    repeated runs stay deterministic."""
    spec = baselines(io_size=16 * KIB, io_count=24)["SW"]
    fingerprints = []
    for _ in range(2):
        device = build_device("memoright", logical_bytes=4 * MIB)
        host = ParallelHost(device)
        programs = [
            PatternGenerator(spec.with_(seed=spec.seed + p)).program()
            for p in range(3)
        ]
        traces = host.run_programs(programs)
        assert all(len(t) == 24 for t in traces)
        fingerprints.append(device.fingerprint())
    assert fingerprints[0] == fingerprints[1]
