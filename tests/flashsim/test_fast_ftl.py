"""FAST FTL: shared random logs, the single sequential log, volume-
proportional absorption."""

import random

import pytest

from repro.errors import FTLError
from repro.flashsim.chip import ERASED, FlashChip
from repro.flashsim.ftl.fast import FastConfig, FastFTL
from repro.flashsim.geometry import Geometry
from repro.flashsim.timing import CostAccumulator
from repro.units import KIB, MIB

PPB = 8


@pytest.fixture
def fast_ftl(geometry, chip):
    return FastFTL(geometry, chip, FastConfig(shared_log_blocks=4))


def write(ftl, lpage, token):
    cost = CostAccumulator()
    ftl.write_page(lpage, token, cost)
    return cost


def test_read_unwritten(fast_ftl):
    assert fast_ftl.read_token_quiet(3) == ERASED


def test_read_your_writes(fast_ftl):
    write(fast_ftl, 5, 1)
    write(fast_ftl, 5, 2)
    assert fast_ftl.read_token_quiet(5) == 2
    fast_ftl.check_invariants()


def test_sequential_fill_switch_merges(fast_ftl):
    for offset in range(PPB):
        write(fast_ftl, offset, offset + 1)
    assert fast_ftl.merge_stats["switch"] == 1
    assert fast_ftl.merge_stats["full"] == 0
    for offset in range(PPB):
        assert fast_ftl.read_token_quiet(offset) == offset + 1
    fast_ftl.check_invariants()


def test_random_writes_share_log_blocks(fast_ftl):
    """Writes to many different blocks land in ONE shared log — the
    mechanism BAST lacks: absorption proportional to volume."""
    cost = CostAccumulator()
    for block in range(PPB - 1):
        fast_ftl.write_page(block * PPB + 3, block + 1, cost)
    # seven scattered single-page writes: seven programs, no merges yet
    assert cost.page_programs == PPB - 1
    assert cost.copy_programs == 0
    fast_ftl.check_invariants()


def test_reclaim_merges_every_block_in_the_victim(geometry, chip):
    ftl = FastFTL(geometry, chip, FastConfig(shared_log_blocks=2))
    rng = random.Random(1)
    model = {}
    cost = CostAccumulator()
    # enough scattered writes to cycle the 2-log ring several times
    for step in range(PPB * 10):
        lpage = rng.randrange(geometry.logical_pages)
        offset = lpage % PPB
        if offset == 0:
            lpage += 1  # keep this test on the shared path
        ftl.write_page(lpage, step + 1, cost)
        model[lpage] = step + 1
    assert ftl.merge_stats["log-reclaims"] > 0
    assert ftl.merge_stats["full"] > 0
    for lpage, token in model.items():
        assert ftl.read_token_quiet(lpage) == token
    ftl.check_invariants()


def test_seq_log_breaks_fold_into_merge(fast_ftl):
    # start a stream, abandon it mid-block with an out-of-order write
    write(fast_ftl, 0, 1)
    write(fast_ftl, 1, 2)
    write(fast_ftl, 5, 3)  # same block, skips ahead -> seq log closes
    assert fast_ftl.read_token_quiet(0) == 1
    assert fast_ftl.read_token_quiet(1) == 2
    assert fast_ftl.read_token_quiet(5) == 3
    fast_ftl.check_invariants()


def test_new_stream_steals_the_seq_log(fast_ftl):
    write(fast_ftl, 0, 1)  # stream on block 0
    write(fast_ftl, PPB, 2)  # stream start on block 1: block 0 resolves
    assert fast_ftl.read_token_quiet(0) == 1
    assert fast_ftl.read_token_quiet(PPB) == 2
    fast_ftl.check_invariants()


def test_quiesce_resolves_everything(fast_ftl):
    rng = random.Random(2)
    model = {}
    for step in range(100):
        lpage = rng.randrange(fast_ftl.geometry.logical_pages)
        write(fast_ftl, lpage, step + 1)
        model[lpage] = step + 1
    fast_ftl.quiesce()
    fast_ftl.check_invariants()
    for lpage, token in model.items():
        assert fast_ftl.read_token_quiet(lpage) == token


def test_random_model_check(geometry, chip):
    ftl = FastFTL(geometry, chip, FastConfig(shared_log_blocks=3))
    rng = random.Random(3)
    model = {}
    for step in range(1500):
        lpage = rng.randrange(geometry.logical_pages)
        write(ftl, lpage, step + 1)
        model[lpage] = step + 1
    ftl.check_invariants()
    for lpage in range(geometry.logical_pages):
        assert ftl.read_token_quiet(lpage) == model.get(lpage, ERASED)


def test_config_validation():
    with pytest.raises(FTLError):
        FastConfig(shared_log_blocks=1)


def test_spare_requirement():
    tight = Geometry(
        page_size=2 * KIB, pages_per_block=8, logical_bytes=1 * MIB,
        physical_blocks=64 + 6,
    )
    with pytest.raises(FTLError):
        FastFTL(tight, FlashChip(tight), FastConfig(shared_log_blocks=4))
