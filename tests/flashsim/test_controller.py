"""Controller: extent validation, RMW, mapping-unit expansion, map-miss
charging and the read-your-writes shadow."""

import pytest

from repro.errors import AddressError, FTLError
from repro.flashsim.chip import FlashChip
from repro.flashsim.controller import Controller, ControllerConfig
from repro.flashsim.ftl.hybrid import HybridConfig, HybridLogFTL
from repro.flashsim.timing import CostAccumulator
from repro.units import KIB


def make_controller(geometry, mapping_unit=0, cache_bytes=0):
    chip = FlashChip(geometry)
    ftl = HybridLogFTL(
        geometry, chip, HybridConfig(seq_log_blocks=2, rnd_log_blocks=4)
    )
    config = ControllerConfig(mapping_unit=mapping_unit, cache_bytes=cache_bytes)
    return Controller(geometry, ftl, config)


def test_extent_validation(geometry):
    controller = make_controller(geometry)
    cost = CostAccumulator()
    with pytest.raises(AddressError):
        controller.read(0, 0, cost)
    with pytest.raises(AddressError):
        controller.write(geometry.logical_bytes, 1, cost)
    with pytest.raises(AddressError):
        controller.read(geometry.logical_bytes - 1, 2, cost)


def test_write_then_read_round_trip(geometry):
    controller = make_controller(geometry)
    cost = CostAccumulator()
    controller.write(0, 8 * KIB, cost)
    read_cost = CostAccumulator()
    controller.read(0, 8 * KIB, read_cost)  # shadow check runs inside
    assert read_cost.page_reads == 4
    assert read_cost.bytes_transferred == 8 * KIB


def test_aligned_write_has_no_rmw_reads(geometry):
    controller = make_controller(geometry)
    cost = CostAccumulator()
    controller.write(0, 4 * geometry.page_size, cost)
    assert cost.page_reads == 0
    assert cost.page_programs == 4


def test_unaligned_write_pays_rmw(geometry):
    controller = make_controller(geometry)
    setup = CostAccumulator()
    controller.write(0, 8 * geometry.page_size, setup)
    cost = CostAccumulator()
    # misaligned by half a page: straddles 5 pages, 2 partially covered
    controller.write(geometry.page_size // 2, 4 * geometry.page_size, cost)
    assert cost.page_programs == 5
    assert cost.page_reads == 2  # head + tail RMW reads


def test_unaligned_write_of_unwritten_pages_skips_rmw_reads(geometry):
    controller = make_controller(geometry)
    cost = CostAccumulator()
    controller.write(geometry.page_size // 2, 4 * geometry.page_size, cost)
    # nothing was ever written: no old content to read
    assert cost.page_reads == 0
    assert cost.page_programs == 5


def test_mapping_unit_expansion(geometry):
    # 4-page mapping unit: a 1-page write programs the whole unit
    unit = 4 * geometry.page_size
    controller = make_controller(geometry, mapping_unit=unit)
    cost = CostAccumulator()
    controller.write(geometry.page_size, geometry.page_size, cost)
    assert cost.page_programs == 4


def test_mapping_unit_must_be_page_multiple(geometry):
    with pytest.raises(FTLError):
        make_controller(geometry, mapping_unit=geometry.page_size + 512)


def test_rmw_preserves_logical_content(geometry):
    controller = make_controller(geometry)
    first = CostAccumulator()
    controller.write(0, 4 * geometry.page_size, first)
    tokens_before = [controller.expected_token(i) for i in range(4)]
    # partial overwrite of page 1 only
    partial = CostAccumulator()
    controller.write(geometry.page_size, 512, partial)
    # untouched pages keep their tokens; reads must still verify
    assert controller.expected_token(0) == tokens_before[0]
    assert controller.expected_token(2) == tokens_before[2]
    check = CostAccumulator()
    controller.read(0, 4 * geometry.page_size, check)


def test_map_miss_charged_on_non_contiguous_access(geometry):
    controller = make_controller(geometry)
    cost1 = CostAccumulator()
    controller.read(0, 4 * KIB, cost1)
    cost2 = CostAccumulator()
    controller.read(4 * KIB, 4 * KIB, cost2)  # contiguous: no miss
    cost3 = CostAccumulator()
    controller.read(512 * KIB, 4 * KIB, cost3)  # jump: miss
    assert cost2.map_misses == 0
    assert cost3.map_misses == 1


def test_reset_access_history(geometry):
    controller = make_controller(geometry)
    cost = CostAccumulator()
    controller.read(0, 4 * KIB, cost)
    controller.reset_access_history()
    cost2 = CostAccumulator()
    controller.read(4 * KIB, 4 * KIB, cost2)
    assert cost2.map_misses == 0  # history cleared: first access is free


def test_shadow_detects_corruption(geometry):
    controller = make_controller(geometry)
    cost = CostAccumulator()
    controller.write(0, geometry.page_size, cost)
    # corrupt the FTL's view behind the controller's back
    bad = CostAccumulator()
    controller.ftl.write_page(0, 999_999, bad)
    with pytest.raises(FTLError, match="read-your-writes"):
        controller.read(0, geometry.page_size, CostAccumulator())


def test_cache_serves_dirty_reads_without_flash(geometry):
    controller = make_controller(geometry, cache_bytes=16 * geometry.page_size)
    controller.write(0, 4 * geometry.page_size, CostAccumulator())
    cost = CostAccumulator()
    controller.read(0, 4 * geometry.page_size, cost)
    assert cost.page_reads == 0  # served from RAM
    assert cost.bytes_transferred == 4 * geometry.page_size


def test_flush_cache(geometry):
    controller = make_controller(geometry, cache_bytes=16 * geometry.page_size)
    controller.write(0, 4 * geometry.page_size, CostAccumulator())
    cost = CostAccumulator()
    assert controller.flush_cache(cost) == 4
    assert cost.page_programs == 4
    assert controller.flush_cache(CostAccumulator()) == 0
