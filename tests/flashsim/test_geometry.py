"""Geometry: construction rules, derived quantities, address math."""

import pytest

from repro.errors import GeometryError
from repro.flashsim.geometry import Geometry
from repro.units import KIB, MIB


def test_defaults_are_consistent():
    geometry = Geometry()
    assert geometry.block_size == geometry.page_size * geometry.pages_per_block
    assert geometry.logical_blocks * geometry.block_size == geometry.logical_bytes
    assert geometry.physical_blocks > geometry.logical_blocks
    assert geometry.spare_blocks == geometry.physical_blocks - geometry.logical_blocks


def test_default_overprovisioning_is_about_seven_percent():
    geometry = Geometry(logical_bytes=64 * MIB)
    ratio = geometry.spare_blocks / geometry.logical_blocks
    assert 0.05 <= ratio <= 0.10


def test_explicit_physical_blocks_respected():
    geometry = Geometry(logical_bytes=1 * MIB, page_size=2 * KIB,
                        pages_per_block=8, physical_blocks=80)
    assert geometry.physical_blocks == 80
    assert geometry.spare_blocks == 80 - 64


@pytest.mark.parametrize(
    "kwargs",
    [
        {"page_size": 0},
        {"page_size": 1000},  # not a sector multiple
        {"pages_per_block": 0},
        {"logical_bytes": 0},
        {"logical_bytes": 100},  # not block aligned
        {"planes": 3},
    ],
)
def test_invalid_geometry_rejected(kwargs):
    with pytest.raises(GeometryError):
        Geometry(**kwargs)


def test_physical_must_exceed_logical():
    with pytest.raises(GeometryError):
        Geometry(
            page_size=2 * KIB,
            pages_per_block=8,
            logical_bytes=1 * MIB,
            physical_blocks=64,
        )


def test_page_of_byte_and_offsets():
    geometry = Geometry(page_size=2 * KIB, pages_per_block=8, logical_bytes=1 * MIB)
    assert geometry.page_of_byte(0) == 0
    assert geometry.page_of_byte(2 * KIB - 1) == 0
    assert geometry.page_of_byte(2 * KIB) == 1
    page = 8 * 3 + 5
    assert geometry.block_of_page(page) == 3
    assert geometry.page_offset_in_block(page) == 5
    assert geometry.first_page_of_block(3) == 24


def test_page_span_aligned():
    geometry = Geometry(page_size=2 * KIB, pages_per_block=8, logical_bytes=1 * MIB)
    span = geometry.page_span(4 * KIB, 8 * KIB)
    assert list(span) == [2, 3, 4, 5]


def test_page_span_unaligned_touches_extra_page():
    geometry = Geometry(page_size=2 * KIB, pages_per_block=8, logical_bytes=1 * MIB)
    aligned = geometry.page_span(0, 8 * KIB)
    shifted = geometry.page_span(512, 8 * KIB)
    assert len(shifted) == len(aligned) + 1


def test_page_span_rejects_empty():
    geometry = Geometry(page_size=2 * KIB, pages_per_block=8, logical_bytes=1 * MIB)
    with pytest.raises(GeometryError):
        geometry.page_span(0, 0)


def test_contains():
    geometry = Geometry(page_size=2 * KIB, pages_per_block=8, logical_bytes=1 * MIB)
    assert geometry.contains(0, 1 * MIB)
    assert not geometry.contains(0, 1 * MIB + 1)
    assert not geometry.contains(-1, 1)
    assert geometry.contains(1 * MIB - 1, 1)


def test_describe_mentions_key_numbers():
    geometry = Geometry(page_size=2 * KIB, pages_per_block=8, logical_bytes=1 * MIB)
    text = geometry.describe()
    assert "1M logical" in text
    assert "2K pages" in text
