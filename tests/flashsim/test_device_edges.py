"""FlashDevice edge cases: scheduling, idle semantics, credit capping."""

import pytest

from repro.flashsim.device import BackgroundPolicy
from repro.iotypes import IORequest, Mode
from repro.units import KIB

from tests.conftest import make_device


def test_future_submission_starts_then():
    device = make_device()
    done = device.submit(IORequest(0, 0, 8 * KIB, Mode.WRITE, 5_000.0), 5_000.0)
    assert done.started_at == 5_000.0
    assert done.submitted_at == 5_000.0


def test_idle_to_the_past_is_a_noop():
    device = make_device()
    done = device.write(0, 8 * KIB)
    horizon = device.busy_until
    device.idle(done.completed_at - 50.0)
    assert device.busy_until == horizon


def test_positive_leftover_credit_is_capped():
    device = make_device(bg=True)
    cap = device.background.max_leftover_credit_usec
    # a long idle with no work leaves at most the capped credit
    device.idle(10_000_000.0)
    assert device._bg_credit <= cap


def test_negative_credit_debt_is_repaid_not_forgiven():
    """The bug the mix benchmark exposed: an overrunning background
    unit must charge its full cost against later grants."""
    device = make_device(bg=True)
    ppb = device.geometry.pages_per_block
    now = 0.0
    for block in range(12):
        done = device.write(block * ppb * 2 * KIB + 2 * KIB, 2 * KIB, now=now)
        now = done.completed_at
    assert device.background_pending()
    before_units = device.stats.background_units
    # tiny grants: a single merge costs far more than each grant, so the
    # number of units done must track the total credit, not the number
    # of grants
    for step in range(50):
        device.idle(device.busy_until + 10.0)  # 10us each: 500us total
    done_units = device.stats.background_units - before_units
    # 500us cannot pay for more than one ~ms-scale merge
    assert done_units <= 1


def test_drain_is_idempotent():
    device = make_device(bg=True, cache_bytes=16 * 2 * KIB)
    device.write(0, 8 * KIB)
    device.drain()
    second = device.drain()
    assert second.is_empty()


def test_zero_read_concurrency_starves_background_during_reads():
    device = make_device(bg=True)
    device.background = BackgroundPolicy(read_concurrency=0.0,
                                         read_interference=1.0)
    ppb = device.geometry.pages_per_block
    now = 0.0
    for block in range(12):
        done = device.write(block * ppb * 2 * KIB + 2 * KIB, 2 * KIB, now=now)
        now = done.completed_at
    before = device.stats.background_units
    for i in range(20):
        done = device.read(i * 8 * KIB, 8 * KIB, now=now)
        now = done.completed_at
    assert device.stats.background_units == before  # reads granted nothing


def test_interference_only_applies_to_reads():
    device = make_device(bg=True)
    device.background = BackgroundPolicy(read_concurrency=0.0,
                                         read_interference=3.0)
    ppb = device.geometry.pages_per_block
    now = 0.0
    for block in range(12):
        done = device.write(block * ppb * 2 * KIB + 2 * KIB, 2 * KIB, now=now)
        now = done.completed_at
    assert device.background_pending()
    # a write while the queue is pending is not inflated by the factor
    clean_device = make_device(bg=True)
    clean = clean_device.write(0, 8 * KIB)
    pending_write = device.submit(
        IORequest(99, 0, 8 * KIB, Mode.WRITE), now
    )
    assert pending_write.service_usec < clean.service_usec * 2.5


def test_noise_spec_validation():
    from repro.flashsim.device import NoiseSpec

    with pytest.raises(ValueError):
        NoiseSpec(jitter=1.0)
    with pytest.raises(ValueError):
        NoiseSpec(jitter=-0.1)


def test_noise_perturbs_but_preserves_the_mean():
    import numpy as np

    from repro.flashsim.device import NoiseSpec
    from repro.flashsim.profiles import scaled_profile
    from repro.units import MIB

    quiet = scaled_profile("mtron").build(8 * MIB)
    noisy_profile = scaled_profile("mtron", noise=NoiseSpec(jitter=0.05))
    noisy = noisy_profile.build(8 * MIB)

    def read_times(device):
        times, now = [], 0.0
        for i in range(128):
            done = device.read(i * 32 * KIB % (device.capacity - 32 * KIB),
                               32 * KIB, now=now)
            times.append(done.service_usec)
            now = done.completed_at
        return np.array(times)

    quiet_times = read_times(quiet)
    noisy_times = read_times(noisy)
    assert quiet_times.std() < 1.0  # deterministic by default
    assert noisy_times.std() > 1.0  # jitter visible
    # the mean survives (noise is unbiased)
    assert abs(noisy_times.mean() - quiet_times.mean()) < 0.1 * quiet_times.mean()


def test_noise_is_seed_reproducible():
    from repro.flashsim.device import NoiseSpec
    from repro.flashsim.profiles import scaled_profile
    from repro.units import MIB

    def one_run(seed):
        profile = scaled_profile("mtron", noise=NoiseSpec(jitter=0.05, seed=seed))
        device = profile.build(8 * MIB)
        done = device.write(0, 32 * KIB)
        return done.service_usec

    assert one_run(1) == one_run(1)
    assert one_run(1) != one_run(2)


def test_repeatability_check_with_noise():
    """With realistic jitter, the paper's 5% repeatability criterion is
    exercised for real: repeated runs agree within tolerance."""
    from repro.core.experiment import Experiment, run_experiment
    from repro.core.patterns import LocationKind, PatternSpec
    from repro.flashsim.device import NoiseSpec
    from repro.flashsim.profiles import scaled_profile
    from repro.units import MIB

    profile = scaled_profile("mtron", noise=NoiseSpec(jitter=0.03))
    device = profile.build(8 * MIB)

    def build(size):
        return PatternSpec(
            mode=Mode.READ, location=LocationKind.SEQUENTIAL,
            io_size=size, io_count=64,
        )

    experiment = Experiment("reads", "IOSize", (32 * KIB,), build)
    result = run_experiment(device, experiment, pause_usec=1000.0,
                            repetitions=3)
    assert result.rows[0].repeatable_within(0.05)
