"""Page-mapping FTL: direct map, greedy GC, wear levelling, background."""

import random

import pytest

from repro.errors import FTLError
from repro.flashsim.chip import ERASED, FlashChip
from repro.flashsim.ftl.pagemap import PageMapConfig, PageMapFTL
from repro.flashsim.geometry import Geometry
from repro.flashsim.timing import CostAccumulator
from repro.units import KIB, MIB

PPB = 8


def write(ftl, lpage, token):
    cost = CostAccumulator()
    ftl.write_page(lpage, token, cost)
    return cost


def test_read_unwritten_returns_erased(pagemap_ftl):
    assert pagemap_ftl.read_token_quiet(0) == ERASED


def test_read_your_writes(pagemap_ftl):
    write(pagemap_ftl, 10, 1)
    write(pagemap_ftl, 10, 2)
    assert pagemap_ftl.read_token_quiet(10) == 2
    pagemap_ftl.check_invariants()


def test_writes_are_appended_without_gc_while_free(pagemap_ftl):
    cost = CostAccumulator()
    for i in range(PPB * 2):
        pagemap_ftl.write_page(i, i + 1, cost)
    assert cost.copy_programs == 0
    assert cost.block_erases == 0
    pagemap_ftl.check_invariants()


def test_gc_triggers_when_pool_low(geometry, chip):
    ftl = PageMapFTL(geometry, chip, PageMapConfig(gc_low_blocks=2))
    rng = random.Random(0)
    cost = CostAccumulator()
    for step in range(geometry.logical_pages * 2):
        ftl.write_page(rng.randrange(geometry.logical_pages), step + 1, cost)
    assert ftl.gc_collections > 0
    assert ftl.free_blocks() >= 1
    ftl.check_invariants()


def test_sequential_overwrite_gc_is_copy_free(geometry, chip):
    """Sequential overwrites leave fully-invalid victims: GC erases them
    without copying — why sequential writes stay cheap."""
    ftl = PageMapFTL(geometry, chip, PageMapConfig(gc_low_blocks=2))
    cost = CostAccumulator()
    for lap in range(3):
        for lpage in range(geometry.logical_pages):
            ftl.write_page(lpage, lap * geometry.logical_pages + lpage + 1, cost)
    copies_per_collection = cost.copy_programs / max(1, ftl.gc_collections)
    assert copies_per_collection < 1.0
    ftl.check_invariants()


def test_greedy_picks_min_valid_victim(geometry, chip):
    ftl = PageMapFTL(geometry, chip, PageMapConfig(gc_low_blocks=2))
    # fill logical space once (sequential)
    for lpage in range(geometry.logical_pages):
        write(ftl, lpage, lpage + 1)
    # invalidate all of block 5's logical pages -> fully invalid victim
    for offset in range(PPB):
        write(ftl, 5 * PPB + offset, 1000 + offset)
    cost = CostAccumulator()
    assert ftl._collect_one(cost)
    assert cost.copy_programs == 0  # the fully invalid block won
    ftl.check_invariants()


def test_gc_refuses_fully_valid_victims(geometry, chip):
    ftl = PageMapFTL(geometry, chip, PageMapConfig(gc_low_blocks=2))
    for lpage in range(PPB * 3):  # three fully valid blocks
        write(ftl, lpage, lpage + 1)
    cost = CostAccumulator()
    assert not ftl._collect_one(cost)  # no reclaimable space


def test_background_gc(geometry, chip):
    ftl = PageMapFTL(
        geometry,
        chip,
        PageMapConfig(gc_low_blocks=2, bg_enabled=True, bg_target_blocks=10),
    )
    rng = random.Random(1)
    for step in range(geometry.logical_pages * 2):
        write(ftl, rng.randrange(geometry.logical_pages), step + 1)
    if ftl.free_blocks() < 10:
        assert ftl.background_work_pending()
        ftl.drain_background()
        assert ftl.free_blocks() >= 10 or not ftl.background_work_pending()
    ftl.check_invariants()


def test_wear_levelling_relocates_cold_blocks(geometry, chip):
    ftl = PageMapFTL(
        geometry, chip, PageMapConfig(gc_low_blocks=2, wear_threshold=6)
    )
    # cold data in the first blocks, then hammer the rest
    for lpage in range(PPB * 4):
        write(ftl, lpage, lpage + 1)
    rng = random.Random(2)
    hot = range(PPB * 8, geometry.logical_pages)
    for step in range(geometry.logical_pages * 8):
        write(ftl, rng.choice(list(hot)), step + 1)
    assert ftl.wear_relocations > 0
    counts = chip.erase_counts()
    # relocation keeps the wear spread bounded
    assert counts.max() - counts.min() <= 6 + PPB
    ftl.check_invariants()


def test_random_workload_model_check(geometry, chip):
    ftl = PageMapFTL(geometry, chip, PageMapConfig(gc_low_blocks=2))
    rng = random.Random(3)
    model = {}
    for step in range(800):
        lpage = rng.randrange(geometry.logical_pages)
        write(ftl, lpage, step + 1)
        model[lpage] = step + 1
    for lpage, token in model.items():
        assert ftl.read_token_quiet(lpage) == token
    ftl.check_invariants()


def test_spare_requirement():
    tight = Geometry(
        page_size=2 * KIB, pages_per_block=8, logical_bytes=1 * MIB,
        physical_blocks=64 + 2,
    )
    with pytest.raises(FTLError):
        PageMapFTL(tight, FlashChip(tight), PageMapConfig(gc_low_blocks=2))


def test_config_validation():
    with pytest.raises(FTLError):
        PageMapConfig(gc_low_blocks=0)
    with pytest.raises(FTLError):
        PageMapConfig(bg_enabled=True, bg_target_blocks=1, gc_low_blocks=2)
    with pytest.raises(FTLError):
        PageMapConfig(wear_threshold=-1)


def test_cost_benefit_policy_validation():
    with pytest.raises(FTLError):
        PageMapConfig(gc_policy="lru")
    assert PageMapConfig(gc_policy="cost-benefit").gc_policy == "cost-benefit"


def test_cost_benefit_read_your_writes(geometry, chip):
    ftl = PageMapFTL(
        geometry, chip, PageMapConfig(gc_low_blocks=2, gc_policy="cost-benefit")
    )
    rng = random.Random(7)
    model = {}
    for step in range(800):
        lpage = rng.randrange(geometry.logical_pages)
        write(ftl, lpage, step + 1)
        model[lpage] = step + 1
    for lpage, token in model.items():
        assert ftl.read_token_quiet(lpage) == token
    ftl.check_invariants()
    assert ftl.gc_collections > 0


def test_cost_benefit_trades_copies_for_even_wear(geometry):
    """With a hot/cold split, greedy always finds fully-invalid hot
    blocks (zero copies) but wears them out; cost-benefit occasionally
    relocates an old cold block — a few copies, much more even wear.
    That trade-off is the reason the policy exists."""

    def run(policy):
        local_chip = FlashChip(geometry)
        ftl = PageMapFTL(
            geometry, local_chip,
            PageMapConfig(gc_low_blocks=2, gc_policy=policy),
        )
        cost = CostAccumulator()
        # cold data fills most of the logical space once
        for lpage in range(geometry.logical_pages):
            ftl.write_page(lpage, lpage + 1, cost)
        # then a hot spot hammers 10% of the pages
        rng = random.Random(9)
        hot = geometry.logical_pages // 10
        writes = geometry.logical_pages * 6
        for step in range(writes):
            ftl.write_page(rng.randrange(hot), 10_000 + step, cost)
        ftl.check_invariants()
        counts = local_chip.erase_counts()
        return cost.copy_programs, float(counts.std()), writes

    greedy_copies, greedy_spread, writes = run("greedy")
    cb_copies, cb_spread, __ = run("cost-benefit")
    # the copy overhead stays tiny relative to the host traffic ...
    assert cb_copies <= writes * 0.05
    # ... and buys a visibly more even erase distribution
    assert cb_spread < greedy_spread
    assert cb_copies >= greedy_copies  # the trade is real, not free


def test_fully_valid_blocks_refused_by_both_policies(geometry, chip):
    for policy in ("greedy", "cost-benefit"):
        local_chip = FlashChip(geometry)
        ftl = PageMapFTL(
            geometry, local_chip,
            PageMapConfig(gc_low_blocks=2, gc_policy=policy),
        )
        for lpage in range(PPB * 3):
            write(ftl, lpage, lpage + 1)
        cost = CostAccumulator()
        assert not ftl._collect_one(cost), policy
