"""Failure injection: chip faults propagate sanely through the stack."""

import pytest

from repro.errors import EnduranceError, ProgramError
from repro.flashsim.chip import FlashChip
from repro.flashsim.ftl.hybrid import HybridConfig, HybridLogFTL
from repro.flashsim.geometry import Geometry
from repro.flashsim.profiles import build_device
from repro.flashsim.timing import CostAccumulator
from repro.units import KIB, MIB


class CountedFaults:
    """Fail the nth program and/or every erase of a chosen block."""

    def __init__(self, fail_program_at: int = 0, bad_erase_block: int = -1) -> None:
        self.programs = 0
        self.fail_program_at = fail_program_at
        self.bad_erase_block = bad_erase_block

    def program_fails(self, block: int, page_offset: int) -> bool:
        self.programs += 1
        return self.programs == self.fail_program_at

    def erase_fails(self, block: int) -> bool:
        return block == self.bad_erase_block


def test_program_failure_surfaces_from_ftl(geometry):
    chip = FlashChip(geometry, fault_injector=CountedFaults(fail_program_at=3))
    ftl = HybridLogFTL(geometry, chip, HybridConfig(seq_log_blocks=2, rnd_log_blocks=4))
    cost = CostAccumulator()
    ftl.write_page(0, 1, cost)
    ftl.write_page(1, 2, cost)
    with pytest.raises(ProgramError):
        ftl.write_page(2, 3, cost)
    assert chip.stats.program_failures == 1


def test_device_with_fault_injector_builds():
    device = build_device(
        "mtron", logical_bytes=8 * MIB, fault_injector=CountedFaults()
    )
    done = device.write(0, 32 * KIB)
    assert done.response_usec > 0


def test_endurance_exhaustion_is_detectable():
    geometry = Geometry(
        page_size=2 * KIB, pages_per_block=4, logical_bytes=256 * KIB,
        physical_blocks=32 + 10,
    )
    chip = FlashChip(geometry, endurance=4)
    ftl = HybridLogFTL(geometry, chip, HybridConfig(seq_log_blocks=2, rnd_log_blocks=4))
    cost = CostAccumulator()
    with pytest.raises(EnduranceError):
        # hammer a single logical block until some physical block wears out
        for step in range(10_000):
            for offset in range(4):
                ftl.write_page(offset, step * 4 + offset + 1, cost)


def test_wear_levelling_extends_life_under_hot_spot():
    """With static wear levelling the same hot-spot workload survives
    far longer than the no-WL endurance bound would allow."""
    from repro.flashsim.ftl.pagemap import PageMapConfig, PageMapFTL

    geometry = Geometry(
        page_size=2 * KIB, pages_per_block=4, logical_bytes=256 * KIB,
        physical_blocks=32 + 10,
    )
    chip = FlashChip(geometry, endurance=60)
    ftl = PageMapFTL(
        geometry, chip, PageMapConfig(gc_low_blocks=2, wear_threshold=8)
    )
    cost = CostAccumulator()
    # fill everything once so there is cold data to relocate
    for lpage in range(geometry.logical_pages):
        ftl.write_page(lpage, lpage + 1, cost)
    # hot-spot: rewrite one page many times; without WL the ~10 spare
    # blocks would absorb all erases and wear out at ~60 x 12 writes
    for step in range(4_000):
        ftl.write_page(0, 1000 + step, cost)
    assert ftl.wear_relocations > 0
    counts = chip.erase_counts()
    assert counts.max() < 60  # nobody wore out
    ftl.check_invariants()
