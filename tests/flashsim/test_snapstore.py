"""Shared-memory snapshot store: packing, attach round-trips, cleanup.

The :class:`~repro.flashsim.snapshot.SnapshotStore` underwrites the
campaign executor's zero-copy distribution (DESIGN.md §14), so these
tests pin its whole contract: flat-buffer pack/unpack fidelity, the
cross-process attach → restore → fingerprint-equality round-trip, and —
most load-bearing — that **no segment outlives its executor**, whether
the campaign ends normally, the store is garbage-collected, or a worker
process dies mid-campaign.
"""

import gc
import multiprocessing
import os
import pickle

import pytest

from repro.core.methodology import enforce_random_state
from repro.flashsim.bitmap import PackedBits, pack_bits
from repro.flashsim.profiles import build_device
from repro.flashsim.snapshot import (
    SnapshotStore,
    attach_segment,
    pack_snapshot,
    unpack_snapshot,
)
from repro.units import MIB

PROFILE = "kingston_dti"
CAPACITY = 4 * MIB


def enforced_device():
    device = build_device(PROFILE, logical_bytes=CAPACITY)
    enforce_random_state(device, seed=97)
    return device


def segment_exists(name: str) -> bool:
    from multiprocessing import shared_memory

    try:
        handle = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    handle.close()
    return True


# ----------------------------------------------------------------------
# packing
# ----------------------------------------------------------------------

def test_pack_unpack_round_trip_preserves_fingerprint():
    device = enforced_device()
    snapshot = device.snapshot()
    packed = pack_snapshot(snapshot)
    assert packed.buffers  # arrays actually went out-of-band
    assert packed.nbytes > len(packed.meta)
    clone = unpack_snapshot(packed)
    other = build_device(PROFILE, logical_bytes=CAPACITY)
    other.restore(clone)
    assert other.fingerprint() == device.fingerprint()


def test_packed_meta_is_small_relative_to_buffers():
    # the point of packing: the metadata stream excludes the big arrays
    device = enforced_device()
    packed = pack_snapshot(device.snapshot())
    assert len(packed.meta) < packed.nbytes / 2


def test_packed_bits_protocol5_out_of_band():
    bits = pack_bits([True, False, True] * 100)
    buffers = []
    meta = pickle.dumps(bits, protocol=5, buffer_callback=buffers.append)
    assert len(buffers) == 1  # the payload traveled out-of-band
    clone = pickle.loads(meta, buffers=[b.raw() for b in buffers])
    assert clone == bits
    assert (clone.unpack() == bits.unpack()).all()


def test_packed_bits_in_band_protocols_still_work():
    bits = pack_bits([True] * 17)
    for protocol in (2, 4, 5):
        clone = pickle.loads(pickle.dumps(bits, protocol=protocol))
        assert clone == bits
    # a view-backed PackedBits (as restored from shared memory) must
    # also survive in-band pickling
    view_backed = PackedBits(data=memoryview(bits.data), size=bits.size)
    clone = pickle.loads(pickle.dumps(view_backed, protocol=4))
    assert clone == bits


# ----------------------------------------------------------------------
# store: publish / attach / fetch
# ----------------------------------------------------------------------

def test_store_publish_attach_restore_in_process():
    device = enforced_device()
    store = SnapshotStore()
    try:
        name, nbytes = store.publish(device.fingerprint(), device.snapshot())
        assert nbytes > 0
        assert store.get(device.fingerprint()) == name
        shm, snapshot = attach_segment(name)
        try:
            other = build_device(PROFILE, logical_bytes=CAPACITY)
            other.restore(snapshot)
            assert other.fingerprint() == device.fingerprint()
            # the views are read-only: accidental in-place mutation of
            # shared state must fail loudly, not corrupt siblings
            with pytest.raises((ValueError, TypeError)):
                snapshot.chip["tokens"][0] = 1
        finally:
            del snapshot
            shm.close()
    finally:
        store.close()


def test_store_publish_is_content_addressed():
    device = enforced_device()
    store = SnapshotStore()
    try:
        name, first = store.publish(device.fingerprint(), device.snapshot())
        again, second = store.publish(device.fingerprint(), device.snapshot())
        assert again == name
        assert second == 0  # reused, not re-packed
        assert len(store) == 1
    finally:
        store.close()


def test_store_fetch_returns_independent_copy():
    device = enforced_device()
    store = SnapshotStore()
    try:
        store.publish(device.fingerprint(), device.snapshot())
        clone = store.fetch(device.fingerprint())
        store.close()  # segment gone; the fetched copy must survive
        other = build_device(PROFILE, logical_bytes=CAPACITY)
        other.restore(clone)
        assert other.fingerprint() == device.fingerprint()
        assert store.fetch(device.fingerprint()) is None
    finally:
        store.close()


def _child_attach_and_fingerprint(name, queue):
    """Child-process body: attach, restore, report the fingerprint."""
    try:
        shm, snapshot = attach_segment(name)
        device = build_device(PROFILE, logical_bytes=CAPACITY)
        device.restore(snapshot)
        queue.put(device.fingerprint())
    except Exception as exc:  # pragma: no cover - failure reporting
        queue.put(f"error: {exc!r}")


def test_cross_process_attach_restore_fingerprint_equality():
    device = enforced_device()
    store = SnapshotStore()
    try:
        name, _ = store.publish(device.fingerprint(), device.snapshot())
        ctx = multiprocessing.get_context(
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else None
        )
        queue = ctx.Queue()
        child = ctx.Process(target=_child_attach_and_fingerprint, args=(name, queue))
        child.start()
        result = queue.get(timeout=60)
        child.join(timeout=60)
        assert result == device.fingerprint()
        assert child.exitcode == 0
    finally:
        store.close()


# ----------------------------------------------------------------------
# cleanup guarantees
# ----------------------------------------------------------------------

def test_store_close_unlinks_every_segment():
    store = SnapshotStore()
    device = enforced_device()
    name, _ = store.publish(device.fingerprint(), device.snapshot())
    assert segment_exists(name)
    store.close()
    assert not segment_exists(name)
    store.close()  # idempotent


def test_store_discard_unlinks_one_segment():
    store = SnapshotStore()
    try:
        device = enforced_device()
        name, _ = store.publish(device.fingerprint(), device.snapshot())
        store.discard(device.fingerprint())
        assert not segment_exists(name)
        assert store.get(device.fingerprint()) is None
    finally:
        store.close()


def test_store_finalizer_unlinks_on_garbage_collection():
    store = SnapshotStore()
    device = enforced_device()
    name, _ = store.publish(device.fingerprint(), device.snapshot())
    assert segment_exists(name)
    del store
    gc.collect()
    assert not segment_exists(name)


def test_executor_close_unlinks_segments_after_normal_campaign():
    from repro.core.executor import CampaignExecutor, plan_cells
    from repro.units import KIB, SEC

    cells = plan_cells(
        PROFILE, CAPACITY, ["order"], io_size=32 * KIB, io_count=8,
        pause_usec=0.1 * SEC,
    )
    executor = CampaignExecutor(jobs=2)
    executor.execute(cells)
    names = executor._store.segment_names()
    assert names and all(segment_exists(name) for name in names)
    executor.close()
    assert all(not segment_exists(name) for name in names)


def _crash_worker(task, observe):
    """Stand-in cell executor that kills the worker process outright."""
    os._exit(17)


def test_executor_close_unlinks_segments_after_worker_crash(monkeypatch):
    # a dying worker must not leak its published segments: the parent
    # adopted them when the prepare envelope landed, so close() (or the
    # finalizer / resource tracker behind it) still unlinks everything
    from concurrent.futures.process import BrokenProcessPool

    import repro.core.executor as executor_mod
    from repro.core.executor import CampaignExecutor, plan_cells
    from repro.units import KIB, SEC

    if "fork" not in multiprocessing.get_all_start_methods():
        pytest.skip("crash simulation relies on the fork start method")
    monkeypatch.setattr(executor_mod, "_execute_cell_fast", _crash_worker)
    cells = plan_cells(
        PROFILE, CAPACITY, ["order"], io_size=32 * KIB, io_count=8,
        pause_usec=0.1 * SEC,
    )
    executor = CampaignExecutor(jobs=2)
    with pytest.raises(BrokenProcessPool):
        executor.execute(cells)
    names = executor._store.segment_names()
    assert names  # the prepare phase did publish before the crash
    executor.close()
    assert all(not segment_exists(name) for name in names)
