"""Simulated clock semantics."""

import pytest

from repro.flashsim.clock import SimClock


def test_starts_at_zero():
    assert SimClock().now == 0.0


def test_advance_to_moves_forward():
    clock = SimClock()
    assert clock.advance_to(10.0) == 10.0
    assert clock.now == 10.0


def test_advance_to_past_is_noop():
    clock = SimClock(start=100.0)
    clock.advance_to(50.0)
    assert clock.now == 100.0


def test_advance_by():
    clock = SimClock()
    clock.advance_by(5.0)
    clock.advance_by(2.5)
    assert clock.now == 7.5


def test_advance_by_negative_rejected():
    clock = SimClock()
    with pytest.raises(ValueError):
        clock.advance_by(-1.0)


def test_reset():
    clock = SimClock(start=10.0)
    clock.reset()
    assert clock.now == 0.0
    clock.reset(3.0)
    assert clock.now == 3.0


def test_negative_start_rejected():
    with pytest.raises(ValueError):
        SimClock(start=-1.0)
    with pytest.raises(ValueError):
        SimClock().reset(-1.0)


# ----------------------------------------------------------------------
# EventTimeline
# ----------------------------------------------------------------------

def test_timeline_pops_in_time_order():
    from repro.flashsim.clock import EventTimeline

    timeline = EventTimeline()
    timeline.schedule(30.0, "c")
    timeline.schedule(10.0, "a")
    timeline.schedule(20.0, "b")
    assert timeline.peek_time() == 10.0
    assert [timeline.pop() for _ in range(3)] == [
        (10.0, "a"), (20.0, "b"), (30.0, "c"),
    ]
    assert timeline.peek_time() is None
    assert len(timeline) == 0


def test_timeline_ties_break_by_schedule_order():
    from repro.flashsim.clock import EventTimeline

    timeline = EventTimeline()
    timeline.schedule(5.0, "first")
    timeline.schedule(5.0, "second")
    assert timeline.pop() == (5.0, "first")
    assert timeline.pop() == (5.0, "second")


def test_timeline_pop_advances_clock():
    from repro.flashsim.clock import EventTimeline

    timeline = EventTimeline()
    timeline.schedule(42.0, "x")
    timeline.pop()
    assert timeline.clock.now == 42.0


def test_timeline_pop_empty_raises():
    from repro.flashsim.clock import EventTimeline

    with pytest.raises(IndexError):
        EventTimeline().pop()


def test_timeline_snapshot_restore_round_trips():
    from repro.flashsim.clock import EventTimeline

    timeline = EventTimeline()
    timeline.schedule(10.0, "a")
    timeline.schedule(20.0, "b")
    state = timeline.snapshot()
    timeline.pop()
    restored = EventTimeline()
    restored.restore(state)
    assert len(restored) == 2
    assert restored.pop() == (10.0, "a")
    # tie-break sequencing continues past the restored events
    restored.schedule(20.0, "later")
    assert restored.pop() == (20.0, "b")
    assert restored.pop() == (20.0, "later")
