"""Simulated clock semantics."""

import pytest

from repro.flashsim.clock import SimClock


def test_starts_at_zero():
    assert SimClock().now == 0.0


def test_advance_to_moves_forward():
    clock = SimClock()
    assert clock.advance_to(10.0) == 10.0
    assert clock.now == 10.0


def test_advance_to_past_is_noop():
    clock = SimClock(start=100.0)
    clock.advance_to(50.0)
    assert clock.now == 100.0


def test_advance_by():
    clock = SimClock()
    clock.advance_by(5.0)
    clock.advance_by(2.5)
    assert clock.now == 7.5


def test_advance_by_negative_rejected():
    clock = SimClock()
    with pytest.raises(ValueError):
        clock.advance_by(-1.0)


def test_reset():
    clock = SimClock(start=10.0)
    clock.reset()
    assert clock.now == 0.0
    clock.reset(3.0)
    assert clock.now == 3.0


def test_negative_start_rejected():
    with pytest.raises(ValueError):
        SimClock(start=-1.0)
    with pytest.raises(ValueError):
        SimClock().reset(-1.0)
