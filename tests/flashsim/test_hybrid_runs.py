"""Hybrid FTL run-level behaviour: write_pages splitting, the stream
tail table, and pool bookkeeping under mixed traffic."""

import pytest

from repro.flashsim.chip import FlashChip
from repro.flashsim.ftl.hybrid import HybridConfig, HybridLogFTL
from repro.flashsim.geometry import Geometry
from repro.flashsim.timing import CostAccumulator
from repro.units import KIB, MIB

PPB = 8


@pytest.fixture
def ftl(geometry, chip):
    return HybridLogFTL(
        geometry, chip, HybridConfig(seq_log_blocks=2, rnd_log_blocks=4)
    )


def write_run(ftl, pairs):
    cost = CostAccumulator()
    ftl.write_pages(pairs, cost)
    return cost


def test_write_pages_splits_non_contiguous_batches(ftl):
    # one batch, two separate runs (a gap in the middle)
    pairs = [(0, 1), (1, 2), (5, 3), (6, 4)]
    write_run(ftl, pairs)
    # run 1 started at offset 0 -> a stream candidate was registered
    assert ftl._stream_tails.get(0) == 2
    for lpage, token in pairs:
        assert ftl.read_token_quiet(lpage) == token
    ftl.check_invariants()


def test_stream_tail_advances_across_batches(ftl):
    write_run(ftl, [(0, 1), (1, 2)])
    assert ftl._stream_tails[0] == 2
    write_run(ftl, [(2, 3), (3, 4)])
    assert ftl._stream_tails[0] == 4
    # the confirmed stream now occupies a sequential slot
    assert 0 in ftl._open_seq


def test_stream_rolls_into_next_block(ftl):
    # filling block 0 completely registers block 1 as a candidate
    write_run(ftl, [(i, i + 1) for i in range(PPB)])
    assert ftl._stream_tails.get(1) == 0
    # and the continuation into block 1 is seq-classified immediately?
    # no: offset 0 only registers; the continuation at offset>0 confirms
    write_run(ftl, [(PPB, 100)])
    write_run(ftl, [(PPB + 1, 101)])
    assert 1 in ftl._open_seq
    ftl.check_invariants()


def test_stream_tail_table_is_bounded(geometry, chip):
    ftl = HybridLogFTL(
        geometry, chip, HybridConfig(seq_log_blocks=2, rnd_log_blocks=2)
    )
    capacity = ftl._stream_tail_capacity
    for block in range(capacity + 16):
        if block >= geometry.logical_blocks:
            break
        write_run(ftl, [(block * PPB, 1 + block)])
    assert len(ftl._stream_tails) <= capacity


def test_wrapping_stream_restarts_cleanly(ftl):
    # two laps over two blocks, in order: all switch merges, no fulls
    laps = [(i % (2 * PPB), 1 + i) for i in range(4 * PPB)]
    for lpage, token in laps:
        write_run(ftl, [(lpage, token)])
    assert ftl.merge_stats["full"] == 0
    assert ftl.merge_stats["switch"] == 4
    ftl.check_invariants()


def test_interleaved_streams_within_pool_limit(ftl):
    # two concurrent streams fit the 2 seq slots: all switch merges
    for offset in range(PPB):
        write_run(ftl, [(offset, 10 + offset)])
        write_run(ftl, [(PPB + offset, 20 + offset)])
    assert ftl.merge_stats["switch"] == 2
    assert ftl.merge_stats["full"] == 0
    ftl.check_invariants()


def test_more_streams_than_slots_degrade(geometry, chip):
    ftl = HybridLogFTL(
        geometry, chip, HybridConfig(seq_log_blocks=2, rnd_log_blocks=2)
    )
    # four interleaved streams against two slots: evictions force
    # deferred merges that a 2-slot device must pay
    for offset in range(PPB):
        for stream in range(4):
            write_run(ftl, [(stream * PPB + offset, 1 + stream * PPB + offset)])
    ftl.quiesce()
    assert ftl.merge_stats["full"] + ftl.merge_stats["partial"] > 0
    for stream in range(4):
        for offset in range(PPB):
            assert ftl.read_token_quiet(stream * PPB + offset) == (
                1 + stream * PPB + offset
            )
    ftl.check_invariants()


def test_mixed_random_and_stream_traffic(ftl, geometry):
    import random

    rng = random.Random(5)
    model = {}
    stream_position = 0
    for step in range(300):
        if step % 3 == 0:  # stream write
            lpage = stream_position % geometry.logical_pages
            stream_position += 1
        else:  # random write
            lpage = rng.randrange(geometry.logical_pages)
        write_run(ftl, [(lpage, step + 1)])
        model[lpage] = step + 1
    for lpage, token in model.items():
        assert ftl.read_token_quiet(lpage) == token
    ftl.check_invariants()


def test_open_log_counts_by_pool(ftl):
    write_run(ftl, [(3, 1)])  # random-class
    write_run(ftl, [(PPB, 2), (PPB + 1, 3)])  # candidate then...
    write_run(ftl, [(PPB + 2, 4)])  # ...confirmed stream
    assert len(ftl._open_rnd) == 1
    assert len(ftl._open_seq) == 1
    assert ftl.open_log_count() == 2
