"""Columnar IOTrace storage: views, serialisation and pickle slimming."""

import pickle

import numpy as np
import pytest

from repro.flashsim.trace import IOTrace, pickled_sizes
from repro.iotypes import IORequest, Mode
from repro.units import KIB

from tests.conftest import make_device


def run_some_ios(count=6):
    device = make_device()
    trace = IOTrace()
    now = 0.0
    for i in range(count):
        done = device.submit(IORequest(i, i * 8 * KIB, 8 * KIB, Mode.WRITE), now)
        trace.append(done)
        now = done.completed_at
    return trace


def test_row_views_share_note_storage():
    """Notes added through a row view persist in the trace (the FTL's
    merge annotations arrive this way)."""
    trace = run_some_ios(3)
    trace[0].cost.note("gc")
    assert trace[0].cost.notes == ["gc"]
    assert "gc" in trace.to_csv()


def test_negative_index_and_slice():
    trace = run_some_ios(5)
    assert trace[-1].request.index == 4
    tail = trace[2:]
    assert [c.request.index for c in tail] == [2, 3, 4]


def test_column_views_are_read_only():
    trace = run_some_ios(4)
    lbas = trace.column("lba")
    assert lbas.tolist() == [0, 8 * KIB, 16 * KIB, 24 * KIB]
    with pytest.raises(ValueError):
        lbas[0] = 1
    with pytest.raises(ValueError):
        trace.response_times()[0] = 0.0


def test_response_times_cache_invalidated_by_append():
    trace = run_some_ios(3)
    first = trace.response_times()
    assert len(first) == 3
    trace.append(trace[0])
    assert len(trace.response_times()) == 4


def test_empty_trace_has_working_columns():
    trace = IOTrace()
    assert len(trace) == 0
    assert len(trace.response_times()) == 0
    assert trace.column("lba").size == 0
    assert list(trace) == []


def _synthetic_trace(count=3):
    """A trace recorded directly (no device), so notes are fully ours."""
    from repro.flashsim.timing import CostAccumulator

    trace = IOTrace()
    for i in range(count):
        trace.record(
            index=i,
            lba=i * 8 * KIB,
            size=8 * KIB,
            write=True,
            scheduled_at=float(i),
            submitted_at=float(i),
            started_at=float(i),
            completed_at=float(i) + 0.5,
            cost=CostAccumulator(page_programs=1),
        )
    return trace


def test_notes_with_separator_and_escape_round_trip():
    """A note containing the ";" joiner (or a backslash) must not split
    into phantom notes on re-parse."""
    trace = _synthetic_trace(3)
    trace[0].cost.note("merge; forced")
    trace[0].cost.note("path\\x")
    trace[1].cost.note("plain")
    rows = IOTrace.parse_csv(trace.to_csv())
    assert rows[0].notes == ("merge; forced", "path\\x")
    assert rows[1].notes == ("plain",)
    assert rows[2].notes == ()


def test_from_csv_round_trip():
    trace = run_some_ios(5)
    trace[1].cost.note("gc")
    rebuilt = IOTrace.from_csv(trace.to_csv())
    assert len(rebuilt) == 5
    # identity, cost and note columns survive; timings are re-read at
    # the CSV's 3-decimal precision
    assert rebuilt.column("lba").tolist() == trace.column("lba").tolist()
    assert rebuilt.column("write").tolist() == trace.column("write").tolist()
    assert (
        rebuilt.column("page_programs").tolist()
        == trace.column("page_programs").tolist()
    )
    assert rebuilt[1].cost.notes == trace[1].cost.notes
    assert "gc" in rebuilt[1].cost.notes
    assert rebuilt.response_times().tolist() == [
        round(float(rt), 3) for rt in trace.response_times()
    ]


def test_payload_round_trip():
    trace = run_some_ios(4)
    trace[2].cost.note("gc")
    rebuilt = IOTrace.from_payload(trace.to_payload())
    assert list(rebuilt) == list(trace)
    assert rebuilt.to_csv() == trace.to_csv()


def test_pickle_round_trip_and_size_reduction():
    """Pickles ship raw column buffers: same trace back, at least 2x
    smaller than the per-IO object graph it replaces."""
    trace = run_some_ios(64)
    trace[3].cost.note("gc")
    rebuilt = pickle.loads(pickle.dumps(trace))
    assert list(rebuilt) == list(trace)
    assert np.array_equal(rebuilt.response_times(), trace.response_times())
    columnar, object_graph = pickled_sizes(trace)
    assert columnar * 2 <= object_graph
