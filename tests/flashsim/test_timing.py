"""Timing model: spec validation, cost accumulation, parallelism split."""

import pytest

from repro.flashsim.timing import (
    MLC_TIMING,
    SLC_TIMING,
    CostAccumulator,
    TimingSpec,
)
from repro.units import KIB


def test_presets_ordering():
    # MLC chips are slower on every axis (Section 2.1)
    assert MLC_TIMING.read_page > SLC_TIMING.read_page
    assert MLC_TIMING.program_page > SLC_TIMING.program_page
    assert MLC_TIMING.erase_block > SLC_TIMING.erase_block


@pytest.mark.parametrize(
    "kwargs",
    [
        {"read_page": -1.0},
        {"transfer_per_kib": -0.1},
        {"parallelism": 0.5},
        {"copy_parallelism": 0.0},
        {"copy_page_extra": -5.0},
    ],
)
def test_invalid_timing_rejected(kwargs):
    with pytest.raises(ValueError):
        TimingSpec(**kwargs)


def test_transfer_scales_with_bytes():
    timing = TimingSpec(transfer_per_kib=10.0)
    assert timing.transfer(1 * KIB) == pytest.approx(10.0)
    assert timing.transfer(32 * KIB) == pytest.approx(320.0)


def test_host_parallelism_divides_flash_ops():
    timing = TimingSpec(read_page=100.0, program_page=200.0, parallelism=4.0)
    assert timing.read_pages(8) == pytest.approx(200.0)
    assert timing.program_pages(8) == pytest.approx(400.0)


def test_copy_path_uses_copy_parallelism_and_extra():
    timing = TimingSpec(
        read_page=100.0,
        program_page=200.0,
        parallelism=16.0,
        copy_parallelism=2.0,
        copy_page_extra=50.0,
    )
    # copies ignore the striped host parallelism
    assert timing.copy_pages(4, 4) == pytest.approx((400.0 + 1000.0) / 2.0)


def test_erase_uses_copy_parallelism():
    timing = TimingSpec(erase_block=1000.0, copy_parallelism=2.0)
    assert timing.erase_blocks(3) == pytest.approx(1500.0)


def test_cost_accumulator_total():
    timing = TimingSpec(
        read_page=10.0,
        program_page=20.0,
        erase_block=100.0,
        transfer_per_kib=1.0,
        controller_overhead=5.0,
        map_miss=7.0,
    )
    cost = CostAccumulator(
        page_reads=2,
        page_programs=3,
        block_erases=1,
        bytes_transferred=4 * KIB,
        map_misses=1,
        extra_usec=0.5,
    )
    expected = 20.0 + 60.0 + 100.0 + 4.0 + 7.0 + 0.5 + 5.0
    assert cost.total(timing) == pytest.approx(expected)
    assert cost.total(timing, include_overhead=False) == pytest.approx(expected - 5.0)


def test_cost_accumulator_add_merges_everything():
    a = CostAccumulator(page_reads=1, copy_reads=2, notes=["x"])
    b = CostAccumulator(page_programs=3, copy_programs=4, block_erases=1, notes=["y"])
    a.add(b)
    assert (a.page_reads, a.page_programs) == (1, 3)
    assert (a.copy_reads, a.copy_programs) == (2, 4)
    assert a.block_erases == 1
    assert a.notes == ["x", "y"]


def test_is_empty():
    assert CostAccumulator().is_empty()
    assert not CostAccumulator(page_reads=1).is_empty()
    assert not CostAccumulator(extra_usec=0.1).is_empty()


def test_note_records_tags():
    cost = CostAccumulator()
    cost.note("full-merge")
    assert cost.notes == ["full-merge"]


# ----------------------------------------------------------------------
# channels / planes decomposition
# ----------------------------------------------------------------------

def test_channels_derived_from_parallelism():
    timing = TimingSpec(parallelism=16.0)
    assert timing.channels == 16
    assert timing.planes == 1


def test_channels_derived_with_planes():
    timing = TimingSpec(parallelism=16.0, planes=2)
    assert timing.channels == 8


def test_explicit_channels_set_parallelism_alias():
    timing = TimingSpec(channels=4, planes=2)
    assert timing.parallelism == 8.0
    # cost formulas divide by the alias exactly as before
    legacy = TimingSpec(parallelism=8.0)
    assert timing.read_pages(16) == legacy.read_pages(16)
    assert timing.program_pages(16) == legacy.program_pages(16)


def test_conflicting_channels_and_parallelism_rejected():
    with pytest.raises(ValueError):
        TimingSpec(parallelism=16.0, channels=4, planes=2)


def test_non_integral_channel_decomposition_rejected():
    with pytest.raises(ValueError):
        TimingSpec(parallelism=6.0, planes=4)
    with pytest.raises(ValueError):
        TimingSpec(parallelism=2.5)


def test_channel_and_plane_bounds_validated():
    with pytest.raises(ValueError):
        TimingSpec(planes=0)
    with pytest.raises(ValueError):
        TimingSpec(channels=-1)
    with pytest.raises(ValueError):
        TimingSpec(channels=2.0)  # must be a true integer


def test_builtin_profiles_decompose_integrally():
    from repro.flashsim.profiles import ALL_PROFILES

    for profile in ALL_PROFILES:
        timing = profile.timing
        assert timing.channels * timing.planes == timing.parallelism
