"""Wear statistics and lifetime projection."""

import pytest

from repro.errors import AnalysisError
from repro.flashsim.wear import _gini, project_lifetime, wear_report
from repro.units import KIB, SEC

import numpy as np

from tests.conftest import make_device


def write_randomly(device, count, seed=0, io_size=4 * KIB):
    """Scattered sub-block random writes (the wear-heavy pattern)."""
    import random

    from repro.iotypes import IORequest, Mode

    rng = random.Random(seed)
    now = device.busy_until
    total = 0
    for index in range(count):
        lba = rng.randrange(device.capacity // io_size) * io_size
        done = device.submit(IORequest(index, lba, io_size, Mode.WRITE), now)
        now = done.completed_at
        total += io_size
    return total, now


def test_gini_of_even_distribution_is_zero():
    assert _gini(np.array([5, 5, 5, 5])) == pytest.approx(0.0, abs=1e-9)


def test_gini_of_concentrated_distribution_is_high():
    concentrated = np.array([0, 0, 0, 100])
    assert _gini(concentrated) > 0.7


def test_gini_empty_and_zero():
    assert _gini(np.array([])) == 0.0
    assert _gini(np.zeros(4)) == 0.0


def test_wear_report_on_fresh_device():
    device = make_device()
    report = wear_report(device)
    assert report.total_erases == 0
    assert report.worst_block_life_used == 0.0
    assert report.evenness == pytest.approx(1.0)


def test_wear_report_after_traffic():
    device = make_device()
    write_randomly(device, 400)
    report = wear_report(device)
    assert report.total_erases > 0
    assert report.max_erases >= report.mean_erases >= report.min_erases
    assert 0.0 <= report.gini <= 1.0
    assert "erases total=" in report.summary()


def test_lifetime_projection():
    device = make_device()
    before = wear_report(device)
    start = device.busy_until
    written, end = write_randomly(device, 400)
    after = wear_report(device)
    projection = project_lifetime(device, before, after, end - start, written)
    assert projection.erases_per_second > 0
    assert projection.write_amplification > 0
    assert projection.projected_seconds > 0
    assert "projected life" in projection.summary()


def test_lifetime_projection_validation():
    device = make_device()
    report = wear_report(device)
    with pytest.raises(AnalysisError):
        project_lifetime(device, report, report, 0.0, 1)


def test_dynamic_rotation_keeps_wear_reasonably_even():
    """The hybrid FTL's FIFO free pool rotates blocks: random traffic
    must not concentrate erases on a handful of blocks."""
    device = make_device()
    write_randomly(device, 1200)
    report = wear_report(device)
    assert report.gini < 0.6


def test_projection_is_workload_sensitive():
    """Sequential overwrites erase less per byte than random writes —
    the projected life under a sequential workload is longer."""
    from repro.core.patterns import LocationKind, PatternSpec
    from repro.core.runner import execute
    from repro.iotypes import Mode

    random_device = make_device()
    before = wear_report(random_device)
    start = random_device.busy_until
    written, end = write_randomly(random_device, 600)
    random_projection = project_lifetime(
        random_device, before, wear_report(random_device), end - start, written
    )

    seq_device = make_device()
    before = wear_report(seq_device)
    start = seq_device.busy_until
    spec = PatternSpec(
        mode=Mode.WRITE,
        location=LocationKind.SEQUENTIAL,
        io_size=16 * KIB,
        io_count=600,
        target_size=seq_device.capacity,
    )
    run = execute(seq_device, spec)
    end = run.trace[-1].completed_at
    seq_projection = project_lifetime(
        seq_device, before, wear_report(seq_device), end - start, 600 * 16 * KIB
    )
    assert seq_projection.write_amplification < random_projection.write_amplification
