"""RAM write-back cache: hits, LRU groups, destage hysteresis, flush."""

import pytest

from repro.errors import FTLError
from repro.flashsim.cache import WriteBackCache
from repro.flashsim.timing import CostAccumulator

PPB = 8


@pytest.fixture
def cache(geometry):
    # capacity: 16 pages, destage down to 12
    return WriteBackCache(geometry, 16 * geometry.page_size, low_watermark=0.75)


def test_write_then_read_hit(cache):
    assert cache.write(5, 100) is False  # first write: not a hit
    assert cache.read(5) == 100
    assert cache.hits == 1


def test_overwrite_is_a_hit_and_keeps_one_copy(cache):
    cache.write(5, 100)
    assert cache.write(5, 200) is True
    assert cache.dirty_pages == 1
    assert cache.read(5) == 200


def test_read_miss(cache):
    assert cache.read(42) is None
    assert cache.misses == 1


def test_destage_not_needed_below_capacity(cache, hybrid_ftl):
    for lpage in range(16):
        cache.write(lpage, lpage + 1)
    cost = CostAccumulator()
    assert cache.destage_if_needed(hybrid_ftl, cost) == 0
    assert cost.is_empty()


def test_destage_hysteresis_down_to_low_watermark(cache, hybrid_ftl):
    # 17 dirty pages in 3 block groups -> over capacity (16)
    for lpage in list(range(8)) + list(range(8, 16)) + [16]:
        cache.write(lpage, lpage + 1)
    cost = CostAccumulator()
    destaged = cache.destage_if_needed(hybrid_ftl, cost)
    assert destaged > 0
    assert cache.dirty_pages <= 12
    assert cost.page_programs == destaged


def test_destage_picks_lru_block_group(cache, hybrid_ftl):
    for offset in range(8):
        cache.write(offset, 1)  # block 0 (oldest)
    for offset in range(8):
        cache.write(PPB + offset, 2)  # block 1
    cache.write(0, 9)  # touch block 0 -> block 1 becomes LRU
    cache.write(2 * PPB, 3)  # overflow (17 pages)
    cost = CostAccumulator()
    cache.destage_if_needed(hybrid_ftl, cost)
    # block 1 was destaged; block 0 is still cached
    assert cache.read(0) == 9
    assert cache.read(PPB) is None
    assert hybrid_ftl.read_token_quiet(PPB) == 2


def test_destaged_group_is_written_in_offset_order(cache, hybrid_ftl):
    # write a block's pages in reverse; the destage must arrive sorted,
    # making the log switch-mergeable (how caches absorb reverse writes)
    for offset in reversed(range(PPB)):
        cache.write(offset, offset + 1)
    cost = CostAccumulator()
    cache.flush(hybrid_ftl, cost)
    assert hybrid_ftl.merge_stats["switch"] == 1
    assert hybrid_ftl.merge_stats["full"] == 0


def test_flush_empties_everything(cache, hybrid_ftl):
    for lpage in range(13):
        cache.write(lpage, lpage + 1)
    cost = CostAccumulator()
    assert cache.flush(hybrid_ftl, cost) == 13
    assert cache.dirty_pages == 0
    for lpage in range(13):
        assert hybrid_ftl.read_token_quiet(lpage) == lpage + 1


def test_stats_track_destages(cache, hybrid_ftl):
    for lpage in range(8):
        cache.write(lpage, 1)
    cost = CostAccumulator()
    cache.flush(hybrid_ftl, cost)
    assert cache.destaged_groups == 1
    assert cache.destaged_pages == 8


def test_capacity_validation(geometry):
    with pytest.raises(FTLError):
        WriteBackCache(geometry, geometry.page_size - 1)
    with pytest.raises(FTLError):
        WriteBackCache(geometry, geometry.page_size, low_watermark=0.0)
    with pytest.raises(FTLError):
        WriteBackCache(geometry, geometry.page_size, low_watermark=1.5)
