"""Device profiles: registry, construction, Table 2 integrity."""

import pytest

from repro.errors import ProfileError
from repro.flashsim.profiles import (
    ALL_PROFILES,
    TABLE3_PROFILES,
    build_device,
    get_profile,
    profile_names,
    scaled_profile,
)
from repro.paperdata import TABLE3
from repro.units import GIB, MIB


def test_eleven_paper_devices_plus_reference():
    paper_devices = [p for p in ALL_PROFILES if p.brand != "(synthetic)"]
    assert len(paper_devices) == 11
    assert len(ALL_PROFILES) == 12


def test_table3_profiles_all_registered():
    for name in TABLE3_PROFILES:
        assert get_profile(name).name == name
    assert set(TABLE3_PROFILES) == set(TABLE3)


def test_profile_lookup_unknown():
    with pytest.raises(ProfileError):
        get_profile("floppy_disk")


def test_profile_names_match_registry():
    names = profile_names()
    assert len(names) == len(set(names))
    assert "memoright" in names and "kingston_sd" in names


@pytest.mark.parametrize("name", profile_names())
def test_every_profile_builds_and_does_io(name):
    device = build_device(name, logical_bytes=8 * MIB)
    done = device.write(0, 32 * 1024)
    assert done.response_usec > 0
    read = device.read(0, 32 * 1024, now=done.completed_at)
    assert read.response_usec > 0
    device.check_invariants()


def test_capacities_are_scaled_down():
    for profile in ALL_PROFILES:
        assert profile.sim_logical_bytes <= 128 * MIB
        if profile.brand != "(synthetic)":
            assert profile.real_capacity >= 2 * GIB


def test_prices_follow_table2():
    assert get_profile("memoright").price_usd == 943
    assert get_profile("kingston_dti").price_usd == 17
    assert get_profile("kingston_sd").price_usd == 12


def test_highlighted_profiles_are_the_presented_seven():
    highlighted = {p.name for p in ALL_PROFILES if p.highlighted}
    assert highlighted == set(TABLE3_PROFILES)


def test_geometry_override():
    profile = get_profile("mtron")
    geometry = profile.geometry(16 * MIB)
    assert geometry.logical_bytes == 16 * MIB
    assert geometry.spare_blocks == profile.spare_blocks


def test_scaled_profile_overrides_fields():
    quiet = scaled_profile("mtron", price_usd=1)
    assert quiet.price_usd == 1
    assert quiet.timing == get_profile("mtron").timing


def test_ftl_kinds_cover_all_three_families():
    kinds = {p.ftl_kind for p in ALL_PROFILES}
    assert kinds == {"hybrid", "blockmap", "pagemap"}


def test_high_end_profiles_have_background_reclamation():
    assert get_profile("memoright").hybrid.bg_enabled
    assert get_profile("mtron").hybrid.bg_enabled
    assert not get_profile("samsung").hybrid.bg_enabled


def test_samsung_has_16k_mapping_unit():
    assert get_profile("samsung").controller.mapping_unit == 16 * 1024


def test_dti_commit_boundary_is_32k():
    assert get_profile("kingston_dti").blockmap.sync_commit_boundary == 32 * 1024
