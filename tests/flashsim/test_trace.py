"""IOTrace: recording and CSV round-trip."""

from repro.flashsim.trace import IOTrace
from repro.iotypes import IORequest, Mode
from repro.units import KIB

from tests.conftest import make_device


def run_some_ios(count=6):
    device = make_device()
    trace = IOTrace()
    now = 0.0
    for i in range(count):
        done = device.submit(IORequest(i, i * 8 * KIB, 8 * KIB, Mode.WRITE), now)
        trace.append(done)
        now = done.completed_at
    return trace


def test_append_and_iterate():
    trace = run_some_ios(4)
    assert len(trace) == 4
    assert [c.request.index for c in trace] == [0, 1, 2, 3]
    assert trace[2].request.lba == 16 * KIB


def test_response_times_in_order():
    trace = run_some_ios(4)
    responses = trace.response_times()
    assert len(responses) == 4
    assert all(rt > 0 for rt in responses)


def test_csv_round_trip(tmp_path):
    trace = run_some_ios(5)
    path = tmp_path / "trace.csv"
    text = trace.to_csv(path)
    assert path.read_text() == text
    rows = IOTrace.load_csv(path)
    assert len(rows) == 5
    for completed, row in zip(trace, rows):
        assert row.index == completed.request.index
        assert row.lba == completed.request.lba
        assert row.size == completed.request.size
        assert row.mode is Mode.WRITE
        assert row.response_usec == round(completed.response_usec, 3)
        assert row.page_programs == completed.cost.page_programs


def test_csv_preserves_notes():
    trace = run_some_ios(3)
    trace[0].cost.note("switch-merge")
    rows = IOTrace.parse_csv(trace.to_csv())
    assert "switch-merge" in rows[0].notes


def test_csv_round_trips_multiple_notes_as_tuple():
    trace = run_some_ios(3)
    trace[0].cost.note("switch-merge")
    trace[0].cost.note("gc")
    rows = IOTrace.parse_csv(trace.to_csv())
    assert rows[0].notes == ("switch-merge", "gc")
    empty = [row.notes for row in rows if not row.notes]
    assert empty and all(notes == () for notes in empty)


def test_extend():
    trace = run_some_ios(2)
    other = IOTrace()
    other.extend(list(trace))
    assert len(other) == 2
