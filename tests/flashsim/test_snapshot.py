"""Device snapshots: bit-identical replay across every FTL family."""

import pickle

import pytest

from repro.core.engine import Engine
from repro.core.patterns import LocationKind, PatternSpec
from repro.errors import SnapshotError
from repro.flashsim import DeviceSnapshot, Geometry
from repro.iotypes import Mode
from repro.units import KIB, MIB

from tests.conftest import make_device

FAMILIES = ("hybrid", "blockmap", "pagemap", "fast")


def warm_up(device):
    """Leave the device in a non-trivial state: fragmented logs,
    partially filled cache, advanced clock."""
    engine = Engine(device)
    engine.run(
        PatternSpec(
            mode=Mode.WRITE, location=LocationKind.RANDOM,
            io_size=16 * KIB, io_count=24, target_size=512 * KIB, seed=3,
        )
    )
    engine.run(
        PatternSpec(
            mode=Mode.WRITE, location=LocationKind.SEQUENTIAL,
            io_size=16 * KIB, io_count=16, target_offset=512 * KIB, seed=5,
        )
    )


def probe(device):
    """One deterministic random-write run; returns its per-IO timeline."""
    run = Engine(device).run(
        PatternSpec(
            mode=Mode.WRITE, location=LocationKind.RANDOM,
            io_size=16 * KIB, io_count=32, seed=9,
        )
    )
    timeline = [
        (c.submitted_at, c.started_at, c.completed_at) for c in run.trace
    ]
    return timeline, run.stats


def family_device(family):
    # the hybrid profile carries a write-back cache so the cache state
    # is part of the round-trip too
    return make_device(
        ftl_kind=family, cache_bytes=64 * KIB if family == "hybrid" else 0
    )


@pytest.mark.parametrize("family", FAMILIES)
def test_snapshot_roundtrip_is_bit_identical(family):
    device = family_device(family)
    warm_up(device)
    snapshot = device.snapshot()
    fingerprint = device.fingerprint()

    first, stats_first = probe(device)
    assert device.fingerprint() != fingerprint  # the probe moved the state

    device.restore(snapshot)
    assert device.fingerprint() == fingerprint
    second, stats_second = probe(device)

    assert first == second
    assert stats_first == stats_second
    device.check_invariants()


@pytest.mark.parametrize("family", FAMILIES)
def test_snapshot_survives_many_restores(family):
    device = family_device(family)
    warm_up(device)
    snapshot = device.snapshot()
    timelines = []
    for _ in range(3):
        device.restore(snapshot)
        timelines.append(probe(device)[0])
        device.check_invariants()
    assert timelines[0] == timelines[1] == timelines[2]


@pytest.mark.parametrize("family", FAMILIES)
def test_snapshot_pickles(family):
    device = family_device(family)
    warm_up(device)
    snapshot = device.snapshot()
    device.restore(snapshot)
    direct = probe(device)[0]

    shipped = pickle.loads(pickle.dumps(snapshot))
    assert isinstance(shipped, DeviceSnapshot)
    device.restore(shipped)
    assert probe(device)[0] == direct


def test_restore_rejects_other_ftl_family():
    donor = make_device(ftl_kind="hybrid")
    snapshot = donor.snapshot()
    with pytest.raises(SnapshotError):
        make_device(ftl_kind="blockmap").restore(snapshot)


def test_restore_rejects_other_geometry():
    donor = make_device()
    snapshot = donor.snapshot()
    other = make_device(
        Geometry(
            page_size=2 * KIB,
            pages_per_block=8,
            logical_bytes=2 * MIB,
            physical_blocks=128 + 24,
        )
    )
    with pytest.raises(SnapshotError):
        other.restore(snapshot)


def test_restore_rejects_cache_mismatch():
    donor = make_device(cache_bytes=64 * KIB)
    snapshot = donor.snapshot()
    with pytest.raises(SnapshotError):
        make_device(cache_bytes=0).restore(snapshot)
