"""Host models: synchronous feedback-driven submission, parallel event
loop, serialization on the single device queue."""

import pytest

from repro.flashsim.host import ParallelHost, SyncHost, feed_from_iterable
from repro.iotypes import IORequest, Mode
from repro.units import KIB

from tests.conftest import make_device


def requests(count, stride=8 * KIB, mode=Mode.WRITE, start=0):
    return [
        IORequest(i, start + i * stride, 8 * KIB, mode, 0.0) for i in range(count)
    ]


def test_sync_host_runs_feed_to_exhaustion():
    device = make_device()
    host = SyncHost(device)
    completions = host.run(feed_from_iterable(requests(5)))
    assert len(completions) == 5
    # consecutive: each IO starts when the previous completes
    for earlier, later in zip(completions, completions[1:]):
        assert later.started_at >= earlier.completed_at


def test_sync_host_os_overhead_delays_submission():
    no_overhead = make_device()
    completions = SyncHost(no_overhead).run(feed_from_iterable(requests(3)))
    base_end = completions[-1].completed_at
    with_overhead = make_device()
    host = SyncHost(with_overhead, os_overhead_usec=100.0)
    delayed = host.run(feed_from_iterable(requests(3)))
    assert delayed[-1].completed_at == pytest.approx(base_end + 300.0)


def test_sync_host_respects_scheduled_times():
    device = make_device()
    host = SyncHost(device)
    late = [IORequest(0, 0, 8 * KIB, Mode.WRITE, 5_000.0)]
    completions = host.run(feed_from_iterable(late))
    assert completions[0].submitted_at >= 5_000.0


def test_parallel_host_serialises_on_the_device():
    device = make_device()
    host = ParallelHost(device)
    feeds = [
        feed_from_iterable(requests(4, start=0)),
        feed_from_iterable(requests(4, start=256 * KIB)),
    ]
    per_process = host.run(feeds)
    assert [len(c) for c in per_process] == [4, 4]
    everything = sorted(
        (c for completions in per_process for c in completions),
        key=lambda c: c.started_at,
    )
    # no two IOs overlap in service
    for earlier, later in zip(everything, everything[1:]):
        assert later.started_at >= earlier.completed_at - 1e-9


def test_parallel_host_no_throughput_gain():
    """Hint 7's physics: total time with 2 processes equals the solo
    total — a single queue gains nothing from parallel submission."""
    solo_device = make_device()
    solo = SyncHost(solo_device).run(feed_from_iterable(requests(8)))
    solo_span = solo[-1].completed_at - solo[0].submitted_at

    par_device = make_device()
    host = ParallelHost(par_device)
    feeds = [
        feed_from_iterable(requests(4, start=0)),
        feed_from_iterable(requests(4, start=256 * KIB)),
    ]
    per_process = host.run(feeds)
    par_end = max(c.completed_at for completions in per_process for c in completions)
    assert par_end >= solo_span * 0.9


def test_parallel_response_times_include_queueing():
    device = make_device()
    host = ParallelHost(device)
    feeds = [
        feed_from_iterable(requests(4, start=0)),
        feed_from_iterable(requests(4, start=256 * KIB)),
    ]
    per_process = host.run(feeds)
    queued = [
        c
        for completions in per_process
        for c in completions
        if c.response_usec > c.service_usec + 1e-9
    ]
    assert queued  # someone always waits behind the other process


def test_feed_from_iterable_ignores_feedback():
    feed = feed_from_iterable(requests(2))
    first = feed(None)
    second = feed(None)
    assert (first.index, second.index) == (0, 1)
    assert feed(None) is None


def _identical_programs(processes=3, per_process=4):
    import numpy as np

    from repro.core.generator import IOProgram

    return [
        IOProgram(
            lbas=np.arange(per_process, dtype=np.int64) * 8 * KIB
            + p * 256 * KIB,
            sizes=np.full(per_process, 8 * KIB, dtype=np.int64),
            writes=np.ones(per_process, dtype=np.bool_),
            gaps=np.zeros(per_process, dtype=np.float64),
        )
        for p in range(processes)
    ]


def test_parallel_host_run_programs_is_deterministic():
    """Identical inputs on identical devices replay identically — the
    scheduler has no hidden state or iteration-order dependence."""
    first = ParallelHost(make_device()).run_programs(_identical_programs())
    second = ParallelHost(make_device()).run_programs(_identical_programs())
    assert [trace.to_csv() for trace in first] == [
        trace.to_csv() for trace in second
    ]


def test_parallel_host_ties_go_to_the_lowest_index_process():
    """All processes ready at t=0: submission order is process order
    (the documented lowest-index tie-break, not a rotating pick)."""
    traces = ParallelHost(make_device()).run_programs(_identical_programs())
    first_starts = [trace[0].started_at for trace in traces]
    assert first_starts == sorted(first_starts)
    assert len(set(first_starts)) == len(first_starts)
