"""Block-mapping FTL: append detection, replacement copies, commit
boundary — the mechanics behind the Kingston DTI's Table 3 row."""

import pytest

from repro.errors import FTLError
from repro.flashsim.chip import ERASED, FlashChip
from repro.flashsim.ftl.blockmap import BlockMapConfig, BlockMapFTL
from repro.flashsim.geometry import Geometry
from repro.flashsim.timing import CostAccumulator
from repro.units import KIB, MIB

PPB = 8


def write(ftl, lpage, token):
    cost = CostAccumulator()
    ftl.write_page(lpage, token, cost)
    return cost


def test_read_unwritten_returns_erased(blockmap_ftl):
    assert blockmap_ftl.read_token_quiet(17) == ERASED


def test_append_writes_are_copy_free(blockmap_ftl):
    total_copies = 0
    for offset in range(PPB):
        cost = write(blockmap_ftl, offset, offset + 1)
        total_copies += cost.copy_programs
    assert total_copies == 0
    assert blockmap_ftl.finalize_count == 1  # block completed
    for offset in range(PPB):
        assert blockmap_ftl.read_token_quiet(offset) == offset + 1
    blockmap_ftl.check_invariants()


def test_forward_gap_copies_skipped_pages(blockmap_ftl):
    for offset in range(PPB):
        write(blockmap_ftl, offset, offset + 1)
    cost = write(blockmap_ftl, 4, 99)  # replacement, copies pages 0-3
    assert cost.copy_programs == 4
    assert blockmap_ftl.read_token_quiet(3) == 4
    assert blockmap_ftl.read_token_quiet(4) == 99
    assert blockmap_ftl.read_token_quiet(5) == 6  # still in the old block
    blockmap_ftl.check_invariants()


def test_out_of_order_write_costs_a_full_copy(blockmap_ftl):
    for offset in range(PPB):
        write(blockmap_ftl, offset, offset + 1)
    write(blockmap_ftl, 4, 99)
    # going backwards forces finalize (tail copy) + fresh replacement
    # (head copy): pages 5..7 plus page 0 here
    cost = write(blockmap_ftl, 1, 50)
    assert cost.copy_programs == (PPB - 5) + 1
    assert cost.block_erases >= 1
    assert blockmap_ftl.read_token_quiet(1) == 50
    assert blockmap_ftl.read_token_quiet(4) == 99
    blockmap_ftl.check_invariants()


def test_in_place_rewrites_pathological(blockmap_ftl):
    for offset in range(PPB):
        write(blockmap_ftl, offset, offset + 1)
    first = write(blockmap_ftl, 2, 100)
    second = write(blockmap_ftl, 2, 200)
    # every in-place rewrite after the first pays a near-full block copy
    assert second.copy_programs >= PPB - 2
    assert first.copy_programs >= 2
    assert blockmap_ftl.read_token_quiet(2) == 200


def test_lru_slot_eviction(geometry, chip):
    ftl = BlockMapFTL(geometry, chip, BlockMapConfig(replacement_slots=2))
    write(ftl, 0 * PPB, 1)
    write(ftl, 1 * PPB, 2)
    write(ftl, 2 * PPB, 3)  # evicts (finalises) block 0's replacement
    assert ftl.open_replacement_count() == 2
    assert ftl.finalize_count == 1
    assert ftl.read_token_quiet(0) == 1
    ftl.check_invariants()


def test_commit_boundary_finalises_partial_ios(geometry, chip):
    boundary = 4 * geometry.page_size
    ftl = BlockMapFTL(
        geometry,
        chip,
        BlockMapConfig(replacement_slots=2, sync_commit_boundary=boundary),
    )
    cost = CostAccumulator()
    # a 2-page write ending off the 4-page boundary: replacement closes
    ftl.write_page(0, 1, cost)
    ftl.write_page(1, 2, cost)
    ftl.note_io_boundary(2 * geometry.page_size, cost)
    assert ftl.open_replacement_count() == 0
    assert ftl.finalize_count == 1
    # a write ending exactly on the boundary stays open
    ftl.write_page(2, 3, cost)
    ftl.write_page(3, 4, cost)
    ftl.note_io_boundary(boundary, cost)
    assert ftl.open_replacement_count() == 1
    ftl.check_invariants()


def test_quiesce_finalises_everything(blockmap_ftl):
    write(blockmap_ftl, 0, 1)
    write(blockmap_ftl, PPB, 2)
    blockmap_ftl.quiesce()
    assert blockmap_ftl.open_replacement_count() == 0
    assert blockmap_ftl.read_token_quiet(0) == 1
    assert blockmap_ftl.read_token_quiet(PPB) == 2
    blockmap_ftl.check_invariants()


def test_random_overwrites_converge(geometry, blockmap_ftl):
    import random

    rng = random.Random(1)
    model = {}
    for step in range(400):
        lpage = rng.randrange(geometry.logical_pages)
        write(blockmap_ftl, lpage, step + 1)
        model[lpage] = step + 1
    for lpage, token in model.items():
        assert blockmap_ftl.read_token_quiet(lpage) == token
    blockmap_ftl.check_invariants()


def test_filler_never_leaks_to_host(blockmap_ftl):
    # write only page 4: pages 0-3 get filler in the replacement
    write(blockmap_ftl, 4, 77)
    for offset in range(4):
        assert blockmap_ftl.read_token_quiet(offset) == ERASED
    blockmap_ftl.quiesce()
    for offset in range(4):
        assert blockmap_ftl.read_token_quiet(offset) == ERASED


def test_spare_requirement_enforced():
    tight = Geometry(
        page_size=2 * KIB, pages_per_block=8, logical_bytes=1 * MIB,
        physical_blocks=64 + 2,
    )
    with pytest.raises(FTLError):
        BlockMapFTL(tight, FlashChip(tight), BlockMapConfig(replacement_slots=4))


def test_config_validation():
    with pytest.raises(FTLError):
        BlockMapConfig(replacement_slots=0)
    with pytest.raises(FTLError):
        BlockMapConfig(sync_commit_boundary=-1)
