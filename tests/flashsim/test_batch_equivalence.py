"""Scalar/batch equivalence: the vectorized run kernel must be invisible.

The batched controller→FTL→chip hot path (``Controller`` fast paths,
``BaseFTL.read_pages``/``write_run``, ``FlashChip.read_run``/
``program_run``) is a pure performance optimisation: every device profile
must produce bit-identical state (``fingerprint``), identical physical
work (``CostAccumulator`` totals) and identical observability counters
(``metrics``) whether the batch paths are enabled or forced off.

Two devices are driven through the same IO mix — sequential, random,
aligned, misaligned, reads and writes interleaved — one with
``batch_enabled = False`` on both the controller and the FTL (the scalar
reference), one with the defaults.  Dedicated cases cover the
cache-enabled and mapping-unit-expanded controllers, whose edges force
the scalar fallbacks.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.flashsim.profiles import build_device, profile_names
from repro.units import KIB, MIB

from ..conftest import SMALL_GEOMETRY, make_device

SECTOR = 512

_COST_FIELDS = (
    "page_reads",
    "page_programs",
    "copy_reads",
    "copy_programs",
    "block_erases",
    "bytes_transferred",
    "map_misses",
)


def _force_scalar(device) -> None:
    device.controller.batch_enabled = False
    device.ftl.batch_enabled = False


def _io_mix(geometry, seed: int = 7):
    """A deterministic interleaving of every access shape the controller
    distinguishes: sequential/random, page-aligned/sector-misaligned,
    whole-page and sub-page sizes, reads mixed with writes."""
    rng = np.random.default_rng(seed)
    page = geometry.page_size
    cap = geometry.logical_bytes
    block = geometry.page_size * geometry.pages_per_block
    ios: list[tuple[str, int, int]] = []

    def clamp(lba: int, size: int) -> tuple[int, int]:
        lba = max(0, min(lba, cap - SECTOR))
        size = max(SECTOR, min(size, cap - lba))
        return lba, size

    # sequential aligned writes then reads (multi-page runs)
    for i in range(12):
        ios.append(("w", *clamp((i * 2 * page) % cap, 2 * page)))
    for i in range(12):
        ios.append(("r", *clamp((i * 2 * page) % cap, 2 * page)))
    # random aligned whole-block and whole-page IOs
    for _ in range(16):
        lba = int(rng.integers(0, cap // page)) * page
        ios.append(("w", *clamp(lba, page)))
        ios.append(("r", *clamp(lba, page)))
    for _ in range(4):
        lba = int(rng.integers(0, max(1, cap // block))) * block
        ios.append(("w", *clamp(lba, block)))
    # misaligned sector-granular IOs (RMW edges on both sides)
    for _ in range(16):
        lba = int(rng.integers(0, cap // SECTOR)) * SECTOR
        size = int(rng.integers(1, 2 * page // SECTOR + 1)) * SECTOR
        mode = "w" if rng.integers(0, 2) else "r"
        ios.append((mode, *clamp(lba, size)))
    # sub-page writes inside a single page (no fully covered pages)
    for _ in range(8):
        lba = int(rng.integers(0, cap // page)) * page + SECTOR
        ios.append(("w", *clamp(lba, SECTOR)))
    # a long sequential sweep to push the page-map FTL into GC
    for i in range(3 * cap // block):
        ios.append(("w", *clamp((i * block) % cap, block)))
    # long sequential reads: spans past the controller's batch-read
    # threshold, so the array read path (not just writes) is exercised
    for i in range(4):
        ios.append(("r", *clamp(i * 4 * block, 4 * block)))
    return ios


def _run_mix(device, ios) -> list[tuple[int, ...]]:
    costs = []
    for mode, lba, size in ios:
        done = device.read(lba, size) if mode == "r" else device.write(lba, size)
        costs.append(tuple(getattr(done.cost, f) for f in _COST_FIELDS))
    return costs


def _assert_equivalent(scalar, batch, ios) -> None:
    scalar_costs = _run_mix(scalar, ios)
    batch_costs = _run_mix(batch, ios)
    for i, (s, b) in enumerate(zip(scalar_costs, batch_costs)):
        assert s == b, (
            f"cost divergence at IO {i} ({ios[i]}): scalar={s} batch={b}"
        )
    assert scalar.fingerprint() == batch.fingerprint()
    assert scalar.metrics() == batch.metrics()
    batch.check_invariants()


@pytest.mark.parametrize("profile", profile_names())
def test_profiles_scalar_batch_identical(profile):
    """Every built-in profile: same fingerprint, costs and metrics."""
    scalar = build_device(profile, logical_bytes=4 * MIB)
    batch = build_device(profile, logical_bytes=4 * MIB)
    _force_scalar(scalar)
    _assert_equivalent(scalar, batch, _io_mix(scalar.geometry))


@pytest.mark.parametrize("ftl_kind", ["pagemap", "hybrid", "blockmap", "fast"])
def test_small_devices_scalar_batch_identical(ftl_kind):
    """Small bespoke devices exercise GC/merge edges within few IOs."""
    scalar = make_device(ftl_kind=ftl_kind)
    batch = make_device(ftl_kind=ftl_kind)
    _force_scalar(scalar)
    _assert_equivalent(scalar, batch, _io_mix(SMALL_GEOMETRY, seed=11))


@pytest.mark.parametrize("ftl_kind", ["pagemap", "hybrid"])
def test_cache_enabled_scalar_batch_identical(ftl_kind):
    """A write-back cache forces the scalar path; counters must agree."""
    scalar = make_device(ftl_kind=ftl_kind, cache_bytes=64 * KIB)
    batch = make_device(ftl_kind=ftl_kind, cache_bytes=64 * KIB)
    _force_scalar(scalar)
    _assert_equivalent(scalar, batch, _io_mix(SMALL_GEOMETRY, seed=13))


@pytest.mark.parametrize("ftl_kind", ["pagemap", "blockmap"])
def test_mapping_unit_scalar_batch_identical(ftl_kind):
    """Mapping-unit expansion creates RMW padding on both edges."""
    unit = 2 * SMALL_GEOMETRY.page_size
    scalar = make_device(ftl_kind=ftl_kind, mapping_unit=unit)
    batch = make_device(ftl_kind=ftl_kind, mapping_unit=unit)
    _force_scalar(scalar)
    _assert_equivalent(scalar, batch, _io_mix(SMALL_GEOMETRY, seed=17))


def test_background_gc_scalar_batch_identical():
    """Background reclamation interleaves with the batch write path."""
    scalar = make_device(ftl_kind="pagemap", bg=True)
    batch = make_device(ftl_kind="pagemap", bg=True)
    _force_scalar(scalar)
    _assert_equivalent(scalar, batch, _io_mix(SMALL_GEOMETRY, seed=19))


def test_snapshot_restore_preserves_batch_state():
    """Restoring a snapshot rebuilds derived batch state (GC buckets)."""
    device = make_device(ftl_kind="pagemap")
    ios = _io_mix(SMALL_GEOMETRY, seed=23)
    half = len(ios) // 2
    _run_mix(device, ios[:half])
    snap = device.snapshot()
    fp_mid = device.fingerprint()
    _run_mix(device, ios[half:])
    fp_end = device.fingerprint()
    device.restore(snap)
    assert device.fingerprint() == fp_mid
    _run_mix(device, ios[half:])
    assert device.fingerprint() == fp_end
    device.check_invariants()
