"""Bitmap FTL state: dense maps must mirror the reference structures.

All four FTL families keep packed boolean bitmaps next to their
authoritative structures — ``_free_map`` mirroring the free-block
deque everywhere, plus the page-map FTL's ``_valid_map`` mirroring
``_p2l >= 0``.  The bitmaps are *derived* state: never snapshotted,
rebuilt on restore, and required to agree with the reference
representation after any sequence of IOs.  These property-style tests
drive a mixed workload and check the mirrors directly (the same
conditions ``check_invariants`` enforces, asserted here from first
principles), then pin the snapshot protocol: a restore must rebuild
exactly the incrementally-maintained bitmaps and reproduce the device
fingerprint.

:mod:`repro.flashsim.bitmap` itself (PackedBits, the packed form used
by chip snapshots) is covered at the bottom.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.flashsim.bitmap import PackedBits, mask_from_indices, pack_bits

from ..conftest import SMALL_GEOMETRY, make_device

FTL_KINDS = ("pagemap", "hybrid", "blockmap", "fast")


def _drive(device, seed: int = 29, ios: int = 300):
    """A write-heavy mix with reads interleaved: enough churn to open
    logs/replacements, trigger merges and (on pagemap) GC."""
    rng = np.random.default_rng(seed)
    geometry = device.geometry
    page = geometry.page_size
    block = page * geometry.pages_per_block
    cap = geometry.logical_bytes
    now = device.busy_until
    for i in range(ios):
        choice = int(rng.integers(0, 4))
        if choice == 0:  # sequential block write
            lba = (i * block) % (cap - block)
            now = device.write(lba, block, now).completed_at
        elif choice == 1:  # random page write
            lba = int(rng.integers(0, cap // page)) * page
            now = device.write(lba, page, now).completed_at
        elif choice == 2:  # misaligned sub-page write (RMW)
            lba = int(rng.integers(0, cap // page - 1)) * page + 512
            now = device.write(lba, 1024, now).completed_at
        else:  # random read
            lba = int(rng.integers(0, cap // page)) * page
            now = device.read(lba, page, now).completed_at
    device.drain()
    return now


def _free_reference(ftl) -> np.ndarray:
    """The free bitmap recomputed from the authoritative deque."""
    return mask_from_indices(ftl._free, ftl.geometry.physical_blocks)


@pytest.mark.parametrize("ftl_kind", FTL_KINDS)
def test_free_bitmap_mirrors_free_queue(ftl_kind):
    device = make_device(ftl_kind=ftl_kind)
    _drive(device)
    ftl = device.ftl
    assert np.array_equal(ftl._free_map, _free_reference(ftl))
    # and the pool actually moved: some blocks left the free pool
    assert not ftl._free_map.all()
    device.check_invariants()


def test_pagemap_valid_bitmap_mirrors_inverse_map():
    device = make_device(ftl_kind="pagemap")
    _drive(device)
    ftl = device.ftl
    assert np.array_equal(ftl._valid_map, ftl._p2l >= 0)
    # per-block valid counts are the bitmap's block-wise sums
    ppb = device.geometry.pages_per_block
    counts = ftl._valid_map.reshape(-1, ppb).sum(axis=1)
    assert np.array_equal(counts, ftl._valid)
    device.check_invariants()


def test_pagemap_gc_maintains_bitmaps():
    """Garbage collection relocates and erases through the bitmaps;
    the mirrors must survive many collections."""
    device = make_device(ftl_kind="pagemap")
    _drive(device, seed=31, ios=600)
    ftl = device.ftl
    assert ftl.gc_collections > 0
    assert np.array_equal(ftl._free_map, _free_reference(ftl))
    assert np.array_equal(ftl._valid_map, ftl._p2l >= 0)
    device.check_invariants()


@pytest.mark.parametrize("ftl_kind", FTL_KINDS)
def test_restore_rebuilds_bitmaps(ftl_kind):
    """Bitmaps are derived state: a snapshot/restore round-trip must
    rebuild exactly the incrementally-maintained arrays and reproduce
    the device fingerprint."""
    device = make_device(ftl_kind=ftl_kind)
    _drive(device, seed=37)
    snap = device.snapshot()
    fingerprint = device.fingerprint()
    live_free = device.ftl._free_map.copy()
    live_valid = (
        device.ftl._valid_map.copy() if ftl_kind == "pagemap" else None
    )
    _drive(device, seed=41, ios=100)  # diverge past the snapshot
    device.restore(snap)
    assert device.fingerprint() == fingerprint
    assert np.array_equal(device.ftl._free_map, live_free)
    if live_valid is not None:
        assert np.array_equal(device.ftl._valid_map, live_valid)
    device.check_invariants()


@pytest.mark.parametrize("ftl_kind", FTL_KINDS)
def test_restored_device_continues_identically(ftl_kind):
    """Driving the same IOs after a restore lands on the same state as
    never having snapshotted — derived bitmaps included."""
    device = make_device(ftl_kind=ftl_kind)
    _drive(device, seed=43, ios=150)
    snap = device.snapshot()
    _drive(device, seed=47, ios=150)
    end_fingerprint = device.fingerprint()
    device.restore(snap)
    _drive(device, seed=47, ios=150)
    assert device.fingerprint() == end_fingerprint
    assert np.array_equal(device.ftl._free_map, _free_reference(device.ftl))
    device.check_invariants()


def test_chip_snapshot_packs_bad_blocks():
    """The chip snapshot stores the bad-block mask packed (one bit per
    block) and restores it exactly."""
    device = make_device(ftl_kind="pagemap")
    chip = device.chip
    chip.mark_bad(SMALL_GEOMETRY.physical_blocks - 1)
    state = chip.snapshot()
    assert isinstance(state["bad"], PackedBits)
    assert len(state["bad"].data) == -(-SMALL_GEOMETRY.physical_blocks // 8)
    before = chip._bad.copy()
    chip.mark_bad(SMALL_GEOMETRY.physical_blocks - 2)
    chip.restore(state)
    assert np.array_equal(chip._bad, before)


# ----------------------------------------------------------------------
# the bitmap primitives
# ----------------------------------------------------------------------


@pytest.mark.parametrize("size", (0, 1, 7, 8, 9, 64, 1000))
def test_pack_bits_round_trip(size):
    rng = np.random.default_rng(size)
    mask = rng.integers(0, 2, size=size).astype(bool)
    packed = pack_bits(mask)
    assert packed.size == size
    assert len(packed.data) == -(-size // 8)
    assert np.array_equal(packed.unpack(), mask)


def test_pack_bits_is_compact_and_hashable():
    mask = np.ones(1024, dtype=bool)
    packed = pack_bits(mask)
    assert len(packed.data) == 128  # 8x smaller than bool bytes
    # frozen dataclass over bytes: usable as a cache/fingerprint key
    assert hash(packed) == hash(pack_bits(mask))


def test_mask_from_indices():
    mask = mask_from_indices([5, 1, 3], 8)
    assert mask.dtype == np.bool_
    assert np.flatnonzero(mask).tolist() == [1, 3, 5]
    assert not mask_from_indices([], 8).any()
    assert not mask_from_indices(np.empty(0, dtype=np.int64), 8).any()
