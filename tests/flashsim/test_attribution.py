"""The flight recorder's exactness invariant, in every pipeline.

The decomposition's contract (``repro.flashsim.recorder``) is that the
integer components of every IO sum *exactly* to the rounded response
time — not approximately, not on average.  This suite pins that across
the same equivalence axes the performance suites use: all four FTL
families, calibrated profiles (with measurement noise), the write-back
cache, sync vs queued hosts at depth 1, columnar vs legacy recording,
and scalar vs batch kernels — plus the float-residual oracle, the
apportionment edge cases, trace round-trips and the recorder's
pure-observability guarantee (a device with a recorder attached must
evolve bit-identically to one without).
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.core.engine import Engine
from repro.core.generator import PatternGenerator
from repro.core.patterns import baselines
from repro.flashsim import build_device
from repro.flashsim.host import AsyncHost, SyncHost
from repro.flashsim.recorder import (
    COMPONENTS,
    FlightRecorder,
    _apportion,
    attribute_io,
    events_from_trace,
    summarize_components,
    unattributed_usec,
)
from repro.flashsim.timing import CostAccumulator, TimingSpec
from repro.units import KIB, MIB

from ..conftest import SMALL_GEOMETRY, make_device
from .test_batch_equivalence import _force_scalar, _io_mix

FTL_KINDS = ("pagemap", "hybrid", "blockmap", "fast")

#: the internal-work component each FTL family must exercise under the
#: reclamation-heavy conftest IO mix
EXPECTED_INTERNAL = {
    "pagemap": "gc",
    "hybrid": "merge",
    "blockmap": "merge",
    "fast": "merge",
}


def _drive(device, ios):
    for mode, lba, size in ios:
        if mode == "r":
            device.read(lba, size)
        else:
            device.write(lba, size)


def _assert_events_balanced(events):
    assert events, "recorder captured nothing"
    for event in events:
        assert sum(event.components) == round(event.response_usec), (
            f"unbalanced IO lba={event.lba}: {event.components} "
            f"vs {event.response_usec}"
        )


def _assert_trace_balanced(trace):
    assert trace.has_attribution
    balance = trace.attribution_balance()
    assert len(balance) == len(trace)
    assert not balance.any(), f"unbalanced rows: {np.nonzero(balance)[0]}"


# ----------------------------------------------------------------------
# apportionment and the float-residual oracle
# ----------------------------------------------------------------------

def test_apportion_sums_exactly():
    components = [12.4, 0.0, 7.9, 100.6, 0.2, 3.3, 0.0, 0.0, 0.0, 5.5, -1.9]
    target = round(sum(components))
    shares = _apportion(components, target)
    assert sum(shares) == target
    # integer components pass through; fractions round to a neighbour
    for share, value in zip(shares, components):
        assert abs(share - value) < 1.0


def test_apportion_handles_negative_components():
    # a noise delta below zero must floor like everything else
    components = [10.0] * 10 + [-3.7]
    target = round(sum(components))
    shares = _apportion(components, target)
    assert sum(shares) == target
    assert shares[-1] in (-4, -3)


def test_apportion_all_zero():
    assert _apportion([0.0] * len(COMPONENTS), 0) == (0,) * len(COMPONENTS)


def test_apportion_ties_are_deterministic():
    components = [1.5, 1.5, 1.5, 1.5]
    assert _apportion(components, 6) == _apportion(components, 6)
    assert sum(_apportion(components, 6)) == 6


def test_synthetic_decomposition_residual_is_float_noise():
    """The residual oracle: the component model covers every cost path."""
    timing = TimingSpec(map_miss=12.0, copy_page_extra=5.0)
    cost = CostAccumulator()
    cost.scopes = []
    cost.page_reads += 2
    cost.bytes_transferred += 8 * KIB
    cost.map_misses += 1
    cost.extra_usec += 7.25
    sub = cost.begin_scope()
    sub.copy_reads += 4
    sub.copy_programs += 4
    sub.block_erases += 1
    nested = sub.begin_scope()
    nested.copy_reads += 2
    nested.copy_programs += 2
    sub.end_scope("gc", nested)
    cost.end_scope("merge", sub)

    service_base = cost.total(timing)
    service_scaled = service_base * 1.15
    service_final = service_scaled * 0.97
    wait = 12.5
    response = wait + service_final
    residual = unattributed_usec(
        timing, cost, wait=wait, service_base=service_base,
        service_scaled=service_scaled, service_final=service_final,
        response=response,
    )
    assert abs(residual) < 1e-6

    attribution = attribute_io(
        timing, cost, wait=wait, service_base=service_base,
        service_scaled=service_scaled, service_final=service_final,
        response=response, channel=3,
    )
    assert attribution[0] == 3
    assert sum(attribution[1:]) == round(response)
    by_name = dict(zip(COMPONENTS, attribution[1:]))
    assert by_name["merge"] > 0 and by_name["gc"] > 0
    assert by_name["interference"] > 0 and by_name["noise"] < 0


# ----------------------------------------------------------------------
# the invariant across devices and pipelines
# ----------------------------------------------------------------------

@pytest.mark.parametrize("ftl_kind", FTL_KINDS)
def test_ftl_families_balance_exactly(ftl_kind):
    device = make_device(ftl_kind=ftl_kind)
    recorder = FlightRecorder(capacity=10_000)
    device.attach_recorder(recorder)
    _drive(device, _io_mix(SMALL_GEOMETRY, seed=11))
    _assert_events_balanced(recorder.events())
    totals = summarize_components(recorder.events())
    assert totals[EXPECTED_INTERNAL[ftl_kind]] > 0


def test_cache_device_attributes_destage_work():
    device = make_device(ftl_kind="hybrid", cache_bytes=64 * KIB)
    recorder = FlightRecorder(capacity=10_000)
    device.attach_recorder(recorder)
    _drive(device, _io_mix(SMALL_GEOMETRY, seed=13))
    _assert_events_balanced(recorder.events())
    totals = summarize_components(recorder.events())
    assert totals["cache"] > 0


@pytest.mark.parametrize("profile", ("memoright", "kingston_dti", "mtron"))
def test_profiles_balance_exactly(profile):
    """Calibrated profiles bring interference and noise into play."""
    device = build_device(profile, logical_bytes=4 * MIB)
    recorder = FlightRecorder(capacity=10_000)
    device.attach_recorder(recorder)
    _drive(device, _io_mix(device.geometry, seed=7))
    _assert_events_balanced(recorder.events())


@pytest.mark.parametrize("ftl_kind", FTL_KINDS)
@pytest.mark.parametrize("kind", ("SW", "RW"))
def test_sync_async_depth1_attribution_identical(ftl_kind, kind):
    spec = baselines(
        io_size=8 * KIB, io_count=64,
        random_target_size=1 * MIB, sequential_target_size=512 * KIB,
    )[kind]
    sync_device = make_device(ftl_kind=ftl_kind)
    async_device = make_device(ftl_kind=ftl_kind)
    sync_device.attach_recorder(FlightRecorder())
    async_device.attach_recorder(FlightRecorder())
    sync_trace = SyncHost(sync_device).run_program(
        PatternGenerator(spec).program()
    )
    async_trace = AsyncHost(async_device).run_program(
        PatternGenerator(spec).program(), queue_depth=1
    )
    _assert_trace_balanced(sync_trace)
    _assert_trace_balanced(async_trace)
    assert np.array_equal(
        sync_trace.attribution_matrix(), async_trace.attribution_matrix()
    )


@pytest.mark.parametrize("profile", ("memoright", "kingston_dti"))
def test_columnar_legacy_attribution_identical(profile):
    spec = baselines(io_size=16 * KIB, io_count=64)["RW"]
    traces = []
    for columnar in (True, False):
        device = build_device(profile, logical_bytes=4 * MIB)
        device.attach_recorder(FlightRecorder())
        run = Engine(device, columnar=columnar).run(spec)
        _assert_trace_balanced(run.trace)
        traces.append(run.trace)
    assert np.array_equal(
        traces[0].attribution_matrix(), traces[1].attribution_matrix()
    )


@pytest.mark.parametrize("ftl_kind", FTL_KINDS)
def test_scalar_batch_attribution_identical(ftl_kind):
    scalar = make_device(ftl_kind=ftl_kind)
    batch = make_device(ftl_kind=ftl_kind)
    _force_scalar(scalar)
    scalar_rec = FlightRecorder(capacity=10_000)
    batch_rec = FlightRecorder(capacity=10_000)
    scalar.attach_recorder(scalar_rec)
    batch.attach_recorder(batch_rec)
    ios = _io_mix(SMALL_GEOMETRY, seed=11)
    _drive(scalar, ios)
    _drive(batch, ios)
    _assert_events_balanced(scalar_rec.events())
    _assert_events_balanced(batch_rec.events())
    assert [e.components for e in scalar_rec] == [
        e.components for e in batch_rec
    ]


def test_queued_contention_attributes_wait():
    """Channel contention adds wait; the invariant must absorb it.

    The queued hosts pace submissions so steady-state IOs rarely wait;
    filling the NCQ queue in one burst (more IOs than channels, all
    submitted at t=0) forces later IOs onto still-busy channels.
    """
    device = build_device("memoright", logical_bytes=4 * MIB)
    recorder = FlightRecorder()
    device.attach_recorder(recorder)
    size = 16 * KIB
    assert device.queue_depth > device.timing.channels
    for tag in range(device.queue_depth):
        device.submit_async(tag * size, size, False, now=0.0, tag=tag)
    for _ in range(device.queue_depth):
        device.pop_next_completion()
    events = recorder.events()
    _assert_events_balanced(events)
    assert sum(event.component("wait") for event in events) > 0


# ----------------------------------------------------------------------
# pure observability: the recorder must not perturb the simulation
# ----------------------------------------------------------------------

def test_recorder_does_not_perturb_the_device():
    plain = make_device(ftl_kind="hybrid")
    observed = make_device(ftl_kind="hybrid")
    observed.attach_recorder(FlightRecorder())
    ios = _io_mix(SMALL_GEOMETRY, seed=19)
    _drive(plain, ios)
    _drive(observed, ios)
    assert plain.fingerprint() == observed.fingerprint()
    assert plain.metrics() == observed.metrics()
    assert plain.stats == observed.stats


def test_recorder_excluded_from_snapshots():
    device = make_device(ftl_kind="pagemap")
    device.attach_recorder(FlightRecorder())
    ios = _io_mix(SMALL_GEOMETRY, seed=23)
    half = len(ios) // 2
    _drive(device, ios[:half])
    snapshot = device.snapshot()
    fresh = make_device(ftl_kind="pagemap")
    fresh.restore(snapshot)
    assert fresh.recorder is None
    assert fresh.fingerprint() == device.fingerprint()


def test_detach_stops_recording():
    device = make_device()
    recorder = FlightRecorder()
    device.attach_recorder(recorder)
    device.write(0, 4 * KIB)
    seen = len(recorder)
    device.detach_recorder()
    assert device.recorder is None
    device.write(0, 4 * KIB)
    assert len(recorder) == seen


# ----------------------------------------------------------------------
# the ring buffer
# ----------------------------------------------------------------------

def test_ring_bounds_and_dropped_count():
    device = make_device()
    recorder = FlightRecorder(capacity=8)
    device.attach_recorder(recorder)
    page = SMALL_GEOMETRY.page_size
    for i in range(20):
        device.write((i * page) % SMALL_GEOMETRY.logical_bytes, page)
    assert len(recorder) == 8
    assert recorder.recorded == 20
    assert recorder.dropped == 12
    # the ring keeps the newest events
    assert recorder.events()[-1].completed_at == max(
        e.completed_at for e in recorder
    )
    recorder.clear()
    assert len(recorder) == 0
    assert recorder.recorded == 20


def test_recorder_rejects_nonpositive_capacity():
    with pytest.raises(ValueError):
        FlightRecorder(capacity=0)


# ----------------------------------------------------------------------
# trace carriage: columns, payload, pickle, CSV stability
# ----------------------------------------------------------------------

def _traced_pair(spec):
    """The same spec with and without a recorder; returns both traces."""
    plain = make_device(ftl_kind="hybrid")
    observed = make_device(ftl_kind="hybrid")
    observed.attach_recorder(FlightRecorder(capacity=10_000))
    plain_trace = SyncHost(plain).run_program(PatternGenerator(spec).program())
    observed_trace = SyncHost(observed).run_program(
        PatternGenerator(spec).program()
    )
    return plain_trace, observed_trace, observed


def _small_spec():
    return baselines(
        io_size=8 * KIB, io_count=48,
        random_target_size=1 * MIB, sequential_target_size=512 * KIB,
    )["RW"]


def test_recorder_off_trace_has_no_attribution():
    plain_trace, observed_trace, _ = _traced_pair(_small_spec())
    assert not plain_trace.has_attribution
    assert "attribution" not in plain_trace.to_payload()
    assert observed_trace.has_attribution
    # attribution must not leak into the CSV format
    assert plain_trace.to_csv() == observed_trace.to_csv()


def test_trace_payload_round_trips_attribution():
    from repro.flashsim.trace import IOTrace

    _, trace, _ = _traced_pair(_small_spec())
    payload = trace.to_payload()
    assert "attribution" in payload
    rebuilt = IOTrace.from_payload(payload)
    assert rebuilt.has_attribution
    assert np.array_equal(
        rebuilt.attribution_matrix(), trace.attribution_matrix()
    )
    _assert_trace_balanced(rebuilt)


def test_trace_pickle_round_trips_attribution():
    _, trace, _ = _traced_pair(_small_spec())
    rebuilt = pickle.loads(pickle.dumps(trace))
    assert rebuilt.has_attribution
    assert np.array_equal(
        rebuilt.attribution_matrix(), trace.attribution_matrix()
    )


def test_events_from_trace_matches_ring():
    _, trace, device = _traced_pair(_small_spec())
    rebuilt = events_from_trace(trace)
    ring = device.recorder.events()
    assert len(rebuilt) == len(trace)
    # the ring holds the same decompositions the trace carries
    assert [e.components for e in rebuilt] == [e.components for e in ring]
    assert [e.channel for e in rebuilt] == [e.channel for e in ring]


def test_events_from_trace_rejects_unattributed():
    plain_trace, _, _ = _traced_pair(_small_spec())
    with pytest.raises(ValueError):
        events_from_trace(plain_trace)
