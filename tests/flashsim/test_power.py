"""Energy model (the paper's future-work footnote on power)."""

import pytest

from repro.flashsim.power import (
    MLC_POWER,
    SLC_POWER,
    EnergyMeter,
    PowerSpec,
    measure_run_energy,
)
from repro.flashsim.timing import CostAccumulator
from repro.units import KIB, SEC

from tests.conftest import make_device


def test_mlc_draws_more_than_slc():
    assert MLC_POWER.program_page_uj > SLC_POWER.program_page_uj
    assert MLC_POWER.erase_block_uj > SLC_POWER.erase_block_uj


def test_negative_parameters_rejected():
    with pytest.raises(ValueError):
        PowerSpec(read_page_uj=-1.0)


def test_flash_energy_prices_the_cost_accumulator():
    spec = PowerSpec(
        read_page_uj=1.0,
        program_page_uj=10.0,
        erase_block_uj=100.0,
        transfer_per_kib_uj=0.5,
    )
    cost = CostAccumulator(
        page_reads=2,
        copy_reads=3,
        page_programs=4,
        copy_programs=1,
        block_erases=2,
        bytes_transferred=8 * KIB,
    )
    expected = 5 * 1.0 + 5 * 10.0 + 2 * 100.0 + 8 * 0.5
    assert spec.flash_uj(cost) == pytest.approx(expected)


def test_controller_draw_scales_with_time():
    spec = PowerSpec(controller_active_mw=500.0, controller_idle_mw=50.0)
    assert spec.active_uj(1000.0) == pytest.approx(500.0)  # 0.5W x 1ms
    assert spec.idle_uj(1000.0) == pytest.approx(50.0)


def test_io_energy_combines_flash_and_active():
    spec = PowerSpec()
    cost = CostAccumulator(page_programs=1)
    combined = spec.io_uj(cost, 200.0)
    assert combined == pytest.approx(spec.flash_uj(cost) + spec.active_uj(200.0))


def test_energy_meter_accumulates():
    meter = EnergyMeter(SLC_POWER)
    cost = CostAccumulator(page_programs=2, bytes_transferred=4 * KIB)
    first = meter.add(cost, 100.0)
    second = meter.add(cost, 100.0)
    assert first == pytest.approx(second)
    assert meter.total_uj == pytest.approx(first + second)
    assert meter.ios == 2
    assert meter.mean_uj_per_io == pytest.approx(first)


def test_energy_meter_idle_and_rates():
    meter = EnergyMeter(SLC_POWER)
    meter.add(CostAccumulator(page_programs=1), 100.0)
    meter.add_idle(1.0 * SEC)
    assert meter.total_uj > SLC_POWER.idle_uj(1.0 * SEC)
    watts = meter.watts(1.0 * SEC)
    assert 0 < watts < 10  # a sane device-level figure


def test_uj_per_mib_efficiency():
    meter = EnergyMeter(SLC_POWER)
    meter.add(CostAccumulator(page_programs=16, bytes_transferred=32 * KIB), 500.0)
    per_mib = meter.uj_per_mib(32 * KIB)
    assert per_mib == pytest.approx(meter.total_uj * 32)
    assert meter.uj_per_mib(0) == 0.0


def test_measure_run_energy_over_a_device_trace():
    from repro.core.patterns import LocationKind, PatternSpec
    from repro.core.runner import execute
    from repro.iotypes import Mode

    device = make_device()
    run = execute(
        device,
        PatternSpec(
            mode=Mode.WRITE,
            location=LocationKind.SEQUENTIAL,
            io_size=16 * KIB,
            io_count=16,
        ),
    )
    meter = measure_run_energy(run.trace, SLC_POWER)
    assert meter.ios == 16
    assert meter.total_uj > 0
    # writes cost more energy than the same number of reads
    read_run = execute(
        device,
        PatternSpec(
            mode=Mode.READ,
            location=LocationKind.SEQUENTIAL,
            io_size=16 * KIB,
            io_count=16,
        ),
    )
    read_meter = measure_run_energy(read_run.trace, SLC_POWER)
    assert meter.total_uj > read_meter.total_uj
