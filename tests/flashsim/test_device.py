"""FlashDevice: single-queue timing, background credit, idle/drain,
read interference, accounting."""

import pytest

from repro.errors import AddressError
from repro.flashsim.device import BackgroundPolicy
from repro.flashsim.timing import TimingSpec
from repro.iotypes import IORequest, Mode
from repro.units import KIB

from tests.conftest import make_device


def test_basic_write_and_read():
    device = make_device()
    done = device.write(0, 8 * KIB)
    assert done.response_usec > 0
    read = device.read(0, 8 * KIB, now=done.completed_at)
    assert read.response_usec > 0
    device.check_invariants()


def test_out_of_range_rejected():
    device = make_device()
    with pytest.raises(AddressError):
        device.read(device.capacity, 1 * KIB)


def test_single_queue_serialises_ios():
    device = make_device()
    first = device.submit(IORequest(0, 0, 8 * KIB, Mode.WRITE, 0.0), 0.0)
    # submitted while the device is still busy: starts after completion
    second = device.submit(IORequest(1, 8 * KIB, 8 * KIB, Mode.WRITE, 0.0), 0.0)
    assert second.started_at == pytest.approx(first.completed_at)
    assert second.response_usec > second.service_usec or (
        second.response_usec == pytest.approx(
            second.service_usec + first.completed_at
        )
    )


def test_response_includes_queueing_service_does_not():
    device = make_device()
    first = device.submit(IORequest(0, 0, 8 * KIB, Mode.WRITE, 0.0), 0.0)
    second = device.submit(IORequest(1, 8 * KIB, 8 * KIB, Mode.WRITE, 0.0), 0.0)
    assert second.response_usec == pytest.approx(
        first.service_usec + second.service_usec
    )


def test_stats_accounting():
    device = make_device()
    device.write(0, 8 * KIB)
    device.read(0, 4 * KIB, now=device.busy_until)
    assert device.stats.writes == 1
    assert device.stats.reads == 1
    assert device.stats.bytes_written == 8 * KIB
    assert device.stats.bytes_read == 4 * KIB
    assert device.stats.busy_usec > 0


def test_background_work_done_during_idle():
    device = make_device(bg=True)
    # scatter random single-page writes: opens logs, defers merges
    now = 0.0
    ppb = device.geometry.pages_per_block
    for block in range(12):
        done = device.write(block * ppb * 2 * KIB + 2 * KIB, 2 * KIB, now=now)
        now = done.completed_at
    assert device.background_pending()
    device.idle(now + 60_000_000.0)  # a minute of idle
    assert not device.background_pending()
    assert device.stats.background_units > 0
    device.check_invariants()


def test_short_idle_does_less_background_work():
    def scattered(device):
        now = 0.0
        ppb = device.geometry.pages_per_block
        for block in range(12):
            done = device.write(block * ppb * 2 * KIB + 2 * KIB, 2 * KIB, now=now)
            now = done.completed_at
        return now

    short = make_device(bg=True)
    end = scattered(short)
    short.idle(end + 100.0)  # 100us: not even one merge
    long_dev = make_device(bg=True)
    end = scattered(long_dev)
    long_dev.idle(end + 60_000_000.0)
    assert short.stats.background_units < long_dev.stats.background_units


def test_reads_pay_interference_while_background_pending():
    device = make_device(
        bg=True,
    )
    device.background = BackgroundPolicy(
        read_concurrency=0.0, read_interference=2.0
    )
    now = 0.0
    ppb = device.geometry.pages_per_block
    for block in range(12):
        done = device.write(block * ppb * 2 * KIB + 2 * KIB, 2 * KIB, now=now)
        now = done.completed_at
    assert device.background_pending()
    slowed = device.read(0, 8 * KIB, now=now)
    device.drain()
    clean = device.read(0, 8 * KIB, now=device.busy_until)
    assert slowed.service_usec > clean.service_usec * 1.5
    assert device.stats.interfered_reads >= 1


def test_drain_completes_everything():
    device = make_device(bg=True, cache_bytes=16 * 2 * KIB)
    device.write(0, 8 * KIB)
    assert device.controller.cache.dirty_pages > 0
    device.drain()
    assert device.controller.cache.dirty_pages == 0
    assert not device.background_pending()


def test_background_policy_validation():
    with pytest.raises(ValueError):
        BackgroundPolicy(read_concurrency=1.5)
    with pytest.raises(ValueError):
        BackgroundPolicy(read_interference=0.5)


def test_describe():
    device = make_device()
    assert "HybridLogFTL" in device.describe()


def test_timing_scales_response():
    slow = make_device(timing=TimingSpec(transfer_per_kib=100.0))
    fast = make_device(timing=TimingSpec(transfer_per_kib=1.0))
    slow_io = slow.write(0, 32 * KIB)
    fast_io = fast.write(0, 32 * KIB)
    assert slow_io.service_usec > fast_io.service_usec
