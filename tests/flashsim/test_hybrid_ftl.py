"""Hybrid log-block FTL: merges, pools, deferral, stream classification."""

import pytest

from repro.errors import FTLError
from repro.flashsim.chip import ERASED, FlashChip
from repro.flashsim.ftl.hybrid import FILLER_TOKEN, HybridConfig, HybridLogFTL
from repro.flashsim.geometry import Geometry
from repro.flashsim.timing import CostAccumulator
from repro.units import KIB, MIB

PPB = 8  # pages per block in the shared small geometry


def write(ftl, lpage, token, seq_hint=None):
    cost = CostAccumulator()
    ftl.write_page(lpage, token, cost, seq_hint=seq_hint)
    return cost


def write_run(ftl, pairs):
    cost = CostAccumulator()
    ftl.write_pages(pairs, cost)
    return cost


def test_read_unwritten_returns_erased(hybrid_ftl):
    assert hybrid_ftl.read_token_quiet(0) == ERASED
    assert hybrid_ftl.read_token_quiet(123) == ERASED


def test_read_your_writes_simple(hybrid_ftl):
    write(hybrid_ftl, 5, 100)
    assert hybrid_ftl.read_token_quiet(5) == 100
    write(hybrid_ftl, 5, 200)
    assert hybrid_ftl.read_token_quiet(5) == 200
    hybrid_ftl.check_invariants()


def test_host_token_must_be_positive(hybrid_ftl):
    with pytest.raises(FTLError):
        write(hybrid_ftl, 0, FILLER_TOKEN)


def test_sequential_block_fill_switch_merges(hybrid_ftl):
    cost = write_run(hybrid_ftl, [(i, i + 1) for i in range(PPB)])
    assert hybrid_ftl.merge_stats["switch"] == 1
    assert hybrid_ftl.merge_stats["full"] == 0
    # switch merge of a never-written block needs no erase at all
    assert cost.copy_programs == 0
    for i in range(PPB):
        assert hybrid_ftl.read_token_quiet(i) == i + 1
    hybrid_ftl.check_invariants()


def test_sequential_overwrite_switch_erases_old_block(hybrid_ftl):
    write_run(hybrid_ftl, [(i, i + 1) for i in range(PPB)])
    cost = write_run(hybrid_ftl, [(i, 100 + i) for i in range(PPB)])
    assert hybrid_ftl.merge_stats["switch"] == 2
    assert cost.block_erases >= 1
    assert hybrid_ftl.read_token_quiet(3) == 103


def test_out_of_order_fill_defers_then_full_merges(hybrid_ftl):
    # fill one block fully but in reverse page order: never switchable
    for offset in reversed(range(PPB)):
        write(hybrid_ftl, offset, 50 + offset)
    assert hybrid_ftl.merge_stats["switch"] == 0
    assert hybrid_ftl.pending_merge_count() == 1
    # force the deferred merge
    hybrid_ftl.quiesce()
    assert hybrid_ftl.merge_stats["full"] == 1
    for offset in range(PPB):
        assert hybrid_ftl.read_token_quiet(offset) == 50 + offset
    hybrid_ftl.check_invariants()


def test_partial_in_order_log_partial_merges(hybrid_ftl):
    write_run(hybrid_ftl, [(i, i + 1) for i in range(PPB)])  # block 0 full
    # overwrite only the first 3 pages, in order
    write_run(hybrid_ftl, [(i, 90 + i) for i in range(3)])
    hybrid_ftl.quiesce()
    assert hybrid_ftl.merge_stats["partial"] >= 1
    assert hybrid_ftl.read_token_quiet(0) == 90
    assert hybrid_ftl.read_token_quiet(2) == 92
    assert hybrid_ftl.read_token_quiet(5) == 6  # preserved tail
    hybrid_ftl.check_invariants()


def test_multiple_pending_generations_converge_to_newest(hybrid_ftl):
    lpage = 2  # offset 2 in block 0 -> random-class log
    for generation in range(4 * PPB):
        write(hybrid_ftl, lpage, 1000 + generation)
    assert hybrid_ftl.read_token_quiet(lpage) == 1000 + 4 * PPB - 1
    hybrid_ftl.quiesce()
    assert hybrid_ftl.read_token_quiet(lpage) == 1000 + 4 * PPB - 1
    hybrid_ftl.check_invariants()


def test_full_inorder_log_supersedes_pending_generations(hybrid_ftl):
    # leave a stale out-of-order generation for block 0
    write(hybrid_ftl, 3, 7)
    write(hybrid_ftl, 1, 8)
    stale_fulls = hybrid_ftl.merge_stats["full"]
    # now rewrite the whole block in order: the stale generation must be
    # erased (superseded), never full-merged
    cost = write_run(hybrid_ftl, [(i, 200 + i) for i in range(PPB)])
    assert hybrid_ftl.merge_stats["full"] == stale_fulls
    assert "superseded" in cost.notes
    assert hybrid_ftl.read_token_quiet(1) == 201
    hybrid_ftl.check_invariants()


def test_stream_restart_over_stale_log(hybrid_ftl):
    write(hybrid_ftl, 5, 1)  # stale log page for block 0
    write_run(hybrid_ftl, [(i, 300 + i) for i in range(PPB)])
    # the full rewrite must end in a switch merge despite the stale log
    assert hybrid_ftl.merge_stats["switch"] == 1
    assert hybrid_ftl.read_token_quiet(5) == 305
    hybrid_ftl.check_invariants()


def test_stream_classification_promotes_on_continuation(geometry, chip):
    ftl = HybridLogFTL(
        geometry, chip, HybridConfig(seq_log_blocks=2, rnd_log_blocks=4)
    )
    # first run of block 3 registers a candidate (random pool)
    write_run(ftl, [(3 * PPB + i, 10 + i) for i in range(4)])
    assert len(ftl._open_rnd) == 1 and len(ftl._open_seq) == 0
    # its continuation confirms the stream: the log moves to a seq slot
    write_run(ftl, [(3 * PPB + 4 + i, 20 + i) for i in range(2)])
    assert len(ftl._open_seq) == 1 and len(ftl._open_rnd) == 0
    ftl.check_invariants()


def test_random_writes_stay_in_random_pool(hybrid_ftl):
    # isolated writes at block starts never get confirmed as streams
    for block in range(4):
        write_run(hybrid_ftl, [(block * PPB, block + 1)])
    assert len(hybrid_ftl._open_seq) == 0
    assert len(hybrid_ftl._open_rnd) == 4


def test_random_pool_eviction_is_lru(geometry, chip):
    ftl = HybridLogFTL(
        geometry, chip, HybridConfig(seq_log_blocks=1, rnd_log_blocks=2)
    )
    write_run(ftl, [(0 * PPB + 1, 1)])
    write_run(ftl, [(1 * PPB + 1, 2)])
    write_run(ftl, [(0 * PPB + 2, 3)])  # touch block 0 again (MRU)
    write_run(ftl, [(2 * PPB + 1, 4)])  # evicts block 1 (LRU)
    assert 1 not in ftl._open_rnd
    assert 0 in ftl._open_rnd and 2 in ftl._open_rnd
    ftl.check_invariants()


def test_strict_logs_close_on_out_of_order(geometry, chip):
    ftl = HybridLogFTL(
        geometry,
        chip,
        HybridConfig(seq_log_blocks=2, rnd_log_blocks=2, page_mapped_logs=False),
    )
    write(ftl, 0, 1)
    write(ftl, 1, 2)
    # out-of-order write forces the strict log shut first
    write(ftl, 0, 3)
    assert ftl.read_token_quiet(0) == 3
    assert ftl.read_token_quiet(1) == 2
    ftl.quiesce()
    assert ftl.read_token_quiet(0) == 3
    ftl.check_invariants()


def test_background_disabled_reports_no_work(hybrid_ftl):
    write(hybrid_ftl, 3, 1)
    assert not hybrid_ftl.background_work_pending()
    assert hybrid_ftl.do_background_unit() is None


def test_background_enabled_replenishes_free_pool(geometry, chip):
    ftl = HybridLogFTL(
        geometry,
        chip,
        HybridConfig(
            seq_log_blocks=2, rnd_log_blocks=4, bg_enabled=True, bg_target_blocks=12
        ),
    )
    # scatter random writes to open logs and build pending work
    for block in range(10):
        write(ftl, block * PPB + 3, block + 1)
    assert ftl.background_work_pending()
    drained = ftl.drain_background()
    assert not drained.is_empty()
    assert ftl.free_blocks() >= 12
    ftl.check_invariants()


def test_free_block_conservation_under_load(hybrid_ftl, geometry):
    import random

    rng = random.Random(0)
    for step in range(600):
        lpage = rng.randrange(geometry.logical_pages)
        write(hybrid_ftl, lpage, step + 1)
    hybrid_ftl.check_invariants()
    total = (
        hybrid_ftl.free_blocks()
        + hybrid_ftl.open_log_count()
        + hybrid_ftl.pending_merge_count()
    )
    assert total <= geometry.physical_blocks


def test_spare_too_small_rejected(chip):
    tight = Geometry(
        page_size=2 * KIB, pages_per_block=8, logical_bytes=1 * MIB,
        physical_blocks=64 + 3,
    )
    with pytest.raises(FTLError):
        HybridLogFTL(
            tight, FlashChip(tight), HybridConfig(seq_log_blocks=4, rnd_log_blocks=8)
        )


def test_config_validation():
    with pytest.raises(FTLError):
        HybridConfig(seq_log_blocks=0)
    with pytest.raises(FTLError):
        HybridConfig(bg_enabled=True, bg_target_blocks=0)
    assert HybridConfig(seq_log_blocks=3, rnd_log_blocks=5).log_blocks == 8
