"""NAND chip state machine: program-after-erase, in-order programming,
erase granularity, endurance, bad blocks, fault injection."""

import pytest

from repro.errors import BadBlockError, EnduranceError, EraseError, ProgramError
from repro.flashsim.chip import ERASED, FlashChip
from repro.flashsim.geometry import Geometry
from repro.units import KIB, MIB


@pytest.fixture
def small_chip() -> FlashChip:
    geometry = Geometry(
        page_size=2 * KIB, pages_per_block=4, logical_bytes=1 * MIB,
        physical_blocks=140,
    )
    return FlashChip(geometry, endurance=3)


def test_reads_of_erased_pages_return_erased(small_chip):
    assert small_chip.read(0, 0) == ERASED
    assert small_chip.read(5, 3) == ERASED


def test_program_then_read(small_chip):
    small_chip.program(0, 0, 41)
    assert small_chip.read(0, 0) == 41
    assert small_chip.write_point(0) == 1


def test_sequential_programming_enforced(small_chip):
    small_chip.program(1, 0, 1)
    with pytest.raises(ProgramError):
        small_chip.program(1, 2, 2)  # skipping page 1


def test_cannot_program_same_page_twice(small_chip):
    small_chip.program(2, 0, 1)
    with pytest.raises(ProgramError):
        small_chip.program(2, 0, 2)


def test_negative_token_rejected(small_chip):
    with pytest.raises(ProgramError):
        small_chip.program(0, 0, -5)


def test_erase_resets_block(small_chip):
    for offset in range(4):
        small_chip.program(3, offset, offset + 1)
    small_chip.erase(3)
    assert small_chip.is_erased(3)
    assert small_chip.write_point(3) == 0
    assert small_chip.read(3, 2) == ERASED
    small_chip.program(3, 0, 9)  # programmable again
    assert small_chip.read(3, 0) == 9


def test_erase_count_tracked(small_chip):
    assert small_chip.erase_count(7) == 0
    small_chip.erase(7)
    small_chip.erase(7)
    assert small_chip.erase_count(7) == 2


def test_endurance_limit_retires_block(small_chip):
    for _ in range(3):
        small_chip.erase(9)
    with pytest.raises(EnduranceError):
        small_chip.erase(9)
    assert small_chip.is_bad(9)


def test_bad_block_rejects_everything(small_chip):
    small_chip.mark_bad(4)
    with pytest.raises(BadBlockError):
        small_chip.program(4, 0, 1)
    with pytest.raises(BadBlockError):
        small_chip.read(4, 0)
    with pytest.raises(BadBlockError):
        small_chip.erase(4)


def test_out_of_range_addresses(small_chip):
    nblocks = small_chip.geometry.physical_blocks
    with pytest.raises(EraseError):
        small_chip.erase(nblocks)
    with pytest.raises(ProgramError):
        small_chip.program(0, 99, 1)


def test_stats_counted(small_chip):
    small_chip.program(0, 0, 1)
    small_chip.read(0, 0)
    small_chip.erase(0)
    assert small_chip.stats.page_programs == 1
    assert small_chip.stats.page_reads == 1
    assert small_chip.stats.block_erases == 1


def test_good_blocks_and_wear_summary(small_chip):
    total = small_chip.geometry.physical_blocks
    assert small_chip.good_blocks() == total
    small_chip.mark_bad(0)
    assert small_chip.good_blocks() == total - 1
    small_chip.erase(1)
    summary = small_chip.wear_summary()
    assert summary["max"] == 1.0
    assert summary["min"] == 0.0


def test_two_plane_assignment():
    geometry = Geometry(
        page_size=2 * KIB, pages_per_block=4, logical_bytes=1 * MIB,
        physical_blocks=140, planes=2,
    )
    chip = FlashChip(geometry)
    assert chip.plane_of(0) == 0
    assert chip.plane_of(1) == 1
    assert chip.plane_of(2) == 0


class _FailNthProgram:
    """Fault injector failing one specific program operation."""

    def __init__(self, fail_at: int) -> None:
        self.count = 0
        self.fail_at = fail_at

    def program_fails(self, block: int, page_offset: int) -> bool:
        self.count += 1
        return self.count == self.fail_at

    def erase_fails(self, block: int) -> bool:
        return False


def test_injected_program_failure_marks_block_bad():
    geometry = Geometry(
        page_size=2 * KIB, pages_per_block=4, logical_bytes=1 * MIB,
        physical_blocks=140,
    )
    chip = FlashChip(geometry, fault_injector=_FailNthProgram(2))
    chip.program(0, 0, 1)
    with pytest.raises(ProgramError):
        chip.program(0, 1, 2)
    assert chip.is_bad(0)
    assert chip.stats.program_failures == 1


class _FailEveryErase:
    def program_fails(self, block: int, page_offset: int) -> bool:
        return False

    def erase_fails(self, block: int) -> bool:
        return True


def test_injected_erase_failure_marks_block_bad():
    geometry = Geometry(
        page_size=2 * KIB, pages_per_block=4, logical_bytes=1 * MIB,
        physical_blocks=140,
    )
    chip = FlashChip(geometry, fault_injector=_FailEveryErase())
    with pytest.raises(EraseError):
        chip.erase(3)
    assert chip.is_bad(3)


def test_invalid_endurance_rejected():
    with pytest.raises(ValueError):
        FlashChip(Geometry(), endurance=0)
