"""Property-based tests (hypothesis) for core invariants.

The central property is **read-your-writes under arbitrary histories**:
every FTL, with or without a cache in front, must agree with a plain
dict model after any sequence of page writes — while maintaining block
conservation and map consistency (``check_invariants``).
"""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.flashsim.cache import WriteBackCache
from repro.flashsim.chip import ERASED, FlashChip
from repro.flashsim.ftl.blockmap import BlockMapConfig, BlockMapFTL
from repro.flashsim.ftl.hybrid import HybridConfig, HybridLogFTL
from repro.flashsim.ftl.pagemap import PageMapConfig, PageMapFTL
from repro.flashsim.geometry import Geometry
from repro.flashsim.timing import CostAccumulator
from repro.units import KIB

#: a tiny geometry keeps hypothesis example runs fast while still
#: forcing plenty of merges/GC (16 logical blocks, 6 spare)
TINY = Geometry(
    page_size=2 * KIB,
    pages_per_block=4,
    logical_bytes=16 * 4 * 2 * KIB,
    physical_blocks=16 + 8,
)

page_indexes = st.integers(min_value=0, max_value=TINY.logical_pages - 1)
histories = st.lists(page_indexes, min_size=1, max_size=120)


def _build(kind: str):
    chip = FlashChip(TINY)
    if kind == "hybrid":
        return HybridLogFTL(
            TINY, chip, HybridConfig(seq_log_blocks=2, rnd_log_blocks=3)
        )
    if kind == "hybrid-strict":
        return HybridLogFTL(
            TINY,
            chip,
            HybridConfig(seq_log_blocks=2, rnd_log_blocks=3, page_mapped_logs=False),
        )
    if kind == "hybrid-bg":
        return HybridLogFTL(
            TINY,
            chip,
            HybridConfig(
                seq_log_blocks=2,
                rnd_log_blocks=3,
                bg_enabled=True,
                bg_target_blocks=2,
            ),
        )
    if kind == "blockmap":
        return BlockMapFTL(TINY, chip, BlockMapConfig(replacement_slots=2))
    return PageMapFTL(TINY, chip, PageMapConfig(gc_low_blocks=2))


def _run_history(ftl, history, drain=False):
    model = {}
    cost = CostAccumulator()
    for step, lpage in enumerate(history):
        token = step + 1
        ftl.write_page(lpage, token, cost)
        model[lpage] = token
    if drain:
        ftl.quiesce()
    return model


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(history=histories)
def test_hybrid_read_your_writes(history):
    ftl = _build("hybrid")
    model = _run_history(ftl, history)
    ftl.check_invariants()
    for lpage in range(TINY.logical_pages):
        assert ftl.read_token_quiet(lpage) == model.get(lpage, ERASED)


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(history=histories)
def test_hybrid_survives_quiesce(history):
    ftl = _build("hybrid")
    model = _run_history(ftl, history, drain=True)
    ftl.check_invariants()
    for lpage, token in model.items():
        assert ftl.read_token_quiet(lpage) == token


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(history=histories)
def test_hybrid_strict_read_your_writes(history):
    ftl = _build("hybrid-strict")
    model = _run_history(ftl, history)
    ftl.check_invariants()
    for lpage, token in model.items():
        assert ftl.read_token_quiet(lpage) == token


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(history=histories, drain_points=st.lists(st.integers(0, 119), max_size=4))
def test_hybrid_background_interleaved(history, drain_points):
    """Background units interleaved anywhere in the history never change
    what the host reads."""
    ftl = _build("hybrid-bg")
    model = {}
    cost = CostAccumulator()
    points = set(drain_points)
    for step, lpage in enumerate(history):
        ftl.write_page(lpage, step + 1, cost)
        model[lpage] = step + 1
        if step in points:
            ftl.do_background_unit()
    ftl.check_invariants()
    for lpage, token in model.items():
        assert ftl.read_token_quiet(lpage) == token


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(history=histories)
def test_blockmap_read_your_writes(history):
    ftl = _build("blockmap")
    model = _run_history(ftl, history)
    ftl.check_invariants()
    for lpage in range(TINY.logical_pages):
        assert ftl.read_token_quiet(lpage) == model.get(lpage, ERASED)


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(history=histories)
def test_pagemap_read_your_writes(history):
    ftl = _build("pagemap")
    model = _run_history(ftl, history)
    ftl.check_invariants()
    for lpage in range(TINY.logical_pages):
        assert ftl.read_token_quiet(lpage) == model.get(lpage, ERASED)


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(history=histories)
def test_cache_plus_ftl_read_your_writes(history):
    cache = WriteBackCache(TINY, 8 * TINY.page_size)
    ftl = _build("hybrid")
    model = {}
    cost = CostAccumulator()
    for step, lpage in enumerate(history):
        cache.write(lpage, step + 1)
        cache.destage_if_needed(ftl, cost)
        model[lpage] = step + 1
    for lpage, token in model.items():
        cached = cache.read(lpage)
        value = cached if cached is not None else ftl.read_token_quiet(lpage)
        assert value == token
    cache.flush(ftl, cost)
    ftl.check_invariants()
    for lpage, token in model.items():
        assert ftl.read_token_quiet(lpage) == token


@settings(max_examples=60, deadline=None)
@given(
    lba=st.integers(min_value=0, max_value=TINY.logical_bytes - 1),
    size=st.integers(min_value=1, max_value=4 * TINY.page_size),
)
def test_page_span_covers_extent(lba, size):
    size = min(size, TINY.logical_bytes - lba)
    if size == 0:
        return
    span = TINY.page_span(lba, size)
    assert span.start * TINY.page_size <= lba
    assert span.stop * TINY.page_size >= lba + size
    # minimal: one page fewer would not cover
    assert (span.stop - 1) * TINY.page_size < lba + size


@settings(max_examples=60, deadline=None)
@given(history=histories)
def test_erase_counts_monotone_and_bounded(history):
    ftl = _build("hybrid")
    chip = ftl.chip
    before = chip.erase_counts()
    _run_history(ftl, history)
    after = chip.erase_counts()
    assert (after >= before).all()
    # physical writes bound: erases cannot outnumber programs per block size
    assert after.sum() <= chip.stats.page_programs + TINY.physical_blocks


# ----------------------------------------------------------------------
# controller-level properties: byte extents against a byte-shadow model
# ----------------------------------------------------------------------

extents = st.tuples(
    st.integers(min_value=0, max_value=TINY.logical_bytes - 1),
    st.integers(min_value=1, max_value=3 * TINY.page_size),
)


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(ops=st.lists(st.tuples(st.booleans(), extents), min_size=1, max_size=60))
def test_controller_extent_read_your_writes(ops):
    """Arbitrary byte-extent writes and reads through the controller
    (RMW, mapping-unit expansion, cache) never violate the shadow —
    the controller's own verification raises on any mismatch."""
    from repro.flashsim.controller import Controller, ControllerConfig

    chip = FlashChip(TINY)
    ftl = HybridLogFTL(TINY, chip, HybridConfig(seq_log_blocks=2, rnd_log_blocks=3))
    controller = Controller(
        TINY,
        ftl,
        ControllerConfig(cache_bytes=8 * TINY.page_size, mapping_unit=2 * TINY.page_size),
    )
    for is_write, (lba, size) in ops:
        size = min(size, TINY.logical_bytes - lba)
        if size <= 0:
            continue
        cost = CostAccumulator()
        if is_write:
            controller.write(lba, size, cost)
        else:
            controller.read(lba, size, cost)  # raises on shadow mismatch
    # a full sweep re-verifies every page at the end
    final = CostAccumulator()
    controller.read(0, TINY.logical_bytes, final)
    ftl.check_invariants()


@settings(max_examples=60, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31),
    io_count=st.integers(min_value=1, max_value=64),
    slots=st.integers(min_value=1, max_value=128),
)
def test_random_pattern_lbas_always_in_bounds(seed, io_count, slots):
    """The random location function never leaves [offset, offset+target)
    and is always IO-aligned, for any seed/slot-count combination."""
    from repro.core.generator import PatternGenerator
    from repro.core.patterns import LocationKind, PatternSpec
    from repro.iotypes import Mode

    spec = PatternSpec(
        mode=Mode.WRITE,
        location=LocationKind.RANDOM,
        io_size=2 * KIB,
        io_count=io_count,
        target_offset=4 * KIB,
        target_size=slots * 2 * KIB,
        seed=seed,
    )
    generator = PatternGenerator(spec)
    previous = None
    while True:
        request = generator(previous)
        if request is None:
            break
        assert spec.target_offset <= request.lba
        assert request.lba + spec.io_size <= spec.target_offset + spec.target_size
        assert (request.lba - spec.target_offset) % spec.io_size == 0
        from repro.flashsim.timing import CostAccumulator as _CA

        from repro.iotypes import CompletedIO

        previous = CompletedIO(
            request=request,
            submitted_at=request.scheduled_at,
            started_at=request.scheduled_at,
            completed_at=request.scheduled_at + 10.0,
            cost=_CA(),
        )


@settings(max_examples=60, deadline=None)
@given(
    incr=st.integers(min_value=-8, max_value=8),
    partitions=st.sampled_from([1, 2, 4, 8]),
    index=st.integers(min_value=0, max_value=500),
)
def test_ordered_and_partitioned_lbas_in_bounds(incr, partitions, index):
    from repro.core.patterns import LocationKind, PatternSpec
    from repro.iotypes import Mode

    ordered = PatternSpec(
        mode=Mode.WRITE,
        location=LocationKind.ORDERED,
        io_size=2 * KIB,
        io_count=64,
        target_size=32 * 2 * KIB,
        incr=incr,
    )
    lba = ordered.lba(index)
    assert 0 <= lba <= ordered.target_size - ordered.io_size

    part = PatternSpec(
        mode=Mode.WRITE,
        location=LocationKind.PARTITIONED,
        io_size=2 * KIB,
        io_count=64,
        target_size=partitions * 8 * 2 * KIB,
        partitions=partitions,
    )
    lba = part.lba(index)
    assert 0 <= lba <= part.target_size - part.io_size


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(history=histories)
def test_fast_read_your_writes(history):
    from repro.flashsim.ftl.fast import FastConfig, FastFTL

    ftl = FastFTL(TINY, FlashChip(TINY), FastConfig(shared_log_blocks=2))
    model = _run_history(ftl, history)
    ftl.check_invariants()
    for lpage in range(TINY.logical_pages):
        assert ftl.read_token_quiet(lpage) == model.get(lpage, ERASED)


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(history=histories)
def test_fast_survives_quiesce(history):
    from repro.flashsim.ftl.fast import FastConfig, FastFTL

    ftl = FastFTL(TINY, FlashChip(TINY), FastConfig(shared_log_blocks=2))
    model = _run_history(ftl, history, drain=True)
    ftl.check_invariants()
    for lpage, token in model.items():
        assert ftl.read_token_quiet(lpage) == token


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(history=histories)
def test_cache_plus_fast_read_your_writes(history):
    from repro.flashsim.ftl.fast import FastConfig, FastFTL

    cache = WriteBackCache(TINY, 8 * TINY.page_size)
    ftl = FastFTL(TINY, FlashChip(TINY), FastConfig(shared_log_blocks=2))
    model = {}
    cost = CostAccumulator()
    for step, lpage in enumerate(history):
        cache.write(lpage, step + 1)
        cache.destage_if_needed(ftl, cost)
        model[lpage] = step + 1
    cache.flush(ftl, cost)
    ftl.check_invariants()
    for lpage, token in model.items():
        assert ftl.read_token_quiet(lpage) == token
