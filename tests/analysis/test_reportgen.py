"""Markdown campaign reports."""

import pytest

from repro.analysis.reportgen import campaign_report, write_campaign_report
from repro.core.archive import Campaign
from repro.core.experiment import Experiment, run_experiment
from repro.core.patterns import LocationKind, PatternSpec
from repro.errors import AnalysisError
from repro.flashsim.timing import TimingSpec
from repro.iotypes import Mode
from repro.units import KIB

from tests.conftest import make_device


def make_campaign(label="run1", slow=False):
    timing = TimingSpec(transfer_per_kib=300.0) if slow else None
    device = make_device(timing=timing)

    def build(io_size):
        return PatternSpec(
            mode=Mode.WRITE,
            location=LocationKind.SEQUENTIAL,
            io_size=io_size,
            io_count=6,
        )

    experiment = Experiment("granularity/SW", "IOSize", (4 * KIB, 16 * KIB), build)
    campaign = Campaign(device="test-hybrid", label=label,
                        metadata={"state": "random"})
    campaign.results["granularity/SW"] = run_experiment(
        device, experiment, pause_usec=1000.0
    )
    return campaign


def test_report_structure():
    text = campaign_report(make_campaign())
    assert text.startswith("# uFLIP campaign: run1")
    assert "* device: `test-hybrid`" in text
    assert "* state: random" in text
    assert "## granularity/SW" in text
    assert "| IOSize | pattern | mean (ms) | max (ms) |" in text
    assert "```" in text  # the ASCII plot block


def test_report_with_comparison():
    a = make_campaign("fast")
    b = make_campaign("slow", slow=True)
    text = campaign_report(a, compare_to=b)
    assert "## Comparison" in text
    assert "fast (test-hybrid)  vs  slow (test-hybrid)" in text
    assert "regressions" in text  # the slow campaign regresses


def test_report_without_regressions_notes_it():
    a = make_campaign("a")
    b = make_campaign("b")
    text = campaign_report(a, compare_to=b)
    assert "no experiment regressed" in text


def test_empty_campaign_rejected():
    with pytest.raises(AnalysisError):
        campaign_report(Campaign(device="x", label="empty"))


def test_write_report(tmp_path):
    campaign = make_campaign()
    path = write_campaign_report(campaign, tmp_path / "sub" / "report.md")
    assert path.exists()
    assert path.read_text().startswith("# uFLIP campaign")


def test_non_numeric_values_skip_the_plot():
    campaign = make_campaign()
    result = campaign.results["granularity/SW"]
    for row in result.rows:
        row.value = f"v{row.value}"
    object.__setattr__(
        result.experiment, "values", tuple(f"v{v}" for v in result.experiment.values)
    )
    text = campaign_report(campaign)
    assert "## granularity/SW" in text
