"""Device fingerprinting against the paper's Table 3."""

import pytest

from repro.analysis.fingerprint import (
    feature_distance,
    fingerprint,
    identify,
    paper_features,
    summary_features,
)
from repro.analysis.summarize import DeviceSummary
from repro.errors import AnalysisError
from repro.paperdata import TABLE3


def summary_from_paper(name, **tweaks):
    """A DeviceSummary built straight from a paper row (plus tweaks)."""
    row = TABLE3[name]
    fields = dict(
        name=f"unknown-{name}",
        sr=row.sr, rr=row.rr, sw=row.sw, rw=row.rw,
        pause_rw=row.pause_rw,
        locality_mb=row.locality_mb, locality_factor=row.locality_factor,
        partitions=row.partitions, partitions_factor=row.partitions_factor,
        reverse=row.reverse, in_place=row.in_place,
        large_incr=row.large_incr,
    )
    fields.update(tweaks)
    return DeviceSummary(**fields)


@pytest.mark.parametrize("name", sorted(TABLE3))
def test_paper_rows_identify_themselves(name):
    summary = summary_from_paper(name)
    matches = fingerprint(summary)
    assert matches[0].device == name
    assert matches[0].distance == pytest.approx(0.0, abs=1e-9)
    assert identify(summary) == name


def test_perturbed_measurements_still_identify():
    # 30% noise on every cost: the nearest neighbour should survive
    summary = summary_from_paper(
        "kingston_dti", sr=2.5, rr=2.9, sw=3.8, rw=200.0, in_place=55.0,
    )
    assert identify(summary) == "kingston_dti"


def test_cross_class_devices_are_distant():
    high_end = summary_from_paper("memoright")
    low_end = summary_from_paper("kingston_dti")
    distance = feature_distance(
        summary_features(high_end), summary_features(low_end)
    )
    assert distance > 3.0


def test_same_class_devices_are_closer_than_cross_class():
    memoright = summary_features(summary_from_paper("memoright"))
    mtron = summary_features(summary_from_paper("mtron"))
    dti = summary_features(summary_from_paper("kingston_dti"))
    assert feature_distance(memoright, mtron) < feature_distance(memoright, dti)


def test_identify_rejects_far_away_devices():
    # a fantasy device: reads slower than writes, second-scale latencies
    weird = summary_from_paper(
        "memoright", sr=900.0, rr=1000.0, sw=0.1, rw=0.2,
        reverse=100.0, in_place=100.0,
    )
    assert identify(weird) is None


def test_nonpositive_costs_rejected():
    broken = summary_from_paper("mtron", sr=0.0)
    with pytest.raises(AnalysisError):
        summary_features(broken)


def test_ranking_is_total_over_the_seven():
    matches = fingerprint(summary_from_paper("samsung"))
    assert len(matches) == len(TABLE3)
    distances = [match.distance for match in matches]
    assert distances == sorted(distances)


def test_paper_features_align_with_summary_features():
    for name, row in TABLE3.items():
        assert paper_features(row) == summary_features(summary_from_paper(name))


@pytest.mark.slow
def test_measured_devices_identify_their_own_profiles():
    """The end-to-end claim: measure a simulated device blind, then
    recover which paper device it is."""
    from repro.analysis import summarize_device
    from repro.core import enforce_random_state, rest_device
    from repro.flashsim import build_device
    from repro.units import MIB, SEC

    for name in ("mtron", "kingston_dti"):
        device = build_device(name, logical_bytes=32 * MIB)
        enforce_random_state(device)
        rest_device(device, 60 * SEC)
        summary = summarize_device(device, f"blind-{name}", io_count=192)
        matches = fingerprint(summary)
        top_two = {match.device for match in matches[:2]}
        assert name in top_two, (name, [(m.device, round(m.distance, 2)) for m in matches])
