"""Table 3 derivation on a live (small) device."""

import pytest

from repro.analysis.summarize import (
    DeviceSummary,
    render_table3,
    summarize_device,
)
from repro.core import enforce_random_state, rest_device
from repro.flashsim import build_device
from repro.units import MIB, SEC


@pytest.fixture(scope="module")
def mtron_summary():
    device = build_device("mtron", logical_bytes=32 * MIB)
    enforce_random_state(device)
    rest_device(device, 60 * SEC)
    return summarize_device(device, "mtron", io_count=192)


def test_baseline_ordering(mtron_summary):
    s = mtron_summary
    assert s.sr < s.rw
    assert s.sw < s.rw
    assert s.rr >= s.sr
    # random writes are an order of magnitude above sequential
    assert s.rw / s.sw > 5


def test_pause_effect_present_on_background_device(mtron_summary):
    assert mtron_summary.pause_rw is not None
    # the helpful pause is on the order of the RW cost itself
    assert mtron_summary.pause_rw <= 4 * mtron_summary.rw


def test_locality_area_detected(mtron_summary):
    assert mtron_summary.locality_mb is not None
    assert 1 <= mtron_summary.locality_mb <= 16
    assert mtron_summary.locality_factor < 3.5


def test_partition_limit_small(mtron_summary):
    assert 2 <= mtron_summary.partitions <= 16


def test_ordered_patterns_absorbed_by_high_end(mtron_summary):
    assert mtron_summary.reverse < 3.0
    assert mtron_summary.in_place < 3.0


def test_startup_phase_measured(mtron_summary):
    assert mtron_summary.startup_rw > 20


def test_render_table3_with_paper_rows(mtron_summary):
    text = render_table3([mtron_summary])
    assert "mtron" in text
    assert "(paper: Mtron)" in text
    assert "Locality MB" in text


def test_render_table3_without_paper(mtron_summary):
    text = render_table3([mtron_summary], with_paper=False)
    assert "(paper:" not in text


def test_as_row_formats_missing_values():
    summary = DeviceSummary(
        name="x", sr=1.0, rr=1.0, sw=1.0, rw=100.0,
        pause_rw=None, locality_mb=None, locality_factor=None,
        partitions=4, partitions_factor=2.0,
        reverse=8.0, in_place=40.0, large_incr=1.0,
    )
    row = summary.as_row()
    assert "No" in row
    assert "-" in row
    assert "x40.0" in row
