"""Device classification from Table 3 indicators."""

from repro.analysis.classify import (
    DeviceTier,
    classify,
    price_performance_note,
)
from repro.analysis.summarize import DeviceSummary


def summary(**kwargs):
    defaults = dict(
        name="test",
        sr=0.3, rr=0.4, sw=0.4, rw=5.0,
        pause_rw=5.0,
        locality_mb=8.0, locality_factor=1.0,
        partitions=8, partitions_factor=1.0,
        reverse=1.0, in_place=1.0, large_incr=2.0,
    )
    defaults.update(kwargs)
    return DeviceSummary(**defaults)


def test_high_end_classification():
    result = classify(summary())
    assert result.tier is DeviceTier.HIGH_END
    assert result.copes_with_unusual
    assert result.async_reclamation
    assert any("random writes" in reason for reason in result.reasons)


def test_low_end_classification():
    result = classify(
        summary(
            sw=2.9, rw=256.0, pause_rw=None, locality_mb=None,
            locality_factor=None, reverse=8.0, in_place=40.0,
        )
    )
    assert result.tier is DeviceTier.LOW_END
    assert not result.copes_with_unusual
    assert any("pathological" in reason for reason in result.reasons)
    assert any("no locality" in reason for reason in result.reasons)


def test_mid_range_classification():
    result = classify(summary(sw=0.6, rw=18.0, pause_rw=None, reverse=1.5))
    assert result.tier is DeviceTier.MID_RANGE


def test_high_rw_penalty_overrides_coping():
    result = classify(summary(sw=2.6, rw=233.0, reverse=2.0, in_place=2.0))
    assert result.tier is DeviceTier.LOW_END


def test_price_note_flags_inversions():
    expensive_but_slow = summary(name="pricey", rw=50.0)
    cheap_but_fast = summary(name="bargain", rw=5.0)
    note = price_performance_note(
        [(expensive_but_slow, 900), (cheap_but_fast, 100)]
    )
    assert "pricey" in note and "bargain" in note


def test_price_note_ok_when_consistent():
    fast = summary(name="fast", rw=5.0)
    slow = summary(name="slow", rw=50.0)
    note = price_performance_note([(fast, 900), (slow, 100)])
    assert "matches" in note
