"""SVG figure backend."""

import pytest

from repro.analysis.svg import svg_series, svg_trace
from repro.errors import AnalysisError


def test_trace_document_structure(tmp_path):
    path = tmp_path / "trace.svg"
    text = svg_trace([100.0, 5000.0, 300.0, 27_000.0], title="rt", path=path)
    assert text.startswith("<svg")
    assert text.endswith("</svg>")
    assert "rt" in text
    assert "response time (ms)" in text
    assert text.count("<circle") == 4
    assert path.read_text() == text


def test_trace_log_scale_fallback():
    # a zero value silently falls back to linear y
    text = svg_trace([0.0, 100.0, 200.0], log_y=True)
    assert "<svg" in text


def test_trace_constant_series():
    text = svg_trace([500.0] * 5)
    assert text.count("<circle") == 5


def test_trace_empty_rejected():
    with pytest.raises(AnalysisError):
        svg_trace([])


def test_series_polylines_and_legend(tmp_path):
    path = tmp_path / "series.svg"
    text = svg_series(
        {
            "SR": ([1, 2, 4, 8], [0.1, 0.2, 0.4, 0.8]),
            "RW": ([1, 2, 4, 8], [5.0, 5.5, 6.0, 6.5]),
        },
        title="Granularity",
        x_label="IOSize",
        log_x=True,
        path=path,
    )
    assert text.count("<polyline") == 2
    assert "SR" in text and "RW" in text
    assert "Granularity" in text
    assert path.exists()


def test_series_empty_rejected():
    with pytest.raises(AnalysisError):
        svg_series({})
    with pytest.raises(AnalysisError):
        svg_series({"s": ([], [])})


def test_series_log_axes_require_positive():
    # negative values fall back to linear rather than raising
    text = svg_series({"s": ([-1, 1], [1.0, 2.0])}, log_x=True)
    assert "<polyline" in text


def test_series_distinct_colors():
    text = svg_series(
        {f"s{i}": ([1, 2], [float(i), float(i + 1)]) for i in range(3)}
    )
    # three distinct stroke colours
    strokes = {
        part.split('"')[0]
        for part in text.split('stroke="')[1:]
        if part.split('"')[0].startswith("#")
    }
    assert len(strokes) >= 3
