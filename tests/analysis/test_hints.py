"""The seven design hints, verified on simulated devices."""

import pytest

from repro.analysis.hints import (
    ALL_HINTS,
    check_hint1_latency,
    check_hint3_alignment,
    check_hint4_focused_random_writes,
    check_hint6_mix,
    check_hint7_concurrency,
    evaluate_hints,
)


def test_seven_hints_registered():
    assert len(ALL_HINTS) == 7


def test_hint1_latency_holds(enforced_mtron):
    result = check_hint1_latency(enforced_mtron)
    assert result.hint == 1
    assert result.holds
    assert "ms" in result.evidence


def test_hint3_alignment_holds_on_unit_mapped_device():
    from repro.core import enforce_random_state, rest_device
    from repro.flashsim import build_device
    from repro.units import MIB, SEC

    device = build_device("samsung", logical_bytes=32 * MIB)
    enforce_random_state(device)
    rest_device(device, 30 * SEC)
    result = check_hint3_alignment(device)
    assert result.holds


def test_hint4_focused_random_writes(enforced_mtron):
    result = check_hint4_focused_random_writes(enforced_mtron)
    assert result.holds


def test_hint6_mix_is_additive(enforced_mtron):
    result = check_hint6_mix(enforced_mtron)
    assert result.holds


def test_hint7_no_gain_from_parallelism(enforced_mtron):
    result = check_hint7_concurrency(enforced_mtron)
    assert result.holds


@pytest.mark.slow
def test_all_hints_on_mtron(enforced_mtron):
    results = evaluate_hints(enforced_mtron)
    assert len(results) == 7
    held = sum(1 for r in results if r.holds)
    # the design hints were derived from exactly this class of device
    assert held >= 6
