"""ASCII plotting."""

import pytest

from repro.analysis.visualize import plot_series, plot_trace
from repro.errors import AnalysisError


def test_plot_trace_shape():
    trace = [100.0 + i for i in range(50)]
    text = plot_trace(trace, title="rising", width=40, height=8)
    lines = text.splitlines()
    assert lines[0] == "rising"
    assert len(lines) == 1 + 8 + 2  # title + grid + axis + labels
    assert "*" in text
    assert "IO number" in text


def test_plot_trace_labels_extremes():
    text = plot_trace([1_000.0, 9_000.0], width=10, height=5)
    assert "9.00ms" in text
    assert "1.00ms" in text


def test_plot_trace_empty_rejected():
    with pytest.raises(AnalysisError):
        plot_trace([])


def test_plot_trace_constant_series():
    text = plot_trace([500.0] * 10, width=20, height=5, log_y=True)
    assert "*" in text


def test_plot_trace_falls_back_from_log_on_nonpositive():
    text = plot_trace([0.0, 10.0, 20.0], log_y=True)
    assert "*" in text  # no crash: linear fallback


def test_plot_series_legend_and_markers():
    text = plot_series(
        {
            "SR": ([1, 2, 4], [0.1, 0.2, 0.3]),
            "RW": ([1, 2, 4], [5.0, 6.0, 7.0]),
        },
        title="Granularity",
        x_label="IOSize",
    )
    assert "a=SR" in text and "b=RW" in text
    assert "a" in text and "b" in text
    assert "Granularity" in text


def test_plot_series_empty_rejected():
    with pytest.raises(AnalysisError):
        plot_series({})
    with pytest.raises(AnalysisError):
        plot_series({"s": ([], [])})


def test_plot_series_log_axes():
    text = plot_series(
        {"s": ([1, 10, 100, 1000], [1.0, 2.0, 4.0, 8.0])},
        log_x=True,
        log_y=True,
    )
    assert "s" in text
