"""Run the doc examples embedded in docstrings (units, etc.)."""

import doctest

import pytest

import repro.units

MODULES = [repro.units]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, f"{module.__name__} lost its doc examples"
    assert results.failed == 0
