"""Units: parsing, formatting, constants."""

import pytest

from repro.units import (
    GIB,
    KIB,
    MIB,
    MSEC,
    SEC,
    SECTOR,
    fmt_size,
    fmt_usec,
    parse_size,
    usec_to_msec,
)


def test_constants_consistent():
    assert KIB == 1024
    assert MIB == 1024 * KIB
    assert GIB == 1024 * MIB
    assert SECTOR == 512
    assert SEC == 1000 * MSEC


@pytest.mark.parametrize(
    "text,expected",
    [
        ("32K", 32 * KIB),
        ("32k", 32 * KIB),
        ("32KiB", 32 * KIB),
        ("2M", 2 * MIB),
        ("2MiB", 2 * MIB),
        ("1G", GIB),
        ("512", 512),
        ("512B", 512),
        ("0.5K", 512),
        (" 4 k ", 4 * KIB),
        (4096, 4096),
    ],
)
def test_parse_size(text, expected):
    assert parse_size(text) == expected


@pytest.mark.parametrize("text", ["", "abc", "12X", "1.1.1K", "-4K"])
def test_parse_size_rejects_garbage(text):
    with pytest.raises(ValueError):
        parse_size(text)


def test_parse_size_rejects_fractional_bytes():
    with pytest.raises(ValueError):
        parse_size("0.3K")


@pytest.mark.parametrize(
    "nbytes,expected",
    [
        (32 * KIB, "32K"),
        (512, "512B"),
        (3 * MIB, "3M"),
        (2 * GIB, "2G"),
        (1536, "1536B"),  # not an exact KiB multiple
    ],
)
def test_fmt_size(nbytes, expected):
    assert fmt_size(nbytes) == expected


def test_fmt_size_parse_round_trip():
    for nbytes in (512, 32 * KIB, 3 * MIB, GIB):
        assert parse_size(fmt_size(nbytes)) == nbytes


@pytest.mark.parametrize(
    "usec,expected",
    [
        (250.0, "250us"),
        (5000.0, "5.00ms"),
        (2_500_000.0, "2.50s"),
    ],
)
def test_fmt_usec(usec, expected):
    assert fmt_usec(usec) == expected


def test_usec_to_msec():
    assert usec_to_msec(5000.0) == 5.0
