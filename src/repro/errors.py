"""Exception hierarchy for the uFLIP reproduction.

All errors raised by this package derive from :class:`ReproError` so that
callers can catch everything library-specific with a single ``except``
clause while still being able to discriminate by subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class GeometryError(ReproError):
    """A device geometry is inconsistent (e.g. capacity not block-aligned)."""


class AddressError(ReproError):
    """An IO request addresses bytes outside the device's logical space."""


class ChipError(ReproError):
    """A flash chip operation violated the NAND state machine."""


class ProgramError(ChipError):
    """Attempt to program a page that is not in the erased state, or
    out of sequential order within its block."""


class EraseError(ChipError):
    """Attempt to erase an invalid block, or a block that wore out."""


class EnduranceError(ChipError):
    """A block exceeded its rated erase-cycle endurance."""


class BadBlockError(ChipError):
    """An operation targeted a block marked bad."""


class FTLError(ReproError):
    """The flash translation layer detected an internal inconsistency."""


class OutOfSpaceError(FTLError):
    """The FTL ran out of free flash even after garbage collection.

    On a correctly configured device this indicates the logical space
    exceeds what the physical space plus overprovisioning can hold.
    """


class SnapshotError(ReproError):
    """A device snapshot cannot be restored onto the given device
    (mismatched geometry, FTL family or cache configuration)."""


class QueueError(ReproError):
    """The device command queue was misused (submission past the
    configured queue depth, or a completion popped from an empty queue)."""


class PatternError(ReproError):
    """An IO pattern specification is invalid (violates Table 1 rules)."""


class ExperimentError(ReproError):
    """An experiment definition or execution is invalid."""


class PlanError(ReproError):
    """A benchmark plan could not be constructed (e.g. the accumulated
    sequential-write target space cannot fit on the device)."""


class AnalysisError(ReproError):
    """Result analysis failed (e.g. not enough data for phase detection)."""


class ProfileError(ReproError):
    """An unknown or inconsistent device profile was requested."""
