"""Strict block-mapping FTL (USB flash drives, SD cards, IDE modules).

The cheapest controllers map logical blocks to physical blocks one to
one and service writes through a handful of *replacement blocks*:

* an **append** to the open replacement block is cheap (program only);
* a **forward gap** copies the skipped pages from the old block first;
* an **out-of-order** write (offset already passed) forces the current
  replacement to be finalised and a new one opened, copying everything
  before the write — nearly a full block copy *per IO*.  This is the
  mechanism behind Kingston DTI's constant ~256 ms random writes and its
  x40 in-place penalty (Table 3).

``sync_commit_boundary`` models controllers that cannot hold write state
across host commands: unless a write IO ends exactly on the boundary,
the replacement block is finalised immediately.  Small sequential writes
then pay a near-full block copy each (Figure 7's shape, where 4 KiB
sequential writes cost an order of magnitude more than 32 KiB ones).

``map_flush_every_blocks`` models the periodic rewrite of the on-flash
inverse-map segment (Section 2.2): every N finalised blocks the FTL
pays a bookkeeping burst.  This is the long-period oscillation visible
in Figure 4 (Kingston DTI sequential writes, period ~128 IOs).
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass

import numpy as np

from repro.errors import FTLError, OutOfSpaceError
from repro.flashsim.chip import ERASED, FlashChip
from repro.flashsim.ftl.base import BaseFTL
from repro.flashsim.bitmap import mask_from_indices
from repro.flashsim.ftl.hybrid import FILLER_TOKEN
from repro.flashsim.geometry import Geometry
from repro.flashsim.timing import CostAccumulator


@dataclass(frozen=True)
class BlockMapConfig:
    """Tuning of a :class:`BlockMapFTL`.

    ``replacement_slots`` is the number of logical blocks that may have
    an open replacement at once — the device's partitioning limit.
    ``sync_commit_boundary`` (bytes, 0 = disabled) finalises the open
    replacement after any write IO not ending on the boundary.
    """

    replacement_slots: int = 4
    sync_commit_boundary: int = 0
    map_flush_every_blocks: int = 0
    map_flush_pages: int = 32

    def __post_init__(self) -> None:
        if self.replacement_slots < 1:
            raise FTLError("replacement_slots must be >= 1")
        if self.sync_commit_boundary < 0:
            raise FTLError("sync_commit_boundary must be >= 0")
        if self.map_flush_every_blocks < 0 or self.map_flush_pages < 0:
            raise FTLError("map flush parameters must be >= 0")


class _Replacement:
    """An open replacement block holding pages ``0..next_offset-1``."""

    __slots__ = ("lblock", "pblock", "next_offset")

    def __init__(self, lblock: int, pblock: int) -> None:
        self.lblock = lblock
        self.pblock = pblock
        self.next_offset = 0


class BlockMapFTL(BaseFTL):
    """One-to-one block mapping with in-order replacement blocks."""

    batch_read_capable = True

    _STATE_ATTRS = ("_data_map", "_free", "_open", "finalize_count")

    def __init__(
        self,
        geometry: Geometry,
        chip: FlashChip,
        config: BlockMapConfig | None = None,
    ) -> None:
        super().__init__(geometry, chip)
        self.config = config or BlockMapConfig()
        min_spare = self.config.replacement_slots + 1
        if geometry.spare_blocks < min_spare:
            raise FTLError(
                f"geometry provides {geometry.spare_blocks} spare blocks but "
                f"the block-map FTL needs at least {min_spare}"
            )
        self._data_map = np.full(geometry.logical_blocks, -1, dtype=np.int64)
        self._free: deque[int] = deque(range(geometry.physical_blocks))
        # dense free-block bitmap mirroring the queue (membership only;
        # the queue keeps the allocation order) — derived state, rebuilt
        # on restore rather than snapshotted
        self._free_map = np.ones(geometry.physical_blocks, dtype=bool)
        self._open: OrderedDict[int, _Replacement] = OrderedDict()
        self.finalize_count = 0

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------

    def read_page(self, lpage: int, cost: CostAccumulator) -> int:
        """See :meth:`BaseFTL.read_page`: replacement block first, then data."""
        self._check_lpage(lpage)
        lblock, offset = divmod(lpage, self.geometry.pages_per_block)
        rep = self._open.get(lblock)
        if rep is not None and offset < rep.next_offset:
            cost.page_reads += 1
            return self._decode(self.chip.read(rep.pblock, offset))
        data = int(self._data_map[lblock])
        if data < 0 or offset >= self.chip.write_point(data):
            return ERASED
        cost.page_reads += 1
        return self._decode(self.chip.read(data, offset))

    def read_pages(
        self,
        lpages: np.ndarray,
        cost: CostAccumulator,
        *,
        ascending: bool = False,
    ) -> np.ndarray:
        """See :meth:`BaseFTL.read_pages`: whole-run chip reads.

        A contiguous ascending run decomposes, per logical block, into a
        replacement-block prefix, a data-block middle and an ERASED tail
        — three slice reads instead of a per-page loop.  Non-contiguous
        batches fall back to the scalar reference path.
        """
        lpages = np.asarray(lpages, dtype=np.int64)
        n = int(lpages.size)
        if n == 0:
            return np.empty(0, dtype=np.int64)
        if not self.batch_enabled or n == 1 or bool((np.diff(lpages) != 1).any()):
            return super().read_pages(lpages, cost)
        self._check_lpage(int(lpages[0]))
        self._check_lpage(int(lpages[-1]))
        ppb = self.geometry.pages_per_block
        tokens = np.full(n, ERASED, dtype=np.int64)
        i = 0
        while i < n:
            lblock, offset = divmod(int(lpages[i]), ppb)
            seg = min(n - i, ppb - offset)
            end_offset = offset + seg
            pos, cur = i, offset
            rep = self._open.get(lblock)
            if rep is not None and cur < rep.next_offset:
                take = min(end_offset, rep.next_offset) - cur
                raw = self.chip.read_run(rep.pblock, cur, take)
                tokens[pos : pos + take] = np.where(raw == FILLER_TOKEN, ERASED, raw)
                cost.page_reads += take
                pos += take
                cur += take
            if cur < end_offset:
                data = int(self._data_map[lblock])
                if data >= 0:
                    write_point = self.chip.write_point(data)
                    if cur < write_point:
                        take = min(end_offset, write_point) - cur
                        raw = self.chip.read_run(data, cur, take)
                        tokens[pos : pos + take] = np.where(
                            raw == FILLER_TOKEN, ERASED, raw
                        )
                        cost.page_reads += take
            i += seg
        return tokens

    @staticmethod
    def _decode(token: int) -> int:
        return ERASED if token == FILLER_TOKEN else token

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------

    def write_page(self, lpage: int, token: int, cost: CostAccumulator) -> None:
        """See :meth:`BaseFTL.write_page`: append, gap-fill or full copy.

        The analytic block-map kernel
        (:func:`repro.flashsim.analytic._blockmap_write_window`) takes
        the in-order append arm of this method in closed form — a
        page-aligned IO continuing ``rep.next_offset`` mints tokens,
        programs one run and bumps the offset without entering here —
        and replays the controller path (which lands in this method)
        for every other shape.  Changes to the append/finalise rules
        here must be mirrored there to preserve bit-identity.
        """
        self._check_lpage(lpage)
        if token <= FILLER_TOKEN:
            raise FTLError(f"host tokens must be > {FILLER_TOKEN}, got {token}")
        lblock, offset = divmod(lpage, self.geometry.pages_per_block)
        rep = self._open.get(lblock)
        if rep is not None and offset < rep.next_offset:
            # Out of order: close this replacement and start over —
            # effectively a full block copy for a single page write.
            self._finalize(lblock, cost)
            rep = None
        if rep is None:
            rep = self._open_replacement(lblock, cost)
        if offset > rep.next_offset:
            self._copy_range(rep, rep.next_offset, offset, cost)
        self.chip.program(rep.pblock, offset, token)
        cost.page_programs += 1
        rep.next_offset = offset + 1
        self._open.move_to_end(lblock)
        if rep.next_offset == self.geometry.pages_per_block:
            self._finalize(lblock, cost)

    def note_io_boundary(self, end_byte: int, cost: CostAccumulator) -> None:
        """Finalise the open replacement unless the IO ended on the commit boundary."""
        boundary = self.config.sync_commit_boundary
        if boundary and end_byte % boundary != 0 and self._open:
            # Finalise the replacement the IO just touched (the MRU one).
            lblock = next(reversed(self._open))
            self._finalize(lblock, cost)

    # ------------------------------------------------------------------
    # replacement management
    # ------------------------------------------------------------------

    def _open_replacement(self, lblock: int, cost: CostAccumulator) -> _Replacement:
        if len(self._open) >= self.config.replacement_slots:
            victim = next(iter(self._open))  # LRU
            self._finalize(victim, cost)
        if not self._free:
            raise OutOfSpaceError("block-map FTL exhausted all free blocks")
        block = self._free.popleft()
        self._free_map[block] = False
        rep = _Replacement(lblock, block)
        self._open[lblock] = rep
        return rep

    def _copy_range(
        self, rep: _Replacement, start: int, end: int, cost: CostAccumulator
    ) -> None:
        """Copy pages ``[start, end)`` of the logical block from the old
        physical block into the replacement (filling gaps with filler)."""
        old = int(self._data_map[rep.lblock])
        old_end = self.chip.write_point(old) if old >= 0 else 0
        sub = cost.begin_scope()
        for offset in range(start, end):
            if offset < old_end:
                token = self.chip.read(old, offset)
                sub.copy_reads += 1
            else:
                token = ERASED
            self.chip.program(
                rep.pblock, offset, token if token != ERASED else FILLER_TOKEN
            )
            sub.copy_programs += 1
        cost.end_scope("merge", sub)

    def _finalize(self, lblock: int, cost: CostAccumulator) -> None:
        """Complete a replacement: copy the old block's tail, swap the
        map, erase the old block."""
        rep = self._open.pop(lblock)
        old = int(self._data_map[lblock])
        sub = cost.begin_scope()
        if old >= 0:
            tail_end = self.chip.write_point(old)
            if tail_end > rep.next_offset:
                self._copy_range_tail(rep, tail_end, old, sub)
        self._data_map[lblock] = rep.pblock
        if old >= 0:
            self.chip.erase(old)
            sub.block_erases += 1
            self._free_map[old] = True
            self._free.append(old)
        self.finalize_count += 1
        sub.note("finalize")
        every = self.config.map_flush_every_blocks
        if every and self.finalize_count % every == 0:
            # rewrite of the on-flash inverse-map segment; the metadata
            # area lives outside the modelled address space, so only the
            # cost is charged
            sub.copy_programs += self.config.map_flush_pages
            sub.note("map-flush")
        cost.end_scope("merge", sub)

    def _copy_range_tail(
        self, rep: _Replacement, tail_end: int, old: int, cost: CostAccumulator
    ) -> None:
        for offset in range(rep.next_offset, tail_end):
            token = self.chip.read(old, offset)
            cost.copy_reads += 1
            self.chip.program(
                rep.pblock, offset, token if token != ERASED else FILLER_TOKEN
            )
            cost.copy_programs += 1
        rep.next_offset = tail_end

    def quiesce(self) -> CostAccumulator:
        """Finalise every open replacement block."""
        total = CostAccumulator()
        while self._open:
            self._finalize(next(iter(self._open)), total)
        return total

    # ------------------------------------------------------------------
    # introspection & invariants
    # ------------------------------------------------------------------

    def restore(self, state: dict) -> None:
        """See :meth:`BaseFTL.restore`; rebuilds the free bitmap."""
        super().restore(state)
        self._free_map = mask_from_indices(
            self._free, self.geometry.physical_blocks
        )

    def metrics(self) -> dict[str, float]:
        """See :meth:`BaseFTL.metrics`: replacement-block finalisations."""
        return {"finalizations": float(self.finalize_count)}

    def free_blocks(self) -> int:
        """Number of erased, unassigned physical blocks."""
        return len(self._free)

    def open_replacement_count(self) -> int:
        """Replacement blocks currently open."""
        return len(self._open)

    def check_invariants(self) -> None:
        """Verify block conservation and replacement/chip consistency.

        All bulk checks run on dense buffers: the free bitmap against
        the queue and the chip's erased mask, role conservation as a
        vectorized claim count, and per-replacement write points.
        """
        nblocks = self.geometry.physical_blocks
        free_idx = np.fromiter(self._free, dtype=np.int64, count=len(self._free))
        if not np.array_equal(np.sort(free_idx), np.flatnonzero(self._free_map)):
            raise FTLError("free queue out of sync with the free bitmap")
        not_erased = self._free_map & ~self.chip.erased_mask()
        if not_erased.any():
            block = int(np.flatnonzero(not_erased)[0])
            raise FTLError(f"free block {block} is not erased")
        claims = np.zeros(nblocks, dtype=np.int64)
        claims[self._free_map] += 1
        data = self._data_map[self._data_map >= 0]
        np.add.at(claims, data, 1)
        for rep in self._open.values():
            claims[rep.pblock] += 1
            if self.chip.write_point(rep.pblock) != rep.next_offset:
                raise FTLError(
                    f"replacement for lblock {rep.lblock} desynchronised from chip"
                )
        if (claims > 1).any():
            block = int(np.flatnonzero(claims > 1)[0])
            raise FTLError(f"physical block {block} has two roles")
        claimed = int(np.count_nonzero(claims))
        if claimed != nblocks:
            raise FTLError(
                f"block conservation violated: {claimed} of "
                f"{nblocks} physical blocks accounted for"
            )
