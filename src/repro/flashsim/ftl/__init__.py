"""FTL implementations: hybrid log-block, strict block-map, page-map."""

from repro.flashsim.ftl.base import BaseFTL
from repro.flashsim.ftl.blockmap import BlockMapConfig, BlockMapFTL
from repro.flashsim.ftl.fast import FastConfig, FastFTL
from repro.flashsim.ftl.hybrid import FILLER_TOKEN, HybridConfig, HybridLogFTL
from repro.flashsim.ftl.pagemap import PageMapConfig, PageMapFTL

__all__ = [
    "BaseFTL",
    "BlockMapConfig",
    "BlockMapFTL",
    "FastConfig",
    "FastFTL",
    "FILLER_TOKEN",
    "HybridConfig",
    "HybridLogFTL",
    "PageMapConfig",
    "PageMapFTL",
]
