"""Fully page-mapped FTL with greedy garbage collection.

This is the "modern SSD" end of the design space (and the design most
2008-era papers *assumed*): a direct map at page granularity, writes
appended to an active block, and a garbage collector that reclaims the
block with the fewest valid pages.  Section 2.2 of the paper describes
exactly this map (direct + inverse) and its RAM cost.

Performance shape: sequential overwrites leave fully-invalid victims
(GC = erase only, cheap); random writes over a wide area leave uniformly
half-valid victims (GC copies most of a block per reclaim, expensive);
random writes confined to an area no bigger than the spare pool converge
to cheap GC — the *Locality* effect, emerging mechanically.

The FTL also implements threshold-based **static wear levelling**:
when the erase-count spread exceeds a threshold, the coldest data block
is relocated so its low-wear block re-enters the rotation.

State representation: the direct map ``_l2p`` is the single
authoritative structure (plus the free deque, whose order is the wear
rotation).  Everything else — the inverse map ``_p2l``, the per-page
``_valid_map`` and per-block ``_free_map`` bitmaps, per-block valid
counts, block states and the min-valid GC buckets — is derived,
maintained incrementally on the hot path, excluded from snapshots and
rebuilt wholesale by :meth:`PageMapFTL.restore`.  GC victim scans and
the analytic write kernel operate directly on the bitmaps.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.errors import AddressError, FTLError, OutOfSpaceError
from repro.flashsim.chip import ERASED, FlashChip
from repro.flashsim.ftl.base import BaseFTL
from repro.flashsim.geometry import Geometry
from repro.flashsim.timing import CostAccumulator

# block states
_FREE, _ACTIVE, _DATA = 0, 1, 2


@dataclass(frozen=True)
class PageMapConfig:
    """Tuning of a :class:`PageMapFTL`.

    ``gc_low_blocks`` is the free-pool level at which foreground GC
    kicks in; ``bg_target_blocks`` (> ``gc_low_blocks``) is what the
    background collector restores during idle time when ``bg_enabled``.
    ``wear_threshold`` (0 = disabled) triggers static wear levelling
    when the erase-count spread exceeds it.

    ``gc_policy`` selects the victim: ``"greedy"`` (fewest valid pages
    — best immediate yield) or ``"cost-benefit"`` (the classic
    LFS/flash policy weighing yield against the block's age, which
    avoids repeatedly collecting hot, soon-to-be-invalidated blocks).
    """

    gc_low_blocks: int = 2
    bg_enabled: bool = False
    bg_target_blocks: int = 0
    wear_threshold: int = 0
    gc_policy: str = "greedy"

    def __post_init__(self) -> None:
        if self.gc_low_blocks < 1:
            raise FTLError("gc_low_blocks must be >= 1")
        if self.bg_enabled and self.bg_target_blocks <= self.gc_low_blocks:
            raise FTLError("bg_target_blocks must exceed gc_low_blocks")
        if self.wear_threshold < 0:
            raise FTLError("wear_threshold must be >= 0")
        if self.gc_policy not in ("greedy", "cost-benefit"):
            raise FTLError(f"unknown gc_policy {self.gc_policy!r}")


class PageMapFTL(BaseFTL):
    """Direct page map + append log + greedy garbage collection."""

    batch_read_capable = True
    batch_write_capable = True

    #: Snapshot core: the direct map, the free queue (its order is the
    #: allocation order) and the scalars.  Everything else — the inverse
    #: map, the per-block valid counters, the block states, the valid
    #: and free bitmaps and the GC buckets — is a pure function of this
    #: core and is rebuilt by :meth:`restore`, which keeps snapshots at
    #: roughly half the size of the full working state.
    _STATE_ATTRS = (
        "_l2p",
        "_free",
        "_host_active",
        "_gc_active",
        "_retired_at",
        "_sequence",
        "gc_collections",
        "wear_relocations",
        "gc_copy_reads",
        "gc_copy_programs",
    )

    def __init__(
        self,
        geometry: Geometry,
        chip: FlashChip,
        config: PageMapConfig | None = None,
    ) -> None:
        super().__init__(geometry, chip)
        self.config = config or PageMapConfig()
        min_spare = self.config.gc_low_blocks + 3  # host active + GC active + reserve
        if geometry.spare_blocks < min_spare:
            raise FTLError(
                f"geometry provides {geometry.spare_blocks} spare blocks but "
                f"the page-map FTL needs at least {min_spare}"
            )
        if self.config.bg_enabled and self.config.bg_target_blocks > geometry.spare_blocks - 3:
            raise FTLError("bg_target_blocks exceeds the spare area")
        npages = geometry.physical_pages
        self._l2p = np.full(geometry.logical_pages, -1, dtype=np.int64)
        self._p2l = np.full(npages, -1, dtype=np.int64)
        self._valid = np.zeros(geometry.physical_blocks, dtype=np.int64)
        self._state = np.full(geometry.physical_blocks, _FREE, dtype=np.int8)
        self._free: deque[int] = deque(range(geometry.physical_blocks))
        # dense bitmaps mirroring the maps above: one bit per physical
        # page (does it hold a live logical page?) and one per block
        # (is it in the free pool?) — the buffers GC victim scans and
        # invariant checks operate on
        self._valid_map = np.zeros(npages, dtype=bool)
        self._free_map = np.ones(geometry.physical_blocks, dtype=bool)
        self._host_active = self._allocate_active()
        self._gc_active = self._allocate_active()
        # logical sequence number at which each block was retired to
        # data state — the "age" input of the cost-benefit policy
        self._retired_at = np.zeros(geometry.physical_blocks, dtype=np.int64)
        self._sequence = 0
        self.gc_collections = 0
        self.wear_relocations = 0
        self.gc_copy_reads = 0
        self.gc_copy_programs = 0
        # Greedy victim selection in O(1): data blocks bucketed by valid
        # count, with a floor pointer that only advances on pops.  Derived
        # from (_state, _valid), so it is rebuilt on restore rather than
        # snapshotted.
        self._use_buckets = self.config.gc_policy == "greedy"
        self._rebuild_buckets()

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------

    def _allocate_active(self) -> int:
        if not self._free:
            raise OutOfSpaceError("page-map FTL exhausted all free blocks")
        block = self._free.popleft()
        self._state[block] = _ACTIVE
        self._free_map[block] = False
        return block

    def _retire_active(self, block: int) -> None:
        self._state[block] = _DATA
        self._sequence += 1
        self._retired_at[block] = self._sequence
        if self._use_buckets:
            self._bucket_add(block)

    # ------------------------------------------------------------------
    # min-valid buckets (greedy victim selection in O(1))
    # ------------------------------------------------------------------

    def _rebuild_buckets(self) -> None:
        """Derive the bucket structure from ``_state``/``_valid``."""
        ppb = self.geometry.pages_per_block
        self._bucket_of = np.full(self.geometry.physical_blocks, -1, dtype=np.int32)
        self._buckets: list[set[int]] = [set() for _ in range(ppb + 1)]
        self._min_bucket = ppb + 1
        if not self._use_buckets:
            return
        for block in np.flatnonzero(self._state == _DATA):
            self._bucket_add(int(block))

    def _bucket_add(self, block: int) -> None:
        valid = int(self._valid[block])
        self._buckets[valid].add(block)
        self._bucket_of[block] = valid
        if valid < self._min_bucket:
            self._min_bucket = valid

    def _bucket_remove(self, block: int) -> None:
        valid = int(self._bucket_of[block])
        if valid >= 0:
            self._buckets[valid].discard(block)
            self._bucket_of[block] = -1

    def _bucket_dec(self, block: int, by: int = 1) -> None:
        """Move a bucketed data block down after invalidations."""
        valid = int(self._bucket_of[block])
        if valid < 0:
            return
        self._buckets[valid].discard(block)
        valid -= by
        self._buckets[valid].add(block)
        self._bucket_of[block] = valid
        if valid < self._min_bucket:
            self._min_bucket = valid

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------

    def read_page(self, lpage: int, cost: CostAccumulator) -> int:
        """See :meth:`BaseFTL.read_page`: one direct-map lookup."""
        self._check_lpage(lpage)
        ppage = int(self._l2p[lpage])
        if ppage < 0:
            return ERASED
        cost.page_reads += 1
        block, offset = divmod(ppage, self.geometry.pages_per_block)
        return self.chip.read(block, offset)

    def read_pages(
        self,
        lpages: np.ndarray,
        cost: CostAccumulator,
        *,
        ascending: bool = False,
    ) -> np.ndarray:
        """See :meth:`BaseFTL.read_pages`: one fancy-indexed map lookup
        plus one gather read for every mapped page."""
        if not self.batch_enabled:
            return super().read_pages(lpages, cost)
        lpages = np.asarray(lpages, dtype=np.int64)
        if lpages.size == 0:
            return np.empty(0, dtype=np.int64)
        if ascending:
            lo, hi = int(lpages[0]), int(lpages[-1])
        else:
            lo, hi = int(lpages.min()), int(lpages.max())
        if lo < 0 or hi >= self.geometry.logical_pages:
            raise AddressError(
                f"logical page out of range 0..{self.geometry.logical_pages - 1}"
            )
        ppages = self._l2p[lpages]
        mapped = ppages >= 0
        tokens = np.full(lpages.size, ERASED, dtype=np.int64)
        count = int(mapped.sum())
        if count:
            tokens[mapped] = self.chip.read_many(ppages[mapped])
            cost.page_reads += count
        return tokens

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------

    def write_page(self, lpage: int, token: int, cost: CostAccumulator) -> None:
        """See :meth:`BaseFTL.write_page`: invalidate, append, maybe GC."""
        self._check_lpage(lpage)
        if token < 0:
            raise FTLError("host tokens must be non-negative")
        self._invalidate(lpage)
        self._append(lpage, token, host=True, cost=cost)
        cost.page_programs += 1
        # Foreground GC once the pool is at the low watermark — this is
        # the oscillation of the running phase (Figures 3/4).
        while len(self._free) <= self.config.gc_low_blocks:
            if not self._collect_one(cost):
                break
        if self.config.wear_threshold:
            self._maybe_wear_level(cost)

    def write_pages(self, items, cost: CostAccumulator) -> None:
        """Route batches (host IOs, cache destage groups) through the
        vectorized run kernel."""
        if not items:
            return
        lpages = np.fromiter((pair[0] for pair in items), dtype=np.int64, count=len(items))
        tokens = np.fromiter((pair[1] for pair in items), dtype=np.int64, count=len(items))
        self.write_run(lpages, tokens, cost)

    def write_run(
        self,
        lpages: np.ndarray,
        tokens: np.ndarray,
        cost: CostAccumulator,
        *,
        ascending: bool = False,
    ) -> None:
        """Vectorized write path: invalidate with fancy indexing, append
        whole runs into the host active block.

        Behaviourally identical to the scalar :meth:`write_page` loop:
        a run is split into chunks within which the scalar path's
        per-page GC and wear-levelling checks are provably no-ops (the
        free pool and erase counters cannot change during a pure
        append), and decays to single scalar writes at the points where
        GC or wear levelling would actually fire.

        The GC-epoch kernel
        (:func:`repro.flashsim.analytic._pagemap_epoch_window`) mirrors
        this same slow-loop structure over a whole window's flattened
        page stream — closed-form ``_append_run`` chunks between
        collections, the real :meth:`write_page` at each free-pool
        watermark — so changes to the chunking or the GC trigger here
        must be reflected there to preserve bit-identity.
        """
        if not self.batch_enabled:
            for lpage, token in zip(lpages, tokens):
                self.write_page(int(lpage), int(token), cost)
            return
        lpages = np.asarray(lpages, dtype=np.int64)
        tokens = np.asarray(tokens, dtype=np.int64)
        n = int(lpages.size)
        if n == 0:
            return
        # Controller runs are strictly ascending, which gives distinctness
        # and min/max for free; arbitrary batches pay the full checks.
        if ascending or n == 1 or bool((np.diff(lpages) > 0).all()):
            lo, hi = int(lpages[0]), int(lpages[-1])
        else:
            lo, hi = int(lpages.min()), int(lpages.max())
            if np.unique(lpages).size != n:
                # a duplicate lpage inside one run would fold two updates
                # into one fancy-indexed store; take the reference path
                for lpage, token in zip(lpages, tokens):
                    self.write_page(int(lpage), int(token), cost)
                return
        if lo < 0 or hi >= self.geometry.logical_pages:
            raise AddressError(
                f"logical page out of range 0..{self.geometry.logical_pages - 1}"
            )
        if not ascending and bool((tokens < 0).any()):
            # ascending certifies a controller-built run, whose tokens are
            # fresh mints or RMW reads — non-negative by construction
            raise FTLError("host tokens must be non-negative")
        ppb = self.geometry.pages_per_block
        wear = self.config.wear_threshold
        gc_low = self.config.gc_low_blocks
        # Fast path: during pure appends the free pool only shrinks at
        # block-crossing allocate events (at most 1 + n // ppb of them)
        # and erase counts never change, so if the pool clears the GC
        # watermark by that margin — and no wear move is already due —
        # neither GC nor wear levelling can fire anywhere in the run.
        # The whole run can then be invalidated in one pass and appended
        # chunk by chunk with no per-chunk checks.  (Invalidating early
        # is safe exactly because nothing in between reads _valid/_p2l:
        # those are only consulted by the GC/wear machinery.)
        if len(self._free) > gc_low + 1 + n // ppb and not (
            wear and self._wear_pending()
        ):
            self._invalidate_run(lpages)
            i = 0
            while i < n:
                active = self._host_active
                write_point = self.chip.write_point(active)
                if write_point == ppb:
                    self._retire_active(active)
                    active = self._allocate_active()
                    self._host_active = active
                    write_point = 0
                take = min(ppb - write_point, n - i)
                self._program_run(
                    active, write_point, lpages[i : i + take], tokens[i : i + take]
                )
                i += take
            cost.page_programs += n
            return
        i = 0
        while i < n:
            active = self._host_active
            write_point = self.chip.write_point(active)
            if write_point == ppb:
                self._retire_active(active)
                active = self._allocate_active()
                self._host_active = active
                write_point = 0
            if len(self._free) <= gc_low or (wear and self._wear_pending()):
                # GC (or a wear move) would run after this page in the
                # scalar path — replay it exactly.
                self.write_page(int(lpages[i]), int(tokens[i]), cost)
                i += 1
                continue
            take = min(ppb - write_point, n - i)
            self._append_run(
                active, write_point, lpages[i : i + take], tokens[i : i + take]
            )
            cost.page_programs += take
            i += take

    def _append_run(
        self, active: int, offset: int, lpages: np.ndarray, tokens: np.ndarray
    ) -> None:
        """Invalidate + append one chunk that fits the active block
        (``offset`` is the block's current write point)."""
        self._invalidate_run(lpages)
        self._program_run(active, offset, lpages, tokens)

    def _invalidate_run(self, lpages: np.ndarray) -> None:
        """Vectorized :meth:`_invalidate` over a batch of distinct lpages."""
        old = self._l2p[lpages]
        remap = old >= 0
        # steady state rewrites whole runs of mapped pages — skip the
        # boolean compress when nothing in the run is fresh
        mapped = old if bool(remap.all()) else old[remap]
        if mapped.size:
            self._p2l[mapped] = -1
            self._valid_map[mapped] = False
            dec = np.bincount(
                mapped // self.geometry.pages_per_block, minlength=self._valid.size
            )
            self._valid -= dec
            if self._use_buckets:
                for block in np.flatnonzero(dec).tolist():
                    if self._bucket_of[block] >= 0:
                        self._bucket_dec(block, int(dec[block]))

    def _program_run(
        self, active: int, offset: int, lpages: np.ndarray, tokens: np.ndarray
    ) -> None:
        """Program one already-invalidated chunk and update both maps."""
        self.chip.program_run(active, offset, tokens)
        base = active * self.geometry.pages_per_block + offset
        self._l2p[lpages] = np.arange(base, base + lpages.size, dtype=np.int64)
        self._p2l[base : base + lpages.size] = lpages
        self._valid_map[base : base + lpages.size] = True
        self._valid[active] += lpages.size

    def _invalidate(self, lpage: int) -> None:
        old = int(self._l2p[lpage])
        if old >= 0:
            block = old // self.geometry.pages_per_block
            self._p2l[old] = -1
            self._valid_map[old] = False
            self._valid[block] -= 1
            self._l2p[lpage] = -1
            if self._use_buckets and self._bucket_of[block] >= 0:
                self._bucket_dec(block)

    def _append(self, lpage: int, token: int, host: bool, cost: CostAccumulator) -> None:
        """Program one page at the relevant active block's write point."""
        ppb = self.geometry.pages_per_block
        active = self._host_active if host else self._gc_active
        if self.chip.write_point(active) == ppb:
            self._retire_active(active)
            active = self._allocate_active()
            if host:
                self._host_active = active
            else:
                self._gc_active = active
        offset = self.chip.write_point(active)
        self.chip.program(active, offset, token)
        ppage = active * ppb + offset
        self._l2p[lpage] = ppage
        self._p2l[ppage] = lpage
        self._valid_map[ppage] = True
        self._valid[active] += 1

    # ------------------------------------------------------------------
    # garbage collection
    # ------------------------------------------------------------------

    def _pick_victim(self) -> int | None:
        """Select a GC victim under the configured policy.

        A fully-valid victim would be relocated for zero net gain (it
        frees one block while its copies consume one), so GC refuses it —
        there is simply no reclaimable space right now.
        """
        if self._use_buckets and self.batch_enabled:
            return self._pick_greedy_bucketed()
        candidates = self._state == _DATA
        if not candidates.any():
            return None
        if self.config.gc_policy == "greedy":
            # reference path: the full argmin scan (argmin returns the
            # lowest index among ties, matching the bucketed pick)
            masked = np.where(candidates, self._valid, np.iinfo(np.int32).max)
            victim = int(masked.argmin())
        else:
            victim = self._pick_cost_benefit(candidates)
            if victim is None:
                return None
        if int(self._valid[victim]) >= self.geometry.pages_per_block:
            return None
        return victim

    def _pick_greedy_bucketed(self) -> int | None:
        """O(1) greedy pick: advance the min-valid floor to the first
        non-empty bucket and take its lowest block index (the same
        tie-break the old full ``argmin`` scan used)."""
        ppb = self.geometry.pages_per_block
        floor = self._min_bucket
        while floor <= ppb and not self._buckets[floor]:
            floor += 1
        self._min_bucket = floor
        if floor >= ppb:
            # no data blocks at all, or only fully-valid ones — nothing
            # reclaimable (relocating a full block has zero net gain)
            return None
        return min(self._buckets[floor])

    def _pick_cost_benefit(self, candidates: np.ndarray) -> int | None:
        """The LFS cost-benefit score: ``(1 - u) * age / (1 + u)`` with
        utilisation ``u`` = valid fraction and age = time since the
        block was retired.  Old cold blocks win even at moderate
        utilisation; freshly written hot blocks are left to decay."""
        ppb = self.geometry.pages_per_block
        utilisation = self._valid.astype(np.float64) / ppb
        age = (self._sequence - self._retired_at).astype(np.float64) + 1.0
        score = (1.0 - utilisation) * age / (1.0 + utilisation)
        score = np.where(candidates, score, -1.0)
        victim = int(score.argmax())
        if score[victim] <= 0.0:
            return None
        return victim

    def _collect_one(self, cost: CostAccumulator) -> bool:
        victim = self._pick_victim()
        if victim is None:
            return False
        sub = cost.begin_scope()
        self._relocate_block(victim, sub)
        self.gc_collections += 1
        sub.note("gc")
        cost.end_scope("gc", sub)
        return True

    def _relocate_block(self, victim: int, cost: CostAccumulator) -> None:
        """Copy a block's valid pages to the GC active block, then erase."""
        if self._use_buckets:
            self._bucket_remove(victim)
        if not self.batch_enabled:
            self._relocate_block_scalar(victim, cost)
            return
        ppb = self.geometry.pages_per_block
        base = victim * ppb
        write_point = self.chip.write_point(victim)
        # the valid bitmap is the victim scan: one dense slice holds
        # exactly the offsets whose newest logical copy still lives here
        live_offsets = np.flatnonzero(self._valid_map[base : base + write_point])
        count = int(live_offsets.size)
        if count:
            live_lpages = self._p2l[base + live_offsets].copy()
            tokens = self.chip.read_many(base + live_offsets)
            cost.copy_reads += count
            self.gc_copy_reads += count
            self._p2l[base + live_offsets] = -1
            self._valid_map[base + live_offsets] = False
            self._valid[victim] -= count
            moved = 0
            while moved < count:
                active = self._gc_active
                if self.chip.write_point(active) == ppb:
                    self._retire_active(active)
                    active = self._allocate_active()
                    self._gc_active = active
                offset = self.chip.write_point(active)
                take = min(ppb - offset, count - moved)
                chunk_lpages = live_lpages[moved : moved + take]
                self.chip.program_run(active, offset, tokens[moved : moved + take])
                start = active * ppb + offset
                self._l2p[chunk_lpages] = np.arange(
                    start, start + take, dtype=np.int64
                )
                self._p2l[start : start + take] = chunk_lpages
                self._valid_map[start : start + take] = True
                self._valid[active] += take
                moved += take
            cost.copy_programs += count
            self.gc_copy_programs += count
        self.chip.erase(victim)
        cost.block_erases += 1
        self._valid[victim] = 0
        self._state[victim] = _FREE
        self._free_map[victim] = True
        self._free.append(victim)

    def _relocate_block_scalar(self, victim: int, cost: CostAccumulator) -> None:
        """Per-page reference implementation of :meth:`_relocate_block`."""
        ppb = self.geometry.pages_per_block
        base = victim * ppb
        for offset in range(self.chip.write_point(victim)):
            lpage = int(self._p2l[base + offset])
            if lpage < 0:
                continue
            token = self.chip.read(victim, offset)
            cost.copy_reads += 1
            self.gc_copy_reads += 1
            self._invalidate(lpage)
            self._append(lpage, token, host=False, cost=cost)
            cost.copy_programs += 1
            self.gc_copy_programs += 1
        self.chip.erase(victim)
        cost.block_erases += 1
        self._valid[victim] = 0
        self._state[victim] = _FREE
        self._free_map[victim] = True
        self._free.append(victim)

    # ------------------------------------------------------------------
    # wear levelling
    # ------------------------------------------------------------------

    def _wear_cold_block(self) -> int | None:
        """The data block a wear move would relocate, or None when the
        erase-count spread is within the threshold."""
        counts = self.chip.erase_counts()
        data_mask = self._state == _DATA
        if not data_mask.any():
            return None
        coldest = int(np.where(data_mask, counts, np.iinfo(np.int64).max).argmin())
        spread = float(counts.max() - counts[coldest])
        if spread > self.config.wear_threshold:
            return coldest
        return None

    def _wear_pending(self) -> bool:
        """Whether :meth:`_maybe_wear_level` would act right now."""
        return self._wear_cold_block() is not None

    def _maybe_wear_level(self, cost: CostAccumulator) -> None:
        coldest = self._wear_cold_block()
        if coldest is not None:
            sub = cost.begin_scope()
            self._relocate_block(coldest, sub)
            self.wear_relocations += 1
            sub.note("wear-level")
            cost.end_scope("wear", sub)

    # ------------------------------------------------------------------
    # background GC
    # ------------------------------------------------------------------

    def background_work_pending(self) -> bool:
        """Whether the free pool sits below the background target."""
        if not self.config.bg_enabled:
            return False
        if len(self._free) >= self.config.bg_target_blocks:
            return False
        return bool((self._state == _DATA).any())

    def do_background_unit(self) -> CostAccumulator | None:
        """Collect one victim in the background; None when satisfied."""
        if not self.background_work_pending():
            return None
        cost = CostAccumulator()
        self._collect_one(cost)
        return cost

    # ------------------------------------------------------------------
    # introspection & invariants
    # ------------------------------------------------------------------

    def restore(self, state: dict) -> None:
        """See :meth:`BaseFTL.restore`; rebuilds all derived state."""
        super().restore(state)
        self._rebuild_derived()

    def _rebuild_derived(self) -> None:
        """Recompute everything the snapshot core determines.

        The core is ``_l2p`` + the free queue + the two active blocks
        (plus scalars); from it the inverse map, the valid bitmap, the
        per-block valid counters, the block states, the free bitmap and
        the GC buckets are all derived with a handful of vectorized
        scatter/bincount operations — so snapshots need not carry them.
        """
        geometry = self.geometry
        mapped_lpages = np.flatnonzero(self._l2p >= 0)
        mapped = self._l2p[mapped_lpages]
        self._p2l = np.full(geometry.physical_pages, -1, dtype=np.int64)
        self._p2l[mapped] = mapped_lpages
        self._valid_map = self._p2l >= 0
        self._valid = np.bincount(
            mapped // geometry.pages_per_block,
            minlength=geometry.physical_blocks,
        ).astype(np.int64)
        self._free_map = np.zeros(geometry.physical_blocks, dtype=bool)
        if self._free:
            self._free_map[
                np.fromiter(self._free, dtype=np.int64, count=len(self._free))
            ] = True
        self._state = np.full(geometry.physical_blocks, _DATA, dtype=np.int8)
        self._state[self._free_map] = _FREE
        self._state[self._host_active] = _ACTIVE
        self._state[self._gc_active] = _ACTIVE
        self._rebuild_buckets()

    def metrics(self) -> dict[str, float]:
        """See :meth:`BaseFTL.metrics`: GC victims, wear moves, copy volume."""
        return {
            "gc_collections": float(self.gc_collections),
            "gc_copy_reads": float(self.gc_copy_reads),
            "gc_copy_programs": float(self.gc_copy_programs),
            "wear_relocations": float(self.wear_relocations),
        }

    def free_blocks(self) -> int:
        """Number of erased, unassigned physical blocks."""
        return len(self._free)

    def check_invariants(self) -> None:
        """Verify map/inverse-map agreement, valid counters, bitmaps and
        block states — all on dense buffers."""
        ppb = self.geometry.pages_per_block
        if not np.array_equal(self._free_map, self._state == _FREE):
            raise FTLError("free bitmap out of sync with block states")
        if not np.array_equal(self._valid_map, self._p2l >= 0):
            raise FTLError("valid bitmap out of sync with the inverse map")
        free_sorted = np.sort(
            np.fromiter(self._free, dtype=np.int64, count=len(self._free))
        )
        if not np.array_equal(free_sorted, np.flatnonzero(self._free_map)):
            raise FTLError("free queue out of sync with the free bitmap")
        mapped_lpages = np.flatnonzero(self._l2p >= 0)
        mapped = self._l2p[mapped_lpages]
        if len(np.unique(mapped)) != len(mapped):
            raise FTLError("two logical pages map to one physical page")
        agree = self._p2l[mapped] == mapped_lpages
        if not agree.all():
            lpage = int(mapped_lpages[np.flatnonzero(~agree)[0]])
            raise FTLError(f"direct/inverse map mismatch at lpage {lpage}")
        valid_recount = np.bincount(
            (mapped // ppb).astype(np.int64),
            minlength=self.geometry.physical_blocks,
        )
        if not np.array_equal(valid_recount, self._valid.astype(np.int64)):
            raise FTLError("per-block valid counters out of sync with the map")
        total = self.geometry.physical_blocks
        nfree = int((self._state == _FREE).sum())
        nactive = int((self._state == _ACTIVE).sum())
        ndata = int((self._state == _DATA).sum())
        if nfree + nactive + ndata != total:
            raise FTLError("block state partition violated")
        if nactive != 2:
            raise FTLError(f"expected 2 active blocks (host + GC), found {nactive}")
        if self._use_buckets:
            bucketed: set[int] = set()
            for valid, bucket in enumerate(self._buckets):
                for block in bucket:
                    if int(self._bucket_of[block]) != valid:
                        raise FTLError(f"block {block} in the wrong GC bucket")
                    if int(self._valid[block]) != valid:
                        raise FTLError(
                            f"GC bucket for block {block} out of sync with "
                            "its valid counter"
                        )
                    if self._state[block] != _DATA:
                        raise FTLError(f"non-data block {block} in a GC bucket")
                bucketed.update(bucket)
            data_blocks = set(np.flatnonzero(self._state == _DATA).tolist())
            if bucketed != data_blocks:
                raise FTLError("GC buckets do not cover exactly the data blocks")
