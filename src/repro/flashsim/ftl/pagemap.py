"""Fully page-mapped FTL with greedy garbage collection.

This is the "modern SSD" end of the design space (and the design most
2008-era papers *assumed*): a direct map at page granularity, writes
appended to an active block, and a garbage collector that reclaims the
block with the fewest valid pages.  Section 2.2 of the paper describes
exactly this map (direct + inverse) and its RAM cost.

Performance shape: sequential overwrites leave fully-invalid victims
(GC = erase only, cheap); random writes over a wide area leave uniformly
half-valid victims (GC copies most of a block per reclaim, expensive);
random writes confined to an area no bigger than the spare pool converge
to cheap GC — the *Locality* effect, emerging mechanically.

The FTL also implements threshold-based **static wear levelling**:
when the erase-count spread exceeds a threshold, the coldest data block
is relocated so its low-wear block re-enters the rotation.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.errors import FTLError, OutOfSpaceError
from repro.flashsim.chip import ERASED, FlashChip
from repro.flashsim.ftl.base import BaseFTL
from repro.flashsim.geometry import Geometry
from repro.flashsim.timing import CostAccumulator

# block states
_FREE, _ACTIVE, _DATA = 0, 1, 2


@dataclass(frozen=True)
class PageMapConfig:
    """Tuning of a :class:`PageMapFTL`.

    ``gc_low_blocks`` is the free-pool level at which foreground GC
    kicks in; ``bg_target_blocks`` (> ``gc_low_blocks``) is what the
    background collector restores during idle time when ``bg_enabled``.
    ``wear_threshold`` (0 = disabled) triggers static wear levelling
    when the erase-count spread exceeds it.

    ``gc_policy`` selects the victim: ``"greedy"`` (fewest valid pages
    — best immediate yield) or ``"cost-benefit"`` (the classic
    LFS/flash policy weighing yield against the block's age, which
    avoids repeatedly collecting hot, soon-to-be-invalidated blocks).
    """

    gc_low_blocks: int = 2
    bg_enabled: bool = False
    bg_target_blocks: int = 0
    wear_threshold: int = 0
    gc_policy: str = "greedy"

    def __post_init__(self) -> None:
        if self.gc_low_blocks < 1:
            raise FTLError("gc_low_blocks must be >= 1")
        if self.bg_enabled and self.bg_target_blocks <= self.gc_low_blocks:
            raise FTLError("bg_target_blocks must exceed gc_low_blocks")
        if self.wear_threshold < 0:
            raise FTLError("wear_threshold must be >= 0")
        if self.gc_policy not in ("greedy", "cost-benefit"):
            raise FTLError(f"unknown gc_policy {self.gc_policy!r}")


class PageMapFTL(BaseFTL):
    """Direct page map + append log + greedy garbage collection."""

    _STATE_ATTRS = (
        "_l2p",
        "_p2l",
        "_valid",
        "_state",
        "_free",
        "_host_active",
        "_gc_active",
        "_retired_at",
        "_sequence",
        "gc_collections",
        "wear_relocations",
        "gc_copy_reads",
        "gc_copy_programs",
    )

    def __init__(
        self,
        geometry: Geometry,
        chip: FlashChip,
        config: PageMapConfig | None = None,
    ) -> None:
        super().__init__(geometry, chip)
        self.config = config or PageMapConfig()
        min_spare = self.config.gc_low_blocks + 3  # host active + GC active + reserve
        if geometry.spare_blocks < min_spare:
            raise FTLError(
                f"geometry provides {geometry.spare_blocks} spare blocks but "
                f"the page-map FTL needs at least {min_spare}"
            )
        if self.config.bg_enabled and self.config.bg_target_blocks > geometry.spare_blocks - 3:
            raise FTLError("bg_target_blocks exceeds the spare area")
        npages = geometry.physical_pages
        self._l2p = np.full(geometry.logical_pages, -1, dtype=np.int64)
        self._p2l = np.full(npages, -1, dtype=np.int64)
        self._valid = np.zeros(geometry.physical_blocks, dtype=np.int32)
        self._state = np.full(geometry.physical_blocks, _FREE, dtype=np.int8)
        self._free: deque[int] = deque(range(geometry.physical_blocks))
        self._host_active = self._allocate_active()
        self._gc_active = self._allocate_active()
        # logical sequence number at which each block was retired to
        # data state — the "age" input of the cost-benefit policy
        self._retired_at = np.zeros(geometry.physical_blocks, dtype=np.int64)
        self._sequence = 0
        self.gc_collections = 0
        self.wear_relocations = 0
        self.gc_copy_reads = 0
        self.gc_copy_programs = 0

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------

    def _allocate_active(self) -> int:
        if not self._free:
            raise OutOfSpaceError("page-map FTL exhausted all free blocks")
        block = self._free.popleft()
        self._state[block] = _ACTIVE
        return block

    def _retire_active(self, block: int) -> None:
        self._state[block] = _DATA
        self._sequence += 1
        self._retired_at[block] = self._sequence

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------

    def read_page(self, lpage: int, cost: CostAccumulator) -> int:
        """See :meth:`BaseFTL.read_page`: one direct-map lookup."""
        self._check_lpage(lpage)
        ppage = int(self._l2p[lpage])
        if ppage < 0:
            return ERASED
        cost.page_reads += 1
        block, offset = divmod(ppage, self.geometry.pages_per_block)
        return self.chip.read(block, offset)

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------

    def write_page(self, lpage: int, token: int, cost: CostAccumulator) -> None:
        """See :meth:`BaseFTL.write_page`: invalidate, append, maybe GC."""
        self._check_lpage(lpage)
        if token < 0:
            raise FTLError("host tokens must be non-negative")
        self._invalidate(lpage)
        self._append(lpage, token, host=True, cost=cost)
        cost.page_programs += 1
        # Foreground GC once the pool is at the low watermark — this is
        # the oscillation of the running phase (Figures 3/4).
        while len(self._free) <= self.config.gc_low_blocks:
            if not self._collect_one(cost):
                break
        if self.config.wear_threshold:
            self._maybe_wear_level(cost)

    def _invalidate(self, lpage: int) -> None:
        old = int(self._l2p[lpage])
        if old >= 0:
            self._p2l[old] = -1
            self._valid[old // self.geometry.pages_per_block] -= 1
            self._l2p[lpage] = -1

    def _append(self, lpage: int, token: int, host: bool, cost: CostAccumulator) -> None:
        """Program one page at the relevant active block's write point."""
        ppb = self.geometry.pages_per_block
        active = self._host_active if host else self._gc_active
        if self.chip.write_point(active) == ppb:
            self._retire_active(active)
            active = self._allocate_active()
            if host:
                self._host_active = active
            else:
                self._gc_active = active
        offset = self.chip.write_point(active)
        self.chip.program(active, offset, token)
        ppage = active * ppb + offset
        self._l2p[lpage] = ppage
        self._p2l[ppage] = lpage
        self._valid[active] += 1

    # ------------------------------------------------------------------
    # garbage collection
    # ------------------------------------------------------------------

    def _pick_victim(self) -> int | None:
        """Select a GC victim under the configured policy.

        A fully-valid victim would be relocated for zero net gain (it
        frees one block while its copies consume one), so GC refuses it —
        there is simply no reclaimable space right now.
        """
        candidates = self._state == _DATA
        if not candidates.any():
            return None
        if self.config.gc_policy == "greedy":
            masked = np.where(candidates, self._valid, np.iinfo(np.int32).max)
            victim = int(masked.argmin())
        else:
            victim = self._pick_cost_benefit(candidates)
            if victim is None:
                return None
        if int(self._valid[victim]) >= self.geometry.pages_per_block:
            return None
        return victim

    def _pick_cost_benefit(self, candidates: np.ndarray) -> int | None:
        """The LFS cost-benefit score: ``(1 - u) * age / (1 + u)`` with
        utilisation ``u`` = valid fraction and age = time since the
        block was retired.  Old cold blocks win even at moderate
        utilisation; freshly written hot blocks are left to decay."""
        ppb = self.geometry.pages_per_block
        utilisation = self._valid.astype(np.float64) / ppb
        age = (self._sequence - self._retired_at).astype(np.float64) + 1.0
        score = (1.0 - utilisation) * age / (1.0 + utilisation)
        score = np.where(candidates, score, -1.0)
        victim = int(score.argmax())
        if score[victim] <= 0.0:
            return None
        return victim

    def _collect_one(self, cost: CostAccumulator) -> bool:
        victim = self._pick_victim()
        if victim is None:
            return False
        self._relocate_block(victim, cost)
        self.gc_collections += 1
        cost.note("gc")
        return True

    def _relocate_block(self, victim: int, cost: CostAccumulator) -> None:
        """Copy a block's valid pages to the GC active block, then erase."""
        ppb = self.geometry.pages_per_block
        base = victim * ppb
        for offset in range(self.chip.write_point(victim)):
            lpage = int(self._p2l[base + offset])
            if lpage < 0:
                continue
            token = self.chip.read(victim, offset)
            cost.copy_reads += 1
            self.gc_copy_reads += 1
            self._invalidate(lpage)
            self._append(lpage, token, host=False, cost=cost)
            cost.copy_programs += 1
            self.gc_copy_programs += 1
        self.chip.erase(victim)
        cost.block_erases += 1
        self._valid[victim] = 0
        self._state[victim] = _FREE
        self._free.append(victim)

    # ------------------------------------------------------------------
    # wear levelling
    # ------------------------------------------------------------------

    def _maybe_wear_level(self, cost: CostAccumulator) -> None:
        counts = self.chip.erase_counts()
        data_mask = self._state == _DATA
        if not data_mask.any():
            return
        coldest = int(np.where(data_mask, counts, np.iinfo(np.int64).max).argmin())
        spread = float(counts.max() - counts[coldest])
        if spread > self.config.wear_threshold:
            self._relocate_block(coldest, cost)
            self.wear_relocations += 1
            cost.note("wear-level")

    # ------------------------------------------------------------------
    # background GC
    # ------------------------------------------------------------------

    def background_work_pending(self) -> bool:
        """Whether the free pool sits below the background target."""
        if not self.config.bg_enabled:
            return False
        if len(self._free) >= self.config.bg_target_blocks:
            return False
        return bool((self._state == _DATA).any())

    def do_background_unit(self) -> CostAccumulator | None:
        """Collect one victim in the background; None when satisfied."""
        if not self.background_work_pending():
            return None
        cost = CostAccumulator()
        self._collect_one(cost)
        return cost

    # ------------------------------------------------------------------
    # introspection & invariants
    # ------------------------------------------------------------------

    def metrics(self) -> dict[str, float]:
        """See :meth:`BaseFTL.metrics`: GC victims, wear moves, copy volume."""
        return {
            "gc_collections": float(self.gc_collections),
            "gc_copy_reads": float(self.gc_copy_reads),
            "gc_copy_programs": float(self.gc_copy_programs),
            "wear_relocations": float(self.wear_relocations),
        }

    def free_blocks(self) -> int:
        """Number of erased, unassigned physical blocks."""
        return len(self._free)

    def check_invariants(self) -> None:
        """Verify map/inverse-map agreement, valid counters and block states."""
        ppb = self.geometry.pages_per_block
        if sorted(self._free) != sorted(np.flatnonzero(self._state == _FREE).tolist()):
            raise FTLError("free queue out of sync with block states")
        mapped = self._l2p[self._l2p >= 0]
        if len(np.unique(mapped)) != len(mapped):
            raise FTLError("two logical pages map to one physical page")
        for lpage in np.flatnonzero(self._l2p >= 0):
            ppage = int(self._l2p[lpage])
            if int(self._p2l[ppage]) != int(lpage):
                raise FTLError(f"direct/inverse map mismatch at lpage {lpage}")
        valid_recount = np.bincount(
            (mapped // ppb).astype(np.int64),
            minlength=self.geometry.physical_blocks,
        )
        if not np.array_equal(valid_recount, self._valid.astype(np.int64)):
            raise FTLError("per-block valid counters out of sync with the map")
        total = self.geometry.physical_blocks
        nfree = int((self._state == _FREE).sum())
        nactive = int((self._state == _ACTIVE).sum())
        ndata = int((self._state == _DATA).sum())
        if nfree + nactive + ndata != total:
            raise FTLError("block state partition violated")
        if nactive != 2:
            raise FTLError(f"expected 2 active blocks (host + GC), found {nactive}")
