"""Hybrid log-block FTL (the dominant 2008 SSD/flash-drive design).

Data blocks are **block-mapped**: logical block ``b`` lives in one
physical block with pages at their natural offsets.  Incoming writes are
absorbed by a small pool of **log blocks**.  When a log block fills or
must be evicted it is *merged* with its data block:

* **switch merge** — the log was written fully and in order: it simply
  becomes the new data block and the old one is erased (cheap; this is
  why sequential writes are fast);
* **partial merge** — the log holds an in-order prefix: the tail is
  copied from the old data block, then as a switch merge;
* **full merge** — the log holds pages out of order: every page of the
  logical block is copied to a fresh block and both old blocks are
  erased (expensive; this is why random writes are slow).

Following the LAST/SAST lineage of 2008-era controllers, the log pool is
**split in two** — this is what decouples the paper's Partitioning limit
from its Locality area (Table 3 shows Mtron with 4 partitions but an
8 MB locality area):

``seq_log_blocks``
    Logs opened by a write of a block's *first page* (a sequential
    stream starting).  They fill in order and switch-merge for free —
    the resource behind the *Partitioning* limit (4–8 concurrent
    sequential streams).  A sequential log that receives an
    out-of-order page is demoted to the random pool.
``rnd_log_blocks``
    Logs for everything else.  A block whose random log stays resident
    amortises one merge over many writes, so random writes confined to
    ``rnd_log_blocks x block_size`` bytes stay cheap — the *Locality*
    area.
``page_mapped_logs``
    Whether a log block accepts pages in arbitrary order (high-end
    controllers) or only in-order appends (cheap controllers, which must
    close the log on the first out-of-order write).

Merges can be **deferred**: a closed log is queued and merged either by
the background reclaimer (during idle time — the paper's asynchronous
page reclamation, visible in the Pause/Burst micro-benchmarks and in
Figure 5) or in the foreground when the free-block pool runs dry (the
oscillating *running phase* of Figures 3 and 4).
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass

import numpy as np

from repro.errors import FTLError, OutOfSpaceError
from repro.flashsim.chip import ERASED, FlashChip
from repro.flashsim.ftl.base import BaseFTL
from repro.flashsim.bitmap import mask_from_indices
from repro.flashsim.geometry import Geometry
from repro.flashsim.timing import CostAccumulator

#: token programmed into pages that exist only to pad a merged block
FILLER_TOKEN = 0


@dataclass(frozen=True)
class HybridConfig:
    """Tuning of a :class:`HybridLogFTL`.

    ``bg_target_blocks`` is the free-pool level the background reclaimer
    restores during idle time; it bounds the length of the start-up phase
    observed for random writes (Figure 3).  Devices without asynchronous
    reclamation set ``bg_enabled=False`` and show no start-up phase and
    no Pause benefit (Table 3).
    """

    seq_log_blocks: int = 4
    rnd_log_blocks: int = 8
    page_mapped_logs: bool = True
    bg_enabled: bool = False
    bg_target_blocks: int = 0

    def __post_init__(self) -> None:
        if self.seq_log_blocks < 1 or self.rnd_log_blocks < 1:
            raise FTLError("both log pools need at least one block")
        if self.bg_enabled and self.bg_target_blocks < 1:
            raise FTLError("bg_target_blocks must be >= 1 when bg_enabled")

    @property
    def log_blocks(self) -> int:
        """Total log pool size (both tiers)."""
        return self.seq_log_blocks + self.rnd_log_blocks


class _LogBlock:
    """One log block: physical block + dense page map of what landed where.

    ``pos_of`` maps each page offset of the logical block to the log
    position holding its newest copy (-1 = not in this log) — an int16
    vector instead of a dict, so reads, merges and invariant checks
    index it directly and merge scans are single vectorized expressions.
    """

    __slots__ = ("lblock", "pblock", "next_pos", "pos_of", "in_order")

    def __init__(self, lblock: int, pblock: int, pages_per_block: int) -> None:
        self.lblock = lblock
        self.pblock = pblock
        self.next_pos = 0  # next program position (chip write point)
        # page offset -> latest log position (-1 = absent)
        self.pos_of = np.full(pages_per_block, -1, dtype=np.int16)
        self.in_order = True  # offsets written == 0..next_pos-1 in order

    def record(self, offset: int) -> None:
        """Note that ``offset`` was just programmed at ``next_pos``."""
        if offset != self.next_pos or self.pos_of[offset] >= 0:
            self.in_order = False
        self.pos_of[offset] = self.next_pos
        self.next_pos += 1


class HybridLogFTL(BaseFTL):
    """Block-mapped FTL with a page-mapped (or in-order) log-block pool."""

    _STATE_ATTRS = (
        "_data_map",
        "_free",
        "_open_seq",
        "_open_rnd",
        "_pending",
        "_pending_by_lblock",
        "_stream_tails",
        "merge_stats",
        "merge_copy_reads",
        "merge_copy_programs",
    )

    def __init__(
        self,
        geometry: Geometry,
        chip: FlashChip,
        config: HybridConfig | None = None,
    ) -> None:
        super().__init__(geometry, chip)
        self.config = config or HybridConfig()
        spare = geometry.spare_blocks
        # The log pool, one in-flight merge target and the background
        # head-room must all fit in the spare area.
        min_spare = self.config.log_blocks + 2
        if spare < min_spare:
            raise FTLError(
                f"geometry provides {spare} spare blocks but the hybrid FTL "
                f"needs at least {min_spare} (log pool + merge reserve)"
            )
        if self.config.bg_enabled and self.config.bg_target_blocks > spare - min_spare + 1:
            raise FTLError(
                "bg_target_blocks exceeds what the spare area can hold"
            )
        # logical block -> physical data block (-1 = never written)
        self._data_map = np.full(geometry.logical_blocks, -1, dtype=np.int64)
        # erased blocks, FIFO for dynamic wear rotation; the bitmap
        # mirrors membership for dense checks (derived, not snapshotted)
        self._free: deque[int] = deque(range(geometry.physical_blocks))
        self._free_map = np.ones(geometry.physical_blocks, dtype=bool)
        # open logs, LRU first, split into the two tiers: sequential
        # (stream) logs and random logs
        self._open_seq: OrderedDict[int, _LogBlock] = OrderedDict()
        self._open_rnd: OrderedDict[int, _LogBlock] = OrderedDict()
        # closed logs awaiting merge, oldest first.  A logical block may
        # have several pending generations (plus an open log); reads
        # consult newest first and merges apply oldest first, so the
        # final state always converges to the newest writes.
        self._pending: deque[_LogBlock] = deque()
        self._pending_by_lblock: dict[int, list[_LogBlock]] = {}
        # Sequential-stream detector: logical block -> the offset where
        # the block's last sequential run ended.  A run continuing a tail
        # is stream traffic and must use (and compete for) the scarce
        # sequential log slots even after its log was evicted — this is
        # what makes too many concurrent partitions degrade (Table 3).
        self._stream_tails: OrderedDict[int, int] = OrderedDict()
        self._stream_tail_capacity = 4 * self.config.log_blocks
        self.merge_stats = {"switch": 0, "partial": 0, "full": 0}
        self.merge_copy_reads = 0
        self.merge_copy_programs = 0

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------

    def read_page(self, lpage: int, cost: CostAccumulator) -> int:
        """See :meth:`BaseFTL.read_page`: open log, pending generations (newest first), then data."""
        self._check_lpage(lpage)
        ppb = self.geometry.pages_per_block
        lblock, offset = divmod(lpage, ppb)
        candidates: list[_LogBlock] = []
        open_log = self._open_seq.get(lblock) or self._open_rnd.get(lblock)
        if open_log is not None:
            candidates.append(open_log)
        candidates.extend(reversed(self._pending_by_lblock.get(lblock, ())))
        for log in candidates:
            if log.pos_of[offset] >= 0:
                cost.page_reads += 1
                return self._decode(
                    self.chip.read(log.pblock, int(log.pos_of[offset]))
                )
        data = int(self._data_map[lblock])
        if data < 0:
            return ERASED
        cost.page_reads += 1
        return self._decode(self.chip.read(data, offset))

    @staticmethod
    def _decode(token: int) -> int:
        """Map filler pages back to the 'never written' token."""
        return ERASED if token == FILLER_TOKEN else token

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------

    def write_pages(self, items, cost: CostAccumulator) -> None:
        """Write a batch, classifying each consecutive run as sequential
        stream traffic or random traffic (LAST-style routing)."""
        run_start = 0
        for position in range(1, len(items) + 1):
            is_break = position == len(items) or (
                items[position][0] != items[position - 1][0] + 1
            )
            if not is_break:
                continue
            run = items[run_start:position]
            run_start = position
            seq = self._classify_run(run[0][0], run[-1][0])
            for lpage, token in run:
                self.write_page(lpage, token, cost, seq_hint=seq)

    def _classify_run(self, first_lpage: int, last_lpage: int) -> bool:
        """Sequential-class: the run *continues* a tracked stream tail.

        A run starting at a block's first page only *registers* a stream
        candidate (isolated random writes that happen to hit offset 0
        look identical to a stream's first request); the stream is
        confirmed — and its log promoted into a scarce stream slot —
        when the continuation arrives.
        """
        ppb = self.geometry.pages_per_block
        lblock, offset = divmod(first_lpage, ppb)
        seq = self._stream_tails.get(lblock) == offset and offset != 0
        if seq or offset == 0:
            end = (last_lpage % ppb) + 1
            self._stream_tails[lblock] = end % ppb
            self._stream_tails.move_to_end(lblock)
            if end == ppb:
                # the stream may roll into the next block
                if lblock + 1 < self.geometry.logical_blocks:
                    self._stream_tails.setdefault(lblock + 1, 0)
            while len(self._stream_tails) > self._stream_tail_capacity:
                self._stream_tails.popitem(last=False)
        return seq

    def write_page(
        self,
        lpage: int,
        token: int,
        cost: CostAccumulator,
        seq_hint: bool | None = None,
    ) -> None:
        """See :meth:`BaseFTL.write_page`: route to a log by stream class, merge as needed."""
        self._check_lpage(lpage)
        if token <= FILLER_TOKEN:
            raise FTLError(f"host tokens must be > {FILLER_TOKEN}, got {token}")
        ppb = self.geometry.pages_per_block
        lblock, offset = divmod(lpage, ppb)

        if seq_hint is None:
            seq_hint = self._classify_run(lpage, lpage)
        pool = self._pool_of(lblock)
        if (
            seq_hint
            and pool is self._open_rnd
            and lblock in self._open_rnd
        ):
            # Stream confirmed by its continuation: promote the log from
            # the random pool into a (scarce) stream slot.
            self._promote(lblock)
            pool = self._open_seq
        log = pool.get(lblock) if pool is not None else None
        if log is not None and not self.config.page_mapped_logs:
            # A cheap controller's log only takes in-order appends.
            if offset != log.next_pos:
                self._close_log(lblock, cost)
                log = pool = None
        elif log is not None and self._stream_restart(log, offset):
            # Sequential-stream detection: a write of the block's first
            # page into a stale log signals the whole block is about to
            # be rewritten.  Retiring the stale log lets the fresh one
            # fill in order and *switch* in — and the switch supersedes
            # the retired generation, erasing it for free.  Without this
            # a sequential pass over blocks with leftover log pages
            # degrades to full merges.
            self._retire_open(lblock)
            log = pool = None
        if log is None:
            pool = self._open_seq if seq_hint else self._open_rnd
            log = self._open_log(lblock, pool, cost)
        self.chip.program(log.pblock, log.next_pos, token)
        cost.page_programs += 1
        log.record(offset)
        pool.move_to_end(lblock)
        if log.next_pos == ppb:
            self._close_log(lblock, cost)

    # ------------------------------------------------------------------
    # log pool management
    # ------------------------------------------------------------------

    def _pool_of(self, lblock: int) -> OrderedDict[int, _LogBlock] | None:
        """The open pool currently holding ``lblock``'s log, if any."""
        if lblock in self._open_seq:
            return self._open_seq
        if lblock in self._open_rnd:
            return self._open_rnd
        return None

    def _pool_capacity(self, pool: OrderedDict[int, _LogBlock]) -> int:
        if pool is self._open_seq:
            return self.config.seq_log_blocks
        return self.config.rnd_log_blocks

    def _open_log(
        self,
        lblock: int,
        pool: OrderedDict[int, _LogBlock],
        cost: CostAccumulator,
    ) -> _LogBlock:
        """Allocate a log block for ``lblock`` in ``pool``, evicting the
        pool's LRU entry when it is full."""
        if len(pool) >= self._pool_capacity(pool):
            self._retire_open(next(iter(pool)))  # LRU
        pblock = self._take_free(cost)
        log = _LogBlock(lblock, pblock, self.geometry.pages_per_block)
        pool[lblock] = log
        return log

    @staticmethod
    def _stream_restart(log: _LogBlock, offset: int) -> bool:
        """Whether a write to ``offset`` looks like a sequential stream
        restarting at the block boundary over a stale log.

        Requires offset 0, a non-pristine log, and that the log has not
        seen offset 0 yet — the last condition keeps in-place rewrites of
        a block's first page (the Order micro-benchmark's Incr = 0) from
        flooding the device with one-page log generations.
        """
        return offset == 0 and log.next_pos != 0 and log.pos_of[0] < 0

    def _free_pop(self) -> int:
        """Take the oldest free block, keeping the bitmap in sync."""
        block = self._free.popleft()
        self._free_map[block] = False
        return block

    def _free_put(self, block: int) -> None:
        """Return an erased block to the pool, keeping the bitmap in sync."""
        self._free_map[block] = True
        self._free.append(block)

    def _defer(self, log: _LogBlock) -> None:
        """Queue a closed log for a deferred merge (age order)."""
        self._pending.append(log)
        self._pending_by_lblock.setdefault(log.lblock, []).append(log)

    def _promote(self, lblock: int) -> None:
        """Move a confirmed stream's log into the sequential pool."""
        log = self._open_rnd.pop(lblock)
        if len(self._open_seq) >= self.config.seq_log_blocks:
            self._retire_open(next(iter(self._open_seq)))
        self._open_seq[lblock] = log

    def _pop_open(self, lblock: int) -> _LogBlock:
        pool = self._pool_of(lblock)
        if pool is None:
            raise FTLError(f"no open log for logical block {lblock}")
        return pool.pop(lblock)

    def _retire_open(self, lblock: int) -> None:
        """Evict an open log: queue it for a deferred merge."""
        self._defer(self._pop_open(lblock))

    def _close_log(self, lblock: int, cost: CostAccumulator) -> None:
        """A log filled (or must close): switch-merge now if cheap,
        otherwise defer the expensive merge.

        A full in-order log covers every page of its logical block, so
        it *supersedes* all older pending generations: the switch merge
        erases them outright instead of ever merging them.
        """
        log = self._pop_open(lblock)
        ppb = self.geometry.pages_per_block
        if log.in_order and log.next_pos == ppb:
            self._supersede_pending(lblock, cost)
            self._switch_merge(log, cost)
        else:
            self._defer(log)

    def _supersede_pending(self, lblock: int, cost: CostAccumulator) -> None:
        """Erase every pending generation of ``lblock`` — its content is
        entirely superseded by a full in-order log about to switch in."""
        generations = self._pending_by_lblock.pop(lblock, None)
        if not generations:
            return
        sub = cost.begin_scope()
        for log in generations:
            self._pending.remove(log)
            self.chip.erase(log.pblock)
            sub.block_erases += 1
            self._free_put(log.pblock)
            sub.note("superseded")
        cost.end_scope("merge", sub)

    def _take_free(self, cost: CostAccumulator) -> int:
        """Pop an erased block, reclaiming in the foreground if the pool
        is down to the merge reserve (this is the expensive path random
        writes hit once the start-up phase ends)."""
        while len(self._free) < 2 and (
            self._pending or self._open_rnd or self._open_seq
        ):
            if not self._reclaim_one(cost):
                break
        if not self._free:
            raise OutOfSpaceError("hybrid FTL exhausted all free blocks")
        return self._free_pop()

    def _reclaim_one(self, cost: CostAccumulator) -> bool:
        """Merge one queued (or, failing that, LRU open) log block.

        Always the *oldest* pending generation: merges must apply in age
        order so newer generations overwrite older data.
        """
        if self._pending:
            log = self._pending.popleft()
            generations = self._pending_by_lblock[log.lblock]
            generations.pop(0)
            if not generations:
                del self._pending_by_lblock[log.lblock]
        elif self._open_rnd:
            log = self._open_rnd.pop(next(iter(self._open_rnd)))
        elif self._open_seq:
            log = self._open_seq.pop(next(iter(self._open_seq)))
        else:
            return False
        self._merge(log, cost)
        return True

    # ------------------------------------------------------------------
    # merges
    # ------------------------------------------------------------------

    def _switch_merge(self, log: _LogBlock, cost: CostAccumulator) -> None:
        """The log holds the complete block in order: just swap it in."""
        sub = cost.begin_scope()
        old = int(self._data_map[log.lblock])
        self._data_map[log.lblock] = log.pblock
        if old >= 0:
            self.chip.erase(old)
            sub.block_erases += 1
            self._free_put(old)
        self.merge_stats["switch"] += 1
        sub.note("switch-merge")
        cost.end_scope("merge", sub)

    def _merge(self, log: _LogBlock, cost: CostAccumulator) -> None:
        """Merge a closed log with its data block (partial or full)."""
        ppb = self.geometry.pages_per_block
        old = int(self._data_map[log.lblock])
        if log.in_order:
            self._partial_merge(log, old, cost)
            return
        # Full merge: consolidate into a fresh block.  One free block is
        # always reserved for this; the merge returns two (log + old data).
        if not self._free:
            raise OutOfSpaceError("no merge reserve block available")
        sub = cost.begin_scope()
        target = self._free_pop()
        written = 0
        logged = np.flatnonzero(log.pos_of >= 0)
        highest = int(logged[-1]) if logged.size else -1
        if old >= 0:
            highest = max(highest, self.chip.write_point(old) - 1)
        for offset in range(highest + 1):
            if log.pos_of[offset] >= 0:
                token = self.chip.read(log.pblock, int(log.pos_of[offset]))
                sub.copy_reads += 1
                self.merge_copy_reads += 1
            elif old >= 0 and offset < self.chip.write_point(old):
                token = self.chip.read(old, offset)
                sub.copy_reads += 1
                self.merge_copy_reads += 1
            else:
                token = ERASED
            self.chip.program(target, offset, token if token != ERASED else FILLER_TOKEN)
            sub.copy_programs += 1
            self.merge_copy_programs += 1
            written += 1
        self._data_map[log.lblock] = target
        self.chip.erase(log.pblock)
        sub.block_erases += 1
        self._free_put(log.pblock)
        if old >= 0:
            self.chip.erase(old)
            sub.block_erases += 1
            self._free_put(old)
        self.merge_stats["full"] += 1
        sub.note("full-merge")
        cost.end_scope("merge", sub)

    def _partial_merge(self, log: _LogBlock, old: int, cost: CostAccumulator) -> None:
        """The log holds an in-order prefix: copy the tail, then switch."""
        ppb = self.geometry.pages_per_block
        sub = cost.begin_scope()
        if old >= 0:
            tail_end = self.chip.write_point(old)
            for offset in range(log.next_pos, tail_end):
                token = self.chip.read(old, offset)
                sub.copy_reads += 1
                self.merge_copy_reads += 1
                self.chip.program(
                    log.pblock, offset, token if token != ERASED else FILLER_TOKEN
                )
                sub.copy_programs += 1
                self.merge_copy_programs += 1
        self._data_map[log.lblock] = log.pblock
        if old >= 0:
            self.chip.erase(old)
            sub.block_erases += 1
            self._free_put(old)
        self.merge_stats["partial"] += 1
        sub.note("partial-merge")
        cost.end_scope("merge", sub)

    # ------------------------------------------------------------------
    # background reclamation
    # ------------------------------------------------------------------

    def background_work_pending(self) -> bool:
        """Whether deferred merges exist (only when bg_enabled)."""
        if not self.config.bg_enabled:
            return False
        if self._pending:
            return True
        return len(self._free) < self.config.bg_target_blocks and bool(
            self._open_rnd or self._open_seq
        )

    def do_background_unit(self) -> CostAccumulator | None:
        """Merge one log block in the background; None when nothing pends."""
        if not self.background_work_pending():
            return None
        cost = CostAccumulator()
        self._reclaim_one(cost)
        return cost

    def quiesce(self) -> CostAccumulator:
        """Merge every pending generation and every open log."""
        total = CostAccumulator()
        while self._pending or self._open_rnd or self._open_seq:
            if not self._reclaim_one(total):
                break
        return total

    # ------------------------------------------------------------------
    # introspection & invariants
    # ------------------------------------------------------------------

    def restore(self, state: dict) -> None:
        """See :meth:`BaseFTL.restore`; rebuilds the free bitmap."""
        super().restore(state)
        self._free_map = mask_from_indices(
            self._free, self.geometry.physical_blocks
        )

    def metrics(self) -> dict[str, float]:
        """See :meth:`BaseFTL.metrics`: merges by kind and copy volume."""
        return {
            "switch_merges": float(self.merge_stats["switch"]),
            "partial_merges": float(self.merge_stats["partial"]),
            "full_merges": float(self.merge_stats["full"]),
            "merge_copy_reads": float(self.merge_copy_reads),
            "merge_copy_programs": float(self.merge_copy_programs),
        }

    def free_blocks(self) -> int:
        """Number of erased, unassigned physical blocks."""
        return len(self._free)

    def open_log_count(self) -> int:
        """Open log blocks across both pools."""
        return len(self._open_seq) + len(self._open_rnd)

    def pending_merge_count(self) -> int:
        """Closed log generations awaiting a deferred merge."""
        return len(self._pending)

    def check_invariants(self) -> None:
        """Verify block conservation, pool disjointness and queue/index sync."""
        roles: dict[int, str] = {}

        def claim(block: int, role: str) -> None:
            if block in roles:
                raise FTLError(
                    f"physical block {block} has two roles: {roles[block]} and {role}"
                )
            roles[block] = role

        free_idx = np.fromiter(self._free, dtype=np.int64, count=len(self._free))
        if not np.array_equal(np.sort(free_idx), np.flatnonzero(self._free_map)):
            raise FTLError("free queue out of sync with the free bitmap")
        not_erased = self._free_map & ~self.chip.erased_mask()
        if not_erased.any():
            block = int(np.flatnonzero(not_erased)[0])
            raise FTLError(f"free block {block} is not erased")
        for block in self._free:
            claim(block, "free")
        for pool_name, pool in (("seq", self._open_seq), ("rnd", self._open_rnd)):
            for log in pool.values():
                claim(log.pblock, f"open-{pool_name}-log[{log.lblock}]")
        if set(self._open_seq) & set(self._open_rnd):
            raise FTLError("a logical block has open logs in both pools")
        for log in self._pending:
            claim(log.pblock, f"pending-log[{log.lblock}]")
        for lblock, pblock in enumerate(self._data_map):
            if pblock >= 0:
                claim(int(pblock), f"data[{lblock}]")
        if len(roles) != self.geometry.physical_blocks:
            raise FTLError(
                f"block conservation violated: {len(roles)} of "
                f"{self.geometry.physical_blocks} physical blocks accounted for"
            )
        indexed = [log for gens in self._pending_by_lblock.values() for log in gens]
        if len(indexed) != len(self._pending) or set(map(id, indexed)) != set(
            map(id, self._pending)
        ):
            raise FTLError("pending merge index out of sync with queue")
        # age order: within each block, per-block generations must appear
        # in the same order as in the global queue
        queue_position = {id(log): position for position, log in enumerate(self._pending)}
        for generations in self._pending_by_lblock.values():
            positions = [queue_position[id(log)] for log in generations]
            if positions != sorted(positions):
                raise FTLError("per-block pending generations out of age order")
        # dense page-map consistency: every logged position must lie
        # below the log's write point, and no two offsets may claim the
        # same position (each program lands exactly once)
        all_logs = [
            *self._open_seq.values(),
            *self._open_rnd.values(),
            *self._pending,
        ]
        for log in all_logs:
            logged = log.pos_of[log.pos_of >= 0].astype(np.int64)
            if logged.size and (
                int(logged.max()) >= log.next_pos
                or np.unique(logged).size != logged.size
            ):
                raise FTLError(
                    f"log for lblock {log.lblock} has an inconsistent page map"
                )
