"""Flash translation layer (FTL) interface.

Section 2.2 of the paper: the block manager maintains maps between
logical block addresses and flash pages, trading expensive in-place
writes (with their erases) for writes onto free pages, at the price of
page reclamation later.  The exact design varies per device and is
undocumented — which is why uFLIP treats devices as black boxes.  The
simulator implements three FTL families that span the 2008 design space:

* :class:`~repro.flashsim.ftl.hybrid.HybridLogFTL` — block-mapped data
  with a pool of page-mapped *log blocks* and switch/partial/full merges
  (high-end and mid-range SSDs);
* :class:`~repro.flashsim.ftl.blockmap.BlockMapFTL` — strict block
  mapping with replacement blocks (USB sticks, SD cards);
* :class:`~repro.flashsim.ftl.pagemap.PageMapFTL` — fully page-mapped
  with greedy garbage collection (the "modern SSD" design).

All FTLs speak **logical pages** (the controller converts byte extents)
and record their physical work in a
:class:`~repro.flashsim.timing.CostAccumulator`; they never deal in
microseconds directly.
"""

from __future__ import annotations

import copy
from abc import ABC, abstractmethod
from typing import Sequence

from repro.errors import AddressError, FTLError
from repro.flashsim.chip import ERASED, FlashChip
from repro.flashsim.geometry import Geometry
from repro.flashsim.timing import CostAccumulator


class BaseFTL(ABC):
    """Abstract flash translation layer.

    Subclasses implement the two data-path operations plus the optional
    background-reclamation hooks used to reproduce the paper's Pause,
    Burst and interference effects (Sections 4.3, 5.2).
    """

    #: Names of the mutable attributes that make up a subclass's state.
    #: ``snapshot``/``restore`` deep-copy them *together* in one pass,
    #: which preserves identity sharing between attributes (e.g. the
    #: hybrid FTL's pending-merge deque and its by-logical-block index
    #: hold the same ``_LogBlock`` objects, and must keep doing so after
    #: a restore).
    _STATE_ATTRS: tuple[str, ...] = ()

    def __init__(self, geometry: Geometry, chip: FlashChip) -> None:
        self.geometry = geometry
        self.chip = chip

    # ------------------------------------------------------------------
    # data path
    # ------------------------------------------------------------------

    @abstractmethod
    def read_page(self, lpage: int, cost: CostAccumulator) -> int:
        """Read the token last written to logical page ``lpage``.

        Returns :data:`~repro.flashsim.chip.ERASED` for never-written
        pages.  Physical reads performed are recorded in ``cost``.
        """

    @abstractmethod
    def write_page(self, lpage: int, token: int, cost: CostAccumulator) -> None:
        """Write ``token`` to logical page ``lpage``.

        All induced physical work — programs, merge copies, erases — is
        recorded in ``cost``.
        """

    def write_pages(
        self, items: "Sequence[tuple[int, int]]", cost: CostAccumulator
    ) -> None:
        """Write a batch of ``(lpage, token)`` pairs.

        The batch corresponds to one host IO or one cache destage group,
        so FTLs that classify write *runs* (sequential stream vs random,
        as 2008-era hybrid controllers did) can see whole runs instead
        of single pages.  Default: page-by-page.
        """
        for lpage, token in items:
            self.write_page(lpage, token, cost)

    def note_io_boundary(self, end_byte: int, cost: CostAccumulator) -> None:
        """Hook called by the controller after each host *write* IO.

        Cheap controllers with no RAM to keep write state across commands
        commit (close) their replacement block unless the IO ended on an
        internal commit boundary — the physical cause of the strikingly
        expensive small sequential writes of Figure 7.  Default: no-op.
        """

    # ------------------------------------------------------------------
    # background reclamation (default: none)
    # ------------------------------------------------------------------

    def background_work_pending(self) -> bool:
        """Whether deferred reclamation work exists (merges, GC)."""
        return False

    def do_background_unit(self) -> CostAccumulator | None:
        """Perform one unit of deferred work; return its cost, or None.

        The device layer converts the returned cost into simulated time
        and schedules it into idle gaps between host IOs.
        """
        return None

    def drain_background(self) -> CostAccumulator:
        """Run all pending background work to completion (between runs)."""
        total = CostAccumulator()
        while self.background_work_pending():
            unit = self.do_background_unit()
            if unit is None:
                break
            total.add(unit)
        return total

    def quiesce(self) -> CostAccumulator:
        """Resolve *all* deferred work, regardless of the background
        configuration (tests and power-down modelling).  Default: just
        the background queue."""
        return self.drain_background()

    # ------------------------------------------------------------------
    # snapshot / restore
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """Deep copy of the FTL's mutable state (mapping tables, free
        pool, open logs, pending reclamation, counters).

        The chip is snapshot separately by the device; the FTL keeps
        referring to the same :class:`FlashChip` object across restores.
        """
        if not self._STATE_ATTRS:
            raise FTLError(
                f"{type(self).__name__} declares no _STATE_ATTRS; it cannot "
                "participate in the snapshot/restore protocol"
            )
        return copy.deepcopy(
            {name: getattr(self, name) for name in self._STATE_ATTRS}
        )

    def restore(self, state: dict) -> None:
        """Reset the FTL to a :meth:`snapshot`.

        The state is copied again on the way in, so one snapshot can be
        restored any number of times without aliasing live structures.
        """
        for name, value in copy.deepcopy(state).items():
            setattr(self, name, value)

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------

    def metrics(self) -> dict[str, float]:
        """Cumulative reclamation counters as a flat ``name -> value`` map.

        Sampled by :meth:`FlashDevice.metrics` (under an ``ftl.`` prefix)
        at run and cell boundaries; subclasses expose whatever makes
        their reclamation behaviour interpretable (GC victims collected,
        merges by kind, copy volume).  Default: nothing.
        """
        return {}

    # ------------------------------------------------------------------
    # shared helpers / invariants
    # ------------------------------------------------------------------

    def _check_lpage(self, lpage: int) -> None:
        if not 0 <= lpage < self.geometry.logical_pages:
            raise AddressError(
                f"logical page {lpage} out of range 0..{self.geometry.logical_pages - 1}"
            )

    @abstractmethod
    def free_blocks(self) -> int:
        """Number of erased, unassigned physical blocks."""

    @abstractmethod
    def check_invariants(self) -> None:
        """Raise :class:`~repro.errors.FTLError` on internal inconsistency.

        Called by tests after arbitrary operation sequences; must verify
        block conservation and map consistency.
        """

    # convenience used by tests and the device shadow check

    def read_token_quiet(self, lpage: int) -> int:
        """Read a logical page without recording any cost (test helper)."""
        scratch = CostAccumulator()
        return self.read_page(lpage, scratch)


__all__ = ["BaseFTL", "ERASED"]
