"""Flash translation layer (FTL) interface.

Section 2.2 of the paper: the block manager maintains maps between
logical block addresses and flash pages, trading expensive in-place
writes (with their erases) for writes onto free pages, at the price of
page reclamation later.  The exact design varies per device and is
undocumented — which is why uFLIP treats devices as black boxes.  The
simulator implements four FTL families that span the 2008 design space:

* :class:`~repro.flashsim.ftl.hybrid.HybridLogFTL` — block-mapped data
  with a pool of page-mapped *log blocks* and switch/partial/full merges
  (high-end and mid-range SSDs);
* :class:`~repro.flashsim.ftl.fast.FastFTL` — fully-shared
  arrival-ordered log blocks with full merges at reclamation (the FAST
  design point);
* :class:`~repro.flashsim.ftl.blockmap.BlockMapFTL` — strict block
  mapping with replacement blocks (USB sticks, SD cards);
* :class:`~repro.flashsim.ftl.pagemap.PageMapFTL` — fully page-mapped
  with greedy garbage collection (the "modern SSD" design).

All FTLs speak **logical pages** (the controller converts byte extents)
and record their physical work in a
:class:`~repro.flashsim.timing.CostAccumulator`; they never deal in
microseconds directly.

State is kept in two tiers (see ``docs/simulator.md``): an
authoritative core — the structures named in ``_STATE_ATTRS``, which
snapshots copy — and dense derived state (free/valid bitmaps, inverse
maps, GC buckets) that mirrors the core for vectorized scans and is
rebuilt by ``restore()`` rather than snapshotted.
"""

from __future__ import annotations

import copy
from abc import ABC, abstractmethod
from collections import OrderedDict, deque
from typing import Sequence

import numpy as np

from repro.errors import AddressError, FTLError
from repro.flashsim.chip import ERASED, FlashChip
from repro.flashsim.geometry import Geometry
from repro.flashsim.timing import CostAccumulator

#: immutable leaf types the snapshot fast copy passes through unchanged
_SCALAR_TYPES = (int, float, complex, bool, str, bytes, frozenset, type(None))


def _copy_value(value, memo: dict):
    """Type-aware fast copy of one snapshot value.

    ndarrays copy in C, containers of scalars rebuild shallowly, and
    anything holding real objects falls back to :func:`copy.deepcopy`
    *with a shared memo*, so identity sharing between attributes (e.g.
    the hybrid FTL's pending-merge deque and its by-logical-block index
    holding the same ``_LogBlock`` objects) survives the copy.
    """
    if isinstance(value, np.ndarray):
        return value.copy()
    if isinstance(value, _SCALAR_TYPES):
        return value
    if isinstance(value, (deque, list, tuple, set)):
        if all(isinstance(item, _SCALAR_TYPES) for item in value):
            return type(value)(value)
        return copy.deepcopy(value, memo)
    if isinstance(value, (dict, OrderedDict)):
        if all(isinstance(item, _SCALAR_TYPES) for item in value.values()):
            return type(value)(value)
        return copy.deepcopy(value, memo)
    return copy.deepcopy(value, memo)


def _copy_state(state: dict) -> dict:
    """Fast copy of a whole snapshot dict (one shared deepcopy memo)."""
    memo: dict = {}
    return {name: _copy_value(value, memo) for name, value in state.items()}


class BaseFTL(ABC):
    """Abstract flash translation layer: scalar page operations
    (``read_page`` / ``write_page``), the vectorized batch contract
    (``read_pages`` / ``write_run``, behaviourally identical to the
    scalar loops) and the snapshot/restore protocol.

    Subclasses implement the two data-path operations plus the optional
    background-reclamation hooks used to reproduce the paper's Pause,
    Burst and interference effects (Sections 4.3, 5.2).
    """

    #: Subclasses that override :meth:`read_pages` / :meth:`write_run`
    #: with real array implementations set these; the controller only
    #: builds batch arrays for capable FTLs (for the rest, the default
    #: delegation would just add overhead on top of the scalar loop).
    batch_read_capable = False
    batch_write_capable = False

    #: Names of the mutable attributes that make up a subclass's state.
    #: ``snapshot``/``restore`` deep-copy them *together* in one pass,
    #: which preserves identity sharing between attributes (e.g. the
    #: hybrid FTL's pending-merge deque and its by-logical-block index
    #: hold the same ``_LogBlock`` objects, and must keep doing so after
    #: a restore).
    _STATE_ATTRS: tuple[str, ...] = ()

    def __init__(self, geometry: Geometry, chip: FlashChip) -> None:
        self.geometry = geometry
        self.chip = chip
        #: when False, batch-capable subclasses route ``read_pages`` /
        #: ``write_run`` through the scalar per-page reference path —
        #: the behavioural contract the equivalence suite pins.
        self.batch_enabled = True

    # ------------------------------------------------------------------
    # data path
    # ------------------------------------------------------------------

    @abstractmethod
    def read_page(self, lpage: int, cost: CostAccumulator) -> int:
        """Read the token last written to logical page ``lpage``.

        Returns :data:`~repro.flashsim.chip.ERASED` for never-written
        pages.  Physical reads performed are recorded in ``cost``.
        """

    @abstractmethod
    def write_page(self, lpage: int, token: int, cost: CostAccumulator) -> None:
        """Write ``token`` to logical page ``lpage``.

        All induced physical work — programs, merge copies, erases — is
        recorded in ``cost``.
        """

    def read_pages(
        self,
        lpages: np.ndarray,
        cost: CostAccumulator,
        *,
        ascending: bool = False,
    ) -> np.ndarray:
        """Read a batch of logical pages, returning their tokens.

        The vectorized counterpart of :meth:`read_page`: same tokens,
        same recorded cost.  Default: page-by-page reference loop;
        batch-capable FTLs override it with array operations.
        ``ascending`` promises strictly increasing lpages (bounds checks
        then only need the endpoints).
        """
        out = np.empty(len(lpages), dtype=np.int64)
        for i, lpage in enumerate(lpages):
            out[i] = self.read_page(int(lpage), cost)
        return out

    def write_pages(
        self, items: "Sequence[tuple[int, int]]", cost: CostAccumulator
    ) -> None:
        """Write a batch of ``(lpage, token)`` pairs.

        The batch corresponds to one host IO or one cache destage group,
        so FTLs that classify write *runs* (sequential stream vs random,
        as 2008-era hybrid controllers did) can see whole runs instead
        of single pages.  Default: page-by-page.
        """
        for lpage, token in items:
            self.write_page(lpage, token, cost)

    def write_run(
        self,
        lpages: np.ndarray,
        tokens: np.ndarray,
        cost: CostAccumulator,
        *,
        ascending: bool = False,
    ) -> None:
        """Vectorized :meth:`write_pages` contract: parallel arrays.

        Must be behaviourally identical to the pair-list form — the
        default materialises the pairs and delegates, so FTLs that
        classify runs (hybrid) or batch internally (page map) both see
        their usual entry point.  ``ascending`` promises the caller's
        lpages are strictly increasing and its tokens non-negative (the
        controller's always are), letting implementations skip
        distinctness/bounds/validity scans.

        This behavioural contract is also what the closed-form kernels
        in :mod:`repro.flashsim.analytic` rely on: they either replay
        an FTL's reference loop exactly (page-map GC epochs, block-map
        windows) or decline with state untouched, so any FTL whose
        write path diverges from its own scalar loop breaks the
        kernels' bit-identity proof, not just this method's contract.
        """
        self.write_pages(
            list(zip((int(p) for p in lpages), (int(t) for t in tokens))), cost
        )

    def note_io_boundary(self, end_byte: int, cost: CostAccumulator) -> None:
        """Hook called by the controller after each host *write* IO.

        Cheap controllers with no RAM to keep write state across commands
        commit (close) their replacement block unless the IO ended on an
        internal commit boundary — the physical cause of the strikingly
        expensive small sequential writes of Figure 7.  Default: no-op.
        """

    # ------------------------------------------------------------------
    # background reclamation (default: none)
    # ------------------------------------------------------------------

    def background_work_pending(self) -> bool:
        """Whether deferred reclamation work exists (merges, GC)."""
        return False

    def do_background_unit(self) -> CostAccumulator | None:
        """Perform one unit of deferred work; return its cost, or None.

        The device layer converts the returned cost into simulated time
        and schedules it into idle gaps between host IOs.
        """
        return None

    def drain_background(self) -> CostAccumulator:
        """Run all pending background work to completion (between runs)."""
        total = CostAccumulator()
        while self.background_work_pending():
            unit = self.do_background_unit()
            if unit is None:
                break
            total.add(unit)
        return total

    def quiesce(self) -> CostAccumulator:
        """Resolve *all* deferred work, regardless of the background
        configuration (tests and power-down modelling).  Default: just
        the background queue."""
        return self.drain_background()

    # ------------------------------------------------------------------
    # snapshot / restore
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """Deep copy of the FTL's *authoritative* state (mapping tables,
        free pool, open logs, pending reclamation, counters).

        Derived structures — the free/valid bitmaps, inverse maps and
        GC buckets mirroring the core — are deliberately excluded; each
        family's :meth:`restore` rebuilds them, keeping snapshots small.
        The chip is snapshot separately by the device; the FTL keeps
        referring to the same :class:`FlashChip` object across restores.
        """
        if not self._STATE_ATTRS:
            raise FTLError(
                f"{type(self).__name__} declares no _STATE_ATTRS; it cannot "
                "participate in the snapshot/restore protocol"
            )
        return _copy_state(
            {name: getattr(self, name) for name in self._STATE_ATTRS}
        )

    def restore(self, state: dict) -> None:
        """Reset the FTL to a :meth:`snapshot`.

        The state is copied again on the way in, so one snapshot can be
        restored any number of times without aliasing live structures.
        """
        for name, value in _copy_state(state).items():
            setattr(self, name, value)

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------

    def metrics(self) -> dict[str, float]:
        """Cumulative reclamation counters as a flat ``name -> value`` map.

        Sampled by :meth:`FlashDevice.metrics` (under an ``ftl.`` prefix)
        at run and cell boundaries; subclasses expose whatever makes
        their reclamation behaviour interpretable (GC victims collected,
        merges by kind, copy volume).  Default: nothing.
        """
        return {}

    # ------------------------------------------------------------------
    # shared helpers / invariants
    # ------------------------------------------------------------------

    def _check_lpage(self, lpage: int) -> None:
        if not 0 <= lpage < self.geometry.logical_pages:
            raise AddressError(
                f"logical page {lpage} out of range 0..{self.geometry.logical_pages - 1}"
            )

    @abstractmethod
    def free_blocks(self) -> int:
        """Number of erased, unassigned physical blocks."""

    @abstractmethod
    def check_invariants(self) -> None:
        """Raise :class:`~repro.errors.FTLError` on internal inconsistency.

        Called by tests after arbitrary operation sequences; must verify
        block conservation and map consistency.
        """

    # convenience used by tests and the device shadow check

    def read_token_quiet(self, lpage: int) -> int:
        """Read a logical page without recording any cost (test helper)."""
        scratch = CostAccumulator()
        return self.read_page(lpage, scratch)


__all__ = ["BaseFTL", "ERASED"]
