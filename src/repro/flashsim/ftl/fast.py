"""FAST-style FTL: fully-shared random log blocks.

The fourth design point of the 2008 FTL spectrum (Lee et al.'s FAST,
contemporary with the paper): instead of dedicating a log block to one
logical block (BAST, :mod:`~repro.flashsim.ftl.hybrid`), all random
writes share a ring of log blocks, appended strictly in arrival order.
One dedicated sequential log absorbs stream writes (switch-mergeable).

Consequences — measurably different from BAST and therefore an
interesting ablation subject:

* random writes are absorbed at *volume* cost: a shared log fills after
  ``pages_per_block`` writes no matter how scattered they are, so four
  4 KiB random writes really do cost about one 16 KiB one (the paper's
  Figure 6 observation, which per-block logs cannot produce);
* the price appears at reclamation: merging a victim log requires a
  **full merge of every logical block with pages in it** — scattered
  writes inflate the distinct-block count, focused writes keep it low,
  which yields the Locality effect as a *gradual* curve.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.errors import FTLError, OutOfSpaceError
from repro.flashsim.chip import ERASED, FlashChip
from repro.flashsim.ftl.base import BaseFTL
from repro.flashsim.bitmap import mask_from_indices
from repro.flashsim.ftl.hybrid import FILLER_TOKEN
from repro.flashsim.geometry import Geometry
from repro.flashsim.timing import CostAccumulator


@dataclass(frozen=True)
class FastConfig:
    """Tuning of a :class:`FastFTL`.

    ``shared_log_blocks`` is the random-log ring size; the sequential
    log is always exactly one block (as in the original FAST design).
    """

    shared_log_blocks: int = 6

    def __post_init__(self) -> None:
        if self.shared_log_blocks < 2:
            raise FTLError("the shared ring needs at least two log blocks")


class _SharedLog:
    """One shared log block: arrival-ordered pages of any logical block.

    ``lpage_of`` is the dense liveness map: position ``p`` holds the
    logical page whose *newest* copy lives at that position, or -1 once
    a later write supersedes it.  ``lpage_of >= 0`` is the log's live
    bitmap — reclamation derives the victim's distinct logical blocks
    from it with one vectorized scan instead of iterating a set.
    """

    __slots__ = ("pblock", "next_pos", "lpage_of")

    def __init__(self, pblock: int, pages_per_block: int) -> None:
        self.pblock = pblock
        self.next_pos = 0
        self.lpage_of = np.full(pages_per_block, -1, dtype=np.int64)


class _SeqLog:
    """The single sequential log block (offset == position)."""

    __slots__ = ("lblock", "pblock", "next_pos")

    def __init__(self, lblock: int, pblock: int) -> None:
        self.lblock = lblock
        self.pblock = pblock
        self.next_pos = 0


class FastFTL(BaseFTL):
    """Shared random logs + one sequential log (FAST)."""

    _STATE_ATTRS = (
        "_data_map",
        "_free",
        "_shared_map",
        "_ring",
        "_current",
        "_seq",
        "_reclaiming",
        "merge_stats",
    )

    def __init__(
        self,
        geometry: Geometry,
        chip: FlashChip,
        config: FastConfig | None = None,
    ) -> None:
        super().__init__(geometry, chip)
        self.config = config or FastConfig()
        # ring + seq log + merge-target reserve with slack so that a
        # reclamation pass never exhausts the pool mid-merge
        min_spare = self.config.shared_log_blocks + 1 + 4
        if geometry.spare_blocks < min_spare:
            raise FTLError(
                f"geometry provides {geometry.spare_blocks} spare blocks but "
                f"the FAST FTL needs at least {min_spare}"
            )
        self._data_map = np.full(geometry.logical_blocks, -1, dtype=np.int64)
        self._free: deque[int] = deque(range(geometry.physical_blocks))
        # free-pool bitmap mirroring the queue (derived, not snapshotted)
        self._free_map = np.ones(geometry.physical_blocks, dtype=bool)
        #: lpage -> (shared log, position) of the newest logged copy
        self._shared_map: dict[int, tuple[_SharedLog, int]] = {}
        self._ring: deque[_SharedLog] = deque()
        self._current: _SharedLog | None = None
        self._seq: _SeqLog | None = None
        self._reclaiming = False
        self.merge_stats = {"switch": 0, "full": 0, "log-reclaims": 0}

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------

    def read_page(self, lpage: int, cost: CostAccumulator) -> int:
        """See :meth:`BaseFTL.read_page`: shared map, then seq log, then data."""
        self._check_lpage(lpage)
        entry = self._shared_map.get(lpage)
        if entry is not None:
            log, position = entry
            cost.page_reads += 1
            return self._decode(self.chip.read(log.pblock, position))
        lblock, offset = divmod(lpage, self.geometry.pages_per_block)
        if self._seq is not None and self._seq.lblock == lblock:
            if offset < self._seq.next_pos:
                cost.page_reads += 1
                return self._decode(self.chip.read(self._seq.pblock, offset))
        data = int(self._data_map[lblock])
        if data < 0 or offset >= self.chip.write_point(data):
            return ERASED
        cost.page_reads += 1
        return self._decode(self.chip.read(data, offset))

    @staticmethod
    def _decode(token: int) -> int:
        return ERASED if token == FILLER_TOKEN else token

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------

    def write_page(
        self,
        lpage: int,
        token: int,
        cost: CostAccumulator,
        seq_hint: bool | None = None,
    ) -> None:
        """See :meth:`BaseFTL.write_page`: seq log for block starts, shared ring otherwise."""
        self._check_lpage(lpage)
        if token <= FILLER_TOKEN:
            raise FTLError(f"host tokens must be > {FILLER_TOKEN}, got {token}")
        lblock, offset = divmod(lpage, self.geometry.pages_per_block)
        # FAST routes by offset: a block-start write goes to (and
        # claims) the single sequential log; anything else is random.
        if self._seq is not None and self._seq.lblock == lblock:
            if offset == self._seq.next_pos:
                self._append_seq(lpage, token, cost)
                return
            # the stream broke: the partial seq log is folded into the
            # random path by merging its block now
            self._close_seq(cost)
        if offset == 0:
            self._open_seq(lblock, cost)
            self._append_seq(lpage, token, cost)
            return
        self._append_shared(lpage, token, cost)

    # -- sequential log -----------------------------------------------

    def _open_seq(self, lblock: int, cost: CostAccumulator) -> None:
        if self._seq is not None:
            self._close_seq(cost)
        self._seq = _SeqLog(lblock, self._take_free(cost))

    def _append_seq(self, lpage: int, token: int, cost: CostAccumulator) -> None:
        seq = self._seq
        assert seq is not None
        self.chip.program(seq.pblock, seq.next_pos, token)
        cost.page_programs += 1
        seq.next_pos += 1
        # the logged copy supersedes any shared entry for this page
        self._drop_shared_entry(lpage)
        if seq.next_pos == self.geometry.pages_per_block:
            self._switch_seq(cost)

    def _switch_seq(self, cost: CostAccumulator) -> None:
        """The sequential log filled completely: swap it in."""
        seq = self._seq
        assert seq is not None
        sub = cost.begin_scope()
        old = int(self._data_map[seq.lblock])
        self._data_map[seq.lblock] = seq.pblock
        if old >= 0:
            self.chip.erase(old)
            sub.block_erases += 1
            self._free_put(old)
        self._seq = None
        self.merge_stats["switch"] += 1
        sub.note("switch-merge")
        cost.end_scope("merge", sub)

    def _close_seq(self, cost: CostAccumulator) -> None:
        """A partial sequential log must be resolved: merge its block."""
        seq = self._seq
        assert seq is not None
        self._seq = None
        sub = cost.begin_scope()
        self._merge_block(seq.lblock, seq_log=seq, cost=sub)
        self.chip.erase(seq.pblock)
        sub.block_erases += 1
        self._free_put(seq.pblock)
        cost.end_scope("merge", sub)

    # -- shared ring ----------------------------------------------------

    def _append_shared(self, lpage: int, token: int, cost: CostAccumulator) -> None:
        if self._current is None or self._current.next_pos == self.geometry.pages_per_block:
            if len(self._ring) >= self.config.shared_log_blocks:
                self._reclaim_oldest(cost)
            log = _SharedLog(self._take_free(cost), self.geometry.pages_per_block)
            self._ring.append(log)
            self._current = log
        log = self._current
        self.chip.program(log.pblock, log.next_pos, token)
        cost.page_programs += 1
        self._drop_shared_entry(lpage)
        self._shared_map[lpage] = (log, log.next_pos)
        log.lpage_of[log.next_pos] = lpage
        log.next_pos += 1

    def _drop_shared_entry(self, lpage: int) -> None:
        entry = self._shared_map.pop(lpage, None)
        if entry is not None:
            log, position = entry
            log.lpage_of[position] = -1

    def _reclaim_oldest(self, cost: CostAccumulator) -> None:
        """FAST's reclamation: fully merge every logical block that
        still has live pages in the oldest shared log, then erase it."""
        if self._reclaiming:
            raise FTLError("re-entrant shared-log reclamation")
        self._reclaiming = True
        try:
            self._reclaim_oldest_locked(cost)
        finally:
            self._reclaiming = False

    def _reclaim_oldest_locked(self, cost: CostAccumulator) -> None:
        victim = self._ring.popleft()
        if victim is self._current:
            self._current = None
        ppb = self.geometry.pages_per_block
        live = victim.lpage_of[victim.lpage_of >= 0]
        blocks = np.unique(live // ppb)  # distinct lblocks, ascending
        sub = cost.begin_scope()
        for lblock in blocks.tolist():
            self._merge_block(int(lblock), seq_log=None, cost=sub)
        if bool((victim.lpage_of >= 0).any()):
            raise FTLError("shared log still live after reclaiming its blocks")
        self.chip.erase(victim.pblock)
        sub.block_erases += 1
        self._free_put(victim.pblock)
        self.merge_stats["log-reclaims"] += 1
        sub.note("log-reclaim")
        cost.end_scope("merge", sub)

    # -- merging ---------------------------------------------------------

    def _merge_block(
        self,
        lblock: int,
        seq_log: _SeqLog | None,
        cost: CostAccumulator,
    ) -> None:
        """Full merge: consolidate ``lblock``'s newest content (data
        block + shared logs + optional partial seq log) into a fresh
        block, dropping every shared entry of the block."""
        ppb = self.geometry.pages_per_block
        sub = cost.begin_scope()
        target = self._take_free(sub)
        old = int(self._data_map[lblock])
        base = lblock * ppb
        highest = -1
        for offset in range(ppb):
            if (base + offset) in self._shared_map:
                highest = offset
            elif seq_log is not None and offset < seq_log.next_pos:
                highest = offset
            elif old >= 0 and offset < self.chip.write_point(old):
                highest = offset
        for offset in range(highest + 1):
            lpage = base + offset
            entry = self._shared_map.get(lpage)
            if entry is not None:
                log, position = entry
                token = self.chip.read(log.pblock, position)
                sub.copy_reads += 1
            elif seq_log is not None and offset < seq_log.next_pos:
                token = self.chip.read(seq_log.pblock, offset)
                sub.copy_reads += 1
            elif old >= 0 and offset < self.chip.write_point(old):
                token = self.chip.read(old, offset)
                sub.copy_reads += 1
            else:
                token = ERASED
            self.chip.program(
                target, offset, token if token != ERASED else FILLER_TOKEN
            )
            sub.copy_programs += 1
            self._drop_shared_entry(lpage)
        self._data_map[lblock] = target
        if old >= 0:
            self.chip.erase(old)
            sub.block_erases += 1
            self._free_put(old)
        self.merge_stats["full"] += 1
        sub.note("full-merge")
        cost.end_scope("merge", sub)

    # -- allocation -------------------------------------------------------

    def _take_free(self, cost: CostAccumulator) -> int:
        while len(self._free) < 3 and self._ring and not self._reclaiming:
            self._reclaim_oldest(cost)
        if not self._free:
            raise OutOfSpaceError("FAST FTL exhausted all free blocks")
        return self._free_pop()

    def _free_pop(self) -> int:
        """Take the oldest free block, keeping the bitmap in sync."""
        block = self._free.popleft()
        self._free_map[block] = False
        return block

    def _free_put(self, block: int) -> None:
        """Return an erased block to the pool, keeping the bitmap in sync."""
        self._free_map[block] = True
        self._free.append(block)

    # ------------------------------------------------------------------
    # introspection & invariants
    # ------------------------------------------------------------------

    def restore(self, state: dict) -> None:
        """See :meth:`BaseFTL.restore`; rebuilds the free bitmap."""
        super().restore(state)
        self._free_map = mask_from_indices(
            self._free, self.geometry.physical_blocks
        )

    def metrics(self) -> dict[str, float]:
        """See :meth:`BaseFTL.metrics`: switch merges, full merges, ring reclaims."""
        return {
            "switch_merges": float(self.merge_stats["switch"]),
            "full_merges": float(self.merge_stats["full"]),
            "log_reclaims": float(self.merge_stats["log-reclaims"]),
        }

    def free_blocks(self) -> int:
        """Number of erased, unassigned physical blocks."""
        return len(self._free)

    def quiesce(self) -> CostAccumulator:
        """Reclaim the whole shared ring and resolve the sequential log."""
        total = CostAccumulator()
        while self._ring:
            self._reclaim_oldest(total)
        if self._seq is not None:
            self._close_seq(total)
        return total

    def check_invariants(self) -> None:
        """Verify block conservation and shared-map/live-set consistency."""
        roles: dict[int, str] = {}

        def claim(block: int, role: str) -> None:
            if block in roles:
                raise FTLError(
                    f"physical block {block} has two roles: {roles[block]} and {role}"
                )
            roles[block] = role

        free_idx = np.fromiter(self._free, dtype=np.int64, count=len(self._free))
        if not np.array_equal(np.sort(free_idx), np.flatnonzero(self._free_map)):
            raise FTLError("free queue out of sync with the free bitmap")
        not_erased = self._free_map & ~self.chip.erased_mask()
        if not_erased.any():
            block = int(np.flatnonzero(not_erased)[0])
            raise FTLError(f"free block {block} is not erased")
        for block in self._free:
            claim(block, "free")
        for log in self._ring:
            claim(log.pblock, "shared-log")
        if self._seq is not None:
            claim(self._seq.pblock, f"seq-log[{self._seq.lblock}]")
        for lblock, pblock in enumerate(self._data_map):
            if pblock >= 0:
                claim(int(pblock), f"data[{lblock}]")
        if len(roles) != self.geometry.physical_blocks:
            raise FTLError(
                f"block conservation violated: {len(roles)} of "
                f"{self.geometry.physical_blocks} accounted for"
            )
        ring_logs = set(map(id, self._ring))
        for lpage, (log, position) in self._shared_map.items():
            if id(log) not in ring_logs:
                raise FTLError(f"shared entry for {lpage} points outside the ring")
            if int(log.lpage_of[position]) != lpage:
                raise FTLError(
                    f"shared entry for {lpage} not live at its log position"
                )
            if position >= log.next_pos:
                raise FTLError(f"shared entry for {lpage} beyond the log write point")
        for log in self._ring:
            if bool((log.lpage_of[log.next_pos :] >= 0).any()):
                raise FTLError("live positions beyond a shared log's write point")
            for position in np.flatnonzero(log.lpage_of >= 0).tolist():
                lpage = int(log.lpage_of[position])
                entry = self._shared_map.get(lpage)
                if entry is None or entry[0] is not log or entry[1] != position:
                    raise FTLError(f"live page {lpage} not mapped to its log")
