"""Wear statistics and device-lifetime projection.

The paper's footnote 1 rules *aging* out of the benchmark ("reaching
the erase limit, with wear leveling, may take years") — which is
exactly what a simulator is free to explore.  This module turns the
chip's per-block erase counters into wear-quality indicators and
projects device lifetime under a measured workload.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AnalysisError
from repro.flashsim.device import FlashDevice
from repro.units import SEC


@dataclass(frozen=True)
class WearReport:
    """Wear-levelling quality of a device at a point in time."""

    total_erases: int
    min_erases: int
    max_erases: int
    mean_erases: float
    std_erases: float
    gini: float
    endurance: int
    worst_block_life_used: float  # fraction of the worst block's life spent

    @property
    def evenness(self) -> float:
        """1.0 = perfectly even wear; approaches 0 as wear concentrates."""
        return 1.0 - self.gini

    def summary(self) -> str:
        """One-line description of the wear state."""
        return (
            f"erases total={self.total_erases} "
            f"min/mean/max={self.min_erases}/{self.mean_erases:.1f}/{self.max_erases} "
            f"gini={self.gini:.3f} "
            f"worst-block life used={100 * self.worst_block_life_used:.2f}%"
        )


def _gini(values: np.ndarray) -> float:
    """Gini coefficient of a non-negative sample (0 = perfectly even)."""
    if values.size == 0:
        return 0.0
    total = float(values.sum())
    if total == 0:
        return 0.0
    sorted_values = np.sort(values.astype(float))
    ranks = np.arange(1, sorted_values.size + 1)
    return float(
        (2.0 * (ranks * sorted_values).sum()) / (sorted_values.size * total)
        - (sorted_values.size + 1.0) / sorted_values.size
    )


def wear_report(device: FlashDevice) -> WearReport:
    """Snapshot the wear distribution of a device."""
    counts = device.chip.erase_counts()
    endurance = device.chip.endurance
    return WearReport(
        total_erases=int(counts.sum()),
        min_erases=int(counts.min()),
        max_erases=int(counts.max()),
        mean_erases=float(counts.mean()),
        std_erases=float(counts.std()),
        gini=_gini(counts),
        endurance=endurance,
        worst_block_life_used=float(counts.max()) / endurance,
    )


@dataclass(frozen=True)
class LifetimeProjection:
    """Extrapolated device lifetime under a measured workload.

    Two horizons: *wall-clock* (``projected_seconds`` — how long the
    device survives running this workload flat out; fast devices erode
    faster per second) and *volume* (``projected_bytes`` — how much host
    data can still be written; this is the speed-independent measure of
    how wear-friendly a workload is).
    """

    erases_per_second: float
    worst_block_erases_per_second: float
    projected_seconds: float
    bytes_written: int
    write_amplification: float
    projected_bytes: float = float("inf")

    @property
    def projected_days(self) -> float:
        """Wall-clock lifetime under the measured workload, in days."""
        return self.projected_seconds / 86_400.0

    def summary(self) -> str:
        """One-line description of the projection."""
        return (
            f"WA={self.write_amplification:.2f}, "
            f"{self.erases_per_second:.2f} erases/s "
            f"-> projected life {self.projected_days:.1f} days "
            "under this workload"
        )


def project_lifetime(
    device: FlashDevice,
    before: WearReport,
    after: WearReport,
    elapsed_usec: float,
    bytes_written: int,
) -> LifetimeProjection:
    """Project lifetime from the wear delta of a measured interval.

    The device dies when its most-worn block exhausts its endurance
    (bad-block sparing is second-order and ignored here); the worst
    block's observed erase rate drives the projection.
    """
    if elapsed_usec <= 0:
        raise AnalysisError("lifetime projection needs a positive interval")
    delta_total = after.total_erases - before.total_erases
    delta_worst = after.max_erases - before.max_erases
    if delta_total < 0 or delta_worst < 0:
        raise AnalysisError("wear counters cannot decrease")
    seconds = elapsed_usec / SEC
    worst_rate = delta_worst / seconds if seconds > 0 else 0.0
    remaining = after.endurance - after.max_erases
    projected = remaining / worst_rate if worst_rate > 0 else float("inf")
    geometry = device.geometry
    physical_bytes = delta_total * geometry.block_size
    amplification = physical_bytes / bytes_written if bytes_written else 0.0
    worst_per_byte = delta_worst / bytes_written if bytes_written else 0.0
    projected_bytes = (
        remaining / worst_per_byte if worst_per_byte > 0 else float("inf")
    )
    return LifetimeProjection(
        erases_per_second=delta_total / seconds,
        worst_block_erases_per_second=worst_rate,
        projected_seconds=projected,
        bytes_written=bytes_written,
        write_amplification=amplification,
        projected_bytes=projected_bytes,
    )
