"""The device flight recorder: per-IO latency attribution.

uFLIP *infers* FTL mechanics — startup phases, merge costs, pause
absorption — from black-box response-time curves (Sections 3-5).  The
simulator knows the ground truth and, until now, threw it away: only
sparse note strings survived into the trace.  This module keeps it.

A :class:`FlightRecorder` is an opt-in, bounded ring buffer attached to
a :class:`~repro.flashsim.device.FlashDevice`.  While attached, every
dispatched IO is decomposed into named latency components:

========================  ============================================
``wait``                  queue wait (start − submission): device or
                          channel contention
``controller``            fixed controller overhead + map-miss
                          penalties + miscellaneous extra charges
``transfer``              bus transfer of the host payload
``read``                  chip page reads serving host data
``program``               chip page programs serving host data
``gc``                    garbage-collection relocation (victim copies
                          + erases), plus any unscoped internal copies
``merge``                 log-block management: switch/partial/full
                          merges, replacement-block finalisation,
                          log reclamation, map flushes
``wear``                  wear-levelling relocations
``cache``                 write-back cache destage/flush work (net of
                          the nested FTL scopes it triggers)
``interference``          read slowdown while background reclamation
                          is pending (Figure 5's lingering effect)
``noise``                 measurement-jitter delta (can be negative)
========================  ============================================

The components are computed in float microseconds mirroring the
device's dispatch arithmetic — their sum differs from the recorded
response time only by float associativity — and then quantised to
integer microseconds by largest-remainder apportionment against
``round(response)``, so the hard invariant holds exactly:

    ``sum(components) == round(completed_at - submitted_at)``

for every IO, in every pipeline (sync/async, columnar/legacy,
scalar/batch).  Provenance comes from the
:meth:`~repro.flashsim.timing.CostAccumulator.begin_scope` ledger the
FTLs, controller and cache populate; work no scope claims falls into
the host-level components, so the invariant is structural — mislabeled
work can never unbalance it.

The recorder itself is observability, not device state: it is excluded
from snapshots and fingerprints, and a device with a recorder attached
evolves bit-identically to one without.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Iterable

from repro.flashsim.timing import CostAccumulator, TimingSpec

#: attribution component names, in column order
COMPONENTS = (
    "wait",
    "controller",
    "transfer",
    "read",
    "program",
    "gc",
    "merge",
    "wear",
    "cache",
    "interference",
    "noise",
)

#: components fed by scope tags (everything else derives from host work)
SCOPE_COMPONENTS = frozenset(("gc", "merge", "wear", "cache"))

_COMPONENT_INDEX = {name: i for i, name in enumerate(COMPONENTS)}

# counter vector layout used by the partition walk
_COUNTERS = (
    "page_reads",
    "page_programs",
    "copy_reads",
    "copy_programs",
    "block_erases",
    "bytes_transferred",
    "map_misses",
    "extra_usec",
)


def _counter_vector(cost: CostAccumulator) -> list[float]:
    return [
        cost.page_reads,
        cost.page_programs,
        cost.copy_reads,
        cost.copy_programs,
        cost.block_erases,
        cost.bytes_transferred,
        cost.map_misses,
        cost.extra_usec,
    ]


def _vector_cost(timing: TimingSpec, vec: list[float]) -> float:
    """Service time of one exclusive counter partition."""
    reads, programs, c_reads, c_programs, erases, nbytes, misses, extra = vec
    return (
        timing.read_pages(reads)
        + timing.program_pages(programs)
        + timing.copy_pages(c_reads, c_programs)
        + timing.erase_blocks(erases)
        + timing.transfer(nbytes)
        + misses * timing.map_miss
        + extra
    )


def _partition(cost: CostAccumulator) -> tuple[list[float], dict[str, list[float]]]:
    """Split ``cost``'s counters into host-exclusive + per-tag scoped.

    A scope's counters include everything its nested scopes tallied
    (``end_scope`` folds children in), so each node's *exclusive* share
    is its vector minus its direct children's totals — every physical
    count is attributed exactly once.  Unknown tags conservatively land
    in ``gc`` rather than breaking the balance.
    """
    by_tag: dict[str, list[float]] = {
        name: [0.0] * len(_COUNTERS) for name in SCOPE_COMPONENTS
    }

    def walk(node: CostAccumulator) -> list[float]:
        exclusive = _counter_vector(node)
        for tag, sub in node.scopes or ():
            sub_total = _counter_vector(sub)
            sub_exclusive = walk(sub)
            bucket = by_tag[tag if tag in SCOPE_COMPONENTS else "gc"]
            for i in range(len(_COUNTERS)):
                bucket[i] += sub_exclusive[i]
                exclusive[i] -= sub_total[i]
        return exclusive

    host = walk(cost)
    return host, by_tag


def attribute_io(
    timing: TimingSpec,
    cost: CostAccumulator,
    *,
    wait: float,
    service_base: float,
    service_scaled: float,
    service_final: float,
    response: float,
    channel: int,
) -> tuple[int, ...]:
    """Decompose one IO's response time; returns ``(channel, *usec)``.

    ``service_base`` is the unscaled cost total, ``service_scaled`` the
    value after read interference, ``service_final`` after noise — the
    exact floats the device dispatched with, so the interference and
    noise deltas are reconstruction-free.  The integer components are
    apportioned (largest remainder) against ``round(response)`` and sum
    to it exactly.
    """
    host, by_tag = _partition(cost)
    components = [0.0] * len(COMPONENTS)
    components[_COMPONENT_INDEX["wait"]] = wait
    # host-level split of service_base
    reads, programs, c_reads, c_programs, erases, nbytes, misses, extra = host
    components[_COMPONENT_INDEX["controller"]] = (
        timing.controller_overhead + misses * timing.map_miss + extra
    )
    components[_COMPONENT_INDEX["transfer"]] = timing.transfer(nbytes)
    components[_COMPONENT_INDEX["read"]] = timing.read_pages(reads)
    components[_COMPONENT_INDEX["program"]] = timing.program_pages(programs)
    # unscoped internal copies/erases are reclamation work by definition
    components[_COMPONENT_INDEX["gc"]] = timing.copy_pages(
        c_reads, c_programs
    ) + timing.erase_blocks(erases)
    for tag, vec in by_tag.items():
        components[_COMPONENT_INDEX[tag]] += _vector_cost(timing, vec)
    components[_COMPONENT_INDEX["interference"]] = service_scaled - service_base
    components[_COMPONENT_INDEX["noise"]] = service_final - service_scaled
    return (channel, *_apportion(components, round(response)))


def unattributed_usec(
    timing: TimingSpec,
    cost: CostAccumulator,
    *,
    wait: float,
    service_base: float,
    service_scaled: float,
    service_final: float,
    response: float,
) -> float:
    """Float residual of the decomposition before quantisation.

    The true exactness oracle: anything beyond float associativity here
    means a cost path escaped the component model.  Exposed for the
    attribution test suite; ~0 (sub-nanosecond) by construction.
    """
    host, by_tag = _partition(cost)
    total = wait + _vector_cost(timing, host) + timing.controller_overhead
    for vec in by_tag.values():
        total += _vector_cost(timing, vec)
    total += (service_scaled - service_base) + (service_final - service_scaled)
    return response - total


def _apportion(components: list[float], target: int) -> tuple[int, ...]:
    """Integer µs per component, summing exactly to ``target``.

    Largest-remainder: floor everything, then hand the deficit out one
    µs at a time to the largest fractional remainders (ties to the
    lower component index, so the result is deterministic).  Negative
    components (the noise delta) floor like any other.  A deficit
    outside ``[0, n]`` — impossible unless a float residual exceeds the
    component count — is dumped on the largest-magnitude component so
    the invariant still holds.
    """
    floors = [math.floor(c) for c in components]
    deficit = target - sum(floors)
    n = len(components)
    if 0 <= deficit <= n:
        order = sorted(
            range(n), key=lambda i: (floors[i] - components[i], i)
        )
        for i in order[:deficit]:
            floors[i] += 1
    else:  # pragma: no cover - defensive only
        bulk = max(range(n), key=lambda i: abs(components[i]))
        floors[bulk] += deficit
    return tuple(floors)


@dataclass(slots=True, frozen=True)
class IOEvent:
    """One decomposed IO in the flight-recorder ring."""

    lba: int
    size: int
    write: bool
    submitted_at: float
    started_at: float
    completed_at: float
    channel: int
    #: integer µs per :data:`COMPONENTS` entry; sums to the response time
    components: tuple[int, ...]

    @property
    def response_usec(self) -> float:
        """Response time (completion − submission) in microseconds."""
        return self.completed_at - self.submitted_at

    def component(self, name: str) -> int:
        """One named component's share in integer microseconds."""
        return self.components[_COMPONENT_INDEX[name]]

    def as_dict(self) -> dict:
        """JSON-friendly form (Chrome trace args, reports)."""
        payload = {
            "lba": self.lba,
            "size": self.size,
            "mode": "write" if self.write else "read",
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "completed_at": self.completed_at,
            "channel": self.channel,
        }
        payload.update(zip(COMPONENTS, self.components))
        return payload


class FlightRecorder:
    """A bounded ring of decomposed IO events.

    Attach with :meth:`FlashDevice.attach_recorder`; while attached the
    device computes an exact latency attribution for every IO, pushes
    an :class:`IOEvent` here and stamps the decomposition onto the IO's
    :class:`~repro.flashsim.timing.CostAccumulator`, from where the
    columnar trace picks it up.  The ring is bounded (``capacity``
    events; the oldest drop first) so long campaigns cannot grow it
    without limit — the per-IO trace columns are the unbounded channel.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("flight recorder capacity must be >= 1")
        self.capacity = capacity
        self._events: deque[IOEvent] = deque(maxlen=capacity)
        self.recorded = 0

    def record(self, event: IOEvent) -> None:
        """Push one decomposed IO (oldest event drops when full)."""
        self._events.append(event)
        self.recorded += 1

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self._events)

    def events(self) -> list[IOEvent]:
        """The retained events, oldest first."""
        return list(self._events)

    @property
    def dropped(self) -> int:
        """Events pushed out of the ring by newer ones."""
        return self.recorded - len(self._events)

    def clear(self) -> None:
        """Empty the ring (counters keep accumulating)."""
        self._events.clear()


def events_from_trace(trace) -> list[IOEvent]:
    """Rebuild flight-recorder events from an attributed trace.

    The trace's attribution columns carry the same decomposition the
    ring held, without the bound — this is how campaign tooling (Chrome
    device lanes, the attribution report) consumes worker-produced
    traces that never shipped a recorder across the process boundary.
    Raises :class:`ValueError` when the trace has no attribution.
    """
    if not trace.has_attribution:
        raise ValueError("trace carries no attribution columns")
    matrix = trace.attribution_matrix()
    events = []
    lbas = trace.column("lba")
    sizes = trace.column("size")
    writes = trace.column("write")
    submitted = trace.column("submitted_at")
    started = trace.column("started_at")
    completed = trace.column("completed_at")
    for i in range(len(trace)):
        row = matrix[i]
        events.append(
            IOEvent(
                lba=int(lbas[i]),
                size=int(sizes[i]),
                write=bool(writes[i]),
                submitted_at=float(submitted[i]),
                started_at=float(started[i]),
                completed_at=float(completed[i]),
                channel=int(row[0]),
                components=tuple(int(v) for v in row[1:]),
            )
        )
    return events


def summarize_components(events: Iterable[IOEvent]) -> dict[str, int]:
    """Total integer µs per component across ``events``."""
    totals = dict.fromkeys(COMPONENTS, 0)
    for event in events:
        for name, value in zip(COMPONENTS, event.components):
            totals[name] += value
    return totals


__all__ = [
    "COMPONENTS",
    "SCOPE_COMPONENTS",
    "FlightRecorder",
    "IOEvent",
    "attribute_io",
    "events_from_trace",
    "summarize_components",
    "unattributed_usec",
]
