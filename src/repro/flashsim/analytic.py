"""Closed-form whole-run kernels (the analytic fast path).

When a run of host IOs provably cannot trigger an FTL state transition —
no garbage collection, no wear move, no background unit, no
read-your-writes failure — every per-IO quantity is a *closed-form*
function of the device state at the start of the run: programs land at
consecutive write points of a known block sequence, RMW edge reads count
mapped pages, service times follow the
:meth:`~repro.flashsim.timing.CostAccumulator.total` formula, and the
completion chain is a prefix sum.  The kernels in this module evaluate
that closed form on numpy columns — one vectorized pass for a whole
window of IOs — then write chip / FTL / controller / device state to
exactly the values the per-IO reference path would have produced.

Discipline (the same provably-equivalent-or-fallback contract as the
page-map GC-headroom fast path in
:meth:`~repro.flashsim.ftl.pagemap.PageMapFTL.write_run`):

* a kernel either proves, *before touching any state*, that the window
  is transition-free and then reproduces the per-IO path **bit for
  bit** — same maps, same counters, same floats in the same operation
  order — or it declines and the caller falls back to the reference
  per-IO loop;
* every decline is counted with a reason in :data:`STATS`, which is
  what the equivalence tests assert on ("the fast path bails out
  exactly when a state transition could occur").

Current coverage:

* **page-map FTL** (the "modern SSD" profile family) — reads of any
  mix, GC-free write windows in fully closed form, and **GC-epoch
  write windows**: a write window that crosses garbage collection
  decomposes into epochs — a run of appends up to free-pool
  exhaustion, then one GC step, repeated.  Tokens, RMW reads, costs
  and the completion chain are still resolved on columns; only the
  block-lifecycle/GC events themselves replay through the real FTL
  methods (the same ``write_page`` / ``_append_run`` calls the
  reference slow loop makes, merged into maximal chunks), so the
  steady-state write regime runs at analytic speed without leaving
  the prove-or-decline contract.
* **block-map FTL** (USB/SD/IDE profile family) — whole-block reads in
  closed form; writes as a per-IO loop whose sequential in-order
  appends collapse to one vectorized program run (finalisation /
  merge boundaries are the epoch edges, replayed through the real
  ``_finalize`` path) and whose irregular IOs replay the reference
  controller write exactly.
* **queued hosts** — homogeneous zero-gap read programs at any queue
  depth evaluate as a vectorized event schedule
  (:func:`run_program_queued`): per-IO services come from the closed
  form, and the depth-d completion chain (channel pick, queue
  occupancy integrals, completion pops) runs as a tight scalar event
  loop instead of the full per-IO dispatch machinery.

Everything else (hybrid/FAST FTL families, caches, fault injectors,
wear levelling, measurement noise) declines up front and runs the
reference path unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from heapq import heappop, heappush
from itertools import islice
from typing import TYPE_CHECKING

import numpy as np

from repro.flashsim.chip import ERASED
from repro.flashsim.ftl.blockmap import BlockMapFTL
from repro.flashsim.ftl.hybrid import FILLER_TOKEN
from repro.flashsim.ftl.pagemap import _ACTIVE, _DATA, PageMapFTL
from repro.flashsim.timing import CostAccumulator

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.core.generator import IOProgram
    from repro.flashsim.device import FlashDevice
    from repro.flashsim.trace import IOTrace

#: master switch; tests flip it off to force the reference path
ENABLED = True


@dataclass
class KernelStats:
    """Hit/decline counters for the analytic kernels (introspection).

    ``declines`` maps a ``"op:reason"`` string (e.g.
    ``"write:gc-headroom"``) to the number of times a kernel refused a
    window for that reason.  The counters are process-global
    observability, not device state: they never affect simulation
    results and are excluded from snapshots and fingerprints.
    """

    write_windows: int = 0
    write_ios: int = 0
    read_windows: int = 0
    read_ios: int = 0
    #: GC-epoch write windows (a subset of ``write_windows``) and the
    #: IOs / garbage collections they absorbed
    epoch_windows: int = 0
    epoch_ios: int = 0
    epoch_collections: int = 0
    #: whole queued programs taken by :func:`run_program_queued`
    queued_windows: int = 0
    queued_ios: int = 0
    declines: dict[str, int] = field(default_factory=dict)

    def decline(self, reason: str) -> None:
        """Count one refused window under ``reason`` (``"op:why"``)."""
        self.declines[reason] = self.declines.get(reason, 0) + 1

    def reset(self) -> None:
        """Zero all counters (test isolation)."""
        self.write_windows = 0
        self.write_ios = 0
        self.read_windows = 0
        self.read_ios = 0
        self.epoch_windows = 0
        self.epoch_ios = 0
        self.epoch_collections = 0
        self.queued_windows = 0
        self.queued_ios = 0
        self.declines = {}

    def counters(self) -> dict[str, int]:
        """Flat ``core.analytic.*`` counter sample (obs mirroring).

        Cumulative process totals, shaped like the per-layer
        ``metrics()`` samplers: hit counters plus one
        ``core.analytic.decline.<op:reason>`` counter per decline
        reason, sorted for a stable layout.
        """
        out = {
            "core.analytic.write_windows": self.write_windows,
            "core.analytic.write_ios": self.write_ios,
            "core.analytic.read_windows": self.read_windows,
            "core.analytic.read_ios": self.read_ios,
            "core.analytic.epoch_windows": self.epoch_windows,
            "core.analytic.epoch_ios": self.epoch_ios,
            "core.analytic.epoch_collections": self.epoch_collections,
            "core.analytic.queued_windows": self.queued_windows,
            "core.analytic.queued_ios": self.queued_ios,
        }
        for reason in sorted(self.declines):
            out[f"core.analytic.decline.{reason}"] = self.declines[reason]
        return out


#: module-global counters (reset freely from tests)
STATS = KernelStats()


def publish_stats(registry, baseline: dict[str, int] | None = None) -> dict[str, int]:
    """Mirror :data:`STATS` into an obs metrics registry.

    :data:`STATS` is process-global and would otherwise be silently
    lost in subprocess dispatch; callers that run kernels under an
    installed registry (cell execution, worker-side state enforcement)
    publish the counters as ``core.analytic.*`` so campaign
    ``--metrics`` aggregates kernel hit rates across all workers.

    ``baseline`` is a previous :meth:`KernelStats.counters` sample (or
    a previous return value of this function); only the delta since it
    is added, so repeated calls never double-count.  Returns the new
    baseline.
    """
    current = STATS.counters()
    for name, value in current.items():
        delta = value - (baseline.get(name, 0) if baseline else 0)
        if delta > 0:
            registry.counter(name).inc(delta)
    return current


def device_decline_reason(device: "FlashDevice") -> str | None:
    """Why this device cannot take the analytic kernels (None = it can).

    These are *configuration* preconditions — properties that cannot
    change mid-run: the FTL family and its batch mode, the RAM cache,
    the flight recorder, measurement noise, fault injection, wear
    levelling and block health.

    Covered families: the page-map FTL (whose kernels reproduce the
    controller *batch* write path, hence the batch-mode requirement)
    and the block-map FTL (whose write kernel replays the scalar
    controller path — the only one that family ever takes — so it
    works in either batch mode).
    """
    ftl = device.ftl
    if isinstance(ftl, PageMapFTL):
        if not (ftl.batch_enabled and device.controller.batch_enabled):
            return "batch-disabled"
    elif not isinstance(ftl, BlockMapFTL):
        return "ftl-family"
    if device.controller.cache is not None:
        return "cache"
    if device.recorder is not None:
        return "recorder"
    if device.noise.jitter:
        return "noise"
    if device.chip.fault_injector is not None:
        return "fault-injector"
    if getattr(ftl.config, "wear_threshold", 0):
        return "wear-levelling"
    if device.chip.good_blocks() != device.geometry.physical_blocks:
        return "bad-blocks"
    return None


def _decline(op: str, reason: str, now: float) -> tuple[int, float]:
    STATS.decline(f"{op}:{reason}")
    return 0, now


def _expand_spans(device, lbas, sizes, expand):
    """Per-IO page spans ``[s_pg, e_pg)``: controller expansion math.

    ``expand`` applies the write path's mapping-unit expansion; reads
    span exactly the touched pages.
    """
    geometry = device.geometry
    page = geometry.page_size
    if expand:
        unit = device.controller.mapping_unit
        exp_start = (lbas // unit) * unit
        exp_end = np.minimum(
            -(-(lbas + sizes) // unit) * unit, geometry.logical_bytes
        )
        s_pg = exp_start // page
        e_pg = -(-exp_end // page)
    else:
        s_pg = lbas // page
        e_pg = (lbas + sizes - 1) // page + 1
    return s_pg, e_pg


def _valid_prefix(device, lbas, sizes):
    """Length of the leading run of in-bounds IOs (the rest would raise
    ``AddressError`` in the reference path, so the kernel stops before
    them and lets the fallback raise)."""
    ok = (sizes > 0) & (lbas >= 0) & (lbas + sizes <= device.geometry.logical_bytes)
    if bool(ok.all()):
        return int(lbas.size)
    return int(np.argmin(ok))


def _map_misses(device, s_pg, e_pg):
    """Per-IO map-miss counts: the controller charges one miss whenever
    an IO's first page is not the previous IO's ``span.stop``."""
    miss = np.empty(s_pg.size, dtype=np.int64)
    last_end = device.controller._last_end_page
    miss[0] = 1 if (last_end is not None and int(s_pg[0]) != last_end) else 0
    if s_pg.size > 1:
        miss[1:] = s_pg[1:] != e_pg[:-1]
    return miss


def _service_times(device, flash, sizes, miss):
    """Per-IO service times in the reference float operation order:
    ``(flash + transfer) + miss*map_miss`` then ``+ controller_overhead``."""
    timing = device.timing
    service = flash + timing.transfer_per_kib * (sizes / 1024.0)
    service = service + miss * timing.map_miss
    service = service + timing.controller_overhead
    return service


def _chain(now, service):
    """Back-to-back completion chain from per-IO services.

    np.add.accumulate is a strict left fold (verified), bit-identical
    to the scalar ``completion = start + service`` chain.
    """
    chain = np.empty(service.size + 1, dtype=np.float64)
    chain[0] = now
    chain[1:] = service
    return np.add.accumulate(chain)[1:]


def _finish_services(device, flash, sizes, miss, now):
    """Service times and the completion chain for one sync window."""
    service = _service_times(device, flash, sizes, miss)
    return service, _chain(now, service)


def _occupy_channels(device, completions):
    """Round-robin channel assignment, matching per-IO ``pick()``.

    At window start every channel horizon is <= ``busy_until`` < every
    window completion, so pick() visits channels in ascending initial
    horizon (lowest index on ties — stable argsort) and then cycles:
    IO *i* lands on ``perm[i % C]``.  Each channel's final horizon is
    the completion of the last IO it served.
    """
    channels = device._channels
    busys = channels._busy
    n_ch = len(busys)
    perm = np.argsort(np.asarray(busys), kind="stable")
    n = completions.size
    for j in range(min(n_ch, n)):
        last = (n - 1) - ((n - 1 - j) % n_ch)
        channels.occupy(int(perm[j]), float(completions[last]))


def _accumulate_busy(device, service):
    """Left-fold the per-IO services into ``stats.busy_usec`` exactly
    as the per-IO ``_account`` calls would."""
    busy = device.stats.busy_usec
    for usec in service.tolist():
        busy += usec
    device.stats.busy_usec = busy


class _WindowTokens:
    """Closed-form token/coverage resolution of one write window.

    Everything here is a pure function of the *pre-window* device state
    — garbage collection preserves both the logical content and the
    mapped-ness of every page, so the resolution holds across GC epochs
    too.  Shared between the GC-free prefix kernel (which also commits
    the maps from these arrays) and the GC-epoch kernel (which replays
    map mutations through the real FTL methods and only needs the
    tokens, per-IO RMW reads and the controller commit)."""

    __slots__ = (
        "offsets", "total_pages", "lpage_flat", "token_flat", "order",
        "lp_sorted", "first_in_group", "last_in_group",
        "init_ppage_sorted", "token_sorted", "use_mint", "total_mints",
        "next0", "group_lpages", "reads_per_io", "prev_occ",
    )


def _resolve_write_tokens(device, lbas, sizes, s_pg, e_pg, n_pg):
    """Flatten a write window into per-page columns and resolve every
    programmed token, RMW edge read and shadow mint in closed form."""
    ftl = device.ftl
    chip = device.chip
    geometry = device.geometry
    n_ios = int(lbas.size)

    # -- flatten the window into per-page columns ---------------------
    page = geometry.page_size
    cov_lo = np.maximum(s_pg, -(-lbas // page))
    cov_hi = np.minimum(e_pg, (lbas + sizes) // page)
    degenerate = cov_lo >= cov_hi
    cov_lo = np.where(degenerate, s_pg, cov_lo)
    cov_hi = np.where(degenerate, s_pg, cov_hi)

    offsets = np.empty(n_ios + 1, dtype=np.int64)
    offsets[0] = 0
    np.cumsum(n_pg, out=offsets[1:])
    total_pages = int(offsets[-1])
    starts_rep = np.repeat(s_pg, n_pg)
    lpage_flat = np.arange(total_pages, dtype=np.int64)
    lpage_flat -= np.repeat(offsets[:-1], n_pg)
    lpage_flat += starts_rep
    covered_flat = (lpage_flat >= np.repeat(cov_lo, n_pg)) & (
        lpage_flat < np.repeat(cov_hi, n_pg)
    )

    # -- resolve tokens: group repeated lpages in flat (= mint) order --
    order = np.argsort(lpage_flat, kind="stable")
    lp_sorted = lpage_flat[order]
    first_in_group = np.empty(total_pages, dtype=bool)
    first_in_group[0] = True
    first_in_group[1:] = lp_sorted[1:] != lp_sorted[:-1]
    last_in_group = np.empty(total_pages, dtype=bool)
    last_in_group[-1] = True
    last_in_group[:-1] = first_in_group[1:]

    init_ppage_sorted = ftl._l2p[lp_sorted]
    init_mapped_sorted = init_ppage_sorted >= 0
    covered_sorted = covered_flat[order]
    seen_before_sorted = ~first_in_group
    # an uncovered (RMW) edge reads the page's current content and
    # mints only when that content is ERASED — i.e. the lpage is
    # neither initially mapped nor written earlier in the window
    mapped_now_sorted = seen_before_sorted | init_mapped_sorted
    mint_sorted = covered_sorted | ~mapped_now_sorted

    mint_flat = np.empty(total_pages, dtype=bool)
    mint_flat[order] = mint_sorted
    mint_rank = np.cumsum(mint_flat)  # 1-based rank at mint positions
    total_mints = int(mint_rank[-1])
    next0 = device.controller._next_token
    fresh_flat = mint_rank + (next0 - 1)  # token value at mint positions

    # within each group, a non-mint occurrence rereads the token of the
    # group's latest mint (or the chip's pre-window token before any)
    positions = np.arange(total_pages, dtype=np.int64)
    fresh_sorted = fresh_flat[order]
    last_mint_pos = np.maximum.accumulate(np.where(mint_sorted, positions, -1))
    group_start_pos = np.maximum.accumulate(np.where(first_in_group, positions, -1))
    use_mint = last_mint_pos >= group_start_pos
    init_token_sorted = chip._tokens[np.where(init_mapped_sorted, init_ppage_sorted, 0)]
    init_token_sorted = np.where(init_mapped_sorted, init_token_sorted, ERASED)
    token_sorted = np.where(
        use_mint, fresh_sorted[np.maximum(last_mint_pos, 0)], init_token_sorted
    )
    token_flat = np.empty(total_pages, dtype=np.int64)
    token_flat[order] = token_sorted

    # -- per-IO RMW edge reads ----------------------------------------
    mapped_now_flat = np.empty(total_pages, dtype=bool)
    mapped_now_flat[order] = mapped_now_sorted
    rmw_read_flat = ~covered_flat & mapped_now_flat
    reads_per_io = np.add.reduceat(rmw_read_flat.astype(np.int64), offsets[:-1])

    # -- previous flat occurrence of each repeated lpage (-1 = first);
    #    the epoch kernel's chunks must keep lpages distinct ----------
    prev_sorted = np.empty(total_pages, dtype=np.int64)
    prev_sorted[0] = -1
    prev_sorted[1:] = order[:-1]
    prev_sorted[first_in_group] = -1
    prev_occ = np.empty(total_pages, dtype=np.int64)
    prev_occ[order] = prev_sorted

    R = _WindowTokens()
    R.offsets = offsets
    R.total_pages = total_pages
    R.lpage_flat = lpage_flat
    R.token_flat = token_flat
    R.order = order
    R.lp_sorted = lp_sorted
    R.first_in_group = first_in_group
    R.last_in_group = last_in_group
    R.init_ppage_sorted = init_ppage_sorted
    R.token_sorted = token_sorted
    R.use_mint = use_mint
    R.total_mints = total_mints
    R.next0 = next0
    R.group_lpages = lp_sorted[first_in_group]
    R.reads_per_io = reads_per_io
    R.prev_occ = prev_occ
    return R


def _commit_minted_shadow(controller, R: _WindowTokens) -> None:
    """Controller commit shared by the write kernels: shadow tokens of
    every minted lpage and the fresh-token counter."""
    group_has_mint = R.use_mint[R.last_in_group]
    minted_groups = R.group_lpages[group_has_mint]
    controller._shadow[minted_groups] = R.token_sorted[R.last_in_group][group_has_mint]
    controller._next_token = R.next0 + R.total_mints


def write_window(
    device: "FlashDevice",
    lbas: np.ndarray,
    sizes: np.ndarray,
    now: float,
    trace: "IOTrace | None" = None,
    row0: int = 0,
    sched0: float | None = None,
) -> tuple[int, float]:
    """Simulate a window of back-to-back synchronous writes.

    ``lbas``/``sizes`` are int64 columns, the first IO submitted at
    ``now``.  Returns ``(count, end)``: ``count`` IOs were simulated
    analytically (0 = declined, state untouched) and the device fell
    idle at ``end``.

    Page-map devices take the fully closed-form kernel for the longest
    provably-GC-free prefix (bounded by the same GC-headroom condition
    as the page-map write fast path, evaluated per IO against the free
    pool after the allocations of all preceding IOs); once the window
    reaches the free-pool watermark the remainder runs through the
    GC-epoch kernel, which absorbs garbage collection itself.
    Block-map devices take :func:`the block-map kernel
    <_blockmap_write_window>` for the whole window.

    When ``trace`` is given, rows ``row0..row0+count-1`` are recorded
    with the synchronous host's timing columns (``sched0`` is the first
    IO's scheduled time; later IOs are scheduled at the previous
    completion, i.e. a zero-gap program).
    """
    if not ENABLED:
        return _decline("write", "disabled", now)
    reason = device_decline_reason(device)
    if reason is not None:
        return _decline("write", reason, now)
    if now != device._busy_until:
        return _decline("write", "start-misaligned", now)

    lbas = np.asarray(lbas, dtype=np.int64)
    sizes = np.asarray(sizes, dtype=np.int64)
    limit = _valid_prefix(device, lbas, sizes)
    if limit == 0:
        return _decline("write", "address", now)
    lbas = lbas[:limit]
    sizes = sizes[:limit]

    if isinstance(device.ftl, BlockMapFTL):
        return _blockmap_write_window(device, lbas, sizes, now, trace, row0, sched0)

    geometry = device.geometry
    ftl = device.ftl
    chip = device.chip
    controller = device.controller
    ppb = geometry.pages_per_block

    s_pg, e_pg = _expand_spans(device, lbas, sizes, expand=True)
    n_pg = e_pg - s_pg

    # -- GC headroom per IO: free pool after the preceding IOs' block
    #    allocations must clear the write fast path's margin -----------
    wp0 = int(chip._write_point[ftl._host_active])
    free0 = len(ftl._free)
    gc_low = ftl.config.gc_low_blocks
    first_pos = np.empty(limit, dtype=np.int64)  # append position of IO i's first page
    first_pos[0] = wp0
    np.cumsum(n_pg[:-1], out=first_pos[1:])
    first_pos[1:] += wp0
    pre = (wp0 - 1) // ppb if wp0 >= 1 else 0
    allocs_before = np.maximum((first_pos - 1) // ppb - pre, 0)
    headroom_ok = (free0 - allocs_before) > gc_low + 1 + n_pg // ppb
    n_ios = limit if bool(headroom_ok.all()) else int(np.argmin(headroom_ok))
    if n_ios == 0:
        # steady state: garbage collection could fire inside the very
        # first IO — the GC-epoch kernel absorbs the whole window
        return _pagemap_epoch_window(
            device, lbas, sizes, s_pg, e_pg, n_pg, now, trace, row0, sched0
        )
    lbas = lbas[:n_ios]
    sizes = sizes[:n_ios]
    s_pg = s_pg[:n_ios]
    e_pg = e_pg[:n_ios]
    n_pg = n_pg[:n_ios]

    R = _resolve_write_tokens(device, lbas, sizes, s_pg, e_pg, n_pg)
    total_pages = R.total_pages
    lpage_flat = R.lpage_flat
    token_flat = R.token_flat
    order = R.order
    lp_sorted = R.lp_sorted
    first_in_group = R.first_in_group
    last_in_group = R.last_in_group
    init_ppage_sorted = R.init_ppage_sorted
    reads_per_io = R.reads_per_io

    # -- physical placement: consecutive append positions -------------
    abs_pos = np.arange(wp0, wp0 + total_pages, dtype=np.int64)
    block_seq = abs_pos // ppb
    last_seq = int(block_seq[-1])  # number of block allocations in the window
    blocks = np.empty(last_seq + 1, dtype=np.int64)
    blocks[0] = ftl._host_active
    if last_seq:
        blocks[1:] = list(islice(ftl._free, last_seq))
    ppage_flat = blocks[block_seq] * ppb + (abs_pos - block_seq * ppb)

    # -- per-IO costs and service times --------------------------------
    miss = _map_misses(device, s_pg, e_pg)
    timing = device.timing
    flash = (timing.read_page * reads_per_io.astype(np.float64)) / timing.parallelism
    flash = flash + (timing.program_page * n_pg.astype(np.float64)) / timing.parallelism
    service, completions = _finish_services(device, flash, sizes, miss, now)
    end = float(completions[-1])

    # ==================================================================
    # commit: from here on, state is written to the exact final values
    # the reference per-IO path would have produced
    # ==================================================================

    # chip: programmed tokens, write points, operation counters
    chip._tokens[ppage_flat] = token_flat
    if last_seq == 0:
        chip._write_point[int(blocks[0])] = wp0 + total_pages
    else:
        chip._write_point[blocks[:-1]] = ppb
        chip._write_point[int(blocks[-1])] = wp0 + total_pages - last_seq * ppb
    total_rmw_reads = int(reads_per_io.sum())
    chip.stats.page_programs += total_pages
    chip.stats.page_reads += total_rmw_reads

    # FTL maps: invalidate pre-window mappings of rewritten lpages,
    # then map each lpage to its final (last) window occurrence
    group_lpages = lp_sorted[first_in_group]
    old_ppages = init_ppage_sorted[first_in_group]
    old_ppages = old_ppages[old_ppages >= 0]
    nblocks = geometry.physical_blocks
    dec = np.bincount(old_ppages // ppb, minlength=nblocks)
    dec_blocks = np.flatnonzero(dec)
    dec_data_blocks = dec_blocks[ftl._state[dec_blocks] == _DATA]
    ftl._p2l[old_ppages] = -1
    ftl._valid_map[old_ppages] = False
    is_final_flat = np.empty(total_pages, dtype=bool)
    is_final_flat[order] = last_in_group
    ftl._p2l[ppage_flat] = np.where(is_final_flat, lpage_flat, -1)
    ftl._valid_map[ppage_flat] = is_final_flat
    ppage_sorted = ppage_flat[order]
    ftl._l2p[group_lpages] = ppage_sorted[last_in_group]
    inc = np.bincount(ppage_flat[is_final_flat] // ppb, minlength=nblocks)
    ftl._valid += inc
    ftl._valid -= dec

    # block lifecycle: retire filled blocks, allocate from the free pool
    if last_seq:
        retired = blocks[:-1]
        ftl._state[retired] = _DATA
        seq0 = ftl._sequence
        ftl._retired_at[retired] = np.arange(seq0 + 1, seq0 + 1 + last_seq)
        ftl._sequence = seq0 + last_seq
        new_active = int(blocks[-1])
        ftl._state[new_active] = _ACTIVE
        ftl._host_active = new_active
        ftl._free_map[blocks[1:]] = False
        for _ in range(last_seq):
            ftl._free.popleft()

    # greedy-GC buckets: contents are a pure function of (_state,
    # _valid); the floor replays the scalar event sequence in closed
    # form — every touched block's minimum bucket equals its *final*
    # valid count (adds use the retire-time count, decs only lower it)
    if ftl._use_buckets:
        old_floor = ftl._min_bucket
        ftl._rebuild_buckets()
        touched = (
            np.concatenate((blocks[:-1], dec_data_blocks))
            if last_seq
            else dec_data_blocks
        )
        floor = old_floor
        if touched.size:
            floor = min(floor, int(ftl._valid[touched].min()))
        ftl._min_bucket = floor

    # controller: shadow tokens of every minted lpage, token counter,
    # sequential-access detector
    _commit_minted_shadow(controller, R)
    controller._last_end_page = int(e_pg[-1])

    # device accounting: busy horizon, channels, aggregate counters
    _occupy_channels(device, completions)
    device._busy_until = end
    _accumulate_busy(device, service)
    device.stats.writes += n_ios
    device.stats.bytes_written += int(sizes.sum())

    if trace is not None:
        scheduled = np.empty(n_ios, dtype=np.float64)
        scheduled[0] = now if sched0 is None else sched0
        scheduled[1:] = completions[:-1]
        submitted = scheduled.copy()
        submitted[0] = now
        trace.record_run(
            row0,
            lbas,
            sizes,
            True,
            scheduled,
            submitted,
            submitted,
            completions,
            page_reads=reads_per_io,
            page_programs=n_pg,
            bytes_transferred=sizes,
            map_misses=miss,
        )

    STATS.write_windows += 1
    STATS.write_ios += n_ios
    return n_ios, end


def _pagemap_epoch_window(
    device, lbas, sizes, s_pg, e_pg, n_pg, now, trace, row0, sched0
):
    """GC-epoch kernel: a page-map write window in free-pool steady state.

    Token resolution, RMW edge reads and the controller commit use the
    same closed forms as the GC-free prefix kernel — they depend only on
    pre-window state, which garbage collection preserves (a relocation
    moves a page without changing its logical content or mapped-ness).
    Placement and reclamation replay the reference slow loop of
    :meth:`~repro.flashsim.ftl.pagemap.PageMapFTL.write_run` over the
    *flattened* window: a closed-form ``_append_run`` per block epoch,
    one real ``write_page`` (which runs GC through ``_collect_one`` /
    ``_relocate_block``) at each free-pool watermark — so maps, buckets,
    counters and costs are bit-identical to the per-IO reference by
    construction.  Chunks merge across IO boundaries (the free pool
    changes only at block allocations, never mid-chunk, and distinct
    lpages' invalidations commute with appends) and split where a later
    IO rewrites an lpage from the same chunk, since ``_append_run``
    requires distinct lpages.  Reclamation costs are attributed to the
    IO whose page triggered them, exactly as the reference's per-IO
    accumulators would.

    Like the reference, an exhausted free pool raises
    ``OutOfSpaceError`` mid-window with state torn at the failing page.
    """
    geometry = device.geometry
    ftl = device.ftl
    chip = device.chip
    controller = device.controller
    ppb = geometry.pages_per_block
    n_ios = int(lbas.size)

    R = _resolve_write_tokens(device, lbas, sizes, s_pg, e_pg, n_pg)
    offsets = R.offsets
    total_pages = R.total_pages
    lpage_flat = R.lpage_flat
    token_flat = R.token_flat
    reads_per_io = R.reads_per_io
    prev_occ = R.prev_occ
    dup_positions = np.flatnonzero(prev_occ >= 0)

    gc_low = ftl.config.gc_low_blocks
    free = ftl._free
    scratch = CostAccumulator()
    copy_reads = np.zeros(n_ios, dtype=np.int64)
    copy_programs = np.zeros(n_ios, dtype=np.int64)
    block_erases = np.zeros(n_ios, dtype=np.int64)
    notes: "dict[int, list[str]]" = {}
    collections0 = ftl.gc_collections
    ends = offsets[1:].tolist()
    lp_list = lpage_flat.tolist()
    tok_list = token_flat.tolist()

    i = 0
    io_j = 0
    dk = 0
    n_dups = int(dup_positions.size)
    while i < total_pages:
        while i >= ends[io_j]:
            io_j += 1
        active = ftl._host_active
        wp = int(chip._write_point[active])
        if wp == ppb:
            ftl._retire_active(active)
            active = ftl._allocate_active()
            ftl._host_active = active
            wp = 0
        if len(free) <= gc_low:
            # free-pool watermark: the reference writes this page the
            # scalar way and collects until the pool recovers
            cr0 = scratch.copy_reads
            cp0 = scratch.copy_programs
            be0 = scratch.block_erases
            nn0 = len(scratch.notes)
            ftl.write_page(lp_list[i], tok_list[i], scratch)
            copy_reads[io_j] += scratch.copy_reads - cr0
            copy_programs[io_j] += scratch.copy_programs - cp0
            block_erases[io_j] += scratch.block_erases - be0
            if len(scratch.notes) > nn0:
                notes.setdefault(io_j, []).extend(scratch.notes[nn0:])
            i += 1
            continue
        take = ppb - wp
        if take > total_pages - i:
            take = total_pages - i
        while dk < n_dups and dup_positions[dk] < i:
            dk += 1
        k = dk
        while k < n_dups:
            pos = int(dup_positions[k])
            if pos >= i + take:
                break
            if prev_occ[pos] >= i:
                take = pos - i
                break
            k += 1
        ftl._append_run(
            active, wp, lpage_flat[i : i + take], token_flat[i : i + take]
        )
        i += take

    # per-IO service times: the reference sums each IO's accumulator
    # with CostAccumulator.total(); these elementwise ops replay its
    # float additions in the same left-to-right order, so the vector is
    # bit-identical to the per-IO loop (extra_usec is always 0 here,
    # and x + 0.0 is exact)
    miss = _map_misses(device, s_pg, e_pg)
    timing = device.timing
    par = timing.parallelism
    cpar = timing.copy_parallelism
    flash = timing.read_page * reads_per_io / par
    flash = flash + timing.program_page * n_pg / par
    flash = flash + (
        timing.read_page * copy_reads
        + (timing.program_page + timing.copy_page_extra) * copy_programs
    ) / cpar
    flash = flash + timing.erase_block * block_erases / cpar
    service = flash + timing.transfer_per_kib * (sizes / 1024.0)
    service = service + miss * timing.map_miss
    service = service + timing.controller_overhead
    completions = _chain(now, service)
    end = float(completions[-1])

    # commit: host programs and reclamation already went through the
    # real chip/FTL above; RMW edge reads were resolved analytically
    chip.stats.page_reads += int(reads_per_io.sum())
    _commit_minted_shadow(controller, R)
    controller._last_end_page = int(e_pg[-1])

    _occupy_channels(device, completions)
    device._busy_until = end
    _accumulate_busy(device, service)
    device.stats.writes += n_ios
    device.stats.bytes_written += int(sizes.sum())

    if trace is not None:
        scheduled = np.empty(n_ios, dtype=np.float64)
        scheduled[0] = now if sched0 is None else sched0
        scheduled[1:] = completions[:-1]
        submitted = scheduled.copy()
        submitted[0] = now
        trace.record_run(
            row0,
            lbas,
            sizes,
            True,
            scheduled,
            submitted,
            submitted,
            completions,
            page_reads=reads_per_io,
            page_programs=n_pg,
            copy_reads=copy_reads,
            copy_programs=copy_programs,
            block_erases=block_erases,
            bytes_transferred=sizes,
            map_misses=miss,
            notes=notes or None,
        )

    STATS.write_windows += 1
    STATS.write_ios += n_ios
    STATS.epoch_windows += 1
    STATS.epoch_ios += n_ios
    STATS.epoch_collections += ftl.gc_collections - collections0
    return n_ios, end


def _blockmap_write_window(device, lbas, sizes, now, trace, row0, sched0):
    """Block-map kernel: a whole window of synchronous writes.

    A page-aligned write that continues the open replacement of a
    single logical block is a pure sequential append — the map, the
    open-slot LRU and the token mints evolve in closed form and the
    pages land in one ``program_run``.  Every other IO (RMW edges,
    out-of-order offsets, gap fills, mapping-unit expansion) replays
    the reference ``Controller.write`` verbatim, so finalisation and
    merge boundaries act as epoch edges rather than declines: the
    window always completes, with per-IO costs taken from the same
    accumulators the reference dispatch would have filled.

    Like the reference, an exhausted free pool raises
    ``OutOfSpaceError`` mid-window with state torn at the failing IO.
    """
    ftl = device.ftl
    chip = device.chip
    controller = device.controller
    geometry = device.geometry
    ppb = geometry.pages_per_block
    page = geometry.page_size
    timing = device.timing
    n_ios = int(lbas.size)

    s_pg, e_pg = _expand_spans(device, lbas, sizes, expand=True)
    costs: list[CostAccumulator] = []
    service = np.empty(n_ios, dtype=np.float64)
    lba_list = lbas.tolist()
    size_list = sizes.tolist()
    s_list = s_pg.tolist()
    e_list = e_pg.tolist()
    for j in range(n_ios):
        cost = CostAccumulator()
        lba = lba_list[j]
        size = size_list[j]
        s = s_list[j]
        e = e_list[j]
        rep = None
        simple = (
            s * page == lba
            and e * page == lba + size
            and s // ppb == (e - 1) // ppb
        )
        if simple:
            lblock, off = divmod(s, ppb)
            rep = ftl._open.get(lblock)
            simple = (off == rep.next_offset) if rep is not None else (off == 0)
        if simple:
            n = e - s
            controller._charge_map_lookup(s, e - 1, cost)
            if rep is None:
                rep = ftl._open_replacement(lblock, cost)
            next0 = controller._next_token
            tokens = np.arange(next0, next0 + n, dtype=np.int64)
            controller._next_token = next0 + n
            controller._shadow[s:e] = tokens
            chip.program_run(rep.pblock, off, tokens)
            cost.page_programs += n
            rep.next_offset = off + n
            ftl._open.move_to_end(lblock)
            if rep.next_offset == ppb:
                ftl._finalize(lblock, cost)
            ftl.note_io_boundary(lba + size, cost)
            cost.bytes_transferred += size
        else:
            controller.write(lba, size, cost)
        costs.append(cost)
        service[j] = cost.total(timing)

    completions = _chain(now, service)
    end = float(completions[-1])

    _occupy_channels(device, completions)
    device._busy_until = end
    _accumulate_busy(device, service)
    device.stats.writes += n_ios
    device.stats.bytes_written += int(sizes.sum())

    if trace is not None:
        scheduled = np.empty(n_ios, dtype=np.float64)
        scheduled[0] = now if sched0 is None else sched0
        scheduled[1:] = completions[:-1]
        submitted = scheduled.copy()
        submitted[0] = now
        count = n_ios
        notes = {
            j: list(costs[j].notes) for j in range(count) if costs[j].notes
        }
        trace.record_run(
            row0,
            lbas,
            sizes,
            True,
            scheduled,
            submitted,
            submitted,
            completions,
            page_reads=np.fromiter(
                (c.page_reads for c in costs), dtype=np.int64, count=count
            ),
            page_programs=np.fromiter(
                (c.page_programs for c in costs), dtype=np.int64, count=count
            ),
            copy_reads=np.fromiter(
                (c.copy_reads for c in costs), dtype=np.int64, count=count
            ),
            copy_programs=np.fromiter(
                (c.copy_programs for c in costs), dtype=np.int64, count=count
            ),
            block_erases=np.fromiter(
                (c.block_erases for c in costs), dtype=np.int64, count=count
            ),
            bytes_transferred=sizes,
            map_misses=np.fromiter(
                (c.map_misses for c in costs), dtype=np.int64, count=count
            ),
            notes=notes or None,
        )

    STATS.write_windows += 1
    STATS.write_ios += n_ios
    return n_ios, end


def _resolve_reads(device, lpage_flat):
    """Resolve a flat column of logical page reads against the current
    mapping: ``(tokens, charged)``.

    ``charged`` marks pages that cost a flash read in the reference
    path — mapped pages for the page-map family; replacement-prefix or
    below-write-point data pages for the block-map family, where a
    FILLER read decodes to ERASED but still charges, exactly like
    :meth:`~repro.flashsim.ftl.blockmap.BlockMapFTL.read_page`.
    """
    ftl = device.ftl
    chip = device.chip
    if isinstance(ftl, BlockMapFTL):
        ppb = device.geometry.pages_per_block
        lb = lpage_flat // ppb
        off = lpage_flat - lb * ppb
        nblocks = ftl._data_map.size
        rep_p = np.full(nblocks, -1, dtype=np.int64)
        rep_n = np.zeros(nblocks, dtype=np.int64)
        for lblock, rep in ftl._open.items():
            rep_p[lblock] = rep.pblock
            rep_n[lblock] = rep.next_offset
        in_rep = off < rep_n[lb]
        data = ftl._data_map[lb]
        has_data = data >= 0
        wp = chip._write_point[np.where(has_data, data, 0)]
        in_data = ~in_rep & has_data & (off < wp)
        charged = in_rep | in_data
        src = np.where(in_rep, rep_p[lb], data) * ppb + off
        raw = chip._tokens[np.where(charged, src, 0)]
        tokens = np.where(charged & (raw != FILLER_TOKEN), raw, ERASED)
        return tokens, charged
    ppages = ftl._l2p[lpage_flat]
    mapped = ppages >= 0
    tokens = np.where(mapped, chip._tokens[np.where(mapped, ppages, 0)], ERASED)
    return tokens, mapped


def read_window(
    device: "FlashDevice",
    lbas: np.ndarray,
    sizes: np.ndarray,
    now: float,
    trace: "IOTrace | None" = None,
    row0: int = 0,
    sched0: float | None = None,
) -> tuple[int, float]:
    """Simulate a run of back-to-back synchronous reads in closed form.

    Reads never change FTL state, so the whole remaining run qualifies
    at once — *unless* background work is pending (each read would then
    suffer interference and feed credit grants that advance GC: a real
    state transition per IO) or a page would fail read-your-writes
    verification (the reference path raises mid-run).  The window is
    truncated before the first verification failure so the fallback
    raises exactly where the reference would.

    Returns ``(count, end)`` like :func:`write_window`.
    """
    if not ENABLED:
        return _decline("read", "disabled", now)
    reason = device_decline_reason(device)
    if reason is not None:
        return _decline("read", reason, now)
    if now != device._busy_until:
        return _decline("read", "start-misaligned", now)
    ftl = device.ftl
    if ftl.background_work_pending():
        return _decline("read", "background-pending", now)

    lbas = np.asarray(lbas, dtype=np.int64)
    sizes = np.asarray(sizes, dtype=np.int64)
    n_ios = _valid_prefix(device, lbas, sizes)
    if n_ios == 0:
        return _decline("read", "address", now)
    lbas = lbas[:n_ios]
    sizes = sizes[:n_ios]

    s_pg, e_pg = _expand_spans(device, lbas, sizes, expand=False)
    n_pg = e_pg - s_pg
    offsets = np.empty(n_ios + 1, dtype=np.int64)
    offsets[0] = 0
    np.cumsum(n_pg, out=offsets[1:])
    total_pages = int(offsets[-1])
    lpage_flat = np.arange(total_pages, dtype=np.int64)
    lpage_flat -= np.repeat(offsets[:-1], n_pg)
    lpage_flat += np.repeat(s_pg, n_pg)

    chip = device.chip
    tokens, mapped = _resolve_reads(device, lpage_flat)
    if device.controller.config.verify:
        expected = device.controller._shadow[lpage_flat]
        bad = tokens != expected
        if bool(bad.any()):
            # truncate before the IO whose verification fails; the
            # fallback replays it and raises the reference FTLError
            first_bad_page = int(np.argmax(bad))
            bad_io = int(np.searchsorted(offsets, first_bad_page, side="right")) - 1
            if bad_io == 0:
                return _decline("read", "verify", now)
            n_ios = bad_io
            lbas = lbas[:n_ios]
            sizes = sizes[:n_ios]
            s_pg = s_pg[:n_ios]
            e_pg = e_pg[:n_ios]
            n_pg = n_pg[:n_ios]
            total_pages = int(offsets[n_ios])
            offsets = offsets[: n_ios + 1]
            mapped = mapped[:total_pages]

    reads_per_io = np.add.reduceat(mapped.astype(np.int64), offsets[:-1])
    miss = _map_misses(device, s_pg, e_pg)
    timing = device.timing
    flash = (timing.read_page * reads_per_io.astype(np.float64)) / timing.parallelism
    service, completions = _finish_services(device, flash, sizes, miss, now)
    end = float(completions[-1])

    # commit ----------------------------------------------------------
    chip.stats.page_reads += int(reads_per_io.sum())
    device.controller._last_end_page = int(e_pg[-1])

    # background credit: each read grants service * read_concurrency,
    # clamped to the leftover maximum; with no work pending the grants
    # only move the credit account (exact scalar fold, including the
    # clamp ordering)
    concurrency = device.background.read_concurrency
    if concurrency > 0.0:
        cap = device.background.max_leftover_credit_usec
        credit = device._bg_credit
        for usec in service.tolist():
            credit += usec * concurrency
            credit = min(credit, cap)
        device._bg_credit = credit

    _occupy_channels(device, completions)
    device._busy_until = end
    _accumulate_busy(device, service)
    device.stats.reads += n_ios
    device.stats.bytes_read += int(sizes.sum())

    if trace is not None:
        scheduled = np.empty(n_ios, dtype=np.float64)
        scheduled[0] = now if sched0 is None else sched0
        scheduled[1:] = completions[:-1]
        submitted = scheduled.copy()
        submitted[0] = now
        trace.record_run(
            row0,
            lbas,
            sizes,
            False,
            scheduled,
            submitted,
            submitted,
            completions,
            page_reads=reads_per_io,
            bytes_transferred=sizes,
            map_misses=miss,
        )

    STATS.read_windows += 1
    STATS.read_ios += n_ios
    return n_ios, end


def run_program_into(
    device: "FlashDevice",
    program: "IOProgram",
    trace: "IOTrace",
    start_at: float,
    os_overhead: float,
) -> bool:
    """Run a whole :class:`~repro.core.generator.IOProgram` through the
    kernels, falling back per IO where a window declines.

    Returns False — with *no* state touched — when the program shape
    itself disqualifies (paced gaps, host overhead, queue-misaligned
    start, or a device-level decline); the synchronous host then runs
    its reference loop.  Returns True when the program completed: every
    IO was simulated either inside a closed-form window or, at window
    boundaries (GC about to fire, verification about to fail), through
    the ordinary :meth:`~repro.flashsim.device.FlashDevice.submit_into`
    path — which also re-raises exactly the reference errors.
    """
    if not ENABLED:
        STATS.decline("program:disabled")
        return False
    if os_overhead != 0.0:
        STATS.decline("program:os-overhead")
        return False
    gaps = program.gaps
    if gaps.size and bool((gaps != 0.0).any()):
        STATS.decline("program:paced")
        return False
    if device._busy_until != start_at:
        STATS.decline("program:start-misaligned")
        return False
    if device_decline_reason(device) is not None:
        STATS.decline(f"program:{device_decline_reason(device)}")
        return False

    lbas = program.lbas
    sizes = program.sizes
    writes = np.asarray(program.writes, dtype=bool)
    count = len(program)
    # homogeneous stretches: a window never crosses a read/write flip
    flips = np.flatnonzero(writes[1:] != writes[:-1]) + 1
    bounds = np.empty(flips.size + 1, dtype=np.int64)
    bounds[: flips.size] = flips
    bounds[-1] = count

    clock = start_at
    i = 0
    end_i = 0
    while i < count:
        if i >= end_i:
            end_i = int(bounds[np.searchsorted(bounds, i, side="right")])
        kernel = write_window if writes[i] else read_window
        sched0 = start_at if i == 0 else clock
        done, clock_after = kernel(
            device, lbas[i:end_i], sizes[i:end_i], clock,
            trace=trace, row0=i, sched0=sched0,
        )
        if done:
            i += done
            clock = clock_after
        else:
            # reference path for the one IO the kernel refused (GC
            # fires, verification raises, ...) — then try again
            clock = device.submit_into(
                trace, i, int(lbas[i]), int(sizes[i]), bool(writes[i]),
                sched0, sched0,
            )
            i += 1
    return True


def run_program_queued(
    device: "FlashDevice",
    program: "IOProgram",
    trace: "IOTrace",
    start_at: float,
    os_overhead: float,
    depth: int,
) -> bool:
    """Evaluate :class:`~repro.flashsim.host.AsyncHost`'s depth-``d``
    completion chain for a homogeneous read program as one vectorized
    event schedule.

    Reads never mutate FTL state, so every per-IO service time is a
    pure function of the pre-program mapping — resolved in closed form
    by :func:`_resolve_reads` — and the only sequential part left is
    the submit/pop event schedule itself: channel horizons, queue
    waits, occupancy integrals and background credit.  Those fold in a
    tight scalar loop (~15 operations per IO) that replays the host
    loop, ``_dispatch`` and :class:`~repro.flashsim.device.CommandQueue`
    bookkeeping exactly, instead of the reference's full per-IO
    controller/FTL/chip traversal.

    Returns False — with *no* state touched — when the program shape
    disqualifies it (writes, paced gaps, host overhead, pending
    background work, a possible verification failure, or a device-level
    decline); the async host then runs its reference loop.  Trace rows
    land in submission order with final timings, identical to the
    reference's tag-sorted ``record_at`` rows.
    """
    if not ENABLED:
        STATS.decline("queued:disabled")
        return False
    if os_overhead != 0.0:
        STATS.decline("queued:os-overhead")
        return False
    count = len(program)
    if count == 0:
        STATS.decline("queued:empty")
        return False
    writes = np.asarray(program.writes, dtype=bool)
    if bool(writes.any()):
        STATS.decline("queued:writes")
        return False
    gaps = program.gaps
    if gaps.size and bool((gaps != 0.0).any()):
        STATS.decline("queued:paced")
        return False
    reason = device_decline_reason(device)
    if reason is not None:
        STATS.decline(f"queued:{reason}")
        return False
    if device._queue.in_flight:
        STATS.decline("queued:in-flight")
        return False
    if device._busy_until != start_at:
        STATS.decline("queued:start-misaligned")
        return False
    if device.ftl.background_work_pending():
        # each read would suffer interference and feed credit grants
        # that execute background units: real state transitions per IO
        STATS.decline("queued:background-pending")
        return False

    lbas = np.asarray(program.lbas, dtype=np.int64)
    sizes = np.asarray(program.sizes, dtype=np.int64)
    if _valid_prefix(device, lbas, sizes) != count:
        # the reference raises AddressError mid-program; leave the
        # whole program to it so the error surfaces at the exact IO
        STATS.decline("queued:address")
        return False

    s_pg, e_pg = _expand_spans(device, lbas, sizes, expand=False)
    n_pg = e_pg - s_pg
    offsets = np.empty(count + 1, dtype=np.int64)
    offsets[0] = 0
    np.cumsum(n_pg, out=offsets[1:])
    total_pages = int(offsets[-1])
    lpage_flat = np.arange(total_pages, dtype=np.int64)
    lpage_flat -= np.repeat(offsets[:-1], n_pg)
    lpage_flat += np.repeat(s_pg, n_pg)

    tokens, charged = _resolve_reads(device, lpage_flat)
    if device.controller.config.verify:
        expected = device.controller._shadow[lpage_flat]
        if bool((tokens != expected).any()):
            STATS.decline("queued:verify")
            return False

    reads_per_io = np.add.reduceat(charged.astype(np.int64), offsets[:-1])
    miss = _map_misses(device, s_pg, e_pg)
    timing = device.timing
    flash = (timing.read_page * reads_per_io.astype(np.float64)) / timing.parallelism
    service = _service_times(device, flash, sizes, miss)

    # -- the event schedule: replay the host's submit/pop loop ---------
    svc = service.tolist()
    channels = device._channels
    busys = list(channels._busy)
    nch = len(busys)
    queue = device._queue
    stats = device.stats
    concurrency = device.background.read_concurrency
    cap = device.background.max_leftover_credit_usec
    credit = device._bg_credit
    busy_until = device._busy_until
    busy_usec = stats.busy_usec
    queue_wait = stats.queue_wait_usec
    queued_ios = 0
    last_event = queue._last_event
    depth_time = queue._depth_time
    active_time = queue._active_time
    depth_seq: list[int] = []
    submitted = np.empty(count, dtype=np.float64)
    started = np.empty(count, dtype=np.float64)
    completed = np.empty(count, dtype=np.float64)
    heap: list[tuple[float, int]] = []
    clock = start_at
    i = 0
    in_flight = 0
    while i < count or in_flight:
        if i < count and in_flight < depth:
            now_i = clock
            # ChannelSet.pick(): earliest-free channel, lowest index wins
            ch = 0
            floor = busys[0]
            for c in range(1, nch):
                if busys[c] < floor:
                    floor = busys[c]
                    ch = c
            start = floor if floor > now_i else now_i
            if start > now_i:
                queued_ios += 1
                queue_wait += start - now_i
            # the idle grant max(0, start - busy_until) is provably <= 0
            # here (now_i <= busy_until by induction); the service grant
            # only moves the credit account while no work is pending
            usec = svc[i] * concurrency
            if usec > 0.0:
                credit += usec
                if credit > cap:
                    credit = cap
            completion = start + svc[i]
            if completion > busys[ch]:
                busys[ch] = completion
            if completion > busy_until:
                busy_until = completion
            busy_usec += svc[i]
            # CommandQueue.push: _advance(submitted_at) before counting
            if now_i > last_event:
                if in_flight:
                    elapsed = now_i - last_event
                    depth_time += in_flight * elapsed
                    active_time += elapsed
                last_event = now_i
            heappush(heap, (completion, i))
            in_flight += 1
            depth_seq.append(in_flight)
            submitted[i] = now_i
            started[i] = start
            completed[i] = completion
            i += 1
        else:
            # CommandQueue.pop: _advance(peek) with the entry counted
            when, _tag = heappop(heap)
            if when > last_event:
                elapsed = when - last_event
                depth_time += in_flight * elapsed
                active_time += elapsed
                last_event = when
            in_flight -= 1
            if when > clock:
                clock = when

    # -- commit --------------------------------------------------------
    device.chip.stats.page_reads += int(reads_per_io.sum())
    device.controller._last_end_page = int(e_pg[-1])
    device._bg_credit = credit
    device._busy_until = busy_until
    for c in range(nch):
        channels.occupy(c, busys[c])
    stats.busy_usec = busy_usec
    stats.reads += count
    stats.bytes_read += int(sizes.sum())
    stats.queued_ios += queued_ios
    stats.queue_wait_usec = queue_wait
    queue._last_event = last_event
    queue._depth_time = depth_time
    queue._active_time = active_time
    at_depth = queue._at_depth
    for d in depth_seq:
        at_depth[d] = at_depth.get(d, 0) + 1
    queue._submitted += count
    queue.timeline._seq += count
    queue.timeline.clock.advance_to(last_event)

    trace.record_run(
        0,
        lbas,
        sizes,
        False,
        submitted,
        submitted,
        started,
        completed,
        page_reads=reads_per_io,
        bytes_transferred=sizes,
        map_misses=miss,
    )

    STATS.queued_windows += 1
    STATS.queued_ios += count
    return True
