"""Closed-form whole-run kernels (the analytic fast path).

When a run of host IOs provably cannot trigger an FTL state transition —
no garbage collection, no wear move, no background unit, no
read-your-writes failure — every per-IO quantity is a *closed-form*
function of the device state at the start of the run: programs land at
consecutive write points of a known block sequence, RMW edge reads count
mapped pages, service times follow the
:meth:`~repro.flashsim.timing.CostAccumulator.total` formula, and the
completion chain is a prefix sum.  The kernels in this module evaluate
that closed form on numpy columns — one vectorized pass for a whole
window of IOs — then write chip / FTL / controller / device state to
exactly the values the per-IO reference path would have produced.

Discipline (the same provably-equivalent-or-fallback contract as the
page-map GC-headroom fast path in
:meth:`~repro.flashsim.ftl.pagemap.PageMapFTL.write_run`):

* a kernel either proves, *before touching any state*, that the window
  is transition-free and then reproduces the per-IO path **bit for
  bit** — same maps, same counters, same floats in the same operation
  order — or it declines and the caller falls back to the reference
  per-IO loop;
* every decline is counted with a reason in :data:`STATS`, which is
  what the equivalence tests assert on ("the fast path bails out
  exactly when a state transition could occur").

Current coverage: the page-map FTL (the "modern SSD" profile family)
under synchronous hosts — random/sequential **reads** of any mix of
sizes, and **write** windows within verified GC headroom.  Everything
else (other FTL families, caches, fault injectors, wear levelling,
measurement noise, queue depth > 1) declines up front and runs the
reference path unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import islice
from typing import TYPE_CHECKING

import numpy as np

from repro.flashsim.chip import ERASED
from repro.flashsim.ftl.pagemap import _ACTIVE, _DATA, PageMapFTL

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.core.generator import IOProgram
    from repro.flashsim.device import FlashDevice
    from repro.flashsim.trace import IOTrace

#: master switch; tests flip it off to force the reference path
ENABLED = True


@dataclass
class KernelStats:
    """Hit/decline counters for the analytic kernels (introspection).

    ``declines`` maps a ``"op:reason"`` string (e.g.
    ``"write:gc-headroom"``) to the number of times a kernel refused a
    window for that reason.  The counters are process-global
    observability, not device state: they never affect simulation
    results and are excluded from snapshots and fingerprints.
    """

    write_windows: int = 0
    write_ios: int = 0
    read_windows: int = 0
    read_ios: int = 0
    declines: dict[str, int] = field(default_factory=dict)

    def decline(self, reason: str) -> None:
        """Count one refused window under ``reason`` (``"op:why"``)."""
        self.declines[reason] = self.declines.get(reason, 0) + 1

    def reset(self) -> None:
        """Zero all counters (test isolation)."""
        self.write_windows = 0
        self.write_ios = 0
        self.read_windows = 0
        self.read_ios = 0
        self.declines = {}


#: module-global counters (reset freely from tests)
STATS = KernelStats()


def device_decline_reason(device: "FlashDevice") -> str | None:
    """Why this device cannot take the analytic kernels (None = it can).

    These are *configuration* preconditions — properties that cannot
    change mid-run: the FTL family and its batch mode, the RAM cache,
    the flight recorder, measurement noise, fault injection, wear
    levelling and block health.
    """
    ftl = device.ftl
    if not isinstance(ftl, PageMapFTL):
        return "ftl-family"
    if not (ftl.batch_enabled and device.controller.batch_enabled):
        return "batch-disabled"
    if device.controller.cache is not None:
        return "cache"
    if device.recorder is not None:
        return "recorder"
    if device.noise.jitter:
        return "noise"
    if device.chip.fault_injector is not None:
        return "fault-injector"
    if ftl.config.wear_threshold:
        return "wear-levelling"
    if device.chip.good_blocks() != device.geometry.physical_blocks:
        return "bad-blocks"
    return None


def _decline(op: str, reason: str, now: float) -> tuple[int, float]:
    STATS.decline(f"{op}:{reason}")
    return 0, now


def _expand_spans(device, lbas, sizes, expand):
    """Per-IO page spans ``[s_pg, e_pg)``: controller expansion math.

    ``expand`` applies the write path's mapping-unit expansion; reads
    span exactly the touched pages.
    """
    geometry = device.geometry
    page = geometry.page_size
    if expand:
        unit = device.controller.mapping_unit
        exp_start = (lbas // unit) * unit
        exp_end = np.minimum(
            -(-(lbas + sizes) // unit) * unit, geometry.logical_bytes
        )
        s_pg = exp_start // page
        e_pg = -(-exp_end // page)
    else:
        s_pg = lbas // page
        e_pg = (lbas + sizes - 1) // page + 1
    return s_pg, e_pg


def _valid_prefix(device, lbas, sizes):
    """Length of the leading run of in-bounds IOs (the rest would raise
    ``AddressError`` in the reference path, so the kernel stops before
    them and lets the fallback raise)."""
    ok = (sizes > 0) & (lbas >= 0) & (lbas + sizes <= device.geometry.logical_bytes)
    if bool(ok.all()):
        return int(lbas.size)
    return int(np.argmin(ok))


def _map_misses(device, s_pg, e_pg):
    """Per-IO map-miss counts: the controller charges one miss whenever
    an IO's first page is not the previous IO's ``span.stop``."""
    miss = np.empty(s_pg.size, dtype=np.int64)
    last_end = device.controller._last_end_page
    miss[0] = 1 if (last_end is not None and int(s_pg[0]) != last_end) else 0
    if s_pg.size > 1:
        miss[1:] = s_pg[1:] != e_pg[:-1]
    return miss


def _finish_services(device, flash, sizes, miss, now):
    """Service times and the completion chain, in the reference float
    operation order: ``(flash + transfer) + miss*map_miss`` then
    ``+ controller_overhead``, folded left into completions."""
    timing = device.timing
    service = flash + timing.transfer_per_kib * (sizes / 1024.0)
    service = service + miss * timing.map_miss
    service = service + timing.controller_overhead
    # np.add.accumulate is a strict left fold (verified), bit-identical
    # to the scalar ``completion = start + service`` chain
    chain = np.empty(service.size + 1, dtype=np.float64)
    chain[0] = now
    chain[1:] = service
    completions = np.add.accumulate(chain)[1:]
    return service, completions


def _occupy_channels(device, completions):
    """Round-robin channel assignment, matching per-IO ``pick()``.

    At window start every channel horizon is <= ``busy_until`` < every
    window completion, so pick() visits channels in ascending initial
    horizon (lowest index on ties — stable argsort) and then cycles:
    IO *i* lands on ``perm[i % C]``.  Each channel's final horizon is
    the completion of the last IO it served.
    """
    channels = device._channels
    busys = channels._busy
    n_ch = len(busys)
    perm = np.argsort(np.asarray(busys), kind="stable")
    n = completions.size
    for j in range(min(n_ch, n)):
        last = (n - 1) - ((n - 1 - j) % n_ch)
        channels.occupy(int(perm[j]), float(completions[last]))


def _accumulate_busy(device, service):
    """Left-fold the per-IO services into ``stats.busy_usec`` exactly
    as the per-IO ``_account`` calls would."""
    busy = device.stats.busy_usec
    for usec in service.tolist():
        busy += usec
    device.stats.busy_usec = busy


def write_window(
    device: "FlashDevice",
    lbas: np.ndarray,
    sizes: np.ndarray,
    now: float,
    trace: "IOTrace | None" = None,
    row0: int = 0,
    sched0: float | None = None,
) -> tuple[int, float]:
    """Simulate the longest provably-GC-free prefix of a write run.

    ``lbas``/``sizes`` are int64 columns of back-to-back synchronous
    writes, the first submitted at ``now``.  Returns ``(count, end)``:
    ``count`` IOs were simulated in closed form (0 = declined, state
    untouched) and the device fell idle at ``end``.

    The window is bounded by the same GC-headroom condition as the
    page-map write fast path, evaluated per IO against the free pool
    *after* the allocations of all preceding IOs in the window — so the
    kernel stops exactly at the first IO whose reference execution
    could trigger garbage collection, and the caller replays that IO
    through the per-IO path.

    When ``trace`` is given, rows ``row0..row0+count-1`` are recorded
    with the synchronous host's timing columns (``sched0`` is the first
    IO's scheduled time; later IOs are scheduled at the previous
    completion, i.e. a zero-gap program).
    """
    if not ENABLED:
        return _decline("write", "disabled", now)
    reason = device_decline_reason(device)
    if reason is not None:
        return _decline("write", reason, now)
    if now != device._busy_until:
        return _decline("write", "start-misaligned", now)

    geometry = device.geometry
    ftl = device.ftl
    chip = device.chip
    controller = device.controller
    ppb = geometry.pages_per_block

    lbas = np.asarray(lbas, dtype=np.int64)
    sizes = np.asarray(sizes, dtype=np.int64)
    limit = _valid_prefix(device, lbas, sizes)
    if limit == 0:
        return _decline("write", "address", now)
    lbas = lbas[:limit]
    sizes = sizes[:limit]

    s_pg, e_pg = _expand_spans(device, lbas, sizes, expand=True)
    n_pg = e_pg - s_pg

    # -- GC headroom per IO: free pool after the preceding IOs' block
    #    allocations must clear the write fast path's margin -----------
    wp0 = int(chip._write_point[ftl._host_active])
    free0 = len(ftl._free)
    gc_low = ftl.config.gc_low_blocks
    first_pos = np.empty(limit, dtype=np.int64)  # append position of IO i's first page
    first_pos[0] = wp0
    np.cumsum(n_pg[:-1], out=first_pos[1:])
    first_pos[1:] += wp0
    pre = (wp0 - 1) // ppb if wp0 >= 1 else 0
    allocs_before = np.maximum((first_pos - 1) // ppb - pre, 0)
    headroom_ok = (free0 - allocs_before) > gc_low + 1 + n_pg // ppb
    n_ios = limit if bool(headroom_ok.all()) else int(np.argmin(headroom_ok))
    if n_ios == 0:
        return _decline("write", "gc-headroom", now)
    lbas = lbas[:n_ios]
    sizes = sizes[:n_ios]
    s_pg = s_pg[:n_ios]
    e_pg = e_pg[:n_ios]
    n_pg = n_pg[:n_ios]

    # -- flatten the window into per-page columns ---------------------
    page = geometry.page_size
    cov_lo = np.maximum(s_pg, -(-lbas // page))
    cov_hi = np.minimum(e_pg, (lbas + sizes) // page)
    degenerate = cov_lo >= cov_hi
    cov_lo = np.where(degenerate, s_pg, cov_lo)
    cov_hi = np.where(degenerate, s_pg, cov_hi)

    offsets = np.empty(n_ios + 1, dtype=np.int64)
    offsets[0] = 0
    np.cumsum(n_pg, out=offsets[1:])
    total_pages = int(offsets[-1])
    starts_rep = np.repeat(s_pg, n_pg)
    lpage_flat = np.arange(total_pages, dtype=np.int64)
    lpage_flat -= np.repeat(offsets[:-1], n_pg)
    lpage_flat += starts_rep
    covered_flat = (lpage_flat >= np.repeat(cov_lo, n_pg)) & (
        lpage_flat < np.repeat(cov_hi, n_pg)
    )

    # -- resolve tokens: group repeated lpages in flat (= mint) order --
    order = np.argsort(lpage_flat, kind="stable")
    lp_sorted = lpage_flat[order]
    first_in_group = np.empty(total_pages, dtype=bool)
    first_in_group[0] = True
    first_in_group[1:] = lp_sorted[1:] != lp_sorted[:-1]
    last_in_group = np.empty(total_pages, dtype=bool)
    last_in_group[-1] = True
    last_in_group[:-1] = first_in_group[1:]

    init_ppage_sorted = ftl._l2p[lp_sorted]
    init_mapped_sorted = init_ppage_sorted >= 0
    covered_sorted = covered_flat[order]
    seen_before_sorted = ~first_in_group
    # an uncovered (RMW) edge reads the page's current content and
    # mints only when that content is ERASED — i.e. the lpage is
    # neither initially mapped nor written earlier in the window
    mapped_now_sorted = seen_before_sorted | init_mapped_sorted
    mint_sorted = covered_sorted | ~mapped_now_sorted

    mint_flat = np.empty(total_pages, dtype=bool)
    mint_flat[order] = mint_sorted
    mint_rank = np.cumsum(mint_flat)  # 1-based rank at mint positions
    total_mints = int(mint_rank[-1])
    next0 = controller._next_token
    fresh_flat = mint_rank + (next0 - 1)  # token value at mint positions

    # within each group, a non-mint occurrence rereads the token of the
    # group's latest mint (or the chip's pre-window token before any)
    positions = np.arange(total_pages, dtype=np.int64)
    fresh_sorted = fresh_flat[order]
    last_mint_pos = np.maximum.accumulate(np.where(mint_sorted, positions, -1))
    group_start_pos = np.maximum.accumulate(np.where(first_in_group, positions, -1))
    use_mint = last_mint_pos >= group_start_pos
    init_token_sorted = chip._tokens[np.where(init_mapped_sorted, init_ppage_sorted, 0)]
    init_token_sorted = np.where(init_mapped_sorted, init_token_sorted, ERASED)
    token_sorted = np.where(
        use_mint, fresh_sorted[np.maximum(last_mint_pos, 0)], init_token_sorted
    )
    token_flat = np.empty(total_pages, dtype=np.int64)
    token_flat[order] = token_sorted

    # -- physical placement: consecutive append positions -------------
    abs_pos = np.arange(wp0, wp0 + total_pages, dtype=np.int64)
    block_seq = abs_pos // ppb
    last_seq = int(block_seq[-1])  # number of block allocations in the window
    blocks = np.empty(last_seq + 1, dtype=np.int64)
    blocks[0] = ftl._host_active
    if last_seq:
        blocks[1:] = list(islice(ftl._free, last_seq))
    ppage_flat = blocks[block_seq] * ppb + (abs_pos - block_seq * ppb)

    # -- per-IO costs and service times --------------------------------
    mapped_now_flat = np.empty(total_pages, dtype=bool)
    mapped_now_flat[order] = mapped_now_sorted
    rmw_read_flat = ~covered_flat & mapped_now_flat
    reads_per_io = np.add.reduceat(rmw_read_flat.astype(np.int64), offsets[:-1])
    miss = _map_misses(device, s_pg, e_pg)
    timing = device.timing
    flash = (timing.read_page * reads_per_io.astype(np.float64)) / timing.parallelism
    flash = flash + (timing.program_page * n_pg.astype(np.float64)) / timing.parallelism
    service, completions = _finish_services(device, flash, sizes, miss, now)
    end = float(completions[-1])

    # ==================================================================
    # commit: from here on, state is written to the exact final values
    # the reference per-IO path would have produced
    # ==================================================================

    # chip: programmed tokens, write points, operation counters
    chip._tokens[ppage_flat] = token_flat
    if last_seq == 0:
        chip._write_point[int(blocks[0])] = wp0 + total_pages
    else:
        chip._write_point[blocks[:-1]] = ppb
        chip._write_point[int(blocks[-1])] = wp0 + total_pages - last_seq * ppb
    total_rmw_reads = int(reads_per_io.sum())
    chip.stats.page_programs += total_pages
    chip.stats.page_reads += total_rmw_reads

    # FTL maps: invalidate pre-window mappings of rewritten lpages,
    # then map each lpage to its final (last) window occurrence
    group_lpages = lp_sorted[first_in_group]
    old_ppages = init_ppage_sorted[first_in_group]
    old_ppages = old_ppages[old_ppages >= 0]
    nblocks = geometry.physical_blocks
    dec = np.bincount(old_ppages // ppb, minlength=nblocks)
    dec_blocks = np.flatnonzero(dec)
    dec_data_blocks = dec_blocks[ftl._state[dec_blocks] == _DATA]
    ftl._p2l[old_ppages] = -1
    ftl._valid_map[old_ppages] = False
    is_final_flat = np.empty(total_pages, dtype=bool)
    is_final_flat[order] = last_in_group
    ftl._p2l[ppage_flat] = np.where(is_final_flat, lpage_flat, -1)
    ftl._valid_map[ppage_flat] = is_final_flat
    ppage_sorted = ppage_flat[order]
    ftl._l2p[group_lpages] = ppage_sorted[last_in_group]
    inc = np.bincount(ppage_flat[is_final_flat] // ppb, minlength=nblocks)
    ftl._valid += inc
    ftl._valid -= dec

    # block lifecycle: retire filled blocks, allocate from the free pool
    if last_seq:
        retired = blocks[:-1]
        ftl._state[retired] = _DATA
        seq0 = ftl._sequence
        ftl._retired_at[retired] = np.arange(seq0 + 1, seq0 + 1 + last_seq)
        ftl._sequence = seq0 + last_seq
        new_active = int(blocks[-1])
        ftl._state[new_active] = _ACTIVE
        ftl._host_active = new_active
        ftl._free_map[blocks[1:]] = False
        for _ in range(last_seq):
            ftl._free.popleft()

    # greedy-GC buckets: contents are a pure function of (_state,
    # _valid); the floor replays the scalar event sequence in closed
    # form — every touched block's minimum bucket equals its *final*
    # valid count (adds use the retire-time count, decs only lower it)
    if ftl._use_buckets:
        old_floor = ftl._min_bucket
        ftl._rebuild_buckets()
        touched = (
            np.concatenate((blocks[:-1], dec_data_blocks))
            if last_seq
            else dec_data_blocks
        )
        floor = old_floor
        if touched.size:
            floor = min(floor, int(ftl._valid[touched].min()))
        ftl._min_bucket = floor

    # controller: shadow tokens of every minted lpage, token counter,
    # sequential-access detector
    group_has_mint = use_mint[last_in_group]
    minted_groups = group_lpages[group_has_mint]
    controller._shadow[minted_groups] = token_sorted[last_in_group][group_has_mint]
    controller._next_token = next0 + total_mints
    controller._last_end_page = int(e_pg[-1])

    # device accounting: busy horizon, channels, aggregate counters
    _occupy_channels(device, completions)
    device._busy_until = end
    _accumulate_busy(device, service)
    device.stats.writes += n_ios
    device.stats.bytes_written += int(sizes.sum())

    if trace is not None:
        scheduled = np.empty(n_ios, dtype=np.float64)
        scheduled[0] = now if sched0 is None else sched0
        scheduled[1:] = completions[:-1]
        submitted = scheduled.copy()
        submitted[0] = now
        trace.record_run(
            row0,
            lbas,
            sizes,
            True,
            scheduled,
            submitted,
            submitted,
            completions,
            page_reads=reads_per_io,
            page_programs=n_pg,
            bytes_transferred=sizes,
            map_misses=miss,
        )

    STATS.write_windows += 1
    STATS.write_ios += n_ios
    return n_ios, end


def read_window(
    device: "FlashDevice",
    lbas: np.ndarray,
    sizes: np.ndarray,
    now: float,
    trace: "IOTrace | None" = None,
    row0: int = 0,
    sched0: float | None = None,
) -> tuple[int, float]:
    """Simulate a run of back-to-back synchronous reads in closed form.

    Reads never change FTL state, so the whole remaining run qualifies
    at once — *unless* background work is pending (each read would then
    suffer interference and feed credit grants that advance GC: a real
    state transition per IO) or a page would fail read-your-writes
    verification (the reference path raises mid-run).  The window is
    truncated before the first verification failure so the fallback
    raises exactly where the reference would.

    Returns ``(count, end)`` like :func:`write_window`.
    """
    if not ENABLED:
        return _decline("read", "disabled", now)
    reason = device_decline_reason(device)
    if reason is not None:
        return _decline("read", reason, now)
    if now != device._busy_until:
        return _decline("read", "start-misaligned", now)
    ftl = device.ftl
    if ftl.background_work_pending():
        return _decline("read", "background-pending", now)

    lbas = np.asarray(lbas, dtype=np.int64)
    sizes = np.asarray(sizes, dtype=np.int64)
    n_ios = _valid_prefix(device, lbas, sizes)
    if n_ios == 0:
        return _decline("read", "address", now)
    lbas = lbas[:n_ios]
    sizes = sizes[:n_ios]

    s_pg, e_pg = _expand_spans(device, lbas, sizes, expand=False)
    n_pg = e_pg - s_pg
    offsets = np.empty(n_ios + 1, dtype=np.int64)
    offsets[0] = 0
    np.cumsum(n_pg, out=offsets[1:])
    total_pages = int(offsets[-1])
    lpage_flat = np.arange(total_pages, dtype=np.int64)
    lpage_flat -= np.repeat(offsets[:-1], n_pg)
    lpage_flat += np.repeat(s_pg, n_pg)

    chip = device.chip
    ppages = ftl._l2p[lpage_flat]
    mapped = ppages >= 0
    tokens = np.where(mapped, chip._tokens[np.where(mapped, ppages, 0)], ERASED)
    if device.controller.config.verify:
        expected = device.controller._shadow[lpage_flat]
        bad = tokens != expected
        if bool(bad.any()):
            # truncate before the IO whose verification fails; the
            # fallback replays it and raises the reference FTLError
            first_bad_page = int(np.argmax(bad))
            bad_io = int(np.searchsorted(offsets, first_bad_page, side="right")) - 1
            if bad_io == 0:
                return _decline("read", "verify", now)
            n_ios = bad_io
            lbas = lbas[:n_ios]
            sizes = sizes[:n_ios]
            s_pg = s_pg[:n_ios]
            e_pg = e_pg[:n_ios]
            n_pg = n_pg[:n_ios]
            total_pages = int(offsets[n_ios])
            offsets = offsets[: n_ios + 1]
            mapped = mapped[:total_pages]

    reads_per_io = np.add.reduceat(mapped.astype(np.int64), offsets[:-1])
    miss = _map_misses(device, s_pg, e_pg)
    timing = device.timing
    flash = (timing.read_page * reads_per_io.astype(np.float64)) / timing.parallelism
    service, completions = _finish_services(device, flash, sizes, miss, now)
    end = float(completions[-1])

    # commit ----------------------------------------------------------
    chip.stats.page_reads += int(reads_per_io.sum())
    device.controller._last_end_page = int(e_pg[-1])

    # background credit: each read grants service * read_concurrency,
    # clamped to the leftover maximum; with no work pending the grants
    # only move the credit account (exact scalar fold, including the
    # clamp ordering)
    concurrency = device.background.read_concurrency
    if concurrency > 0.0:
        cap = device.background.max_leftover_credit_usec
        credit = device._bg_credit
        for usec in service.tolist():
            credit += usec * concurrency
            credit = min(credit, cap)
        device._bg_credit = credit

    _occupy_channels(device, completions)
    device._busy_until = end
    _accumulate_busy(device, service)
    device.stats.reads += n_ios
    device.stats.bytes_read += int(sizes.sum())

    if trace is not None:
        scheduled = np.empty(n_ios, dtype=np.float64)
        scheduled[0] = now if sched0 is None else sched0
        scheduled[1:] = completions[:-1]
        submitted = scheduled.copy()
        submitted[0] = now
        trace.record_run(
            row0,
            lbas,
            sizes,
            False,
            scheduled,
            submitted,
            submitted,
            completions,
            page_reads=reads_per_io,
            bytes_transferred=sizes,
            map_misses=miss,
        )

    STATS.read_windows += 1
    STATS.read_ios += n_ios
    return n_ios, end


def run_program_into(
    device: "FlashDevice",
    program: "IOProgram",
    trace: "IOTrace",
    start_at: float,
    os_overhead: float,
) -> bool:
    """Run a whole :class:`~repro.core.generator.IOProgram` through the
    kernels, falling back per IO where a window declines.

    Returns False — with *no* state touched — when the program shape
    itself disqualifies (paced gaps, host overhead, queue-misaligned
    start, or a device-level decline); the synchronous host then runs
    its reference loop.  Returns True when the program completed: every
    IO was simulated either inside a closed-form window or, at window
    boundaries (GC about to fire, verification about to fail), through
    the ordinary :meth:`~repro.flashsim.device.FlashDevice.submit_into`
    path — which also re-raises exactly the reference errors.
    """
    if not ENABLED:
        STATS.decline("program:disabled")
        return False
    if os_overhead != 0.0:
        STATS.decline("program:os-overhead")
        return False
    gaps = program.gaps
    if gaps.size and bool((gaps != 0.0).any()):
        STATS.decline("program:paced")
        return False
    if device._busy_until != start_at:
        STATS.decline("program:start-misaligned")
        return False
    if device_decline_reason(device) is not None:
        STATS.decline(f"program:{device_decline_reason(device)}")
        return False

    lbas = program.lbas
    sizes = program.sizes
    writes = np.asarray(program.writes, dtype=bool)
    count = len(program)
    # homogeneous stretches: a window never crosses a read/write flip
    flips = np.flatnonzero(writes[1:] != writes[:-1]) + 1
    bounds = np.empty(flips.size + 1, dtype=np.int64)
    bounds[: flips.size] = flips
    bounds[-1] = count

    clock = start_at
    i = 0
    end_i = 0
    while i < count:
        if i >= end_i:
            end_i = int(bounds[np.searchsorted(bounds, i, side="right")])
        kernel = write_window if writes[i] else read_window
        sched0 = start_at if i == 0 else clock
        done, clock_after = kernel(
            device, lbas[i:end_i], sizes[i:end_i], clock,
            trace=trace, row0=i, sched0=sched0,
        )
        if done:
            i += done
            clock = clock_after
        else:
            # reference path for the one IO the kernel refused (GC
            # fires, verification raises, ...) — then try again
            clock = device.submit_into(
                trace, i, int(lbas[i]), int(sizes[i]), bool(writes[i]),
                sched0, sched0,
            )
            i += 1
    return True
