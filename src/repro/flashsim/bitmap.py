"""Packed boolean bitmaps for dense FTL state.

The FTL families keep their hot bookkeeping as numpy boolean masks —
one bit of information per page or per block (page validity, block
freeness, log-position liveness) stored as a ``bool`` array so victim
scans, invariant checks and the closed-form kernels can operate on
dense buffers with single vectorized expressions.

For snapshots and IPC the masks collapse 8:1 into :class:`PackedBits`
(``np.packbits`` under the hood): an immutable value object that the
snapshot fast-copy passes through by reference, so repeated
snapshot/restore cycles of a large device never re-copy the mask bytes.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class PackedBits:
    """An immutable, 8:1-packed boolean vector (snapshot form).

    ``data`` holds ``np.packbits`` output (big-endian within each byte)
    and ``size`` the original element count, since packing pads the last
    byte.  Frozen + bytes-backed, so snapshot copies share it safely.

    Under pickle protocol 5 the payload travels **out-of-band** (see
    :meth:`__reduce_ex__`): a bitmap unpickled against external buffers
    — e.g. views into a shared-memory snapshot segment — carries a
    read-only ``memoryview`` as ``data``, which :meth:`unpack` and
    equality handle identically to bytes.
    """

    data: bytes
    size: int

    def unpack(self) -> np.ndarray:
        """Expand back into a ``bool`` ndarray of the original length."""
        bits = np.unpackbits(
            np.frombuffer(self.data, dtype=np.uint8), count=self.size
        )
        return bits.astype(bool)

    def __reduce_ex__(self, protocol: int):
        """Pickle support routing ``data`` out-of-band on protocol 5.

        With a ``buffer_callback`` in play the payload is handed over as
        a :class:`pickle.PickleBuffer` (zero copy — the snapshot packing
        path); without one, or on older protocols, it serializes in-band
        as bytes.  Either way reconstruction goes through the ordinary
        constructor.
        """
        if protocol >= 5:
            return (PackedBits, (pickle.PickleBuffer(self.data), self.size))
        data = self.data if isinstance(self.data, bytes) else bytes(self.data)
        return (PackedBits, (data, self.size))


def pack_bits(mask: np.ndarray) -> PackedBits:
    """Collapse a boolean mask into its packed snapshot form."""
    mask = np.asarray(mask, dtype=bool)
    return PackedBits(data=np.packbits(mask).tobytes(), size=int(mask.size))


def mask_from_indices(indices, size: int) -> np.ndarray:
    """Boolean mask of length ``size`` with ``indices`` set (e.g. a
    free-block bitmap derived from the allocation deque)."""
    mask = np.zeros(size, dtype=bool)
    if not isinstance(indices, np.ndarray):
        indices = np.fromiter(indices, dtype=np.int64)
    if indices.size:
        mask[indices] = True
    return mask


__all__ = ["PackedBits", "pack_bits", "mask_from_indices"]
