"""Device controller: the layer between the block interface and the FTL.

Responsibilities:

* split host byte extents into logical pages;
* expand writes to the device's internal **mapping unit** and perform
  read-modify-write of partially covered pages/units — the physical root
  of the Alignment micro-benchmark's penalty (Section 5.2: Samsung's
  random writes go from 18 ms aligned to 32 ms unaligned);
* route pages through the RAM :class:`~repro.flashsim.cache.WriteBackCache`
  when the device has one;
* charge the direct-map lookup penalty for non-contiguous access
  (Section 2.2: the map may not fit in controller RAM);
* maintain the *verification shadow* — the expected token of every
  logical page — so every read checks read-your-writes for free.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AddressError, FTLError, SnapshotError
from repro.flashsim.cache import WriteBackCache
from repro.flashsim.chip import ERASED
from repro.flashsim.ftl.base import BaseFTL
from repro.flashsim.geometry import Geometry
from repro.flashsim.timing import CostAccumulator


@dataclass(frozen=True)
class ControllerConfig:
    """Controller tuning.

    ``mapping_unit`` (bytes, 0 = one page) is the granularity at which
    the FTL's map is maintained: writes are expanded to whole units.
    ``cache_bytes`` (0 = none) enables the RAM write-back cache.
    ``verify`` keeps the read-your-writes shadow check on (cheap; only
    benchmarks chasing raw simulator speed would disable it).
    """

    mapping_unit: int = 0
    cache_bytes: int = 0
    cache_low_watermark: float = 0.75
    verify: bool = True

    def __post_init__(self) -> None:
        if self.mapping_unit < 0 or self.cache_bytes < 0:
            raise FTLError("mapping_unit and cache_bytes must be >= 0")


class Controller:
    """Splits, expands and verifies host IOs on their way to the FTL."""

    def __init__(
        self,
        geometry: Geometry,
        ftl: BaseFTL,
        config: ControllerConfig | None = None,
    ) -> None:
        self.geometry = geometry
        self.ftl = ftl
        self.config = config or ControllerConfig()
        unit = self.config.mapping_unit or geometry.page_size
        if unit % geometry.page_size != 0:
            raise FTLError(
                f"mapping_unit ({unit}) must be a multiple of the page size "
                f"({geometry.page_size})"
            )
        self.mapping_unit = unit
        self.cache: WriteBackCache | None = None
        if self.config.cache_bytes:
            self.cache = WriteBackCache(
                geometry, self.config.cache_bytes, self.config.cache_low_watermark
            )
        self._shadow = np.full(geometry.logical_pages, ERASED, dtype=np.int64)
        self._next_token = 1
        self._last_end_page: int | None = None
        #: when False, reads and writes take the scalar per-page reference
        #: path regardless of the FTL's batch capability (equivalence suite).
        self.batch_enabled = True
        #: minimum span (pages) for the batch *read* path: the array
        #: gather has a flat ~13 us overhead while scalar reads cost
        #: ~1 us/page, so short reads are faster page by page (measured
        #: crossover ≈ 14 pages on the page-map FTL)
        self.batch_read_min_pages = 16

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _check_extent(self, lba: int, size: int) -> None:
        if size <= 0:
            raise AddressError(f"IO size must be positive, got {size}")
        if not self.geometry.contains(lba, size):
            raise AddressError(
                f"extent [{lba}, +{size}) exceeds logical capacity "
                f"{self.geometry.logical_bytes}"
            )

    def _charge_map_lookup(self, first_page: int, last_page: int, cost: CostAccumulator) -> None:
        """Sequentially-contiguous access hits the cached map segment;
        a jump needs a map segment swap (Section 2.2)."""
        if self._last_end_page is not None and first_page != self._last_end_page:
            cost.map_misses += 1
        self._last_end_page = last_page + 1

    def _fresh_token(self) -> int:
        token = self._next_token
        self._next_token += 1
        return token

    def _read_page_token(self, lpage: int, cost: CostAccumulator) -> int:
        if self.cache is not None:
            cached = self.cache.read(lpage)
            if cached is not None:
                return cached
        return self.ftl.read_page(lpage, cost)

    def _rmw_token(self, lpage: int, cost: CostAccumulator) -> int:
        """Read-modify-write token for a partially covered page: keep the
        current content, minting a fresh token only for never-written pages."""
        token = self._read_page_token(lpage, cost)
        if token == ERASED:
            token = self._fresh_token()
            self._shadow[lpage] = token
        return token

    # ------------------------------------------------------------------
    # host operations
    # ------------------------------------------------------------------

    def read(self, lba: int, size: int, cost: CostAccumulator) -> None:
        """Service a host read, verifying every page against the shadow."""
        self._check_extent(lba, size)
        span = self.geometry.page_span(lba, size)
        self._charge_map_lookup(span.start, span.stop - 1, cost)
        if (
            self.batch_enabled
            and self.ftl.batch_read_capable
            and self.cache is None
            and span.stop - span.start >= self.batch_read_min_pages
        ):
            lpages = np.arange(span.start, span.stop, dtype=np.int64)
            tokens = self.ftl.read_pages(lpages, cost, ascending=True)
            if self.config.verify:
                expected = self._shadow[span.start : span.stop]
                if not np.array_equal(tokens, expected):
                    bad = int(np.flatnonzero(tokens != expected)[0])
                    raise FTLError(
                        f"read-your-writes violation at logical page {span.start + bad}: "
                        f"device returned token {int(tokens[bad])}, "
                        f"expected {int(expected[bad])}"
                    )
        else:
            for lpage in span:
                token = self._read_page_token(lpage, cost)
                if self.config.verify and token != int(self._shadow[lpage]):
                    raise FTLError(
                        f"read-your-writes violation at logical page {lpage}: "
                        f"device returned token {token}, expected {int(self._shadow[lpage])}"
                    )
        cost.bytes_transferred += size

    def write(self, lba: int, size: int, cost: CostAccumulator) -> None:
        """Service a host write.

        The extent is expanded to mapping-unit boundaries.  Pages fully
        covered by the host data get fresh tokens; padding and partially
        covered pages are read-modify-written, preserving their token
        (i.e. their logical content).
        """
        self._check_extent(lba, size)
        unit = self.mapping_unit
        expanded_start = (lba // unit) * unit
        expanded_end = -(-(lba + size) // unit) * unit
        expanded_end = min(expanded_end, self.geometry.logical_bytes)
        span = self.geometry.page_span(expanded_start, expanded_end - expanded_start)
        self._charge_map_lookup(span.start, span.stop - 1, cost)
        page_size = self.geometry.page_size
        if (
            self.batch_enabled
            and self.ftl.batch_write_capable
            and self.cache is None
            and span.stop - span.start > 1
        ):
            # Fully covered pages form one contiguous middle run: coverage
            # (lba <= page_start and page_end <= lba + size) is monotone in
            # lpage from both ends.  Partial edges keep the scalar RMW path;
            # the middle takes fresh tokens in one arange, preserving the
            # exact token-allocation order of the reference loop.
            cov_lo = max(span.start, -(-lba // page_size))
            cov_hi = min(span.stop, (lba + size) // page_size)
            if cov_lo >= cov_hi:
                cov_lo = cov_hi = span.start
            lpages = np.arange(span.start, span.stop, dtype=np.int64)
            if cov_lo == span.start and cov_hi == span.stop:
                # aligned whole-page extent: the fresh tokens ARE the run
                tokens = np.arange(
                    self._next_token, self._next_token + lpages.size, dtype=np.int64
                )
                self._next_token += lpages.size
                self._shadow[span.start : span.stop] = tokens
            else:
                tokens = np.empty(lpages.size, dtype=np.int64)
                for lpage in range(span.start, cov_lo):
                    tokens[lpage - span.start] = self._rmw_token(lpage, cost)
                count = cov_hi - cov_lo
                if count > 0:
                    fresh = np.arange(
                        self._next_token, self._next_token + count, dtype=np.int64
                    )
                    self._next_token += count
                    self._shadow[cov_lo:cov_hi] = fresh
                    tokens[cov_lo - span.start : cov_hi - span.start] = fresh
                for lpage in range(cov_hi, span.stop):
                    tokens[lpage - span.start] = self._rmw_token(lpage, cost)
            self.ftl.write_run(lpages, tokens, cost, ascending=True)
        else:
            items: list[tuple[int, int]] = []
            for lpage in span:
                page_start = lpage * page_size
                fully_covered = (
                    lba <= page_start and page_start + page_size <= lba + size
                )
                if fully_covered:
                    token = self._fresh_token()
                    self._shadow[lpage] = token
                else:
                    # Read-modify-write: fetch the current content (a real
                    # physical read unless cached or never written).
                    token = self._read_page_token(lpage, cost)
                    if token == ERASED:
                        token = self._fresh_token()
                        self._shadow[lpage] = token
                items.append((lpage, token))
            if self.cache is not None:
                for lpage, token in items:
                    self.cache.write(lpage, token)
                self.cache.destage_if_needed(self.ftl, cost)
            else:
                self.ftl.write_pages(items, cost)
        self.ftl.note_io_boundary(lba + size, cost)
        cost.bytes_transferred += size

    # ------------------------------------------------------------------
    # snapshot / restore
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """Copy of the shadow, token counter, access history and cache."""
        return {
            "shadow": self._shadow.copy(),
            "next_token": self._next_token,
            "last_end_page": self._last_end_page,
            "cache": self.cache.snapshot() if self.cache is not None else None,
        }

    def restore(self, state: dict) -> None:
        """Reset the controller to a :meth:`snapshot`."""
        if (self.cache is None) != (state["cache"] is None):
            raise SnapshotError(
                "snapshot cache configuration does not match this controller"
            )
        self._shadow = state["shadow"].copy()
        self._next_token = state["next_token"]
        self._last_end_page = state["last_end_page"]
        if self.cache is not None:
            self.cache.restore(state["cache"])

    def update_digest(self, hasher) -> None:
        """Feed the logical-content shadow into a hash (fingerprints)."""
        hasher.update(self._shadow.tobytes())
        hasher.update(str(self._next_token).encode())

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------

    def metrics(self) -> dict[str, float]:
        """Cumulative controller-layer counters (the RAM cache's, today).

        Controllers without a write-back cache contribute nothing.
        """
        if self.cache is None:
            return {}
        return self.cache.metrics()

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------

    def flush_cache(self, cost: CostAccumulator) -> int:
        """Destage all dirty cache contents to flash."""
        if self.cache is None:
            return 0
        return self.cache.flush(self.ftl, cost)

    def reset_access_history(self) -> None:
        """Forget sequential-detection state (between runs)."""
        self._last_end_page = None

    def expected_token(self, lpage: int) -> int:
        """Shadow token of a logical page (test helper)."""
        return int(self._shadow[lpage])
