"""The simulated flash block device.

:class:`FlashDevice` assembles chip + FTL + controller behind the block
interface the paper benchmarks: ``submit(lba, size, mode, now)``.  It
owns the conversion of physical work into simulated microseconds and the
**background reclamation engine** that turns host idle time into
deferred merges/GC — the machinery behind the paper's start-up phases
(Figure 3), Pause/Burst absorption (Table 3) and the lingering read
interference after random writes (Figure 5).

Background-time accounting: the device accumulates *credit* —
idle gaps at full rate, plus a fraction of read service time (the
controller can reclaim concurrently while streaming a read, but not
while programming host data).  Each credit window pays for whole
background units (one merge / one GC victim) at their true flash cost.
Credit left over after the queue drains is clamped so a long idle period
cannot subsidise future foreground work.
"""

from __future__ import annotations

import copy
import hashlib
import random
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

from repro.errors import AddressError, QueueError, SnapshotError
from repro.flashsim.chip import ChannelSet, FlashChip
from repro.flashsim.clock import EventTimeline
from repro.flashsim.controller import Controller
from repro.flashsim.ftl.base import BaseFTL
from repro.flashsim.geometry import Geometry
from repro.flashsim.recorder import IOEvent, attribute_io
from repro.flashsim.timing import CostAccumulator, TimingSpec
from repro.iotypes import CompletedIO, IORequest, Mode

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.flashsim.trace import IOTrace


@dataclass
class DeviceStats:
    """Aggregate counters over the device's lifetime."""

    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    busy_usec: float = 0.0
    background_units: int = 0
    background_usec: float = 0.0
    interfered_reads: int = 0
    queued_ios: int = 0
    queue_wait_usec: float = 0.0


@dataclass(frozen=True)
class NoiseSpec:
    """Measurement jitter on service times.

    Real hosts add OS and interconnect noise on top of the device's
    deterministic cost (the paper's repeat runs agreed only within 5%).
    ``jitter`` is the relative standard deviation of a log-normal-ish
    multiplicative factor; 0 disables noise (the default — deterministic
    runs are what most tests want).  Noise is seeded per device, so a
    simulation stays reproducible.
    """

    jitter: float = 0.0
    seed: int = 12345

    def __post_init__(self) -> None:
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")


@dataclass(frozen=True)
class BackgroundPolicy:
    """How the device schedules deferred reclamation.

    ``read_concurrency`` is the fraction of read service time usable for
    background work; ``read_interference`` multiplies the response time
    of reads issued while the background queue is non-empty (Figure 5's
    lingering effect).  Devices without asynchronous reclamation keep the
    FTL's background disabled and never enter this path.
    """

    read_concurrency: float = 1.0
    read_interference: float = 1.6
    max_leftover_credit_usec: float = 2_000.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.read_concurrency <= 1.0:
            raise ValueError("read_concurrency must be in [0, 1]")
        if self.read_interference < 1.0:
            raise ValueError("read_interference must be >= 1")


@dataclass(slots=True)
class QueuedCompletion:
    """One in-flight (or just-completed) queued IO.

    ``tag`` is the host's submission index; completions may pop out of
    submission order, and the tag is how the host re-sorts them into
    trace rows.  ``channel`` records the dispatch decision for
    introspection; ``cost`` is the usual physical-work tally.
    """

    tag: int
    lba: int
    size: int
    write: bool
    scheduled_at: float
    submitted_at: float
    started_at: float
    completed_at: float
    channel: int
    cost: CostAccumulator


class CommandQueue:
    """NCQ-style submission/completion queue of one device.

    Holds up to ``depth`` in-flight IOs as completion events on an
    :class:`~repro.flashsim.clock.EventTimeline`; completions pop in
    ``(completed_at, submission order)`` order, so out-of-order channel
    overlap stays deterministic.  The queue also integrates
    depth-over-time occupancy counters (monotone, sampled through
    :meth:`FlashDevice.metrics`): ``depth_time_usec / active_usec`` is
    the mean in-flight depth while any IO was outstanding, and the
    ``at_depth_{d}`` counters histogram the depth seen at each
    submission.
    """

    __slots__ = (
        "depth",
        "timeline",
        "_last_event",
        "_depth_time",
        "_active_time",
        "_at_depth",
        "_submitted",
    )

    def __init__(self, depth: int) -> None:
        if depth < 1:
            raise QueueError("queue depth must be >= 1")
        self.depth = depth
        self.timeline = EventTimeline()
        self._last_event = 0.0
        self._depth_time = 0.0
        self._active_time = 0.0
        self._at_depth: dict[int, int] = {}
        self._submitted = 0

    @property
    def in_flight(self) -> int:
        """Number of submitted-but-not-popped IOs."""
        return len(self.timeline)

    def has_slot(self) -> bool:
        """Whether another IO may be submitted right now."""
        return len(self.timeline) < self.depth

    def _advance(self, when: float) -> None:
        # completions can be observed after later submissions (the host
        # pops lazily), so a backwards ``when`` is simply not integrated
        if when <= self._last_event:
            return
        pending = len(self.timeline)
        if pending:
            elapsed = when - self._last_event
            self._depth_time += pending * elapsed
            self._active_time += elapsed
        self._last_event = when

    def push(self, entry: QueuedCompletion) -> None:
        """Queue a dispatched IO until its completion is popped."""
        if not self.has_slot():
            raise QueueError(
                f"device queue full ({self.depth} IOs in flight)"
            )
        self._advance(entry.submitted_at)
        self.timeline.schedule(entry.completed_at, entry)
        pending = len(self.timeline)
        self._at_depth[pending] = self._at_depth.get(pending, 0) + 1
        self._submitted += 1

    def peek_time(self) -> float | None:
        """Completion time of the earliest pending IO (None when idle)."""
        return self.timeline.peek_time()

    def pop(self) -> QueuedCompletion:
        """Remove and return the earliest completion."""
        when = self.timeline.peek_time()
        if when is None:
            raise QueueError("no completions pending")
        self._advance(when)
        _when, entry = self.timeline.pop()
        return entry

    def metrics(self) -> dict[str, float]:
        """Monotone occupancy counters (``device.queue.*`` namespace)."""
        counts = {
            "device.queue.submitted": float(self._submitted),
            "device.queue.depth_time_usec": self._depth_time,
            "device.queue.active_usec": self._active_time,
        }
        for pending, times in self._at_depth.items():
            counts[f"device.queue.at_depth_{pending}"] = float(times)
        return counts

    def pending_digest(self) -> tuple:
        """In-flight IOs as ``(tag, completed_at)`` pairs, event order
        (part of the device fingerprint)."""
        return tuple(
            (entry.tag, when)
            for when, _seq, entry in sorted(
                self.timeline._heap, key=lambda item: item[:2]
            )
        )

    def reset(self) -> None:
        """Forget all queue state (fresh device)."""
        self.timeline = EventTimeline()
        self._last_event = 0.0
        self._depth_time = 0.0
        self._active_time = 0.0
        self._at_depth = {}
        self._submitted = 0

    def snapshot(self) -> tuple:
        """Deep, picklable copy of the queue state."""
        return (
            copy.deepcopy(self.timeline.snapshot()),
            self._last_event,
            self._depth_time,
            self._active_time,
            dict(self._at_depth),
            self._submitted,
        )

    def restore(self, state: tuple) -> None:
        """Reset the queue to a :meth:`snapshot` (copying, so the
        snapshot stays reusable)."""
        timeline_state, last, depth_time, active, at_depth, submitted = state
        self.timeline = EventTimeline()
        self.timeline.restore(copy.deepcopy(timeline_state))
        self._last_event = last
        self._depth_time = depth_time
        self._active_time = active
        self._at_depth = dict(at_depth)
        self._submitted = submitted


class FlashDevice:
    """A black-box flash device with the paper's block interface."""

    def __init__(
        self,
        name: str,
        geometry: Geometry,
        timing: TimingSpec,
        chip: FlashChip,
        ftl: BaseFTL,
        controller: Controller,
        background: BackgroundPolicy | None = None,
        noise: NoiseSpec | None = None,
        queue_depth: int = 32,
    ) -> None:
        if queue_depth < 1:
            raise QueueError("device queue_depth must be >= 1")
        self.name = name
        self.geometry = geometry
        self.timing = timing
        self.chip = chip
        self.ftl = ftl
        self.controller = controller
        self.background = background or BackgroundPolicy()
        self.noise = noise or NoiseSpec()
        self.queue_depth = queue_depth
        self._noise_rng = random.Random(self.noise.seed)
        self.stats = DeviceStats()
        self._busy_until = 0.0
        self._bg_credit = 0.0
        self._channels = ChannelSet(timing.channels)
        self._queue = CommandQueue(queue_depth)
        self._recorder = None  # opt-in flight recorder (observability)

    # ------------------------------------------------------------------
    # the block interface
    # ------------------------------------------------------------------

    @property
    def capacity(self) -> int:
        """Logical capacity in bytes."""
        return self.geometry.logical_bytes

    def _dispatch(
        self, lba: int, size: int, write: bool, now: float, overlap: bool
    ) -> tuple[float, float, CostAccumulator, int]:
        """Dispatch one IO; returns ``(start, completion, cost, channel)``.

        The single code path behind :meth:`submit`, :meth:`submit_into`
        and :meth:`submit_async` — the operation order (channel pick,
        queueing, background grants, noise draw, accounting) is
        identical for all three, so every pipeline evolves device state
        bit-identically.

        Dispatch always picks the earliest-free channel.  ``overlap``
        decides the start floor: the synchronous paths serialise on the
        whole-device busy horizon (one IO in flight, exactly the
        pre-queue model); the async path serialises only on the chosen
        channel, which is what lets queued IOs overlap.  At queue depth
        1 the async host never submits before the previous completion,
        so both floors collapse to ``now`` and the two models agree
        bit for bit.
        """
        if not self.geometry.contains(lba, size):
            raise AddressError(
                f"IO [{lba}, +{size}) outside device capacity "
                f"{self.geometry.logical_bytes}"
            )
        channel = self._channels.pick()
        floor = self._channels.free_at(channel) if overlap else self._busy_until
        start = max(now, floor)
        if start > now:
            self.stats.queued_ios += 1
            self.stats.queue_wait_usec += start - now
        self._grant_background(max(0.0, start - self._busy_until))

        recorder = self._recorder
        cost = CostAccumulator()
        if recorder is not None:
            cost.scopes = []  # enable provenance scopes for this IO
        interfered = False
        if not write:
            self.controller.read(lba, size, cost)
            service = service_base = cost.total(self.timing)
            if self.ftl.background_work_pending():
                service *= self.background.read_interference
                interfered = True
            self._grant_background(service * self.background.read_concurrency)
        else:
            self.controller.write(lba, size, cost)
            service = service_base = cost.total(self.timing)
        service_scaled = service
        if self.noise.jitter:
            # multiplicative measurement noise, floored so service time
            # never collapses below half its deterministic cost
            factor = self._noise_rng.gauss(1.0, self.noise.jitter)
            service *= max(0.5, factor)

        completion = start + service
        self._channels.occupy(channel, completion)
        if completion > self._busy_until:
            self._busy_until = completion
        self._account(write, size, service, interfered)
        if recorder is not None:
            self._record_flight(
                recorder, lba, size, write, now, start, completion,
                cost, service_base, service_scaled, service, channel,
            )
        return start, completion, cost, channel

    def _service(
        self, lba: int, size: int, write: bool, now: float
    ) -> tuple[float, float, CostAccumulator]:
        """Synchronous service (one IO in flight); see :meth:`_dispatch`."""
        start, completion, cost, _channel = self._dispatch(
            lba, size, write, now, overlap=False
        )
        return start, completion, cost

    def submit(self, request: IORequest, now: float) -> CompletedIO:
        """Submit one IO at simulated time ``now`` and service it.

        The device is a single queue: service starts when it falls idle.
        Response time = completion − submission, queueing included.
        """
        start, completion, cost = self._service(
            request.lba, request.size, request.mode is Mode.WRITE, now
        )
        return CompletedIO(
            request=request,
            submitted_at=now,
            started_at=start,
            completed_at=completion,
            cost=cost,
        )

    def submit_into(
        self,
        trace: "IOTrace",
        index: int,
        lba: int,
        size: int,
        write: bool,
        now: float,
        scheduled_at: float,
    ) -> float:
        """Service one IO and record it straight into a columnar trace.

        The hot-path equivalent of :meth:`submit` used by the hosts'
        program runners: no :class:`~repro.iotypes.IORequest` /
        :class:`~repro.iotypes.CompletedIO` objects are built, the row
        lands in ``trace`` as scalars.  Returns the completion time.
        """
        start, completion, cost = self._service(lba, size, write, now)
        trace.record(
            index, lba, size, write, scheduled_at, now, start, completion, cost
        )
        return completion

    # ------------------------------------------------------------------
    # the NCQ interface (submission/completion queue)
    # ------------------------------------------------------------------

    def submit_async(
        self,
        lba: int,
        size: int,
        write: bool,
        now: float,
        tag: int,
        scheduled_at: float | None = None,
    ) -> QueuedCompletion:
        """Queue one IO without blocking; raises when the queue is full.

        The IO is dispatched immediately (FTL and controller state
        mutate in submission order — the command queue reorders
        *completions*, never the logical writes themselves) onto the
        earliest-free channel, and a completion event is queued for the
        host to pop.  Returns the in-flight entry; its ``completed_at``
        is already final, but the host must still
        :meth:`pop_next_completion` to retire it from the queue.
        """
        if not self._queue.has_slot():
            raise QueueError(
                f"device queue full ({self.queue_depth} IOs in flight)"
            )
        start, completion, cost, channel = self._dispatch(
            lba, size, write, now, overlap=True
        )
        entry = QueuedCompletion(
            tag=tag,
            lba=lba,
            size=size,
            write=write,
            scheduled_at=now if scheduled_at is None else scheduled_at,
            submitted_at=now,
            started_at=start,
            completed_at=completion,
            channel=channel,
            cost=cost,
        )
        self._queue.push(entry)
        return entry

    def pop_next_completion(self) -> QueuedCompletion:
        """Block until the earliest queued IO completes and return it.

        Completions pop in ``(completed_at, submission order)`` order;
        raises :class:`~repro.errors.QueueError` when nothing is in
        flight.
        """
        return self._queue.pop()

    def poll_completions(self, until: float) -> list[QueuedCompletion]:
        """Pop every queued IO that completes at or before ``until``."""
        done: list[QueuedCompletion] = []
        while True:
            when = self._queue.peek_time()
            if when is None or when > until:
                return done
            done.append(self._queue.pop())

    @property
    def in_flight(self) -> int:
        """Number of queued IOs not yet popped by the host."""
        return self._queue.in_flight

    def read(self, lba: int, size: int, now: float = 0.0) -> CompletedIO:
        """Convenience synchronous read (examples / tests)."""
        return self.submit(IORequest(0, lba, size, Mode.READ, now), now)

    def write(self, lba: int, size: int, now: float = 0.0) -> CompletedIO:
        """Convenience synchronous write (examples / tests)."""
        return self.submit(IORequest(0, lba, size, Mode.WRITE, now), now)

    # ------------------------------------------------------------------
    # background engine
    # ------------------------------------------------------------------

    def _grant_background(self, usec: float) -> None:
        """Feed ``usec`` of reclamation-capable time to the FTL."""
        if usec <= 0.0:
            return
        self._bg_credit += usec
        while self._bg_credit > 0.0 and self.ftl.background_work_pending():
            unit = self.ftl.do_background_unit()
            if unit is None:
                break
            spent = unit.total(self.timing, include_overhead=False)
            self._bg_credit -= spent
            self.stats.background_units += 1
            self.stats.background_usec += spent
        # Positive leftover credit must not subsidise future foreground
        # phases; negative credit (the last unit overran its window) is
        # real debt and must be paid in full by later grants — clamping
        # it would let interleaved reads absorb merges below cost.
        self._bg_credit = min(self._bg_credit, self.background.max_leftover_credit_usec)

    def background_pending(self) -> bool:
        """Whether deferred device work exists right now."""
        return self.ftl.background_work_pending()

    def idle(self, until: float) -> None:
        """Declare the device idle up to simulated time ``until``.

        Equivalent to the methodology's pause between runs: background
        work proceeds during the gap.
        """
        if until > self._busy_until:
            self._grant_background(until - self._busy_until)
            self._busy_until = until

    def drain(self) -> CostAccumulator:
        """Force-complete all deferred work and flush the RAM cache.

        Used by state enforcement and between experiments when the
        methodology's pause is long enough to rest the device fully.
        The command queue must be empty: queued IOs belong to a host
        that has not observed their completions yet, and silently
        discarding them would corrupt its trace.
        """
        if self._queue.in_flight:
            raise QueueError(
                f"cannot drain with {self._queue.in_flight} IOs in flight; "
                "pop all completions first"
            )
        total = CostAccumulator()
        self.controller.flush_cache(total)
        total.add(self.ftl.drain_background())
        self._bg_credit = 0.0
        return total

    # ------------------------------------------------------------------
    # flight recorder (opt-in per-IO latency attribution)
    # ------------------------------------------------------------------

    @property
    def recorder(self):
        """The attached flight recorder, or ``None``."""
        return self._recorder

    def attach_recorder(self, recorder) -> None:
        """Enable per-IO latency attribution.

        While attached, every dispatched IO is decomposed into named
        components (see :mod:`repro.flashsim.recorder`), the
        decomposition is stamped on the IO's cost accumulator (from
        where traces pick it up) and an event is pushed into the
        recorder's ring.  The recorder is observability, not state: it
        never changes timing, is excluded from snapshots and
        fingerprints, and detaching restores the zero-cost path.
        """
        self._recorder = recorder

    def detach_recorder(self):
        """Disable attribution; returns the recorder that was attached."""
        recorder, self._recorder = self._recorder, None
        return recorder

    def _record_flight(
        self,
        recorder,
        lba: int,
        size: int,
        write: bool,
        now: float,
        start: float,
        completion: float,
        cost: CostAccumulator,
        service_base: float,
        service_scaled: float,
        service_final: float,
        channel: int,
    ) -> None:
        """Decompose one dispatched IO and record it (recorder path)."""
        attribution = attribute_io(
            self.timing,
            cost,
            wait=start - now,
            service_base=service_base,
            service_scaled=service_scaled,
            service_final=service_final,
            response=completion - now,
            channel=channel,
        )
        cost.attribution = attribution
        recorder.record(
            IOEvent(
                lba=lba,
                size=size,
                write=write,
                submitted_at=now,
                started_at=start,
                completed_at=completion,
                channel=channel,
                components=attribution[1:],
            )
        )

    # ------------------------------------------------------------------
    # snapshot / restore
    # ------------------------------------------------------------------

    def snapshot(self) -> "DeviceSnapshot":
        """Capture the complete device state as an independent copy.

        The snapshot composes every stateful layer — chip, FTL,
        controller (with its RAM cache), device counters, the busy
        horizon, the background-credit account and the noise RNG — so a
        later :meth:`restore` resumes *bit-identical* behaviour.  It is
        picklable, which lets campaign worker processes restore an
        enforced state without re-paying for the enforcement.
        """
        from repro.flashsim.snapshot import DeviceSnapshot

        return DeviceSnapshot(
            device_name=self.name,
            logical_bytes=self.geometry.logical_bytes,
            physical_blocks=self.geometry.physical_blocks,
            ftl_type=type(self.ftl).__name__,
            chip=self.chip.snapshot(),
            ftl=self.ftl.snapshot(),
            controller=self.controller.snapshot(),
            stats=replace(self.stats),
            busy_until=self._busy_until,
            bg_credit=self._bg_credit,
            noise_state=self._noise_rng.getstate(),
            channel_busy=self._channels.snapshot(),
            queue=self._queue.snapshot(),
        )

    def restore(self, state: "DeviceSnapshot") -> None:
        """Reset the device to a :meth:`snapshot`.

        The snapshot must come from a device of the same shape: same
        geometry dimensions and FTL family (and, transitively, the same
        cache configuration).  The snapshot itself is left untouched, so
        it can be restored again.
        """
        if (
            state.logical_bytes != self.geometry.logical_bytes
            or state.physical_blocks != self.geometry.physical_blocks
        ):
            raise SnapshotError(
                f"snapshot of {state.device_name!r} "
                f"({state.logical_bytes} logical bytes, "
                f"{state.physical_blocks} blocks) does not fit device "
                f"{self.name!r} ({self.geometry.logical_bytes} bytes, "
                f"{self.geometry.physical_blocks} blocks)"
            )
        if state.ftl_type != type(self.ftl).__name__:
            raise SnapshotError(
                f"snapshot carries {state.ftl_type} state but this device "
                f"runs {type(self.ftl).__name__}"
            )
        self.chip.restore(state.chip)
        self.ftl.restore(state.ftl)
        self.controller.restore(state.controller)
        self.stats = replace(state.stats)
        self._busy_until = state.busy_until
        self._bg_credit = state.bg_credit
        self._noise_rng.setstate(state.noise_state)
        if state.channel_busy:
            if len(state.channel_busy) != len(self._channels):
                raise SnapshotError(
                    f"snapshot carries {len(state.channel_busy)} channel "
                    f"horizons but this device has {len(self._channels)} "
                    "channels"
                )
            self._channels.restore(state.channel_busy)
        else:  # pre-queue snapshot: all channel state folded in busy_until
            self._channels.reset()
        if state.queue is not None:
            self._queue.restore(state.queue)
        else:
            self._queue.reset()

    def fingerprint(self) -> str:
        """Content hash of the current device state.

        Covers the physical flash arrays, the logical-content shadow and
        the busy horizon — everything that determines future timing for
        a deterministic device.  Used as the state component of run-cache
        keys: two devices with equal fingerprints (same profile) produce
        identical measurements for identical specs.
        """
        hasher = hashlib.sha256()
        hasher.update(self.name.encode())
        hasher.update(str(self.geometry.logical_bytes).encode())
        self.chip.update_digest(hasher)
        self.controller.update_digest(hasher)
        hasher.update(repr((self._busy_until, self._bg_credit)).encode())
        # per-channel horizons and any still-queued IOs determine future
        # timing too; the queue's occupancy *counters* are observability,
        # not state, and stay out (a drained async device fingerprints
        # identically to its synchronous twin)
        hasher.update(repr(self._channels.snapshot()).encode())
        hasher.update(repr(self._queue.pending_digest()).encode())
        return hasher.hexdigest()

    # ------------------------------------------------------------------
    # accounting / introspection
    # ------------------------------------------------------------------

    def _account(
        self, write: bool, size: int, service: float, interfered: bool
    ) -> None:
        self.stats.busy_usec += service
        if not write:
            self.stats.reads += 1
            self.stats.bytes_read += size
            if interfered:
                self.stats.interfered_reads += 1
        else:
            self.stats.writes += 1
            self.stats.bytes_written += size

    def metrics(self) -> dict[str, float]:
        """Cumulative counters for every layer as one flat map.

        Composes the device's own IO accounting with the chip's
        operation counters, the FTL's reclamation counters (under an
        ``ftl.`` prefix) and the controller/cache traffic.  All values
        are monotonic, so the campaign executor samples this at run and
        cell boundaries and subtracts — the simulator's per-IO hot path
        carries no extra instrumentation.
        """
        counts = {
            "device.reads": float(self.stats.reads),
            "device.writes": float(self.stats.writes),
            "device.bytes_read": float(self.stats.bytes_read),
            "device.bytes_written": float(self.stats.bytes_written),
            "device.busy_usec": self.stats.busy_usec,
            "device.background_units": float(self.stats.background_units),
            "device.background_usec": self.stats.background_usec,
            "device.interfered_reads": float(self.stats.interfered_reads),
            "device.queued_ios": float(self.stats.queued_ios),
            "device.queue_wait_usec": self.stats.queue_wait_usec,
        }
        counts.update(self._queue.metrics())
        counts.update(self.chip.metrics())
        counts.update(
            (f"ftl.{name}", value) for name, value in self.ftl.metrics().items()
        )
        counts.update(self.controller.metrics())
        return counts

    @property
    def busy_until(self) -> float:
        """Simulated time at which the device falls idle."""
        return self._busy_until

    def check_invariants(self) -> None:
        """Delegate to the FTL's consistency checks (tests)."""
        self.ftl.check_invariants()

    def describe(self) -> str:
        """One-line device description (name, geometry, FTL)."""
        return f"{self.name}: {self.geometry.describe()}, FTL={type(self.ftl).__name__}"
