"""The simulated flash block device.

:class:`FlashDevice` assembles chip + FTL + controller behind the block
interface the paper benchmarks: ``submit(lba, size, mode, now)``.  It
owns the conversion of physical work into simulated microseconds and the
**background reclamation engine** that turns host idle time into
deferred merges/GC — the machinery behind the paper's start-up phases
(Figure 3), Pause/Burst absorption (Table 3) and the lingering read
interference after random writes (Figure 5).

Background-time accounting: the device accumulates *credit* —
idle gaps at full rate, plus a fraction of read service time (the
controller can reclaim concurrently while streaming a read, but not
while programming host data).  Each credit window pays for whole
background units (one merge / one GC victim) at their true flash cost.
Credit left over after the queue drains is clamped so a long idle period
cannot subsidise future foreground work.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

from repro.errors import AddressError, SnapshotError
from repro.flashsim.chip import FlashChip
from repro.flashsim.controller import Controller
from repro.flashsim.ftl.base import BaseFTL
from repro.flashsim.geometry import Geometry
from repro.flashsim.timing import CostAccumulator, TimingSpec
from repro.iotypes import CompletedIO, IORequest, Mode

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.flashsim.trace import IOTrace


@dataclass
class DeviceStats:
    """Aggregate counters over the device's lifetime."""

    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    busy_usec: float = 0.0
    background_units: int = 0
    background_usec: float = 0.0
    interfered_reads: int = 0
    queued_ios: int = 0
    queue_wait_usec: float = 0.0


@dataclass(frozen=True)
class NoiseSpec:
    """Measurement jitter on service times.

    Real hosts add OS and interconnect noise on top of the device's
    deterministic cost (the paper's repeat runs agreed only within 5%).
    ``jitter`` is the relative standard deviation of a log-normal-ish
    multiplicative factor; 0 disables noise (the default — deterministic
    runs are what most tests want).  Noise is seeded per device, so a
    simulation stays reproducible.
    """

    jitter: float = 0.0
    seed: int = 12345

    def __post_init__(self) -> None:
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")


@dataclass(frozen=True)
class BackgroundPolicy:
    """How the device schedules deferred reclamation.

    ``read_concurrency`` is the fraction of read service time usable for
    background work; ``read_interference`` multiplies the response time
    of reads issued while the background queue is non-empty (Figure 5's
    lingering effect).  Devices without asynchronous reclamation keep the
    FTL's background disabled and never enter this path.
    """

    read_concurrency: float = 1.0
    read_interference: float = 1.6
    max_leftover_credit_usec: float = 2_000.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.read_concurrency <= 1.0:
            raise ValueError("read_concurrency must be in [0, 1]")
        if self.read_interference < 1.0:
            raise ValueError("read_interference must be >= 1")


class FlashDevice:
    """A black-box flash device with the paper's block interface."""

    def __init__(
        self,
        name: str,
        geometry: Geometry,
        timing: TimingSpec,
        chip: FlashChip,
        ftl: BaseFTL,
        controller: Controller,
        background: BackgroundPolicy | None = None,
        noise: NoiseSpec | None = None,
    ) -> None:
        self.name = name
        self.geometry = geometry
        self.timing = timing
        self.chip = chip
        self.ftl = ftl
        self.controller = controller
        self.background = background or BackgroundPolicy()
        self.noise = noise or NoiseSpec()
        self._noise_rng = random.Random(self.noise.seed)
        self.stats = DeviceStats()
        self._busy_until = 0.0
        self._bg_credit = 0.0

    # ------------------------------------------------------------------
    # the block interface
    # ------------------------------------------------------------------

    @property
    def capacity(self) -> int:
        """Logical capacity in bytes."""
        return self.geometry.logical_bytes

    def _service(
        self, lba: int, size: int, write: bool, now: float
    ) -> tuple[float, float, CostAccumulator]:
        """Service one IO; returns ``(start, completion, cost)``.

        The single code path behind :meth:`submit` and
        :meth:`submit_into` — the operation order (queueing, background
        grants, noise draw, accounting) is identical for both, so the
        columnar and object-based pipelines evolve device state
        bit-identically.
        """
        if not self.geometry.contains(lba, size):
            raise AddressError(
                f"IO [{lba}, +{size}) outside device capacity "
                f"{self.geometry.logical_bytes}"
            )
        start = max(now, self._busy_until)
        if start > now:
            self.stats.queued_ios += 1
            self.stats.queue_wait_usec += start - now
        self._grant_background(max(0.0, start - self._busy_until))

        cost = CostAccumulator()
        interfered = False
        if not write:
            self.controller.read(lba, size, cost)
            service = cost.total(self.timing)
            if self.ftl.background_work_pending():
                service *= self.background.read_interference
                interfered = True
            self._grant_background(service * self.background.read_concurrency)
        else:
            self.controller.write(lba, size, cost)
            service = cost.total(self.timing)
        if self.noise.jitter:
            # multiplicative measurement noise, floored so service time
            # never collapses below half its deterministic cost
            factor = self._noise_rng.gauss(1.0, self.noise.jitter)
            service *= max(0.5, factor)

        completion = start + service
        self._busy_until = completion
        self._account(write, size, service, interfered)
        return start, completion, cost

    def submit(self, request: IORequest, now: float) -> CompletedIO:
        """Submit one IO at simulated time ``now`` and service it.

        The device is a single queue: service starts when it falls idle.
        Response time = completion − submission, queueing included.
        """
        start, completion, cost = self._service(
            request.lba, request.size, request.mode is Mode.WRITE, now
        )
        return CompletedIO(
            request=request,
            submitted_at=now,
            started_at=start,
            completed_at=completion,
            cost=cost,
        )

    def submit_into(
        self,
        trace: "IOTrace",
        index: int,
        lba: int,
        size: int,
        write: bool,
        now: float,
        scheduled_at: float,
    ) -> float:
        """Service one IO and record it straight into a columnar trace.

        The hot-path equivalent of :meth:`submit` used by the hosts'
        program runners: no :class:`~repro.iotypes.IORequest` /
        :class:`~repro.iotypes.CompletedIO` objects are built, the row
        lands in ``trace`` as scalars.  Returns the completion time.
        """
        start, completion, cost = self._service(lba, size, write, now)
        trace.record(
            index, lba, size, write, scheduled_at, now, start, completion, cost
        )
        return completion

    def read(self, lba: int, size: int, now: float = 0.0) -> CompletedIO:
        """Convenience synchronous read (examples / tests)."""
        return self.submit(IORequest(0, lba, size, Mode.READ, now), now)

    def write(self, lba: int, size: int, now: float = 0.0) -> CompletedIO:
        """Convenience synchronous write (examples / tests)."""
        return self.submit(IORequest(0, lba, size, Mode.WRITE, now), now)

    # ------------------------------------------------------------------
    # background engine
    # ------------------------------------------------------------------

    def _grant_background(self, usec: float) -> None:
        """Feed ``usec`` of reclamation-capable time to the FTL."""
        if usec <= 0.0:
            return
        self._bg_credit += usec
        while self._bg_credit > 0.0 and self.ftl.background_work_pending():
            unit = self.ftl.do_background_unit()
            if unit is None:
                break
            spent = unit.total(self.timing, include_overhead=False)
            self._bg_credit -= spent
            self.stats.background_units += 1
            self.stats.background_usec += spent
        # Positive leftover credit must not subsidise future foreground
        # phases; negative credit (the last unit overran its window) is
        # real debt and must be paid in full by later grants — clamping
        # it would let interleaved reads absorb merges below cost.
        self._bg_credit = min(self._bg_credit, self.background.max_leftover_credit_usec)

    def background_pending(self) -> bool:
        """Whether deferred device work exists right now."""
        return self.ftl.background_work_pending()

    def idle(self, until: float) -> None:
        """Declare the device idle up to simulated time ``until``.

        Equivalent to the methodology's pause between runs: background
        work proceeds during the gap.
        """
        if until > self._busy_until:
            self._grant_background(until - self._busy_until)
            self._busy_until = until

    def drain(self) -> CostAccumulator:
        """Force-complete all deferred work and flush the RAM cache.

        Used by state enforcement and between experiments when the
        methodology's pause is long enough to rest the device fully.
        """
        total = CostAccumulator()
        self.controller.flush_cache(total)
        total.add(self.ftl.drain_background())
        self._bg_credit = 0.0
        return total

    # ------------------------------------------------------------------
    # snapshot / restore
    # ------------------------------------------------------------------

    def snapshot(self) -> "DeviceSnapshot":
        """Capture the complete device state as an independent copy.

        The snapshot composes every stateful layer — chip, FTL,
        controller (with its RAM cache), device counters, the busy
        horizon, the background-credit account and the noise RNG — so a
        later :meth:`restore` resumes *bit-identical* behaviour.  It is
        picklable, which lets campaign worker processes restore an
        enforced state without re-paying for the enforcement.
        """
        from repro.flashsim.snapshot import DeviceSnapshot

        return DeviceSnapshot(
            device_name=self.name,
            logical_bytes=self.geometry.logical_bytes,
            physical_blocks=self.geometry.physical_blocks,
            ftl_type=type(self.ftl).__name__,
            chip=self.chip.snapshot(),
            ftl=self.ftl.snapshot(),
            controller=self.controller.snapshot(),
            stats=replace(self.stats),
            busy_until=self._busy_until,
            bg_credit=self._bg_credit,
            noise_state=self._noise_rng.getstate(),
        )

    def restore(self, state: "DeviceSnapshot") -> None:
        """Reset the device to a :meth:`snapshot`.

        The snapshot must come from a device of the same shape: same
        geometry dimensions and FTL family (and, transitively, the same
        cache configuration).  The snapshot itself is left untouched, so
        it can be restored again.
        """
        if (
            state.logical_bytes != self.geometry.logical_bytes
            or state.physical_blocks != self.geometry.physical_blocks
        ):
            raise SnapshotError(
                f"snapshot of {state.device_name!r} "
                f"({state.logical_bytes} logical bytes, "
                f"{state.physical_blocks} blocks) does not fit device "
                f"{self.name!r} ({self.geometry.logical_bytes} bytes, "
                f"{self.geometry.physical_blocks} blocks)"
            )
        if state.ftl_type != type(self.ftl).__name__:
            raise SnapshotError(
                f"snapshot carries {state.ftl_type} state but this device "
                f"runs {type(self.ftl).__name__}"
            )
        self.chip.restore(state.chip)
        self.ftl.restore(state.ftl)
        self.controller.restore(state.controller)
        self.stats = replace(state.stats)
        self._busy_until = state.busy_until
        self._bg_credit = state.bg_credit
        self._noise_rng.setstate(state.noise_state)

    def fingerprint(self) -> str:
        """Content hash of the current device state.

        Covers the physical flash arrays, the logical-content shadow and
        the busy horizon — everything that determines future timing for
        a deterministic device.  Used as the state component of run-cache
        keys: two devices with equal fingerprints (same profile) produce
        identical measurements for identical specs.
        """
        hasher = hashlib.sha256()
        hasher.update(self.name.encode())
        hasher.update(str(self.geometry.logical_bytes).encode())
        self.chip.update_digest(hasher)
        self.controller.update_digest(hasher)
        hasher.update(repr((self._busy_until, self._bg_credit)).encode())
        return hasher.hexdigest()

    # ------------------------------------------------------------------
    # accounting / introspection
    # ------------------------------------------------------------------

    def _account(
        self, write: bool, size: int, service: float, interfered: bool
    ) -> None:
        self.stats.busy_usec += service
        if not write:
            self.stats.reads += 1
            self.stats.bytes_read += size
            if interfered:
                self.stats.interfered_reads += 1
        else:
            self.stats.writes += 1
            self.stats.bytes_written += size

    def metrics(self) -> dict[str, float]:
        """Cumulative counters for every layer as one flat map.

        Composes the device's own IO accounting with the chip's
        operation counters, the FTL's reclamation counters (under an
        ``ftl.`` prefix) and the controller/cache traffic.  All values
        are monotonic, so the campaign executor samples this at run and
        cell boundaries and subtracts — the simulator's per-IO hot path
        carries no extra instrumentation.
        """
        counts = {
            "device.reads": float(self.stats.reads),
            "device.writes": float(self.stats.writes),
            "device.bytes_read": float(self.stats.bytes_read),
            "device.bytes_written": float(self.stats.bytes_written),
            "device.busy_usec": self.stats.busy_usec,
            "device.background_units": float(self.stats.background_units),
            "device.background_usec": self.stats.background_usec,
            "device.interfered_reads": float(self.stats.interfered_reads),
            "device.queued_ios": float(self.stats.queued_ios),
            "device.queue_wait_usec": self.stats.queue_wait_usec,
        }
        counts.update(self.chip.metrics())
        counts.update(
            (f"ftl.{name}", value) for name, value in self.ftl.metrics().items()
        )
        counts.update(self.controller.metrics())
        return counts

    @property
    def busy_until(self) -> float:
        """Simulated time at which the device falls idle."""
        return self._busy_until

    def check_invariants(self) -> None:
        """Delegate to the FTL's consistency checks (tests)."""
        self.ftl.check_invariants()

    def describe(self) -> str:
        """One-line device description (name, geometry, FTL)."""
        return f"{self.name}: {self.geometry.describe()}, FTL={type(self.ftl).__name__}"
