"""NAND flash chip model.

Implements the flash state machine of Section 2.1 of the paper:

* the basic operations are **read**, **program** and **erase** (not read
  and write);
* pages can only be programmed when erased, and only **sequentially
  within their block** (to limit program-disturb errors on NAND);
* erase works at block granularity only;
* blocks endure a bounded number of erase cycles (1e5 MLC / 1e6 SLC),
  after which they must be retired as *bad blocks*;
* chips may have two planes (even/odd blocks) usable in parallel.

The chip does not store user data bytes.  Instead each programmed page
holds an opaque integer *token* supplied by the FTL; tokens let the
device layer verify read-your-writes in tests without the memory cost of
real page contents.  Timing is *not* the chip's concern — the FTL counts
operations in a :class:`~repro.flashsim.timing.CostAccumulator` and the
device converts counts to microseconds.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Protocol

import numpy as np

from repro.errors import BadBlockError, EnduranceError, EraseError, ProgramError
from repro.flashsim.bitmap import pack_bits
from repro.flashsim.geometry import Geometry

#: token value of a page in the erased state
ERASED = -1

#: default endurance ratings (erase cycles per block), Section 2.1
SLC_ENDURANCE = 1_000_000
MLC_ENDURANCE = 100_000


class FaultInjector(Protocol):
    """Optional hook deciding whether a chip operation fails.

    Used by failure-injection tests; production profiles run without one.
    """

    def program_fails(self, block: int, page_offset: int) -> bool:
        """Return True to make this program operation fail."""
        ...

    def erase_fails(self, block: int) -> bool:
        """Return True to make this erase operation fail."""
        ...


@dataclass
class ChipStats:
    """Cumulative operation counters for one chip."""

    page_reads: int = 0
    page_programs: int = 0
    block_erases: int = 0
    program_failures: int = 0
    erase_failures: int = 0


class FlashChip:
    """One simulated NAND chip (or chip array) behind a controller.

    Parameters
    ----------
    geometry:
        Shared :class:`Geometry`; the chip provides ``geometry.physical_blocks``
        erase blocks.
    endurance:
        Erase cycles per block before the block wears out.
    fault_injector:
        Optional :class:`FaultInjector` for failure testing.
    """

    def __init__(
        self,
        geometry: Geometry,
        endurance: int = SLC_ENDURANCE,
        fault_injector: FaultInjector | None = None,
    ) -> None:
        if endurance <= 0:
            raise ValueError("endurance must be positive")
        self.geometry = geometry
        self.endurance = endurance
        self.fault_injector = fault_injector
        self.stats = ChipStats()
        nblocks = geometry.physical_blocks
        npages = geometry.physical_pages
        # token stored in each physical page; ERASED when erased
        self._tokens = np.full(npages, ERASED, dtype=np.int64)
        # next programmable page offset within each block (0..pages_per_block)
        self._write_point = np.zeros(nblocks, dtype=np.int32)
        self._erase_count = np.zeros(nblocks, dtype=np.int64)
        self._bad = np.zeros(nblocks, dtype=bool)

    # ------------------------------------------------------------------
    # validation helpers
    # ------------------------------------------------------------------

    def _check_block(self, block: int) -> None:
        if not 0 <= block < self.geometry.physical_blocks:
            raise EraseError(
                f"block {block} out of range 0..{self.geometry.physical_blocks - 1}"
            )

    def _check_page(self, block: int, page_offset: int) -> None:
        self._check_block(block)
        if not 0 <= page_offset < self.geometry.pages_per_block:
            raise ProgramError(
                f"page offset {page_offset} out of range "
                f"0..{self.geometry.pages_per_block - 1}"
            )

    def _page_index(self, block: int, page_offset: int) -> int:
        return block * self.geometry.pages_per_block + page_offset

    # ------------------------------------------------------------------
    # the three NAND operations
    # ------------------------------------------------------------------

    def read(self, block: int, page_offset: int) -> int:
        """Read the token of a physical page (ERASED if never programmed)."""
        self._check_page(block, page_offset)
        if self._bad[block]:
            raise BadBlockError(f"read from bad block {block}")
        self.stats.page_reads += 1
        return int(self._tokens[self._page_index(block, page_offset)])

    def program(self, block: int, page_offset: int, token: int) -> None:
        """Program one page with ``token``.

        Enforces NAND constraints: the page must be erased and must be
        the next page in program order within its block.
        """
        self._check_page(block, page_offset)
        if self._bad[block]:
            raise BadBlockError(f"program to bad block {block}")
        if token < 0:
            raise ProgramError("tokens must be non-negative")
        write_point = int(self._write_point[block])
        if page_offset != write_point:
            raise ProgramError(
                f"out-of-order program in block {block}: page {page_offset} "
                f"programmed while write point is {write_point} "
                "(NAND pages must be programmed sequentially within a block)"
            )
        if self.fault_injector is not None and self.fault_injector.program_fails(
            block, page_offset
        ):
            self.stats.program_failures += 1
            self.mark_bad(block)
            raise ProgramError(f"injected program failure in block {block}")
        self._tokens[self._page_index(block, page_offset)] = token
        self._write_point[block] = write_point + 1
        self.stats.page_programs += 1

    # ------------------------------------------------------------------
    # run (batch) operations — the vectorized hot path
    # ------------------------------------------------------------------

    def read_run(self, block: int, start: int, n: int) -> np.ndarray:
        """Read ``n`` consecutive pages of ``block`` starting at ``start``.

        One bounds/bad-block check for the whole run; returns a copy of
        the token slice (ERASED entries for never-programmed pages).
        Counts ``n`` page reads, exactly like ``n`` scalar :meth:`read`
        calls.
        """
        if n < 0:
            raise ProgramError(f"run length must be >= 0, got {n}")
        if n == 0:
            self._check_block(block)
            return np.empty(0, dtype=np.int64)
        self._check_page(block, start)
        self._check_page(block, start + n - 1)
        if self._bad[block]:
            raise BadBlockError(f"read from bad block {block}")
        self.stats.page_reads += n
        base = self._page_index(block, start)
        return self._tokens[base : base + n].copy()

    def read_many(self, ppages: np.ndarray) -> np.ndarray:
        """Gather-read arbitrary physical pages (one check per batch).

        ``ppages`` are global physical page indexes.  Equivalent to one
        scalar :meth:`read` per page: the same tokens come back and the
        same number of page reads is counted.
        """
        ppages = np.asarray(ppages, dtype=np.int64)
        if ppages.size == 0:
            return np.empty(0, dtype=np.int64)
        if int(ppages.min()) < 0 or int(ppages.max()) >= self.geometry.physical_pages:
            raise ProgramError("physical page index out of range in read_many")
        blocks = ppages // self.geometry.pages_per_block
        if self._bad[blocks].any():
            bad = int(blocks[self._bad[blocks]][0])
            raise BadBlockError(f"read from bad block {bad}")
        self.stats.page_reads += int(ppages.size)
        return self._tokens[ppages]

    def program_run(self, block: int, start: int, tokens: np.ndarray) -> None:
        """Program consecutive pages of ``block`` with a token array.

        Enforces the same NAND constraints as scalar :meth:`program`
        (erased pages, strictly sequential program order) with one check
        per run.  Under a fault injector the run decays to scalar
        programs so injected failures keep their exact semantics.
        """
        tokens = np.asarray(tokens, dtype=np.int64)
        n = int(tokens.size)
        if n == 0:
            self._check_block(block)
            return
        if self.fault_injector is not None:
            for i in range(n):
                self.program(block, start + i, int(tokens[i]))
            return
        if not 0 <= block < self.geometry.physical_blocks:
            raise EraseError(
                f"block {block} out of range 0..{self.geometry.physical_blocks - 1}"
            )
        if start < 0 or start + n > self.geometry.pages_per_block:
            raise ProgramError(
                f"run [{start}, +{n}) exceeds block {block}'s "
                f"{self.geometry.pages_per_block} pages"
            )
        if self._bad[block]:
            raise BadBlockError(f"program to bad block {block}")
        # token validity (>= 0) is the caller's contract: every FTL run
        # entry point validates its token array once before programming
        write_point = int(self._write_point[block])
        if start != write_point:
            raise ProgramError(
                f"out-of-order program in block {block}: run starts at {start} "
                f"while write point is {write_point} "
                "(NAND pages must be programmed sequentially within a block)"
            )
        base = block * self.geometry.pages_per_block + start
        self._tokens[base : base + n] = tokens
        self._write_point[block] = write_point + n
        self.stats.page_programs += n

    def erase(self, block: int) -> None:
        """Erase a whole block, resetting all its pages to ERASED."""
        self._check_block(block)
        if self._bad[block]:
            raise BadBlockError(f"erase of bad block {block}")
        if self._erase_count[block] >= self.endurance:
            self.mark_bad(block)
            raise EnduranceError(
                f"block {block} exceeded endurance of {self.endurance} erase cycles"
            )
        if self.fault_injector is not None and self.fault_injector.erase_fails(block):
            self.stats.erase_failures += 1
            self.mark_bad(block)
            raise EraseError(f"injected erase failure in block {block}")
        start = self._page_index(block, 0)
        self._tokens[start : start + self.geometry.pages_per_block] = ERASED
        self._write_point[block] = 0
        self._erase_count[block] += 1
        self.stats.block_erases += 1

    # ------------------------------------------------------------------
    # snapshot / restore
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """Copy of all mutable chip state (tokens, write points, wear
        counters, bad blocks, operation counters).

        Part of the device snapshot/restore protocol: the returned
        object is independent of the live chip, so one snapshot
        supports any number of restores.  The bad-block mask is held as
        :class:`~repro.flashsim.bitmap.PackedBits` — one bit per block
        instead of one byte.
        """
        return {
            "tokens": self._tokens.copy(),
            "write_point": self._write_point.copy(),
            "erase_count": self._erase_count.copy(),
            "bad": pack_bits(self._bad),
            "stats": replace(self.stats),
        }

    def restore(self, state: dict) -> None:
        """Reset the chip to a :meth:`snapshot`, copying the state so
        the snapshot stays reusable."""
        self._tokens = state["tokens"].copy()
        self._write_point = state["write_point"].copy()
        self._erase_count = state["erase_count"].copy()
        self._bad = state["bad"].unpack()
        self.stats = replace(state["stats"])

    def update_digest(self, hasher) -> None:
        """Feed the chip's physical state into a hash (state fingerprints)."""
        for array in (self._tokens, self._write_point, self._erase_count, self._bad):
            hasher.update(array.tobytes())

    # ------------------------------------------------------------------
    # block health and introspection
    # ------------------------------------------------------------------

    def metrics(self) -> dict[str, float]:
        """Cumulative operation counters as a flat ``chip.*`` map.

        Sampled by :meth:`FlashDevice.metrics` at run and cell
        boundaries; every value is a monotonic counter, so two samples
        subtract into the physical work done between them.
        """
        return {
            "chip.page_reads": float(self.stats.page_reads),
            "chip.page_programs": float(self.stats.page_programs),
            "chip.block_erases": float(self.stats.block_erases),
            "chip.program_failures": float(self.stats.program_failures),
            "chip.erase_failures": float(self.stats.erase_failures),
        }

    def mark_bad(self, block: int) -> None:
        """Retire a block; it will reject all further operations."""
        self._check_block(block)
        self._bad[block] = True

    def is_bad(self, block: int) -> bool:
        """Whether a block has been retired."""
        self._check_block(block)
        return bool(self._bad[block])

    def is_erased(self, block: int) -> bool:
        """Whether the whole block is in the erased state."""
        self._check_block(block)
        return int(self._write_point[block]) == 0

    def write_point(self, block: int) -> int:
        """Next programmable page offset within ``block``."""
        self._check_block(block)
        return int(self._write_point[block])

    def erase_count(self, block: int) -> int:
        """Erase cycles this block has endured so far."""
        self._check_block(block)
        return int(self._erase_count[block])

    def erase_counts(self) -> np.ndarray:
        """Copy of the per-block erase counters (for wear statistics)."""
        return self._erase_count.copy()

    def erased_mask(self) -> np.ndarray:
        """Boolean bitmap of fully-erased blocks (write point at 0) —
        the dense form of :meth:`is_erased` for whole-pool invariant
        checks."""
        return self._write_point == 0

    def plane_of(self, block: int) -> int:
        """Plane a block belongs to (even blocks plane 0, odd plane 1)."""
        self._check_block(block)
        return block % self.geometry.planes if self.geometry.planes > 1 else 0

    def good_blocks(self) -> int:
        """Number of blocks not (yet) retired."""
        return int((~self._bad).sum())

    def wear_summary(self) -> dict[str, float]:
        """Wear-levelling quality indicators across good blocks."""
        counts = self._erase_count[~self._bad]
        if counts.size == 0:
            return {"min": 0.0, "max": 0.0, "mean": 0.0, "std": 0.0}
        return {
            "min": float(counts.min()),
            "max": float(counts.max()),
            "mean": float(counts.mean()),
            "std": float(counts.std()),
        }


class ChannelSet:
    """Per-channel busy horizons for dispatch decisions.

    The controller reaches the flash array over ``count`` independent
    channels; each tracks until when it is occupied.  Dispatch always
    picks the channel that frees earliest (lowest index on ties — a
    deterministic total order, like the hosts' process scan).  One IO
    still occupies exactly one channel: the *within*-IO overlap across
    channels and planes is already folded into the
    :class:`~repro.flashsim.timing.TimingSpec` cost divisor, so the
    channel set only decides which *queued* IOs overlap each other.
    """

    __slots__ = ("_busy",)

    def __init__(self, count: int) -> None:
        if count < 1:
            raise ValueError("a channel set needs at least one channel")
        self._busy = [0.0] * count

    def __len__(self) -> int:
        return len(self._busy)

    def pick(self) -> int:
        """The channel that frees earliest (lowest index on ties)."""
        busy = self._busy
        best = 0
        best_time = busy[0]
        for channel in range(1, len(busy)):
            if busy[channel] < best_time:
                best_time = busy[channel]
                best = channel
        return best

    def free_at(self, channel: int) -> float:
        """Until when ``channel`` is occupied."""
        return self._busy[channel]

    def occupy(self, channel: int, until: float) -> None:
        """Mark ``channel`` busy up to simulated time ``until``."""
        if until > self._busy[channel]:
            self._busy[channel] = until

    def earliest_free(self) -> float:
        """When the least-loaded channel frees."""
        return min(self._busy)

    def reset(self) -> None:
        """Clear all occupancy (fresh device / full drain)."""
        self._busy = [0.0] * len(self._busy)

    def snapshot(self) -> tuple[float, ...]:
        """Opaque copy of the per-channel horizons."""
        return tuple(self._busy)

    def restore(self, state: tuple[float, ...]) -> None:
        """Reset the horizons to a :meth:`snapshot`."""
        if len(state) != len(self._busy):
            raise ValueError(
                f"channel snapshot has {len(state)} channels, device has "
                f"{len(self._busy)}"
            )
        self._busy = list(state)
