"""Per-IO trace recording.

The paper's design principle 1 (Section 3.2): *for each run, we measure
and record the response time for individual IOs*.  :class:`IOTrace` is
that record — one row per IO with its four defining attributes, the
measured response time and the physical work performed — plus CSV
round-tripping so results can be archived and re-analysed (the authors
published tens of millions of data points this way).
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

from repro.iotypes import CompletedIO, Mode

_FIELDS = (
    "index",
    "mode",
    "lba",
    "size",
    "submitted_at",
    "started_at",
    "completed_at",
    "response_usec",
    "page_reads",
    "page_programs",
    "copy_reads",
    "copy_programs",
    "block_erases",
    "notes",
)


@dataclass(frozen=True)
class TraceRow:
    """One archived IO (a parsed CSV row)."""

    index: int
    mode: Mode
    lba: int
    size: int
    submitted_at: float
    started_at: float
    completed_at: float
    response_usec: float
    page_reads: int
    page_programs: int
    copy_reads: int
    copy_programs: int
    block_erases: int
    notes: tuple[str, ...]


class IOTrace:
    """An append-only sequence of completed IOs."""

    def __init__(self) -> None:
        self._ios: list[CompletedIO] = []

    def append(self, completed: CompletedIO) -> None:
        """Record one completed IO."""
        self._ios.append(completed)

    def extend(self, completed: Iterable[CompletedIO]) -> None:
        """Record a batch of completed IOs in order."""
        self._ios.extend(completed)

    def __len__(self) -> int:
        return len(self._ios)

    def __iter__(self) -> Iterator[CompletedIO]:
        return iter(self._ios)

    def __getitem__(self, item: int) -> CompletedIO:
        return self._ios[item]

    def response_times(self) -> list[float]:
        """Response times in microseconds, in submission order."""
        return [completed.response_usec for completed in self._ios]

    # ------------------------------------------------------------------
    # CSV round-trip
    # ------------------------------------------------------------------

    def to_csv(self, path: str | Path | None = None) -> str:
        """Serialise to CSV; write to ``path`` when given."""
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(_FIELDS)
        for completed in self._ios:
            request, cost = completed.request, completed.cost
            writer.writerow(
                [
                    request.index,
                    request.mode.value,
                    request.lba,
                    request.size,
                    f"{completed.submitted_at:.3f}",
                    f"{completed.started_at:.3f}",
                    f"{completed.completed_at:.3f}",
                    f"{completed.response_usec:.3f}",
                    cost.page_reads,
                    cost.page_programs,
                    cost.copy_reads,
                    cost.copy_programs,
                    cost.block_erases,
                    ";".join(cost.notes),
                ]
            )
        text = buffer.getvalue()
        if path is not None:
            Path(path).write_text(text)
        return text

    @staticmethod
    def parse_csv(text: str) -> list[TraceRow]:
        """Parse a CSV produced by :meth:`to_csv` into trace rows."""
        reader = csv.DictReader(io.StringIO(text))
        rows = []
        for record in reader:
            rows.append(
                TraceRow(
                    index=int(record["index"]),
                    mode=Mode(record["mode"]),
                    lba=int(record["lba"]),
                    size=int(record["size"]),
                    submitted_at=float(record["submitted_at"]),
                    started_at=float(record["started_at"]),
                    completed_at=float(record["completed_at"]),
                    response_usec=float(record["response_usec"]),
                    page_reads=int(record["page_reads"]),
                    page_programs=int(record["page_programs"]),
                    copy_reads=int(record["copy_reads"]),
                    copy_programs=int(record["copy_programs"]),
                    block_erases=int(record["block_erases"]),
                    # to_csv joins the cost notes with ";"; split them
                    # back so a parsed row mirrors CostAccumulator.notes
                    notes=tuple(record["notes"].split(";")) if record["notes"] else (),
                )
            )
        return rows

    @staticmethod
    def load_csv(path: str | Path) -> list[TraceRow]:
        """Load an archived trace from disk."""
        return IOTrace.parse_csv(Path(path).read_text())
