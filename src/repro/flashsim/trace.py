"""Per-IO trace recording, column-backed.

The paper's design principle 1 (Section 3.2): *for each run, we measure
and record the response time for individual IOs*.  :class:`IOTrace` is
that record — one row per IO with its four defining attributes, the
measured response time and the physical work performed — plus CSV
round-tripping so results can be archived and re-analysed (the authors
published tens of millions of data points this way).

Storage is columnar: one preallocated numpy array per field (geometric
growth), with cost notes in a sparse ``{row: [note, ...]}`` dict since
notes are rare.  The hot path appends scalars straight into the arrays
(:meth:`IOTrace.record`); analysis reads whole columns
(:meth:`IOTrace.response_times` returns a cached ndarray).  Row access
stays compatible with the legacy object-backed trace: ``trace[i]`` and
iteration build :class:`~repro.iotypes.CompletedIO` views on demand,
and a row view's ``cost.notes`` list is shared with the trace so
``trace[i].cost.note(...)`` persists.  Pickling packs the columns as
raw buffers (:func:`_trace_from_packed`), which is what keeps process-
pool transfers and run-cache entries small.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

from repro.flashsim.timing import CostAccumulator
from repro.iotypes import CompletedIO, IORequest, Mode

_FIELDS = (
    "index",
    "mode",
    "lba",
    "size",
    "submitted_at",
    "started_at",
    "completed_at",
    "response_usec",
    "page_reads",
    "page_programs",
    "copy_reads",
    "copy_programs",
    "block_erases",
    "notes",
)

#: column name -> dtype, in packing order (pickle / payload format)
_COLUMNS = (
    ("index", np.int64),
    ("lba", np.int64),
    ("size", np.int64),
    ("write", np.bool_),
    ("scheduled_at", np.float64),
    ("submitted_at", np.float64),
    ("started_at", np.float64),
    ("completed_at", np.float64),
    ("page_reads", np.int64),
    ("page_programs", np.int64),
    ("copy_reads", np.int64),
    ("copy_programs", np.int64),
    ("block_erases", np.int64),
    ("bytes_transferred", np.int64),
    ("map_misses", np.int64),
    ("extra_usec", np.float64),
)

_INT_COLUMNS = frozenset(
    name for name, dtype in _COLUMNS if dtype is np.int64
)

#: lazily-allocated attribution columns (flight-recorder runs only), in
#: :data:`repro.flashsim.recorder.COMPONENTS` order after ``channel``.
#: Integer microseconds; the ``attr_*`` columns sum to the rounded
#: response time of every row — the flight recorder's exactness
#: invariant.
ATTRIBUTION_COLUMNS = (
    "channel",
    "attr_wait_usec",
    "attr_controller_usec",
    "attr_transfer_usec",
    "attr_read_usec",
    "attr_program_usec",
    "attr_gc_usec",
    "attr_merge_usec",
    "attr_wear_usec",
    "attr_cache_usec",
    "attr_interference_usec",
    "attr_noise_usec",
)

_ATTR_INDEX = {name: i for i, name in enumerate(ATTRIBUTION_COLUMNS)}


def _escape_notes(notes: Iterable[str]) -> str:
    r"""Join cost notes into one CSV field, ``;``-separated.

    ``\`` and ``;`` inside a note are backslash-escaped so a note
    containing the separator round-trips (the legacy writer corrupted
    such notes by splitting them on parse)."""
    return ";".join(
        note.replace("\\", "\\\\").replace(";", "\\;") for note in notes
    )


def _split_notes(joined: str) -> tuple[str, ...]:
    """Inverse of :func:`_escape_notes` (backslash-aware split)."""
    if not joined:
        return ()
    notes: list[str] = []
    current: list[str] = []
    i = 0
    n = len(joined)
    while i < n:
        char = joined[i]
        if char == "\\" and i + 1 < n:
            current.append(joined[i + 1])
            i += 2
        elif char == ";":
            notes.append("".join(current))
            current = []
            i += 1
        else:
            current.append(char)
            i += 1
    notes.append("".join(current))
    return tuple(notes)


def _quote_csv_field(field: str) -> str:
    """Minimal CSV quoting, byte-compatible with ``csv.writer``."""
    if any(ch in field for ch in ',"\r\n'):
        return '"' + field.replace('"', '""') + '"'
    return field


@dataclass(frozen=True)
class TraceRow:
    """One archived IO (a parsed CSV row)."""

    index: int
    mode: Mode
    lba: int
    size: int
    submitted_at: float
    started_at: float
    completed_at: float
    response_usec: float
    page_reads: int
    page_programs: int
    copy_reads: int
    copy_programs: int
    block_erases: int
    notes: tuple[str, ...]


class IOTrace:
    """An append-only, column-backed sequence of completed IOs."""

    _MIN_CAPACITY = 64

    def __init__(self, capacity: int = 0) -> None:
        self._n = 0
        self._notes: dict[int, list[str]] = {}
        self._response_cache: np.ndarray | None = None
        #: (capacity, len(ATTRIBUTION_COLUMNS)) int64 matrix, allocated
        #: on the first attributed record — plain runs never pay for it
        self._attr: np.ndarray | None = None
        self._allocate(max(int(capacity), 0))

    def _allocate(self, capacity: int) -> None:
        for name, dtype in _COLUMNS:
            setattr(self, "_" + name, np.zeros(capacity, dtype=dtype))
        self._capacity = capacity

    def _grow(self, needed: int) -> None:
        capacity = max(self._capacity * 2, needed, self._MIN_CAPACITY)
        if self._capacity == 0:
            self._allocate(capacity)
            return
        for name, dtype in _COLUMNS:
            old = getattr(self, "_" + name)
            grown = np.zeros(capacity, dtype=dtype)
            grown[: self._n] = old[: self._n]
            setattr(self, "_" + name, grown)
        if self._attr is not None:
            grown_attr = np.zeros(
                (capacity, len(ATTRIBUTION_COLUMNS)), dtype=np.int64
            )
            grown_attr[: self._n] = self._attr[: self._n]
            self._attr = grown_attr
        self._capacity = capacity

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------

    def record(
        self,
        index: int,
        lba: int,
        size: int,
        write: bool,
        scheduled_at: float,
        submitted_at: float,
        started_at: float,
        completed_at: float,
        cost: CostAccumulator,
    ) -> None:
        """Append one completed IO as scalars (the hot recording path).

        ``cost`` counters are copied into the columns; its ``notes``
        list (when non-empty) is stored *by reference*, so later
        ``cost.note(...)`` calls remain visible through row views.
        """
        row = self._n
        if row >= self._capacity:
            self._grow(row + 1)
        self._index[row] = index
        self._lba[row] = lba
        self._size[row] = size
        if write:
            self._write[row] = True
        self._scheduled_at[row] = scheduled_at
        self._submitted_at[row] = submitted_at
        self._started_at[row] = started_at
        self._completed_at[row] = completed_at
        # cost columns are zero-initialised; only store non-zero tallies
        if cost.page_reads:
            self._page_reads[row] = cost.page_reads
        if cost.page_programs:
            self._page_programs[row] = cost.page_programs
        if cost.copy_reads:
            self._copy_reads[row] = cost.copy_reads
        if cost.copy_programs:
            self._copy_programs[row] = cost.copy_programs
        if cost.block_erases:
            self._block_erases[row] = cost.block_erases
        if cost.bytes_transferred:
            self._bytes_transferred[row] = cost.bytes_transferred
        if cost.map_misses:
            self._map_misses[row] = cost.map_misses
        if cost.extra_usec:
            self._extra_usec[row] = cost.extra_usec
        if cost.notes:
            self._notes[row] = cost.notes
        if cost.attribution is not None:
            self._record_attr(row, cost.attribution)
        self._n = row + 1
        self._response_cache = None

    def record_at(
        self,
        row: int,
        lba: int,
        size: int,
        write: bool,
        scheduled_at: float,
        submitted_at: float,
        started_at: float,
        completed_at: float,
        cost: CostAccumulator,
    ) -> None:
        """Record one completed IO at an explicit ``row``.

        The async host's completions arrive out of submission order;
        writing each at ``row = submission index`` keeps the trace in
        submission order regardless of the completion interleaving, so
        analysis and CSV output are independent of dispatch timing.
        Each row must be recorded exactly once (columns are
        zero-initialised, not cleared on re-record).
        """
        if row < 0:
            raise IndexError("trace row must be non-negative")
        if row >= self._capacity:
            self._grow(row + 1)
        if row >= self._n:
            self._n = row + 1
        self._index[row] = row
        self._lba[row] = lba
        self._size[row] = size
        if write:
            self._write[row] = True
        self._scheduled_at[row] = scheduled_at
        self._submitted_at[row] = submitted_at
        self._started_at[row] = started_at
        self._completed_at[row] = completed_at
        if cost.page_reads:
            self._page_reads[row] = cost.page_reads
        if cost.page_programs:
            self._page_programs[row] = cost.page_programs
        if cost.copy_reads:
            self._copy_reads[row] = cost.copy_reads
        if cost.copy_programs:
            self._copy_programs[row] = cost.copy_programs
        if cost.block_erases:
            self._block_erases[row] = cost.block_erases
        if cost.bytes_transferred:
            self._bytes_transferred[row] = cost.bytes_transferred
        if cost.map_misses:
            self._map_misses[row] = cost.map_misses
        if cost.extra_usec:
            self._extra_usec[row] = cost.extra_usec
        if cost.notes:
            self._notes[row] = cost.notes
        if cost.attribution is not None:
            self._record_attr(row, cost.attribution)
        self._response_cache = None

    def record_run(
        self,
        row0: int,
        lbas: np.ndarray,
        sizes: np.ndarray,
        write: bool,
        scheduled_at: np.ndarray,
        submitted_at: np.ndarray,
        started_at: np.ndarray,
        completed_at: np.ndarray,
        *,
        page_reads: np.ndarray | None = None,
        page_programs: np.ndarray | None = None,
        copy_reads: np.ndarray | None = None,
        copy_programs: np.ndarray | None = None,
        block_erases: np.ndarray | None = None,
        bytes_transferred: np.ndarray | None = None,
        map_misses: np.ndarray | None = None,
        notes: "dict[int, list[str]] | None" = None,
    ) -> None:
        """Record a contiguous run of same-mode IOs from column arrays.

        The bulk counterpart of :meth:`record_at` used by the analytic
        run kernels (:mod:`repro.flashsim.analytic`): rows
        ``row0 .. row0+n-1`` are filled in one vectorized store per
        column, with ``index = row``.  Omitted cost columns stay zero;
        GC-epoch windows pass the reclamation columns
        (``copy_reads``/``copy_programs``/``block_erases``) and a sparse
        ``notes`` mapping of *relative* row to that IO's provenance notes
        (e.g. ``["gc"]`` per collection), stored exactly as the per-IO
        path would have.  Each row must be recorded exactly once, like
        :meth:`record_at`.
        """
        n = int(lbas.size)
        if n == 0:
            return
        if row0 < 0:
            raise IndexError("trace row must be non-negative")
        end = row0 + n
        if end > self._capacity:
            self._grow(end)
        if end > self._n:
            self._n = end
        rows = slice(row0, end)
        self._index[rows] = np.arange(row0, end, dtype=np.int64)
        self._lba[rows] = lbas
        self._size[rows] = sizes
        self._write[rows] = write
        self._scheduled_at[rows] = scheduled_at
        self._submitted_at[rows] = submitted_at
        self._started_at[rows] = started_at
        self._completed_at[rows] = completed_at
        if page_reads is not None:
            self._page_reads[rows] = page_reads
        if page_programs is not None:
            self._page_programs[rows] = page_programs
        if copy_reads is not None:
            self._copy_reads[rows] = copy_reads
        if copy_programs is not None:
            self._copy_programs[rows] = copy_programs
        if block_erases is not None:
            self._block_erases[rows] = block_erases
        if bytes_transferred is not None:
            self._bytes_transferred[rows] = bytes_transferred
        if map_misses is not None:
            self._map_misses[rows] = map_misses
        if notes:
            for rel, row_notes in notes.items():
                if row_notes:
                    self._notes[row0 + rel] = row_notes
        self._response_cache = None

    def _record_attr(self, row: int, attribution: tuple) -> None:
        """Store one IO's latency decomposition (lazy first allocation)."""
        if self._attr is None:
            self._attr = np.zeros(
                (self._capacity, len(ATTRIBUTION_COLUMNS)), dtype=np.int64
            )
        self._attr[row] = attribution

    def append(self, completed: CompletedIO) -> None:
        """Record one completed IO (legacy object-based protocol)."""
        request = completed.request
        self.record(
            request.index,
            request.lba,
            request.size,
            request.mode is Mode.WRITE,
            request.scheduled_at,
            completed.submitted_at,
            completed.started_at,
            completed.completed_at,
            completed.cost,
        )

    def extend(self, completed: Iterable[CompletedIO]) -> None:
        """Record a batch of completed IOs in order."""
        for item in completed:
            self.append(item)

    # ------------------------------------------------------------------
    # row views (legacy-compatible access)
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._n

    def _row(self, i: int) -> CompletedIO:
        # the notes list is shared with the trace, so mutations through
        # the view (trace[i].cost.note(...)) persist across accesses
        cost = CostAccumulator(
            page_reads=int(self._page_reads[i]),
            page_programs=int(self._page_programs[i]),
            copy_reads=int(self._copy_reads[i]),
            copy_programs=int(self._copy_programs[i]),
            block_erases=int(self._block_erases[i]),
            bytes_transferred=int(self._bytes_transferred[i]),
            map_misses=int(self._map_misses[i]),
            extra_usec=float(self._extra_usec[i]),
            notes=self._notes.setdefault(i, []),
        )
        request = IORequest(
            index=int(self._index[i]),
            lba=int(self._lba[i]),
            size=int(self._size[i]),
            mode=Mode.WRITE if self._write[i] else Mode.READ,
            scheduled_at=float(self._scheduled_at[i]),
        )
        return CompletedIO(
            request=request,
            submitted_at=float(self._submitted_at[i]),
            started_at=float(self._started_at[i]),
            completed_at=float(self._completed_at[i]),
            cost=cost,
        )

    def __getitem__(self, item: int | slice) -> CompletedIO | list[CompletedIO]:
        if isinstance(item, slice):
            return [self._row(i) for i in range(*item.indices(self._n))]
        i = item
        if i < 0:
            i += self._n
        if not 0 <= i < self._n:
            raise IndexError("trace index out of range")
        return self._row(i)

    def __iter__(self) -> Iterator[CompletedIO]:
        for i in range(self._n):
            yield self._row(i)

    def response_times(self) -> np.ndarray:
        """Response times in microseconds, in submission order.

        Returns a cached read-only float64 ndarray (invalidated on
        append); index it directly instead of copying to a list.
        """
        if self._response_cache is None:
            cache = (
                self._completed_at[: self._n] - self._submitted_at[: self._n]
            )
            cache.flags.writeable = False
            self._response_cache = cache
        return self._response_cache

    def column(self, name: str) -> np.ndarray:
        """A read-only view of one raw column (length == len(self)).

        Column names are the :data:`_COLUMNS` entries, e.g. ``"lba"``,
        ``"completed_at"``, ``"write"`` (the mode as a bool), plus —
        on attributed traces — the :data:`ATTRIBUTION_COLUMNS`.
        """
        if name in _ATTR_INDEX:
            return self.attribution_column(name)
        arr = getattr(self, "_" + name)[: self._n]
        view = arr.view()
        view.flags.writeable = False
        return view

    # ------------------------------------------------------------------
    # attribution columns (flight-recorder runs)
    # ------------------------------------------------------------------

    @property
    def has_attribution(self) -> bool:
        """Whether this trace carries per-IO latency attribution."""
        return self._attr is not None

    def attribution_matrix(self) -> np.ndarray:
        """Read-only ``(len(self), len(ATTRIBUTION_COLUMNS))`` int64
        matrix of the per-IO decomposition (column order is
        :data:`ATTRIBUTION_COLUMNS`).  Raises when the trace was
        recorded without a flight recorder attached.
        """
        if self._attr is None:
            raise ValueError("trace carries no attribution columns")
        view = self._attr[: self._n].view()
        view.flags.writeable = False
        return view

    def attribution_column(self, name: str) -> np.ndarray:
        """One attribution column by name (read-only int64 view)."""
        return self.attribution_matrix()[:, _ATTR_INDEX[name]]

    def attribution_balance(self) -> np.ndarray:
        """Per-row residual: component sum − rounded response time.

        The flight recorder's invariant is that this is all-zero for
        every attributed trace; the attribution test suite pins it
        across all execution pipelines.
        """
        matrix = self.attribution_matrix()
        components = matrix[:, 1:].sum(axis=1)  # skip the channel column
        target = np.rint(self.response_times()).astype(np.int64)
        return components - target

    # ------------------------------------------------------------------
    # CSV round-trip
    # ------------------------------------------------------------------

    def to_csv(self, path: str | Path | None = None) -> str:
        """Serialise to CSV; write to ``path`` when given.

        Columns are formatted vectorised (whole-column number
        formatting, one join per row); the output is byte-identical to
        the legacy row-by-row ``csv.writer`` for traces whose notes
        contain no CSV- or separator-special characters.
        """
        n = self._n
        lines = [",".join(_FIELDS)]
        if n:
            int_cols = [
                [str(v) for v in self._index[:n].tolist()],
                [str(v) for v in self._lba[:n].tolist()],
                [str(v) for v in self._size[:n].tolist()],
            ]
            modes = [
                "write" if w else "read" for w in self._write[:n].tolist()
            ]
            submitted = self._submitted_at[:n]
            completed = self._completed_at[:n]
            float_cols = [
                ["%.3f" % v for v in submitted.tolist()],
                ["%.3f" % v for v in self._started_at[:n].tolist()],
                ["%.3f" % v for v in completed.tolist()],
                ["%.3f" % v for v in (completed - submitted).tolist()],
            ]
            cost_cols = [
                [str(v) for v in self._page_reads[:n].tolist()],
                [str(v) for v in self._page_programs[:n].tolist()],
                [str(v) for v in self._copy_reads[:n].tolist()],
                [str(v) for v in self._copy_programs[:n].tolist()],
                [str(v) for v in self._block_erases[:n].tolist()],
            ]
            notes = [""] * n
            for row, tags in self._notes.items():
                if tags and row < n:
                    notes[row] = _quote_csv_field(_escape_notes(tags))
            for row_fields in zip(
                int_cols[0],
                modes,
                int_cols[1],
                int_cols[2],
                *float_cols,
                *cost_cols,
                notes,
            ):
                lines.append(",".join(row_fields))
        text = "\n".join(lines) + "\n"
        if path is not None:
            Path(path).write_text(text)
        return text

    @staticmethod
    def parse_csv(text: str) -> list[TraceRow]:
        """Parse a CSV produced by :meth:`to_csv` into trace rows."""
        reader = csv.DictReader(io.StringIO(text))
        rows = []
        for record in reader:
            rows.append(
                TraceRow(
                    index=int(record["index"]),
                    mode=Mode(record["mode"]),
                    lba=int(record["lba"]),
                    size=int(record["size"]),
                    submitted_at=float(record["submitted_at"]),
                    started_at=float(record["started_at"]),
                    completed_at=float(record["completed_at"]),
                    response_usec=float(record["response_usec"]),
                    page_reads=int(record["page_reads"]),
                    page_programs=int(record["page_programs"]),
                    copy_reads=int(record["copy_reads"]),
                    copy_programs=int(record["copy_programs"]),
                    block_erases=int(record["block_erases"]),
                    notes=_split_notes(record["notes"]),
                )
            )
        return rows

    @classmethod
    def from_csv(cls, text: str) -> "IOTrace":
        """Rebuild a columnar trace from :meth:`to_csv` output.

        The CSV schema is the archival one: it carries neither the
        scheduled time nor the transfer/map-miss/extra cost fields, so
        those columns come back as ``scheduled_at = submitted_at`` and
        zeros respectively.
        """
        reader = csv.reader(io.StringIO(text))
        header = next(reader, None)
        if header != list(_FIELDS):
            raise ValueError("not an IOTrace CSV (unexpected header)")
        records = [row for row in reader if row]
        trace = cls(capacity=len(records))
        n = len(records)
        if not n:
            return trace
        columns = list(zip(*records))
        trace._index[:n] = np.array([int(v) for v in columns[0]], np.int64)
        trace._write[:n] = np.array(
            [v == "write" for v in columns[1]], np.bool_
        )
        trace._lba[:n] = np.array([int(v) for v in columns[2]], np.int64)
        trace._size[:n] = np.array([int(v) for v in columns[3]], np.int64)
        submitted = np.array([float(v) for v in columns[4]], np.float64)
        trace._submitted_at[:n] = submitted
        trace._scheduled_at[:n] = submitted
        trace._started_at[:n] = np.array(
            [float(v) for v in columns[5]], np.float64
        )
        trace._completed_at[:n] = np.array(
            [float(v) for v in columns[6]], np.float64
        )
        for position, name in enumerate(
            ("page_reads", "page_programs", "copy_reads",
             "copy_programs", "block_erases"),
            start=8,
        ):
            getattr(trace, "_" + name)[:n] = np.array(
                [int(v) for v in columns[position]], np.int64
            )
        for row, joined in enumerate(columns[13]):
            if joined:
                trace._notes[row] = list(_split_notes(joined))
        trace._n = n
        return trace

    @staticmethod
    def load_csv(path: str | Path) -> list[TraceRow]:
        """Load an archived trace from disk."""
        return IOTrace.parse_csv(Path(path).read_text())

    # ------------------------------------------------------------------
    # columnar interchange (JSON payloads, pickle)
    # ------------------------------------------------------------------

    def to_payload(self) -> dict:
        """JSON-safe columnar form: ``{column: [values...], notes: ...}``.

        Used by campaign archives and the run cache; ~10x smaller than a
        per-row object dump and rebuilt without per-IO Python work.
        """
        n = self._n
        payload: dict = {
            name: getattr(self, "_" + name)[:n].tolist()
            for name, _ in _COLUMNS
        }
        notes = {
            str(row): list(tags)
            for row, tags in self._notes.items()
            if tags and row < n
        }
        if notes:
            payload["notes"] = notes
        if self._attr is not None:
            payload["attribution"] = {
                name: self._attr[:n, i].tolist()
                for i, name in enumerate(ATTRIBUTION_COLUMNS)
            }
        return payload

    @classmethod
    def from_payload(cls, payload: dict) -> "IOTrace":
        """Rebuild a trace from :meth:`to_payload` output.

        Payloads written before the flight recorder existed carry no
        ``attribution`` key and load as unattributed traces.
        """
        n = len(payload["index"])
        trace = cls(capacity=n)
        for name, dtype in _COLUMNS:
            getattr(trace, "_" + name)[:n] = np.asarray(
                payload[name], dtype=dtype
            )
        for row, tags in payload.get("notes", {}).items():
            trace._notes[int(row)] = list(tags)
        attribution = payload.get("attribution")
        if attribution is not None:
            trace._attr = np.zeros(
                (max(n, trace._capacity), len(ATTRIBUTION_COLUMNS)),
                dtype=np.int64,
            )
            for i, name in enumerate(ATTRIBUTION_COLUMNS):
                trace._attr[:n, i] = np.asarray(
                    attribution[name], dtype=np.int64
                )
        trace._n = n
        return trace

    def __reduce__(self):
        """Pickle as packed raw column buffers (slim IPC format).

        All-zero columns (most cost counters, most of the time) are
        elided entirely; integer columns are losslessly downcast to the
        narrowest dtype that holds their range.  Timestamps stay
        float64, so the round-trip is bit-exact.
        """
        n = self._n
        packed = tuple(
            _pack_column(getattr(self, "_" + name)[:n]) for name, _ in _COLUMNS
        )
        notes = {
            row: list(tags)
            for row, tags in self._notes.items()
            if tags and row < n
        }
        if self._attr is None:
            return (_trace_from_packed, (n, packed, notes))
        attr_packed = tuple(
            _pack_column(np.ascontiguousarray(self._attr[:n, i]))
            for i in range(len(ATTRIBUTION_COLUMNS))
        )
        return (_trace_from_packed, (n, packed, notes, attr_packed))


def _pack_column(column: np.ndarray) -> tuple[str, bytes] | None:
    """One column as ``(dtype_str, raw_bytes)``; ``None`` if all-zero."""
    if column.size == 0 or not column.any():
        return None
    if column.dtype.kind == "i":
        lo, hi = int(column.min()), int(column.max())
        for narrow in (np.int8, np.int16, np.int32):
            info = np.iinfo(narrow)
            if info.min <= lo and hi <= info.max:
                return (np.dtype(narrow).str, column.astype(narrow).tobytes())
    return (column.dtype.str, column.tobytes())


def _trace_from_packed(
    n: int,
    packed: tuple[tuple[str, bytes] | None, ...],
    notes: dict[int, list[str]],
    attr_packed: tuple[tuple[str, bytes] | None, ...] | None = None,
) -> IOTrace:
    """Unpickle helper: rebuild an :class:`IOTrace` from packed columns.

    ``attr_packed`` (absent in pre-flight-recorder pickles) carries the
    attribution columns in :data:`ATTRIBUTION_COLUMNS` order, packed
    like the core columns.
    """
    trace = IOTrace(capacity=n)
    for (name, dtype), entry in zip(_COLUMNS, packed):
        if entry is None:
            continue  # freshly allocated columns are already zero
        dtype_str, buffer = entry
        getattr(trace, "_" + name)[:n] = np.frombuffer(
            buffer, dtype=np.dtype(dtype_str)
        )
    trace._notes = dict(notes)
    if attr_packed is not None:
        trace._attr = np.zeros(
            (max(n, trace._capacity), len(ATTRIBUTION_COLUMNS)),
            dtype=np.int64,
        )
        for i, entry in enumerate(attr_packed):
            if entry is None:
                continue
            dtype_str, buffer = entry
            trace._attr[:n, i] = np.frombuffer(
                buffer, dtype=np.dtype(dtype_str)
            )
    trace._n = n
    return trace


def pickled_sizes(trace: IOTrace) -> tuple[int, int]:
    """Pickle sizes of ``trace``: ``(columnar, object_graph)`` bytes.

    The first is the trace as pickled today (packed column buffers via
    ``__reduce__``); the second is the legacy object-graph format (a
    list of :class:`~repro.iotypes.CompletedIO`).  The run cache and
    the hot-path benchmark report the difference as the IPC saving.
    """
    import pickle

    columnar = len(pickle.dumps(trace, protocol=pickle.HIGHEST_PROTOCOL))
    object_graph = len(
        pickle.dumps(list(trace), protocol=pickle.HIGHEST_PROTOCOL)
    )
    return columnar, object_graph
