"""``repro.flashsim`` — the simulated flash-device substrate.

The paper benchmarks physical flash devices as black boxes; this
subpackage builds those black boxes: NAND chips
(:mod:`~repro.flashsim.chip`), four FTL families
(:mod:`~repro.flashsim.ftl`), RAM caching
(:mod:`~repro.flashsim.cache`), the controller
(:mod:`~repro.flashsim.controller`), and the assembled block device
(:mod:`~repro.flashsim.device`) with calibrated per-device profiles
(:mod:`~repro.flashsim.profiles`).
"""

from repro.flashsim.analytic import KernelStats
from repro.flashsim.bitmap import PackedBits, mask_from_indices, pack_bits
from repro.flashsim.cache import WriteBackCache
from repro.flashsim.chip import ERASED, ChannelSet, FlashChip
from repro.flashsim.clock import EventTimeline, SimClock
from repro.flashsim.controller import Controller, ControllerConfig
from repro.flashsim.device import (
    BackgroundPolicy,
    CommandQueue,
    DeviceStats,
    FlashDevice,
    NoiseSpec,
    QueuedCompletion,
)
from repro.flashsim.ftl.base import BaseFTL
from repro.flashsim.snapshot import (
    DeviceSnapshot,
    PackedSnapshot,
    SnapshotStore,
    pack_snapshot,
    unpack_snapshot,
)
from repro.flashsim.geometry import Geometry
from repro.flashsim.power import (
    MLC_POWER,
    SLC_POWER,
    EnergyMeter,
    PowerSpec,
    measure_run_energy,
)
from repro.flashsim.host import AsyncHost, ParallelHost, SyncHost, feed_from_iterable
from repro.flashsim.profiles import (
    ALL_PROFILES,
    TABLE3_PROFILES,
    DeviceProfile,
    build_device,
    get_profile,
    profile_names,
    scaled_profile,
)
from repro.flashsim.recorder import (
    COMPONENTS,
    FlightRecorder,
    IOEvent,
    events_from_trace,
    summarize_components,
)
from repro.flashsim.timing import MLC_TIMING, SLC_TIMING, CostAccumulator, TimingSpec
from repro.flashsim.trace import ATTRIBUTION_COLUMNS, IOTrace, TraceRow, pickled_sizes
from repro.flashsim.wear import (
    LifetimeProjection,
    WearReport,
    project_lifetime,
    wear_report,
)

__all__ = [
    "ALL_PROFILES",
    "ATTRIBUTION_COLUMNS",
    "AsyncHost",
    "BackgroundPolicy",
    "BaseFTL",
    "COMPONENTS",
    "ChannelSet",
    "CommandQueue",
    "Controller",
    "ControllerConfig",
    "CostAccumulator",
    "DeviceProfile",
    "DeviceSnapshot",
    "DeviceStats",
    "EnergyMeter",
    "ERASED",
    "EventTimeline",
    "FlashChip",
    "FlashDevice",
    "FlightRecorder",
    "Geometry",
    "IOEvent",
    "IOTrace",
    "KernelStats",
    "PackedBits",
    "PackedSnapshot",
    "QueuedCompletion",
    "LifetimeProjection",
    "MLC_POWER",
    "MLC_TIMING",
    "NoiseSpec",
    "ParallelHost",
    "PowerSpec",
    "SLC_TIMING",
    "SLC_POWER",
    "SimClock",
    "SnapshotStore",
    "SyncHost",
    "TABLE3_PROFILES",
    "TimingSpec",
    "TraceRow",
    "WearReport",
    "WriteBackCache",
    "build_device",
    "events_from_trace",
    "feed_from_iterable",
    "get_profile",
    "mask_from_indices",
    "pack_bits",
    "pack_snapshot",
    "profile_names",
    "measure_run_energy",
    "pickled_sizes",
    "project_lifetime",
    "scaled_profile",
    "summarize_components",
    "unpack_snapshot",
    "wear_report",
]
