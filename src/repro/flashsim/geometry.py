"""Physical geometry of a simulated flash device.

A flash device is made of NAND chips; each chip is an array of *blocks*;
each block is a column of *pages* programmed strictly in order; pages may
be sub-addressed in 512-byte *sectors* (Section 2.1 of the paper).  The
erase unit is the block, the program/read unit is the page.

:class:`Geometry` is a frozen value object shared by the chip model, the
FTLs and the controller.  All addresses are in **bytes** at the host
interface and in **page / block indexes** inside the device.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import GeometryError
from repro.units import KIB, MIB, SECTOR


@dataclass(frozen=True)
class Geometry:
    """Immutable flash geometry.

    Parameters
    ----------
    page_size:
        Data bytes per flash page (the 64-byte spare/ECC area of real
        chips is modelled as part of the timing, not the address space).
    pages_per_block:
        Pages per erase block (typically 64).
    logical_bytes:
        Capacity exposed at the block-device interface.
    physical_blocks:
        Total erase blocks actually present.  Must provide at least the
        logical capacity; the excess is the FTL's overprovisioning.
    planes:
        Number of planes (even/odd block parallelism, Section 2.1).
    """

    page_size: int = 2 * KIB
    pages_per_block: int = 64
    logical_bytes: int = 64 * MIB
    physical_blocks: int = 0
    planes: int = 1

    def __post_init__(self) -> None:
        if self.page_size <= 0 or self.page_size % SECTOR != 0:
            raise GeometryError(
                f"page_size must be a positive multiple of {SECTOR}, got {self.page_size}"
            )
        if self.pages_per_block <= 0:
            raise GeometryError("pages_per_block must be positive")
        if self.logical_bytes <= 0 or self.logical_bytes % self.block_size != 0:
            raise GeometryError(
                "logical_bytes must be a positive multiple of the block size "
                f"({self.block_size}), got {self.logical_bytes}"
            )
        if self.planes not in (1, 2):
            raise GeometryError("planes must be 1 or 2")
        if self.physical_blocks == 0:
            # Default: 7% overprovisioning, rounded up to whole blocks.
            object.__setattr__(
                self,
                "physical_blocks",
                self.logical_blocks + max(2, (self.logical_blocks * 7 + 99) // 100),
            )
        if self.physical_blocks < self.logical_blocks + 1:
            raise GeometryError(
                "physical_blocks must exceed logical blocks (the FTL needs at "
                f"least one spare block): {self.physical_blocks} <= {self.logical_blocks}"
            )

    # --- derived quantities ---------------------------------------------

    @property
    def block_size(self) -> int:
        """Bytes per erase block."""
        return self.page_size * self.pages_per_block

    @property
    def logical_blocks(self) -> int:
        """Number of logical (host-visible) erase-block-sized units."""
        return self.logical_bytes // self.block_size

    @property
    def logical_pages(self) -> int:
        """Number of logical pages exposed to the host."""
        return self.logical_bytes // self.page_size

    @property
    def physical_pages(self) -> int:
        """Total physical pages on the chips."""
        return self.physical_blocks * self.pages_per_block

    @property
    def physical_bytes(self) -> int:
        """Raw capacity of the chips in bytes."""
        return self.physical_blocks * self.block_size

    @property
    def spare_blocks(self) -> int:
        """Overprovisioned blocks (physical minus logical)."""
        return self.physical_blocks - self.logical_blocks

    @property
    def spare_bytes(self) -> int:
        """Overprovisioned capacity in bytes."""
        return self.spare_blocks * self.block_size

    @property
    def sectors_per_page(self) -> int:
        """512-byte sectors per flash page."""
        return self.page_size // SECTOR

    # --- address arithmetic -----------------------------------------------

    def page_of_byte(self, byte_addr: int) -> int:
        """Logical page index containing a byte address."""
        return byte_addr // self.page_size

    def page_span(self, byte_addr: int, nbytes: int) -> range:
        """Range of logical page indexes touched by ``[byte_addr, +nbytes)``.

        An unaligned IO straddles one extra page per misaligned boundary —
        this is the physical root of the Alignment micro-benchmark's
        penalty.
        """
        if nbytes <= 0:
            raise GeometryError("page_span requires a positive byte count")
        first = byte_addr // self.page_size
        last = (byte_addr + nbytes - 1) // self.page_size
        return range(first, last + 1)

    def block_of_page(self, page: int) -> int:
        """Block index containing a physical or logical page index."""
        return page // self.pages_per_block

    def page_offset_in_block(self, page: int) -> int:
        """Offset of a page within its block (0-based)."""
        return page % self.pages_per_block

    def first_page_of_block(self, block: int) -> int:
        """Index of a block's first page."""
        return block * self.pages_per_block

    def contains(self, byte_addr: int, nbytes: int = 1) -> bool:
        """Whether ``[byte_addr, +nbytes)`` lies in the logical space."""
        return 0 <= byte_addr and byte_addr + nbytes <= self.logical_bytes

    def describe(self) -> str:
        """Human-readable one-line geometry summary."""
        from repro.units import fmt_size

        return (
            f"{fmt_size(self.logical_bytes)} logical / "
            f"{fmt_size(self.physical_bytes)} physical, "
            f"{fmt_size(self.page_size)} pages x {self.pages_per_block}/block, "
            f"{self.spare_blocks} spare blocks, {self.planes} plane(s)"
        )
