"""Simulated clock.

The reproduction replaces wall-clock time with a deterministic simulated
clock measured in microseconds.  The host model advances the clock; the
device records until when it is busy so that idle gaps (pauses between
IOs) can be handed to background work such as asynchronous page
reclamation (Section 4.3 / Figure 5 of the paper).
"""

from __future__ import annotations


class SimClock:
    """A monotone simulated clock in microseconds.

    The clock never goes backwards: :meth:`advance_to` with a time in the
    past is a no-op, which makes it safe for event-loop style hosts that
    may observe completions out of submission order.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError("clock cannot start before time zero")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in microseconds."""
        return self._now

    def advance_to(self, when: float) -> float:
        """Move the clock forward to ``when`` (no-op if in the past)."""
        if when > self._now:
            self._now = when
        return self._now

    def advance_by(self, delta: float) -> float:
        """Move the clock forward by ``delta`` microseconds."""
        if delta < 0:
            raise ValueError("cannot advance the clock by a negative amount")
        self._now += delta
        return self._now

    def snapshot(self) -> float:
        """Opaque copy of the clock state (snapshot/restore protocol)."""
        return self._now

    def restore(self, state: float) -> None:
        """Rewind/forward the clock to a :meth:`snapshot`."""
        if state < 0:
            raise ValueError("clock cannot be restored before time zero")
        self._now = float(state)

    def reset(self, start: float = 0.0) -> None:
        """Rewind the clock (used between independent experiments)."""
        if start < 0:
            raise ValueError("clock cannot be reset before time zero")
        self._now = float(start)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(now={self._now:.1f}us)"
