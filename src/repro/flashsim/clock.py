"""Simulated clock.

The reproduction replaces wall-clock time with a deterministic simulated
clock measured in microseconds.  The host model advances the clock; the
device records until when it is busy so that idle gaps (pauses between
IOs) can be handed to background work such as asynchronous page
reclamation (Section 4.3 / Figure 5 of the paper).
"""

from __future__ import annotations

import heapq
from typing import Any


class SimClock:
    """A monotone simulated clock in microseconds.

    The clock never goes backwards: :meth:`advance_to` with a time in the
    past is a no-op, which makes it safe for event-loop style hosts that
    may observe completions out of submission order.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError("clock cannot start before time zero")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in microseconds."""
        return self._now

    def advance_to(self, when: float) -> float:
        """Move the clock forward to ``when`` (no-op if in the past)."""
        if when > self._now:
            self._now = when
        return self._now

    def advance_by(self, delta: float) -> float:
        """Move the clock forward by ``delta`` microseconds."""
        if delta < 0:
            raise ValueError("cannot advance the clock by a negative amount")
        self._now += delta
        return self._now

    def snapshot(self) -> float:
        """Opaque copy of the clock state (snapshot/restore protocol)."""
        return self._now

    def restore(self, state: float) -> None:
        """Rewind/forward the clock to a :meth:`snapshot`."""
        if state < 0:
            raise ValueError("clock cannot be restored before time zero")
        self._now = float(state)

    def reset(self, start: float = 0.0) -> None:
        """Rewind the clock (used between independent experiments)."""
        if start < 0:
            raise ValueError("clock cannot be reset before time zero")
        self._now = float(start)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(now={self._now:.1f}us)"


class EventTimeline:
    """A future-event queue driving a :class:`SimClock`.

    The queued-device model schedules completion events at known future
    times; :meth:`pop` removes the earliest one and advances the clock
    to it.  Events at the same instant resolve in *schedule order* (a
    monotone sequence number breaks ties), which is what makes
    out-of-order completions deterministic: two IOs finishing on
    different channels at the same microsecond always pop in submission
    order.
    """

    __slots__ = ("clock", "_heap", "_seq")

    def __init__(self, clock: SimClock | None = None) -> None:
        self.clock = clock if clock is not None else SimClock()
        self._heap: list[tuple[float, int, Any]] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._heap)

    def schedule(self, when: float, payload: Any) -> None:
        """Queue ``payload`` to fire at simulated time ``when``."""
        heapq.heappush(self._heap, (when, self._seq, payload))
        self._seq += 1

    def peek_time(self) -> float | None:
        """Time of the earliest pending event (``None`` when empty)."""
        return self._heap[0][0] if self._heap else None

    def pop(self) -> tuple[float, Any]:
        """Remove the earliest event, advancing the clock to its time."""
        if not self._heap:
            raise IndexError("pop from an empty event timeline")
        when, _seq, payload = heapq.heappop(self._heap)
        self.clock.advance_to(when)
        return when, payload

    def snapshot(self) -> tuple:
        """Opaque copy of the timeline state (snapshot/restore)."""
        return (self.clock.snapshot(), tuple(self._heap), self._seq)

    def restore(self, state: tuple) -> None:
        """Reset the timeline to a :meth:`snapshot`."""
        clock_state, heap, seq = state
        self.clock.restore(clock_state)
        self._heap = list(heap)
        heapq.heapify(self._heap)
        self._seq = seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EventTimeline(pending={len(self._heap)}, now={self.clock.now:.1f}us)"
