"""Timing model for simulated flash devices.

Response time of a host IO decomposes into (Section 2 of the paper):

* a per-IO *controller overhead* — command decode, FTL map lookup, host
  interface latency (USB vs IDE vs SATA differ wildly here);
* *bus transfer* time proportional to the number of bytes moved;
* the *flash operation* times proper: page read, page program, block
  erase, with SLC chips faster than MLC;
* optional *map-miss* penalties when the direct map does not fit in
  controller RAM (Section 2.2).

:class:`TimingSpec` is a frozen value object; :class:`CostAccumulator`
is the mutable tally the FTL/controller use while servicing one IO.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.units import KIB, MSEC, USEC


@dataclass(frozen=True)
class TimingSpec:
    """Latency parameters of one device, all in microseconds.

    ``transfer_per_kib`` covers the external interconnect plus the chip
    bus (serialised, as on a single-channel controller).  The internal
    parallelism is described by integer ``channels`` (independent flash
    buses the controller can dispatch on) times ``planes`` (planes
    exploited per channel).  ``parallelism`` — the effective number of
    flash operations overlapped within *one* IO — is kept as a derived
    alias equal to ``channels * planes``: every cost formula divides by
    it exactly as before, so single-IO service times are unchanged.
    Queued IOs additionally overlap *across* channels; that occupancy
    tracking lives in the device's command queue, not here.

    Either specify ``parallelism`` (legacy; ``channels`` is derived as
    ``parallelism // planes``, which requires an integral ratio) or
    specify ``channels``/``planes`` explicitly and leave ``parallelism``
    at its default.
    """

    read_page: float = 25.0
    program_page: float = 220.0
    erase_block: float = 1_500.0
    transfer_per_kib: float = 20.0
    controller_overhead: float = 80.0
    map_miss: float = 0.0
    parallelism: float = 1.0
    copy_parallelism: float = 1.0
    copy_page_extra: float = 0.0
    channels: int = 0  # 0 -> derived from parallelism / planes
    planes: int = 1

    def __post_init__(self) -> None:
        if min(
            self.read_page,
            self.program_page,
            self.erase_block,
            self.transfer_per_kib,
            self.controller_overhead,
            self.map_miss,
        ) < 0 or self.copy_page_extra < 0:
            raise ValueError("timing parameters must be non-negative")
        if self.parallelism < 1.0 or self.copy_parallelism < 1.0:
            raise ValueError("parallelism must be >= 1")
        if not isinstance(self.planes, int) or self.planes < 1:
            raise ValueError("planes must be an integer >= 1")
        if not isinstance(self.channels, int) or self.channels < 0:
            raise ValueError("channels must be an integer >= 0 (0 = derived)")
        if self.channels == 0:
            derived = self.parallelism / self.planes
            if derived != int(derived) or derived < 1:
                raise ValueError(
                    f"parallelism {self.parallelism} does not decompose into "
                    f"an integral channel count at planes={self.planes}"
                )
            object.__setattr__(self, "channels", int(derived))
        else:
            effective = float(self.channels * self.planes)
            if self.parallelism not in (1.0, effective):
                raise ValueError(
                    f"parallelism {self.parallelism} conflicts with "
                    f"channels={self.channels} x planes={self.planes}"
                )
            object.__setattr__(self, "parallelism", effective)

    # -- convenience composite costs --------------------------------------

    def transfer(self, nbytes: int) -> float:
        """Bus transfer time for ``nbytes``."""
        return self.transfer_per_kib * (nbytes / KIB)

    def read_pages(self, count: int) -> float:
        """Flash time to read ``count`` pages, exploiting parallelism."""
        return self.read_page * count / self.parallelism

    def program_pages(self, count: int) -> float:
        """Flash time to program ``count`` pages, exploiting parallelism."""
        return self.program_page * count / self.parallelism

    def erase_blocks(self, count: int) -> float:
        """Flash time to erase ``count`` blocks (internal path)."""
        return self.erase_block * count / self.copy_parallelism

    def copy_pages(self, reads: int, programs: int) -> float:
        """Flash time for internal copies (merges / GC).

        Host IOs stripe across all channels (``parallelism``); internal
        block merges are confined to one or two chips
        (``copy_parallelism``) — this asymmetry is why random writes are
        so much more expensive than the raw page timings suggest.
        ``copy_page_extra`` adds per-copied-page overhead for cheap
        controllers that shuffle copyback data through their own RAM.
        """
        return (
            self.read_page * reads
            + (self.program_page + self.copy_page_extra) * programs
        ) / self.copy_parallelism


# SLC chips: ~25us read, ~220us program, ~1.5ms erase (datasheet-typical
# for the 2008 era).  MLC chips: slower on every axis, much slower program.
SLC_TIMING = TimingSpec(
    read_page=25.0,
    program_page=220.0,
    erase_block=1_500.0,
)

MLC_TIMING = TimingSpec(
    read_page=60.0,
    program_page=800.0,
    erase_block=2_500.0,
)


@dataclass(slots=True)
class CostAccumulator:
    """Mutable tally of the flash work done to service one host IO.

    The FTL records raw operation *counts*; :meth:`total` converts them to
    microseconds with a :class:`TimingSpec`.  Keeping counts (rather than
    accumulating time directly) makes FTL unit tests independent of the
    timing calibration and lets traces expose the physical work performed.
    """

    page_reads: int = 0
    page_programs: int = 0
    copy_reads: int = 0
    copy_programs: int = 0
    block_erases: int = 0
    bytes_transferred: int = 0
    map_misses: int = 0
    extra_usec: float = 0.0
    notes: list[str] = field(default_factory=list)
    #: provenance ledger: ``None`` (the default) disables scope tracking
    #: entirely; a list makes :meth:`begin_scope` hand out fresh
    #: sub-accumulators whose totals are folded back with a ``(tag, sub)``
    #: entry here.  Excluded from equality — it is observability, not work.
    scopes: list | None = field(default=None, compare=False, repr=False)
    #: per-IO latency decomposition attached by the device when a flight
    #: recorder is enabled: ``(channel, component_usec...)`` integers in
    #: :data:`repro.flashsim.recorder.COMPONENTS` order.
    attribution: tuple | None = field(default=None, compare=False, repr=False)

    def add(self, other: "CostAccumulator") -> None:
        """Fold another accumulator into this one."""
        self.page_reads += other.page_reads
        self.page_programs += other.page_programs
        self.copy_reads += other.copy_reads
        self.copy_programs += other.copy_programs
        self.block_erases += other.block_erases
        self.bytes_transferred += other.bytes_transferred
        self.map_misses += other.map_misses
        self.extra_usec += other.extra_usec
        self.notes.extend(other.notes)

    def note(self, tag: str) -> None:
        """Record a qualitative event (e.g. ``"full-merge"``) for traces."""
        self.notes.append(tag)

    # -- provenance scopes (the flight recorder's attribution channel) ---

    def begin_scope(self) -> "CostAccumulator":
        """Open a provenance scope for a unit of internal work.

        With tracking disabled (``scopes is None``, the default) this
        returns ``self`` and the caller's accounting is unchanged — one
        attribute check is the whole hot-path cost.  With tracking
        enabled it returns a fresh tracking sub-accumulator; the caller
        tallies into it and closes with :meth:`end_scope`, which folds
        the totals back so ``total()`` is identical either way.
        """
        if self.scopes is None:
            return self
        sub = CostAccumulator()
        sub.scopes = []
        return sub

    def end_scope(self, tag: str, sub: "CostAccumulator") -> None:
        """Close a scope opened with :meth:`begin_scope`.

        ``tag`` names the component the scope's *exclusive* work is
        attributed to (``"gc"``, ``"merge"``, ``"wear"``, ``"cache"``);
        nested scopes keep their own tags.  A no-op when tracking is
        disabled (``sub is self``).
        """
        if sub is self:
            return
        self.add(sub)
        self.scopes.append((tag, sub))

    def flash_usec(self, timing: TimingSpec) -> float:
        """Time spent on flash operations alone."""
        return (
            timing.read_pages(self.page_reads)
            + timing.program_pages(self.page_programs)
            + timing.copy_pages(self.copy_reads, self.copy_programs)
            + timing.erase_blocks(self.block_erases)
        )

    def total(self, timing: TimingSpec, include_overhead: bool = True) -> float:
        """Total service time in microseconds under ``timing``."""
        usec = (
            self.flash_usec(timing)
            + timing.transfer(self.bytes_transferred)
            + self.map_misses * timing.map_miss
            + self.extra_usec
        )
        if include_overhead:
            usec += timing.controller_overhead
        return usec

    def is_empty(self) -> bool:
        """True when no physical work at all was recorded."""
        return (
            self.page_reads == 0
            and self.page_programs == 0
            and self.copy_reads == 0
            and self.copy_programs == 0
            and self.block_erases == 0
            and self.bytes_transferred == 0
            and self.map_misses == 0
            and self.extra_usec == 0.0
        )


__all__ = [
    "TimingSpec",
    "CostAccumulator",
    "SLC_TIMING",
    "MLC_TIMING",
    "USEC",
    "MSEC",
]
