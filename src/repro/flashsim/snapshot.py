"""Device snapshot/restore: reproducible state at constant cost.

Section 4.1 of the paper makes enforced device state the precondition
of every sound measurement — and building it (a random fill of the
whole device) its dominant cost: 5 hours to 35 days per real device.
The simulator pays the fill once per profile, captures the result in a
:class:`DeviceSnapshot`, and restores it wherever a fresh enforced
state is needed (benchmark-plan state resets, per-benchmark setup,
campaign worker processes).

Two properties make snapshots safe to share:

* they are *deep copies* — a snapshot is independent of the live
  device, both directions copy, so one snapshot supports any number of
  restores and a restored device cannot mutate the snapshot;
* they are *picklable* — the :class:`~repro.core.executor.CampaignExecutor`
  ships one snapshot per profile to its worker processes, which restore
  it onto freshly built devices; because the simulator is deterministic
  the workers' results are bit-identical to a sequential execution.

Snapshots hold only *authoritative* state: FTL-derived structures
(free/valid bitmaps, inverse maps, GC buckets) are rebuilt on restore,
and the chip's bad-block mask travels packed one-bit-per-block
(:class:`~repro.flashsim.bitmap.PackedBits`).

Every stateful layer participates: :class:`~repro.flashsim.chip.FlashChip`
(tokens, write points, wear counters, bad blocks), each ``ftl/*``
family (via :attr:`~repro.flashsim.ftl.base.BaseFTL._STATE_ATTRS`),
:class:`~repro.flashsim.cache.WriteBackCache`,
:class:`~repro.flashsim.controller.Controller` (verification shadow)
and :class:`~repro.flashsim.clock.SimClock`.

Zero-copy distribution
----------------------

For campaign-scale fan-out a snapshot additionally *packs* into flat
buffers (:func:`pack_snapshot`): a pickle protocol-5 metadata stream
plus the raw bytes of every numpy array and packed bitmap, extracted
out-of-band.  A :class:`SnapshotStore` lays packed snapshots out in
POSIX shared memory, content-addressed by the device-state fingerprint;
worker processes attach by segment name and unpickle the metadata
against read-only views of the shared buffers, so restoring N cells
ships the large state arrays through the process-pool pipe **zero**
times instead of N.  Restores copy out of the views (the usual
snapshot-stays-reusable contract), which also means a worker can never
corrupt the shared state.
"""

from __future__ import annotations

import pickle
import secrets
import struct
import weakref
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import SnapshotError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.flashsim.device import DeviceStats


@dataclass
class DeviceSnapshot:
    """Complete copy of a :class:`~repro.flashsim.device.FlashDevice` state.

    The identity fields (``device_name``, geometry dimensions,
    ``ftl_type``) guard restores: a snapshot only fits a device with the
    same shape, FTL family and cache configuration it was taken from.
    """

    device_name: str
    logical_bytes: int
    physical_blocks: int
    ftl_type: str
    chip: dict
    ftl: dict
    controller: dict
    stats: DeviceStats
    busy_until: float
    bg_credit: float
    noise_state: tuple
    #: per-channel busy horizons (empty = pre-queue snapshot, channels
    #: reset on restore) and the command-queue state (timeline plus
    #: occupancy counters; ``None`` = pre-queue snapshot, queue reset)
    channel_busy: tuple = ()
    queue: tuple | None = None


# ----------------------------------------------------------------------
# flat-buffer packing (pickle protocol 5, buffers out-of-band)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class PackedSnapshot:
    """A :class:`DeviceSnapshot` separated into metadata and flat buffers.

    ``meta`` is a pickle protocol-5 stream describing the object graph;
    ``buffers`` holds the out-of-band payloads (numpy array data, packed
    bitmap bytes) in the order the stream references them.  The pair
    round-trips through :func:`unpack_snapshot`; because the buffers are
    plain bytes-like objects they can live anywhere — the process heap,
    a shared-memory segment, a file mapping — without re-pickling.
    """

    meta: bytes
    buffers: tuple

    @property
    def nbytes(self) -> int:
        """Total packed size: metadata plus every flat buffer."""
        return len(self.meta) + sum(_buffer_len(b) for b in self.buffers)


def _buffer_len(buffer) -> int:
    """Byte length of one packed buffer (memoryview or bytes)."""
    if isinstance(buffer, memoryview):
        return buffer.nbytes
    return len(buffer)


def _flatten(buffer: pickle.PickleBuffer):
    """One out-of-band buffer as a flat bytes-like object.

    Contiguous data stays a zero-copy view; the (rare) non-contiguous
    buffer is copied into bytes — pickle only needs the raw payload.
    """
    try:
        return buffer.raw()
    except BufferError:  # non-contiguous: copy once
        with memoryview(buffer) as view:
            return view.tobytes()


def pack_snapshot(snapshot: DeviceSnapshot) -> PackedSnapshot:
    """Pack a snapshot into flat buffers (see :class:`PackedSnapshot`).

    Every numpy array (and every :class:`~repro.flashsim.bitmap.PackedBits`
    payload) in the snapshot is extracted out-of-band via pickle
    protocol 5, leaving a small metadata stream; nothing large is
    copied — the buffers are views into the snapshot's own arrays, so
    the snapshot must stay alive while the packed form is in use.
    """
    raw: list[pickle.PickleBuffer] = []
    meta = pickle.dumps(snapshot, protocol=5, buffer_callback=raw.append)
    return PackedSnapshot(meta=meta, buffers=tuple(_flatten(b) for b in raw))


def unpack_snapshot(packed: PackedSnapshot) -> DeviceSnapshot:
    """Rebuild a :class:`DeviceSnapshot` from its packed form.

    Arrays in the result reference the packed buffers directly (zero
    copy); restoring onto a device copies out of them, so the returned
    snapshot is safe to restore any number of times as long as the
    underlying buffers stay alive.
    """
    return pickle.loads(packed.meta, buffers=packed.buffers)


# ----------------------------------------------------------------------
# shared-memory segments
# ----------------------------------------------------------------------

#: segment format tag; written *last*, so a reader attaching to a
#: half-written segment sees its absence and can fail cleanly
_MAGIC = b"UFSNAP01"
_HEAD = struct.Struct("<QI")  # meta length, buffer count


def _tracked_name(name: str) -> str:
    """The name the resource tracker knows a POSIX segment by."""
    return name if name.startswith("/") else "/" + name


def _untrack(name: str) -> None:
    """Drop this process's resource-tracker claim on a segment.

    Attaching registers the segment with the process's resource tracker
    (Python <= 3.12); a worker that merely *uses* a parent-owned segment
    must release that claim, or a spawn-started worker's tracker would
    unlink the segment when the worker exits.
    """
    from multiprocessing import resource_tracker

    try:
        resource_tracker.unregister(_tracked_name(name), "shared_memory")
    except Exception:  # tracker gone / never registered: nothing to drop
        pass


def _track(name: str) -> None:
    """Claim a segment with this process's resource tracker.

    The owner of record holds exactly one claim: if the owning process
    is killed outright, its tracker unlinks the segment — the leak
    backstop behind the executor's explicit cleanup.
    """
    from multiprocessing import resource_tracker

    try:
        resource_tracker.register(_tracked_name(name), "shared_memory")
    except Exception:  # pragma: no cover - tracker unavailable
        pass


def segment_bytes(packed: PackedSnapshot) -> int:
    """Size in bytes of the shared-memory segment ``packed`` needs."""
    header = len(_MAGIC) + _HEAD.size + 8 * len(packed.buffers)
    return header + packed.nbytes


def write_segment(shm, packed: PackedSnapshot) -> None:
    """Lay a packed snapshot out in a shared-memory segment.

    Layout: magic, metadata length + buffer count, per-buffer lengths,
    metadata stream, then the flat buffers back to back.  The magic is
    written last, so a concurrent attacher can distinguish a fully
    written segment from one still being filled.
    """
    lens = [_buffer_len(b) for b in packed.buffers]
    need = segment_bytes(packed)
    if shm.size < need:
        raise SnapshotError(
            f"segment {shm.name} holds {shm.size} bytes; snapshot needs {need}"
        )
    buf = shm.buf
    buf[: len(_MAGIC)] = b"\0" * len(_MAGIC)
    offset = len(_MAGIC)
    _HEAD.pack_into(buf, offset, len(packed.meta), len(packed.buffers))
    offset += _HEAD.size
    struct.pack_into(f"<{len(lens)}Q", buf, offset, *lens)
    offset += 8 * len(lens)
    buf[offset : offset + len(packed.meta)] = packed.meta
    offset += len(packed.meta)
    for buffer, length in zip(packed.buffers, lens):
        buf[offset : offset + length] = bytes(buffer) if not isinstance(
            buffer, (bytes, memoryview)
        ) else buffer
        offset += length
    buf[: len(_MAGIC)] = _MAGIC  # commit


def read_segment(shm) -> DeviceSnapshot:
    """Unpickle the snapshot laid out in a shared-memory segment.

    The result's arrays are **read-only views into the segment** — zero
    bytes are copied here.  The caller must keep the ``shm`` handle (and
    the segment) alive for as long as the snapshot is in use; device
    restores copy out of the views, so the views themselves are never
    written.
    """
    buf = shm.buf
    if bytes(buf[: len(_MAGIC)]) != _MAGIC:
        raise SnapshotError(
            f"segment {shm.name} carries no complete packed snapshot"
        )
    offset = len(_MAGIC)
    meta_len, count = _HEAD.unpack_from(buf, offset)
    offset += _HEAD.size
    lens = struct.unpack_from(f"<{count}Q", buf, offset)
    offset += 8 * count
    meta = bytes(buf[offset : offset + meta_len])
    offset += meta_len
    views = []
    for length in lens:
        views.append(buf[offset : offset + length].toreadonly())
        offset += length
    return pickle.loads(meta, buffers=views)


def attach_segment(name: str):
    """Attach to a published segment by name; returns ``(shm, snapshot)``.

    Worker-process entry point: the returned snapshot's arrays are
    read-only views into the mapping, and the handle must be kept alive
    alongside it.  The attach drops its resource-tracker claim — the
    publishing executor owns the segment's lifetime, not the attacher.
    """
    from multiprocessing import shared_memory

    shm = shared_memory.SharedMemory(name=name)
    _untrack(name)
    try:
        return shm, read_segment(shm)
    except Exception:
        shm.close()
        raise


def _unlink_segments(names: list) -> None:
    """Best-effort unlink of every named segment (finalizer target).

    Module-level (not a bound method) so a :class:`SnapshotStore`
    finalizer holds no reference back to the store.
    """
    from multiprocessing import shared_memory

    while names:
        name = names.pop()
        try:
            shm = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            continue
        except OSError:  # pragma: no cover - platform quirk
            continue
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - raced another unlink
            pass
        try:
            shm.close()
        except BufferError:  # pragma: no cover - live exports die with us
            pass


class SnapshotStore:
    """Content-addressed shared-memory store of packed snapshots.

    Segments are keyed by the device-state fingerprint (the same hash
    that keys run-cache entries), under names unique to one store
    ``token`` — so concurrent campaigns never collide, and one campaign
    publishing the same state twice reuses the first segment.

    The store guarantees cleanup: every published **or adopted** segment
    is unlinked by :meth:`close`, and a ``weakref`` finalizer (backed by
    the interpreter's ``atexit`` machinery) unlinks whatever is left if
    the owner forgets — including when worker processes crashed
    mid-campaign.  A hard-killed owner is covered by the
    ``multiprocessing`` resource tracker, with which the store keeps one
    claim per segment.
    """

    def __init__(self, token: str | None = None) -> None:
        self.token = token or secrets.token_hex(4)
        #: name -> SharedMemory handle (None for adopted segments, whose
        #: creating worker holds the only mapping)
        self._segments: dict[str, object | None] = {}
        self._by_fingerprint: dict[str, str] = {}
        #: bytes of packed snapshot payload currently published
        self.packed_bytes = 0
        self._names: list[str] = []  # shared with the finalizer
        self._finalizer = weakref.finalize(self, _unlink_segments, self._names)
        # start the resource tracker *now*, in the store's owner: workers
        # forked later share it, so their registrations collapse into one
        # tracker instead of per-worker trackers that would unlink
        # still-live segments when a worker exits
        from multiprocessing import resource_tracker

        try:
            resource_tracker.ensure_running()
        except Exception:  # pragma: no cover - tracker unavailable
            pass

    def __len__(self) -> int:
        return len(self._segments)

    def segment_names(self) -> tuple[str, ...]:
        """Names of every segment this store is responsible for."""
        return tuple(self._segments)

    def name_for(self, fingerprint: str) -> str:
        """Deterministic segment name of one fingerprint in this store."""
        return f"ufsnp-{self.token}-{fingerprint[:16]}"

    def get(self, fingerprint: str) -> str | None:
        """Segment name already published for ``fingerprint``, or None."""
        return self._by_fingerprint.get(fingerprint)

    def publish(self, fingerprint: str, snapshot: DeviceSnapshot) -> tuple[str, int]:
        """Pack ``snapshot`` into a segment; returns ``(name, bytes)``.

        Content-addressed: publishing a fingerprint that is already in
        the store returns the existing segment without re-packing.
        Raises ``OSError`` where shared memory is unavailable — callers
        fall back to shipping pickled snapshots.
        """
        from multiprocessing import shared_memory

        existing = self._by_fingerprint.get(fingerprint)
        if existing is not None:
            return existing, 0
        packed = pack_snapshot(snapshot)
        name = self.name_for(fingerprint)
        shm = shared_memory.SharedMemory(
            name=name, create=True, size=max(segment_bytes(packed), 1)
        )
        try:
            write_segment(shm, packed)
        except Exception:
            shm.unlink()
            shm.close()
            raise
        self._segments[name] = shm
        self._by_fingerprint[fingerprint] = name
        self._names.append(name)
        self.packed_bytes += packed.nbytes
        return name, packed.nbytes

    def adopt(self, fingerprint: str, name: str, nbytes: int = 0) -> None:
        """Take ownership of a segment a worker process published.

        The worker dropped its resource-tracker claim when it created
        the segment; adoption claims it here, so the store's owner both
        unlinks it on :meth:`close` and backstops a hard kill.
        """
        if name in self._segments:
            return
        _track(name)
        self._segments[name] = None
        self._by_fingerprint[fingerprint] = name
        self._names.append(name)
        self.packed_bytes += nbytes

    def fetch(self, fingerprint: str) -> DeviceSnapshot | None:
        """An independent (fully copied) snapshot of a stored state.

        Attaches to the fingerprint's segment, deep-copies the snapshot
        out of the shared views and detaches — for consumers that need
        the snapshot to outlive the store (e.g. adopting a
        worker-enforced state into a parent-side pool).  Returns None
        when the fingerprint is not stored.
        """
        from multiprocessing import shared_memory

        name = self._by_fingerprint.get(fingerprint)
        if name is None:
            return None
        handle = self._segments.get(name)
        shm = handle
        if shm is None:
            shm = shared_memory.SharedMemory(name=name)
            _untrack(name)
        try:
            shared = read_segment(shm)
            clone = pickle.loads(pickle.dumps(shared, protocol=5))
            del shared
            return clone
        finally:
            if handle is None:  # only close handles opened here
                try:
                    shm.close()
                except BufferError:  # pragma: no cover - views still live
                    pass

    def discard(self, fingerprint: str) -> None:
        """Unlink one fingerprint's segment (store-bound memory caps)."""
        name = self._by_fingerprint.pop(fingerprint, None)
        if name is None:
            return
        self._segments.pop(name, None)
        if name in self._names:
            self._names.remove(name)
        _unlink_segments([name])

    def close(self) -> None:
        """Unlink every segment; idempotent, also runs at interpreter exit."""
        self._segments.clear()
        self._by_fingerprint.clear()
        self.packed_bytes = 0
        if self._finalizer.alive:
            self._finalizer()  # drains self._names

    def __enter__(self) -> "SnapshotStore":
        """Context-manager support: the store closes on block exit."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Unlink all segments when the ``with`` block ends."""
        self.close()


def publish_from_worker(token: str, fingerprint: str, snapshot: DeviceSnapshot):
    """Publish a snapshot from a worker process into its parent's store.

    Creates (or, racing another worker on the same content, reuses) the
    store-deterministic segment for ``fingerprint`` and immediately
    drops the worker's resource-tracker claim — the parent adopts the
    segment when the prepare result arrives.  Returns
    ``(shm, snapshot, name, packed_bytes)``; the worker must keep the
    handle alive while any of its restores use the snapshot.  Raises
    ``OSError`` where shared memory is unavailable.
    """
    from multiprocessing import shared_memory

    name = f"ufsnp-{token}-{fingerprint[:16]}"
    packed = pack_snapshot(snapshot)
    try:
        shm = shared_memory.SharedMemory(
            name=name, create=True, size=max(segment_bytes(packed), 1)
        )
    except FileExistsError:
        # same content published by a sibling worker: reuse it (the
        # worker's own snapshot object serves for local restores)
        shm = shared_memory.SharedMemory(name=name)
        _untrack(name)
        return shm, snapshot, name, packed.nbytes
    _untrack(name)
    try:
        write_segment(shm, packed)
    except Exception:
        shm.unlink()
        shm.close()
        raise
    return shm, snapshot, name, packed.nbytes


__all__ = [
    "DeviceSnapshot",
    "PackedSnapshot",
    "SnapshotStore",
    "attach_segment",
    "pack_snapshot",
    "publish_from_worker",
    "read_segment",
    "segment_bytes",
    "unpack_snapshot",
    "write_segment",
]
