"""Device snapshot/restore: reproducible state at constant cost.

Section 4.1 of the paper makes enforced device state the precondition
of every sound measurement — and building it (a random fill of the
whole device) its dominant cost: 5 hours to 35 days per real device.
The simulator pays the fill once per profile, captures the result in a
:class:`DeviceSnapshot`, and restores it wherever a fresh enforced
state is needed (benchmark-plan state resets, per-benchmark setup,
campaign worker processes).

Two properties make snapshots safe to share:

* they are *deep copies* — a snapshot is independent of the live
  device, both directions copy, so one snapshot supports any number of
  restores and a restored device cannot mutate the snapshot;
* they are *picklable* — the :class:`~repro.core.executor.CampaignExecutor`
  ships one snapshot per profile to its worker processes, which restore
  it onto freshly built devices; because the simulator is deterministic
  the workers' results are bit-identical to a sequential execution.

Snapshots hold only *authoritative* state: FTL-derived structures
(free/valid bitmaps, inverse maps, GC buckets) are rebuilt on restore,
and the chip's bad-block mask travels packed one-bit-per-block
(:class:`~repro.flashsim.bitmap.PackedBits`).

Every stateful layer participates: :class:`~repro.flashsim.chip.FlashChip`
(tokens, write points, wear counters, bad blocks), each ``ftl/*``
family (via :attr:`~repro.flashsim.ftl.base.BaseFTL._STATE_ATTRS`),
:class:`~repro.flashsim.cache.WriteBackCache`,
:class:`~repro.flashsim.controller.Controller` (verification shadow)
and :class:`~repro.flashsim.clock.SimClock`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.flashsim.device import DeviceStats


@dataclass
class DeviceSnapshot:
    """Complete copy of a :class:`~repro.flashsim.device.FlashDevice` state.

    The identity fields (``device_name``, geometry dimensions,
    ``ftl_type``) guard restores: a snapshot only fits a device with the
    same shape, FTL family and cache configuration it was taken from.
    """

    device_name: str
    logical_bytes: int
    physical_blocks: int
    ftl_type: str
    chip: dict
    ftl: dict
    controller: dict
    stats: DeviceStats
    busy_until: float
    bg_credit: float
    noise_state: tuple
    #: per-channel busy horizons (empty = pre-queue snapshot, channels
    #: reset on restore) and the command-queue state (timeline plus
    #: occupancy counters; ``None`` = pre-queue snapshot, queue reset)
    channel_busy: tuple = ()
    queue: tuple | None = None


__all__ = ["DeviceSnapshot"]
