"""Host-side IO submission model.

The paper submits IOs with **direct, synchronous** system calls so the
file system and disk scheduler cannot reorder or coalesce them
(Section 4.3).  The simulated equivalents:

* :class:`SyncHost` — one thread of control; each IO is submitted when
  the pattern's timing function says so and the host blocks until it
  completes.  ``os_overhead_usec`` models the system-call cost the
  paper cannot avoid even with direct IO.

* :class:`ParallelHost` — the Parallelism micro-benchmark's
  ``ParallelDegree`` concurrent processes, each running its own
  pattern.  An event loop always advances the process with the earliest
  next submission time; the device itself remains a single queue, so
  concurrent IOs serialise and each process observes queueing delay in
  its response times.  This is the machinery behind the paper's finding
  that parallel IO does not help flash devices (Hint 7).

* :class:`AsyncHost` — an extension beyond the paper: one process
  keeping the device's NCQ-style command queue full (up to a queue
  depth), so IOs overlap across the device's channels.  At queue depth
  1 it is bit-identical to :class:`SyncHost`; paced patterns preserve
  the feedback recurrence (the pause before IO *i* counts from IO
  *i-1*'s completion) by waiting for that completion before submitting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterator, Sequence

from repro.flashsim import analytic
from repro.flashsim.device import FlashDevice
from repro.flashsim.trace import IOTrace
from repro.iotypes import CompletedIO, IORequest

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.core.generator import IOProgram

#: a pattern feed: given the previous completion (None at the start),
#: yields the next request or None when the pattern is exhausted.
RequestFeed = Callable[[CompletedIO | None], IORequest | None]


@dataclass
class SyncHost:
    """Synchronous, direct-IO submission from a single process."""

    device: FlashDevice
    os_overhead_usec: float = 0.0

    def run(self, feed: RequestFeed, start_at: float = 0.0) -> list[CompletedIO]:
        """Drive a feed to exhaustion; returns completions in order."""
        completions: list[CompletedIO] = []
        previous: CompletedIO | None = None
        clock = start_at
        while True:
            request = feed(previous)
            if request is None:
                break
            submit_at = max(clock, request.scheduled_at)
            completed = self.device.submit(request, submit_at + self.os_overhead_usec)
            completions.append(completed)
            clock = completed.completed_at
            previous = completed
        return completions

    def run_program(
        self, program: "IOProgram", start_at: float = 0.0
    ) -> IOTrace:
        """Drive a precomputed :class:`~repro.core.generator.IOProgram`.

        The columnar equivalent of :meth:`run`: the loop keeps only the
        irreducible feedback step (``t(IOi)`` depends on ``rt(IOi-1)``,
        Table 1) and records each IO straight into a columnar
        :class:`~repro.flashsim.trace.IOTrace` — no request/completion
        objects.  Timing semantics are identical to :meth:`run`.

        Back-to-back (zero-gap, zero-overhead) programs on qualifying
        devices first try the closed-form run kernels
        (:mod:`repro.flashsim.analytic`), which simulate whole
        transition-free windows on columns and decay to this loop's
        per-IO path at every window boundary.  The kernels return
        ``False`` without touching any state when the program or device
        disqualifies, so the reference loop below always starts clean.
        """
        count = len(program)
        trace = IOTrace(capacity=count)
        if count and analytic.run_program_into(
            self.device, program, trace, start_at, self.os_overhead_usec
        ):
            return trace
        lbas = program.lbas.tolist()
        sizes = program.sizes.tolist()
        writes = program.writes.tolist()
        gaps = program.gaps.tolist()
        submit_into = self.device.submit_into
        overhead = self.os_overhead_usec
        clock = start_at
        for i in range(count):
            scheduled = start_at if i == 0 else clock + gaps[i]
            submit_at = max(clock, scheduled)
            clock = submit_into(
                trace, i, lbas[i], sizes[i], writes[i],
                submit_at + overhead, scheduled,
            )
        return trace


@dataclass
class AsyncHost:
    """Asynchronous submission: keep the device queue full.

    Runs an :class:`~repro.core.generator.IOProgram` with up to
    ``queue_depth`` IOs in flight (clamped to the device's own queue
    depth).  Consecutive IOs submit back-to-back without waiting;
    paced IOs (a positive inter-IO gap) wait for the *previous* IO's
    completion first, because the pattern's submit-time recurrence
    ``t(IOi) = t(IOi-1) + rt(IOi-1) + Pause`` (Table 1) is defined on
    response times — so Pause patterns stay effectively synchronous and
    Burst patterns overlap only within a burst.

    Completions may pop out of submission order; each is recorded at
    ``row = submission index``, so the trace is in submission order and
    byte-identical CSV regardless of the completion interleaving.
    """

    device: FlashDevice
    os_overhead_usec: float = 0.0
    queue_depth: int = 0  # 0 -> the program's (or the device's) depth

    def run_program(
        self,
        program: "IOProgram",
        start_at: float = 0.0,
        queue_depth: int | None = None,
    ) -> IOTrace:
        """Drive a precomputed program with queued submission."""
        requested = (
            queue_depth
            if queue_depth is not None
            else (self.queue_depth or getattr(program, "queue_depth", 1))
        )
        depth = max(1, min(int(requested), self.device.queue_depth))
        count = len(program)
        trace = IOTrace(capacity=count)
        if analytic.run_program_queued(
            self.device, program, trace, start_at, self.os_overhead_usec, depth
        ):
            return trace
        lbas = program.lbas.tolist()
        sizes = program.sizes.tolist()
        writes = program.writes.tolist()
        gaps = program.gaps.tolist()
        completed: list[float | None] = [None] * count
        device = self.device
        overhead = self.os_overhead_usec
        clock = start_at
        i = 0
        in_flight = 0
        while i < count or in_flight:
            ready = i < count and in_flight < depth
            if ready and i > 0 and gaps[i] > 0.0 and completed[i - 1] is None:
                ready = False  # paced: the gap counts from rt(IOi-1)
            if ready:
                if i == 0:
                    scheduled = start_at
                elif gaps[i] > 0.0:
                    scheduled = completed[i - 1] + gaps[i]
                else:
                    scheduled = clock
                clock = max(clock, scheduled)
                device.submit_async(
                    lbas[i], sizes[i], writes[i],
                    clock + overhead, tag=i, scheduled_at=scheduled,
                )
                in_flight += 1
                i += 1
            else:
                entry = device.pop_next_completion()
                trace.record_at(
                    entry.tag, entry.lba, entry.size, entry.write,
                    entry.scheduled_at, entry.submitted_at,
                    entry.started_at, entry.completed_at, entry.cost,
                )
                completed[entry.tag] = entry.completed_at
                if entry.completed_at > clock:
                    clock = entry.completed_at
                in_flight -= 1
        return trace


@dataclass
class _Process:
    """One concurrent pattern stream inside :class:`ParallelHost`."""

    feed: RequestFeed
    next_request: IORequest | None
    completions: list[CompletedIO]
    blocked_until: float


class ParallelHost:
    """``ParallelDegree`` processes issuing synchronous IO concurrently.

    Each process blocks on its own outstanding IO; the device serialises
    service.  The loop picks, among ready processes, the one whose next
    IO has the earliest effective submission time; ties always go to the
    lowest process index (a deterministic total order, *not* round-robin
    — on a consecutive-timing pattern every process is ready the moment
    the device frees, and the fixed scan order is what makes runs
    reproducible).
    """

    def __init__(self, device: FlashDevice, os_overhead_usec: float = 0.0) -> None:
        self.device = device
        self.os_overhead_usec = os_overhead_usec

    def run(
        self, feeds: Sequence[RequestFeed], start_at: float = 0.0
    ) -> list[list[CompletedIO]]:
        """Run all feeds concurrently; returns per-process completions."""
        processes = []
        for feed in feeds:
            first = feed(None)
            processes.append(
                _Process(
                    feed=feed,
                    next_request=first,
                    completions=[],
                    blocked_until=start_at,
                )
            )
        while True:
            best: _Process | None = None
            best_time = float("inf")
            for process in processes:
                if process.next_request is None:
                    continue
                ready_at = max(
                    process.blocked_until, process.next_request.scheduled_at
                )
                if ready_at < best_time:
                    best_time = ready_at
                    best = process
            if best is None:
                return [process.completions for process in processes]
            request = best.next_request
            assert request is not None
            completed = self.device.submit(
                request, best_time + self.os_overhead_usec
            )
            best.completions.append(completed)
            best.blocked_until = completed.completed_at
            best.next_request = best.feed(completed)

    def run_programs(
        self, programs: Sequence["IOProgram"], start_at: float = 0.0
    ) -> list[IOTrace]:
        """Drive precomputed programs concurrently, one per process.

        The columnar equivalent of :meth:`run`: same event loop, same
        earliest-submission scan with lowest-index tie-break, but each
        IO is recorded straight into that process's columnar trace.
        """
        states = [_ProgramState(program, start_at) for program in programs]
        submit_into = self.device.submit_into
        overhead = self.os_overhead_usec
        while True:
            best: _ProgramState | None = None
            best_time = float("inf")
            for state in states:
                if state.position >= state.count:
                    continue
                ready_at = max(state.blocked_until, state.scheduled)
                if ready_at < best_time:
                    best_time = ready_at
                    best = state
            if best is None:
                return [state.trace for state in states]
            position = best.position
            completion = submit_into(
                best.trace, position, best.lbas[position],
                best.sizes[position], best.writes[position],
                best_time + overhead, best.scheduled,
            )
            best.blocked_until = completion
            best.position = position + 1
            if best.position < best.count:
                best.scheduled = completion + best.gaps[best.position]


class _ProgramState:
    """Per-process cursor inside :meth:`ParallelHost.run_programs`."""

    __slots__ = (
        "lbas", "sizes", "writes", "gaps",
        "count", "position", "blocked_until", "scheduled", "trace",
    )

    def __init__(self, program: "IOProgram", start_at: float) -> None:
        self.lbas = program.lbas.tolist()
        self.sizes = program.sizes.tolist()
        self.writes = program.writes.tolist()
        self.gaps = program.gaps.tolist()
        self.count = len(program)
        self.position = 0
        self.blocked_until = start_at
        self.scheduled = start_at
        self.trace = IOTrace(capacity=self.count)


def feed_from_iterable(requests: Sequence[IORequest]) -> RequestFeed:
    """Adapt a pre-built request list into a feed (ignores feedback)."""
    iterator: Iterator[IORequest] = iter(requests)

    def feed(_previous: CompletedIO | None) -> IORequest | None:
        return next(iterator, None)

    return feed
