"""Controller RAM write-back cache.

High-end 2008 SSDs shipped with significant RAM (the paper notes the
Memoright carries an FPGA, 16 MB of RAM *and a condenser* — i.e. enough
residual power to destage on power loss, making genuine write-back
caching safe).  The cache is the mechanism behind three Table 3 effects:

* **Locality** — random writes confined to an area that fits in RAM are
  absorbed and destaged as dense per-block groups, costing about as much
  as sequential writes;
* **small-write absorption** (Figure 6) — four 4 KiB writes cost about
  as much as one 16 KiB write because they coalesce before touching
  flash;
* **cheap in-place writes** — repeated writes to one page overwrite in
  RAM (Samsung's x0.6 in Table 3).

Destaging picks the least-recently-used *logical block* and writes all
of its dirty pages in offset order, so a dense group reaches the FTL as
an in-order run (cheap merge) while scattered single pages force full
merges — which is exactly how wide-area random writes stay expensive.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.errors import FTLError
from repro.flashsim.ftl.base import BaseFTL
from repro.flashsim.geometry import Geometry
from repro.flashsim.timing import CostAccumulator


class WriteBackCache:
    """Page-granular write-back cache with LRU block-group destaging.

    Parameters
    ----------
    geometry:
        Device geometry (for page/block arithmetic).
    capacity_bytes:
        RAM dedicated to dirty data.  Must hold at least one page.
    low_watermark:
        Fraction of capacity to destage *down to* once the cache fills;
        the hysteresis makes destage work arrive in bursts, which is part
        of the oscillating response times of the running phase.
    """

    def __init__(
        self,
        geometry: Geometry,
        capacity_bytes: int,
        low_watermark: float = 0.75,
    ) -> None:
        if capacity_bytes < geometry.page_size:
            raise FTLError("cache capacity must hold at least one page")
        if not 0.0 < low_watermark <= 1.0:
            raise FTLError("low_watermark must be in (0, 1]")
        self.geometry = geometry
        self.capacity_pages = capacity_bytes // geometry.page_size
        self.low_pages = max(1, int(self.capacity_pages * low_watermark))
        # LRU of logical blocks; each maps page offset -> token
        self._groups: OrderedDict[int, dict[int, int]] = OrderedDict()
        self._dirty_pages = 0
        self.hits = 0
        self.misses = 0
        self.destaged_groups = 0
        self.destaged_pages = 0

    # ------------------------------------------------------------------
    # data path
    # ------------------------------------------------------------------

    def write(self, lpage: int, token: int) -> bool:
        """Cache a page write; returns True on overwrite of a dirty page."""
        lblock, offset = divmod(lpage, self.geometry.pages_per_block)
        group = self._groups.get(lblock)
        if group is None:
            group = {}
            self._groups[lblock] = group
        self._groups.move_to_end(lblock)
        hit = offset in group
        if not hit:
            self._dirty_pages += 1
        else:
            self.hits += 1
        group[offset] = token
        return hit

    def read(self, lpage: int) -> int | None:
        """Token of a dirty cached page, or None on miss (no LRU touch —
        a read does not make a block a better destage candidate)."""
        lblock, offset = divmod(lpage, self.geometry.pages_per_block)
        group = self._groups.get(lblock)
        if group is None or offset not in group:
            self.misses += 1
            return None
        self.hits += 1
        return group[offset]

    # ------------------------------------------------------------------
    # snapshot / restore
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """Copy of the dirty contents and counters (device snapshots)."""
        return {
            "groups": OrderedDict(
                (lblock, dict(group)) for lblock, group in self._groups.items()
            ),
            "dirty_pages": self._dirty_pages,
            "hits": self.hits,
            "misses": self.misses,
            "destaged_groups": self.destaged_groups,
            "destaged_pages": self.destaged_pages,
        }

    def restore(self, state: dict) -> None:
        """Reset the cache to a :meth:`snapshot` (copying the state)."""
        self._groups = OrderedDict(
            (lblock, dict(group)) for lblock, group in state["groups"].items()
        )
        self._dirty_pages = state["dirty_pages"]
        self.hits = state["hits"]
        self.misses = state["misses"]
        self.destaged_groups = state["destaged_groups"]
        self.destaged_pages = state["destaged_pages"]

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------

    def metrics(self) -> dict[str, float]:
        """Cumulative cache traffic counters as a flat ``cache.*`` map.

        Hits count dirty-page overwrites and reads served from RAM;
        destages are the eviction traffic that actually reached flash.
        """
        return {
            "cache.hits": float(self.hits),
            "cache.misses": float(self.misses),
            "cache.destaged_groups": float(self.destaged_groups),
            "cache.destaged_pages": float(self.destaged_pages),
        }

    # ------------------------------------------------------------------
    # destaging
    # ------------------------------------------------------------------

    @property
    def dirty_pages(self) -> int:
        """Number of dirty pages currently held in RAM."""
        return self._dirty_pages

    def over_capacity(self) -> bool:
        """Whether the cache holds more dirty pages than its capacity."""
        return self._dirty_pages > self.capacity_pages

    def destage_if_needed(self, ftl: BaseFTL, cost: CostAccumulator) -> int:
        """If over capacity, destage LRU block groups down to the low
        watermark.  Returns the number of pages destaged; their flash
        cost lands in ``cost`` (i.e. on the IO that pushed the cache over
        the edge — the expensive half of the oscillation)."""
        destaged = 0
        if not self.over_capacity():
            return 0
        sub = cost.begin_scope()
        while self._dirty_pages > self.low_pages and self._groups:
            destaged += self._destage_lru(ftl, sub)
        cost.end_scope("cache", sub)
        return destaged

    def _destage_lru(self, ftl: BaseFTL, cost: CostAccumulator) -> int:
        lblock, group = self._groups.popitem(last=False)
        base = lblock * self.geometry.pages_per_block
        items = [(base + offset, group[offset]) for offset in sorted(group)]
        ftl.write_pages(items, cost)
        count = len(group)
        self._dirty_pages -= count
        self.destaged_groups += 1
        self.destaged_pages += count
        return count

    def flush(self, ftl: BaseFTL, cost: CostAccumulator) -> int:
        """Destage everything (used between runs and by device.drain)."""
        destaged = 0
        sub = cost.begin_scope()
        while self._groups:
            destaged += self._destage_lru(ftl, sub)
        cost.end_scope("cache", sub)
        if self._dirty_pages != 0:
            raise FTLError("cache accounting error: dirty pages after flush")
        return destaged
