"""Per-operation energy model (the paper's footnote 1: *measuring power
consumption, however, should be considered in future work*).

Energy decomposes the same way response time does: per flash operation
(read / program / erase), per byte moved over the interconnect, plus
the controller's static draw while the device is busy.  The per-op
figures default to datasheet-typical values for 2008-era NAND
(~microjoule-class page operations).

The model prices a :class:`~repro.flashsim.timing.CostAccumulator` —
i.e. exactly the physical work the FTL counted — so energy accounting
needs no second bookkeeping path through the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.flashsim.timing import CostAccumulator
from repro.units import KIB


@dataclass(frozen=True)
class PowerSpec:
    """Energy parameters, in microjoules (uJ) and milliwatts (mW).

    ``controller_active_mw`` is the draw while the device services IO
    (priced per busy microsecond); ``controller_idle_mw`` prices idle
    time when a caller accounts for it explicitly.
    """

    read_page_uj: float = 6.0
    program_page_uj: float = 35.0
    erase_block_uj: float = 65.0
    transfer_per_kib_uj: float = 1.2
    controller_active_mw: float = 350.0
    controller_idle_mw: float = 75.0

    def __post_init__(self) -> None:
        values = (
            self.read_page_uj,
            self.program_page_uj,
            self.erase_block_uj,
            self.transfer_per_kib_uj,
            self.controller_active_mw,
            self.controller_idle_mw,
        )
        if min(values) < 0:
            raise ValueError("power parameters must be non-negative")

    # mW x us = nJ; divide by 1000 for uJ
    def active_uj(self, busy_usec: float) -> float:
        """Controller energy for ``busy_usec`` of active time."""
        return self.controller_active_mw * busy_usec / 1000.0

    def idle_uj(self, idle_usec: float) -> float:
        """Controller energy for ``idle_usec`` of idle time."""
        return self.controller_idle_mw * idle_usec / 1000.0

    def flash_uj(self, cost: CostAccumulator) -> float:
        """Energy of the flash operations recorded in ``cost``."""
        return (
            (cost.page_reads + cost.copy_reads) * self.read_page_uj
            + (cost.page_programs + cost.copy_programs) * self.program_page_uj
            + cost.block_erases * self.erase_block_uj
            + (cost.bytes_transferred / KIB) * self.transfer_per_kib_uj
        )

    def io_uj(self, cost: CostAccumulator, service_usec: float) -> float:
        """Total energy of one serviced IO: flash work + active draw."""
        return self.flash_uj(cost) + self.active_uj(service_usec)


#: a generic SLC-era spec; MLC programs and erases draw more
SLC_POWER = PowerSpec()
MLC_POWER = PowerSpec(
    read_page_uj=9.0,
    program_page_uj=55.0,
    erase_block_uj=90.0,
)


@dataclass
class EnergyMeter:
    """Accumulates the energy of a sequence of completed IOs.

    Usage::

        meter = EnergyMeter(SLC_POWER)
        for completed in run.trace:
            meter.add(completed.cost, completed.service_usec)
        print(meter.total_uj, meter.uj_per_mib(run_bytes))
    """

    spec: PowerSpec
    total_uj: float = 0.0
    ios: int = 0
    busy_usec: float = 0.0

    def add(self, cost: CostAccumulator, service_usec: float) -> float:
        """Account one IO; returns its energy in uJ."""
        energy = self.spec.io_uj(cost, service_usec)
        self.total_uj += energy
        self.ios += 1
        self.busy_usec += service_usec
        return energy

    def add_idle(self, idle_usec: float) -> float:
        """Account an idle gap (no flash work, idle draw only)."""
        energy = self.spec.idle_uj(idle_usec)
        self.total_uj += energy
        return energy

    @property
    def mean_uj_per_io(self) -> float:
        """Average energy per accounted IO (uJ)."""
        return self.total_uj / self.ios if self.ios else 0.0

    def uj_per_mib(self, total_bytes: int) -> float:
        """Energy efficiency: microjoules per MiB moved."""
        if total_bytes <= 0:
            return 0.0
        return self.total_uj / (total_bytes / (1024 * KIB))

    def watts(self, span_usec: float) -> float:
        """Average power over a simulated time span (W)."""
        if span_usec <= 0:
            return 0.0
        return self.total_uj / span_usec  # uJ/us == W


def measure_run_energy(trace, spec: PowerSpec) -> EnergyMeter:
    """Meter a whole :class:`~repro.flashsim.trace.IOTrace`."""
    meter = EnergyMeter(spec)
    for completed in trace:
        meter.add(completed.cost, completed.service_usec)
    return meter
