"""Device profiles: the eleven flash devices of Table 2 (plus one extra).

Each profile assembles geometry, timing and FTL mechanisms so that the
simulated device lands near its Table 3 row at 32 KiB:

========================  ====  ====  ====  =====  ==========  ==========
device                    SR    RR    SW    RW     locality    partitions
                          (ms)  (ms)  (ms)  (ms)   (MB)
========================  ====  ====  ====  =====  ==========  ==========
Memoright (SSD)           0.3   0.4   0.3   5      8 (=)       8 (=)
Mtron (SSD)               0.4   0.5   0.4   9      8 (x2)      4 (x1.5)
Samsung (SSD)             0.5   0.5   0.6   18     16 (x1.5)   4 (x2)
Transcend Module (IDE)    1.2   1.3   1.7   18     4 (x2)      4 (x2)
Transcend MLC (SSD)       1.4   3.0   2.6   233    4 (=)       4 (x2)
Kingston DTHX (USB)       1.3   1.5   1.8   270    16 (x20)    8 (x20)
Kingston DTI (USB)        1.9   2.2   2.9   256    No          4 (x5)
========================  ====  ====  ====  =====  ==========  ==========

Capacities are **scaled** (Section 2 of DESIGN.md): page/block geometry
and the behavioural resources (log pool, RAM cache, background target)
keep their absolute sizes, so locality areas, partition limits and
start-up lengths are preserved while whole-device state enforcement
stays tractable in Python.

How each Table 3 column maps to profile knobs:

* *locality area* ≈ ``log_blocks`` x block size (the set of blocks whose
  logs stay resident) — or the RAM cache for cache-dominated devices;
* *partition limit* ≈ RAM cache capacity in blocks (cache devices),
  ``log_blocks`` (no cache) or ``replacement_slots`` (block-mapped);
* *start-up length* ≈ cache fill + background free-pool headroom;
* *Pause effect / Figure 5 interference* — only profiles with
  ``bg_enabled`` (the two high-end SLC SSDs).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ProfileError
from repro.flashsim.chip import FlashChip, FaultInjector, MLC_ENDURANCE, SLC_ENDURANCE
from repro.flashsim.controller import Controller, ControllerConfig
from repro.flashsim.device import BackgroundPolicy, FlashDevice, NoiseSpec
from repro.flashsim.ftl.base import BaseFTL
from repro.flashsim.ftl.blockmap import BlockMapConfig, BlockMapFTL
from repro.flashsim.ftl.fast import FastConfig, FastFTL
from repro.flashsim.ftl.hybrid import HybridConfig, HybridLogFTL
from repro.flashsim.ftl.pagemap import PageMapConfig, PageMapFTL
from repro.flashsim.geometry import Geometry
from repro.flashsim.timing import TimingSpec
from repro.units import GIB, KIB, MIB


@dataclass(frozen=True)
class DeviceProfile:
    """A buildable description of one benchmarked device."""

    name: str
    brand: str
    model: str
    kind: str  # "SSD" | "USB" | "SD" | "IDE"
    real_capacity: int
    price_usd: int
    highlighted: bool  # arrow in Table 2: presented in the paper's results
    sim_logical_bytes: int
    page_size: int
    pages_per_block: int
    spare_blocks: int
    timing: TimingSpec
    ftl_kind: str  # "hybrid" | "blockmap" | "pagemap" | "fast"
    hybrid: HybridConfig | None = None
    blockmap: BlockMapConfig | None = None
    pagemap: PageMapConfig | None = None
    fast: FastConfig | None = None
    controller: ControllerConfig = field(default_factory=ControllerConfig)
    background: BackgroundPolicy = field(default_factory=BackgroundPolicy)
    noise: NoiseSpec = field(default_factory=NoiseSpec)
    slc: bool = True
    #: NCQ queue depth the device advertises (1 = no native queueing,
    #: e.g. USB mass storage; SATA NCQ tops out at 32)
    queue_depth: int = 32

    @property
    def block_size(self) -> int:
        """Erase-block size in bytes."""
        return self.page_size * self.pages_per_block

    def geometry(self, logical_bytes: int | None = None) -> Geometry:
        """Build the profile's geometry (optionally at an override capacity)."""
        logical = logical_bytes or self.sim_logical_bytes
        return Geometry(
            page_size=self.page_size,
            pages_per_block=self.pages_per_block,
            logical_bytes=logical,
            physical_blocks=logical // self.block_size + self.spare_blocks,
        )

    def build(
        self,
        logical_bytes: int | None = None,
        fault_injector: FaultInjector | None = None,
    ) -> FlashDevice:
        """Instantiate a fresh (out-of-the-box) simulated device."""
        geometry = self.geometry(logical_bytes)
        endurance = SLC_ENDURANCE if self.slc else MLC_ENDURANCE
        chip = FlashChip(geometry, endurance=endurance, fault_injector=fault_injector)
        ftl = self._build_ftl(geometry, chip)
        controller = Controller(geometry, ftl, self.controller)
        return FlashDevice(
            name=self.name,
            geometry=geometry,
            timing=self.timing,
            chip=chip,
            ftl=ftl,
            controller=controller,
            background=self.background,
            noise=self.noise,
            queue_depth=self.queue_depth,
        )

    def _build_ftl(self, geometry: Geometry, chip: FlashChip) -> BaseFTL:
        if self.ftl_kind == "hybrid":
            return HybridLogFTL(geometry, chip, self.hybrid)
        if self.ftl_kind == "blockmap":
            return BlockMapFTL(geometry, chip, self.blockmap)
        if self.ftl_kind == "pagemap":
            return PageMapFTL(geometry, chip, self.pagemap)
        if self.ftl_kind == "fast":
            return FastFTL(geometry, chip, self.fast)
        raise ProfileError(f"unknown FTL kind {self.ftl_kind!r}")


def _ssd_geometry() -> dict:
    return {"page_size": 4 * KIB, "pages_per_block": 64}  # 256 KiB blocks


def _usb_geometry(pages_per_block: int = 128) -> dict:
    return {"page_size": 2 * KIB, "pages_per_block": pages_per_block}


MEMORIGHT = DeviceProfile(
    name="memoright",
    brand="Memoright",
    model="MR25.2-032S",
    kind="SSD",
    real_capacity=32 * GIB,
    price_usd=943,
    highlighted=True,
    sim_logical_bytes=128 * MIB,
    spare_blocks=40 + 64 + 8,
    timing=TimingSpec(
        read_page=25.0,
        program_page=200.0,
        erase_block=1_500.0,
        transfer_per_kib=6.0,
        controller_overhead=50.0,
        map_miss=115.0,
        parallelism=16.0,
        copy_parallelism=4.0,
    ),
    ftl_kind="hybrid",
    hybrid=HybridConfig(
        seq_log_blocks=8,
        rnd_log_blocks=32,
        page_mapped_logs=True,
        bg_enabled=True,
        bg_target_blocks=64,
    ),
    controller=ControllerConfig(cache_bytes=2 * MIB),
    background=BackgroundPolicy(read_concurrency=0.5, read_interference=1.5),
    slc=True,
    **_ssd_geometry(),
)

MTRON = DeviceProfile(
    name="mtron",
    brand="Mtron",
    model="SATA7035-016",
    kind="SSD",
    real_capacity=16 * GIB,
    price_usd=407,
    highlighted=True,
    sim_logical_bytes=128 * MIB,
    spare_blocks=36 + 96 + 8,
    timing=TimingSpec(
        read_page=25.0,
        program_page=200.0,
        erase_block=1_500.0,
        transfer_per_kib=8.0,
        controller_overhead=80.0,
        map_miss=115.0,
        parallelism=16.0,
        copy_parallelism=2.0,
    ),
    ftl_kind="hybrid",
    hybrid=HybridConfig(
        seq_log_blocks=4,
        rnd_log_blocks=32,
        page_mapped_logs=True,
        bg_enabled=True,
        bg_target_blocks=96,
    ),
    controller=ControllerConfig(cache_bytes=1 * MIB),
    background=BackgroundPolicy(read_concurrency=0.5, read_interference=1.6),
    slc=True,
    **_ssd_geometry(),
)

SAMSUNG = DeviceProfile(
    name="samsung",
    brand="Samsung",
    model="MCBQE32G5MPP",
    kind="SSD",
    real_capacity=32 * GIB,
    price_usd=517,
    highlighted=True,
    sim_logical_bytes=128 * MIB,
    spare_blocks=68 + 8,
    timing=TimingSpec(
        read_page=60.0,
        program_page=800.0,
        erase_block=2_500.0,
        transfer_per_kib=12.0,
        controller_overhead=90.0,
        map_miss=120.0,
        parallelism=32.0,
        copy_parallelism=4.0,
    ),
    ftl_kind="hybrid",
    hybrid=HybridConfig(seq_log_blocks=4, rnd_log_blocks=64, page_mapped_logs=True),
    controller=ControllerConfig(cache_bytes=1 * MIB, mapping_unit=16 * KIB),
    slc=False,
    **_ssd_geometry(),
)

GSKILL = DeviceProfile(
    name="gskill",
    brand="GSKILL",
    model="FS-25S2-32GB",
    kind="SSD",
    real_capacity=32 * GIB,
    price_usd=694,
    highlighted=False,
    sim_logical_bytes=128 * MIB,
    spare_blocks=36 + 8,
    timing=TimingSpec(
        read_page=60.0,
        program_page=800.0,
        erase_block=2_500.0,
        transfer_per_kib=10.0,
        controller_overhead=100.0,
        map_miss=130.0,
        parallelism=16.0,
        copy_parallelism=2.0,
    ),
    ftl_kind="hybrid",
    hybrid=HybridConfig(seq_log_blocks=4, rnd_log_blocks=16, page_mapped_logs=True),
    slc=False,
    **_ssd_geometry(),
)

TRANSCEND_16 = DeviceProfile(
    name="transcend16",
    brand="Transcend",
    model="TS16GSSD25S-S",
    kind="SSD",
    real_capacity=16 * GIB,
    price_usd=250,
    highlighted=False,
    sim_logical_bytes=128 * MIB,
    spare_blocks=22 + 8,
    timing=TimingSpec(
        read_page=25.0,
        program_page=220.0,
        erase_block=1_500.0,
        transfer_per_kib=14.0,
        controller_overhead=120.0,
        map_miss=200.0,
        parallelism=8.0,
        copy_parallelism=1.0,
    ),
    ftl_kind="hybrid",
    hybrid=HybridConfig(seq_log_blocks=4, rnd_log_blocks=16, page_mapped_logs=True),
    slc=True,
    **_ssd_geometry(),
)

TRANSCEND_32 = DeviceProfile(
    name="transcend32",
    brand="Transcend",
    model="TS32GSSD25S-M",
    kind="SSD",
    real_capacity=32 * GIB,
    price_usd=199,
    highlighted=True,
    sim_logical_bytes=64 * MIB,
    spare_blocks=22 + 6,
    timing=TimingSpec(
        read_page=60.0,
        program_page=800.0,
        erase_block=2_500.0,
        transfer_per_kib=30.0,
        controller_overhead=150.0,
        map_miss=1_550.0,
        parallelism=8.0,
        copy_parallelism=1.0,
        copy_page_extra=940.0,
    ),
    ftl_kind="hybrid",
    hybrid=HybridConfig(seq_log_blocks=4, rnd_log_blocks=16, page_mapped_logs=True),
    slc=False,
    **_usb_geometry(pages_per_block=128),
)

KINGSTON_DTHX = DeviceProfile(
    name="kingston_dthx",
    brand="Kingston",
    model="DT hyper X",
    kind="USB",
    real_capacity=8 * GIB,
    price_usd=153,
    highlighted=True,
    sim_logical_bytes=64 * MIB,
    spare_blocks=74 + 6,
    timing=TimingSpec(
        read_page=60.0,
        program_page=800.0,
        erase_block=2_500.0,
        transfer_per_kib=20.0,
        controller_overhead=180.0,
        map_miss=200.0,
        parallelism=12.0,
        copy_parallelism=1.0,
        copy_page_extra=1_180.0,
    ),
    ftl_kind="hybrid",
    hybrid=HybridConfig(seq_log_blocks=8, rnd_log_blocks=64, page_mapped_logs=True),
    slc=False,
    queue_depth=1,  # USB mass storage: no native command queueing
    **_usb_geometry(pages_per_block=128),
)

CORSAIR = DeviceProfile(
    name="corsair",
    brand="Corsair",
    model="Flash Voyager GT",
    kind="USB",
    real_capacity=16 * GIB,
    price_usd=110,
    highlighted=False,
    sim_logical_bytes=64 * MIB,
    spare_blocks=12 + 6,
    timing=TimingSpec(
        read_page=60.0,
        program_page=800.0,
        erase_block=2_500.0,
        transfer_per_kib=25.0,
        controller_overhead=200.0,
        map_miss=250.0,
        parallelism=8.0,
        copy_parallelism=1.0,
        copy_page_extra=600.0,
    ),
    ftl_kind="hybrid",
    hybrid=HybridConfig(seq_log_blocks=2, rnd_log_blocks=8, page_mapped_logs=False),
    slc=False,
    queue_depth=1,  # USB mass storage: no native command queueing
    **_usb_geometry(pages_per_block=64),
)

TRANSCEND_MODULE = DeviceProfile(
    name="transcend_module",
    brand="Transcend",
    model="TS4GDOM40V-S",
    kind="IDE",
    real_capacity=4 * GIB,
    price_usd=62,
    highlighted=True,
    sim_logical_bytes=64 * MIB,
    spare_blocks=38 + 6,
    timing=TimingSpec(
        read_page=25.0,
        program_page=220.0,
        erase_block=1_500.0,
        transfer_per_kib=25.0,
        controller_overhead=150.0,
        map_miss=150.0,
        parallelism=4.0,
        copy_parallelism=1.0,
    ),
    ftl_kind="hybrid",
    hybrid=HybridConfig(seq_log_blocks=4, rnd_log_blocks=32, page_mapped_logs=True),
    slc=True,
    queue_depth=4,  # IDE: TCQ-era depth, well below SATA NCQ's 32
    **_usb_geometry(pages_per_block=64),
)

KINGSTON_DTI = DeviceProfile(
    name="kingston_dti",
    brand="Kingston",
    model="DTI 4GB",
    kind="USB",
    real_capacity=4 * GIB,
    price_usd=17,
    highlighted=True,
    sim_logical_bytes=32 * MIB,
    spare_blocks=4 + 4,
    timing=TimingSpec(
        read_page=60.0,
        program_page=800.0,
        erase_block=2_500.0,
        transfer_per_kib=38.0,
        controller_overhead=200.0,
        map_miss=300.0,
        parallelism=8.0,
        copy_parallelism=1.0,
        copy_page_extra=1_150.0,
    ),
    ftl_kind="blockmap",
    blockmap=BlockMapConfig(
        replacement_slots=4,
        sync_commit_boundary=32 * KIB,
        map_flush_every_blocks=16,
        map_flush_pages=32,
    ),
    slc=False,
    queue_depth=1,  # USB mass storage: no native command queueing
    **_usb_geometry(pages_per_block=128),
)

KINGSTON_SD = DeviceProfile(
    name="kingston_sd",
    brand="Kingston",
    model="SD 4GB",
    kind="SD",
    real_capacity=2 * GIB,
    price_usd=12,
    highlighted=False,
    sim_logical_bytes=32 * MIB,
    spare_blocks=1 + 4,
    timing=TimingSpec(
        read_page=60.0,
        program_page=900.0,
        erase_block=3_000.0,
        transfer_per_kib=60.0,
        controller_overhead=300.0,
        map_miss=400.0,
        parallelism=4.0,
        copy_parallelism=1.0,
        copy_page_extra=1_000.0,
    ),
    ftl_kind="blockmap",
    blockmap=BlockMapConfig(
        replacement_slots=1,
        sync_commit_boundary=16 * KIB,
        map_flush_every_blocks=16,
        map_flush_pages=32,
    ),
    slc=False,
    queue_depth=1,  # SD: single outstanding command
    **_usb_geometry(pages_per_block=64),
)

# Not in the paper: an idealised fully page-mapped SSD (what most 2008
# research assumed devices looked like).  Used by the FTL-ablation bench.
IDEAL_PAGEMAP = DeviceProfile(
    name="ideal_pagemap",
    brand="(synthetic)",
    model="page-mapped reference",
    kind="SSD",
    real_capacity=32 * GIB,
    price_usd=0,
    highlighted=False,
    sim_logical_bytes=128 * MIB,
    spare_blocks=68 + 8,
    timing=TimingSpec(
        read_page=25.0,
        program_page=200.0,
        erase_block=1_500.0,
        transfer_per_kib=6.0,
        controller_overhead=50.0,
        map_miss=115.0,
        parallelism=16.0,
        copy_parallelism=4.0,
    ),
    ftl_kind="pagemap",
    pagemap=PageMapConfig(gc_low_blocks=4, bg_enabled=True, bg_target_blocks=32),
    background=BackgroundPolicy(read_concurrency=1.0, read_interference=1.3),
    slc=True,
    **_ssd_geometry(),
)


#: Table 2 order (by price, descending), plus the synthetic reference.
ALL_PROFILES: tuple[DeviceProfile, ...] = (
    MEMORIGHT,
    GSKILL,
    SAMSUNG,
    MTRON,
    TRANSCEND_16,
    TRANSCEND_32,
    KINGSTON_DTHX,
    CORSAIR,
    TRANSCEND_MODULE,
    KINGSTON_DTI,
    KINGSTON_SD,
    IDEAL_PAGEMAP,
)

#: the seven devices the paper presents detailed results for (Table 3)
TABLE3_PROFILES: tuple[str, ...] = (
    "memoright",
    "mtron",
    "samsung",
    "transcend_module",
    "transcend32",
    "kingston_dthx",
    "kingston_dti",
)

_REGISTRY = {profile.name: profile for profile in ALL_PROFILES}


def profile_names() -> list[str]:
    """Names of all registered profiles."""
    return list(_REGISTRY)


def get_profile(name: str) -> DeviceProfile:
    """Look up a profile by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ProfileError(
            f"unknown device profile {name!r}; known: {', '.join(_REGISTRY)}"
        ) from None


def build_device(
    name: str,
    logical_bytes: int | None = None,
    fault_injector: FaultInjector | None = None,
) -> FlashDevice:
    """Build a fresh device from a named profile.

    ``logical_bytes`` overrides the scaled capacity (tests use smaller
    devices to keep state enforcement fast).
    """
    return get_profile(name).build(logical_bytes, fault_injector)


def scaled_profile(profile_name: str, **overrides) -> DeviceProfile:
    """A copy of a profile with dataclass field overrides (ablations).

    ``overrides`` may include ``name`` to rename the variant.
    """
    return replace(get_profile(profile_name), **overrides)
