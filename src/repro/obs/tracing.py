"""Span tracing with Chrome trace-event JSON export.

A :class:`Tracer` records :class:`Span` objects — named wall-clock
intervals with nesting — around the campaign's structural boundaries:
campaign → prepare/enforce → cell → run.  The export format is the
Chrome trace-event JSON (``{"traceEvents": [...]}`` of ``"ph": "X"``
complete events), which loads directly in ``chrome://tracing`` and
Perfetto; each worker process appears as its own thread lane, making the
parallel executor's worker occupancy visible on a timeline.

Spans in worker processes cannot write into the parent's tracer, so a
worker records into its own tracer and the finished spans travel back in
the cell result; :meth:`Tracer.absorb` re-bases them onto the parent
timeline (same host, same wall clock — the re-base re-tags the process
lane and the export normalises all timestamps against the parent's
origin).

Like the metrics registry, tracing is off unless a tracer is
:func:`install`-ed; the module-level :func:`span` helper then degrades
to a shared no-op context manager, so a disabled trace point costs one
``is None`` check at run/cell granularity.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable


@dataclass
class Span:
    """One named wall-clock interval (a Chrome "complete" event)."""

    name: str
    cat: str
    start_usec: float
    dur_usec: float
    pid: int
    tid: int
    args: dict = field(default_factory=dict)
    depth: int = 0

    def to_payload(self) -> tuple:
        """Picklable/JSON-able tuple form for crossing process boundaries."""
        return (
            self.name,
            self.cat,
            self.start_usec,
            self.dur_usec,
            self.pid,
            self.tid,
            self.args,
            self.depth,
        )

    @staticmethod
    def from_payload(payload: Iterable) -> "Span":
        """Inverse of :meth:`to_payload`."""
        name, cat, start, dur, pid, tid, args, depth = payload
        return Span(
            name=name,
            cat=cat,
            start_usec=start,
            dur_usec=dur,
            pid=pid,
            tid=tid,
            args=dict(args),
            depth=depth,
        )

    def to_event(self, origin_usec: float) -> dict:
        """The Chrome trace event, with timestamps relative to ``origin_usec``."""
        return {
            "name": self.name,
            "cat": self.cat or "repro",
            "ph": "X",
            "ts": self.start_usec - origin_usec,
            "dur": self.dur_usec,
            "pid": self.pid,
            "tid": self.tid,
            "args": self.args,
        }


class Tracer:
    """Records spans on one process's timeline.

    ``pid``/``tid`` default to the OS process id; worker tracers keep
    their own pid as ``tid`` so each worker gets a distinct lane after
    the parent absorbs their spans.
    """

    def __init__(self, pid: int | None = None, tid: int | None = None) -> None:
        own = os.getpid()
        self.pid = own if pid is None else pid
        self.tid = own if tid is None else tid
        self.origin_usec = time.time() * 1e6
        self.spans: list[Span] = []
        #: synthetic lane labels (tid -> name) for non-worker lanes, e.g.
        #: the attribution report's per-channel device-time lanes
        self.lane_names: dict[int, str] = {}
        #: raw Chrome events (absolute wall-clock ``ts``) injected by
        #: tooling; normalised against the origin at export time
        self.extra_events: list[dict] = []
        self._depth = 0

    @contextmanager
    def span(self, name: str, cat: str = "", **args):
        """Record a span around the ``with`` block (exceptions included)."""
        start = time.time() * 1e6
        self._depth += 1
        try:
            yield
        finally:
            self._depth -= 1
            self.spans.append(
                Span(
                    name=name,
                    cat=cat,
                    start_usec=start,
                    dur_usec=time.time() * 1e6 - start,
                    pid=self.pid,
                    tid=self.tid,
                    args={key: value for key, value in args.items()},
                    depth=self._depth,
                )
            )

    def absorb(self, payloads: Iterable) -> None:
        """Re-base worker spans (see :meth:`Span.to_payload`) onto this
        tracer's timeline: the spans join the parent's process group but
        keep their worker id as the thread lane."""
        for payload in payloads:
            span = Span.from_payload(payload)
            span.pid = self.pid
            self.spans.append(span)

    def add_lane(self, tid: int, name: str) -> None:
        """Label a synthetic thread lane in the exported document."""
        self.lane_names[tid] = name

    def add_events(self, events: Iterable[dict]) -> None:
        """Inject raw Chrome events (``ts`` in absolute wall-clock µs,
        the same clock the spans use); the export re-bases them onto the
        document origin alongside the spans."""
        self.extra_events.extend(events)

    def to_chrome(self) -> dict:
        """The Chrome trace-event document for every recorded span."""
        origin = self.origin_usec
        if self.spans:
            origin = min(origin, min(span.start_usec for span in self.spans))
        if self.extra_events:
            origin = min(
                origin, min(event["ts"] for event in self.extra_events)
            )
        events = []
        tids = {span.tid for span in self.spans}
        tids.update(event["tid"] for event in self.extra_events)
        for tid in sorted(tids):
            label = self.lane_names.get(tid)
            if label is None:
                label = "main" if tid == self.pid else f"worker-{tid}"
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": self.pid,
                    "tid": tid,
                    "args": {"name": label},
                }
            )
        events.extend(span.to_event(origin) for span in self.spans)
        for event in self.extra_events:
            rebased = dict(event)
            rebased["ts"] = event["ts"] - origin
            rebased.setdefault("pid", self.pid)
            events.append(rebased)
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write(self, path: str | Path) -> Path:
        """Write the Chrome trace JSON to ``path``."""
        path = Path(path)
        path.write_text(json.dumps(self.to_chrome(), indent=1))
        return path


# ----------------------------------------------------------------------
# the process-global tracer (None = tracing off)
# ----------------------------------------------------------------------

_current: Tracer | None = None

#: shared reentrant no-op for disabled trace points
_NULL = nullcontext()


def install(tracer: Tracer | None = None) -> Tracer:
    """Make ``tracer`` (or a fresh one) the process default."""
    global _current
    _current = tracer if tracer is not None else Tracer()
    return _current


def uninstall() -> Tracer | None:
    """Disable tracing; returns the tracer that was active."""
    global _current
    tracer, _current = _current, None
    return tracer


def current() -> Tracer | None:
    """The active tracer, or ``None`` when tracing is disabled."""
    return _current


class installed:
    """Context manager installing ``tracer`` for the block's duration.

    ``tracer=None`` explicitly disables tracing inside the block (worker
    processes shadow a tracer inherited through ``fork`` this way).  The
    previous tracer is restored on exit.
    """

    def __init__(self, tracer: Tracer | None) -> None:
        self.tracer = tracer
        self._previous: Tracer | None = None

    def __enter__(self) -> Tracer | None:
        global _current
        self._previous = _current
        _current = self.tracer
        return self.tracer

    def __exit__(self, *exc_info) -> None:
        global _current
        _current = self._previous


def span(name: str, cat: str = "", **args):
    """A span on the active tracer, or a shared no-op when disabled."""
    tracer = _current
    if tracer is None:
        return _NULL
    return tracer.span(name, cat=cat, **args)


__all__ = [
    "Span",
    "Tracer",
    "current",
    "install",
    "installed",
    "span",
    "uninstall",
]
