"""Lightweight metrics: counters, gauges, histograms and snapshots.

A :class:`MetricsRegistry` holds named instruments; a
:class:`MetricsSnapshot` is a plain, picklable copy of their values that
supports ``delta`` (what happened between two samples) and ``merge``
(fold per-cell or per-worker snapshots into a campaign-wide view) — the
two operations a parallel campaign needs, since worker processes cannot
share live instruments across a process boundary.

Enabling is explicit: :func:`install` makes a registry the process
default and instrumented call sites fetch it with :func:`current`, which
returns ``None`` when observability is off.  Every guarded site is at
run/cell granularity (never per IO), so a disabled registry costs one
``is None`` check per *run* — unmeasurable next to the run itself.

The simulator layers additionally expose cumulative counter samplers
(``FlashDevice.metrics()`` and friends) returning flat ``name -> value``
mappings; :func:`diff_counts` turns two samples into the work done
between them and :func:`merge_counts` sums such deltas campaign-wide.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

#: default histogram bucket upper bounds (microseconds-flavoured, but
#: callers measuring other units simply pass their own bounds)
DEFAULT_BUCKETS = (
    100.0,
    1_000.0,
    10_000.0,
    100_000.0,
    1_000_000.0,
    10_000_000.0,
)


def _bucket_percentile(
    bounds: tuple, counts, count: int, q: float
) -> float:
    """Percentile estimate from bucketed counts (shared implementation).

    Linear interpolation within the bucket holding the target rank: the
    first bucket interpolates from 0, the overflow bucket has no upper
    edge so the estimate clamps to the last bound (the histogram cannot
    know more).  ``q`` is a fraction in [0, 1].
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError("percentile fraction must be within [0, 1]")
    if count <= 0:
        return 0.0
    rank = q * count
    cumulative = 0
    for position, bucket_count in enumerate(counts):
        if cumulative + bucket_count >= rank and bucket_count:
            if position >= len(bounds):
                return bounds[-1]
            low = bounds[position - 1] if position else 0.0
            high = bounds[position]
            return low + (high - low) * ((rank - cumulative) / bucket_count)
        cumulative += bucket_count
    return bounds[-1]


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """A value that can go up and down (e.g. a pool level)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current level."""
        self.value = float(value)


class Histogram:
    """Observation counts bucketed by upper bound, plus sum and count.

    Buckets are *non-cumulative*: ``counts[i]`` is the number of
    observations in ``(bounds[i-1], bounds[i]]``, with one overflow
    bucket past the last bound.
    """

    __slots__ = ("bounds", "counts", "total", "count")

    def __init__(self, bounds: Iterable[float] = DEFAULT_BUCKETS) -> None:
        self.bounds = tuple(sorted(float(b) for b in bounds))
        if not self.bounds:
            raise ValueError("a histogram needs at least one bucket bound")
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        for position, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[position] += 1
                break
        else:
            self.counts[-1] += 1
        self.total += value
        self.count += 1

    def observe_many(self, value: float, count: int) -> None:
        """Record ``count`` identical observations in one step.

        Call sites folding pre-aggregated counters (e.g. the device's
        ``at_depth_{d}`` samples) use this instead of an observe loop.
        """
        if count < 0:
            raise ValueError("observation counts only go up")
        if count == 0:
            return
        for position, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[position] += count
                break
        else:
            self.counts[-1] += count
        self.total += value * count
        self.count += count

    @property
    def mean(self) -> float:
        """Mean of all observations (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimated ``q``-quantile (``q`` in [0, 1]) of the observations.

        Linearly interpolated within the bucket holding the target rank;
        estimates in the overflow bucket clamp to the last bound.
        """
        return _bucket_percentile(self.bounds, self.counts, self.count, q)

    def state(self) -> "HistogramState":
        """Picklable copy of the histogram's current contents."""
        return HistogramState(
            bounds=self.bounds,
            counts=tuple(self.counts),
            total=self.total,
            count=self.count,
        )


@dataclass(frozen=True)
class HistogramState:
    """Frozen, picklable histogram contents (see :class:`Histogram`)."""

    bounds: tuple
    counts: tuple
    total: float
    count: int

    @property
    def mean(self) -> float:
        """Mean of the recorded observations (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimated ``q``-quantile; see :meth:`Histogram.percentile`."""
        return _bucket_percentile(self.bounds, self.counts, self.count, q)

    def delta(self, earlier: "HistogramState") -> "HistogramState":
        """Observations recorded between ``earlier`` and this state."""
        if earlier.bounds != self.bounds:
            raise ValueError("histogram deltas need identical bucket bounds")
        return HistogramState(
            bounds=self.bounds,
            counts=tuple(a - b for a, b in zip(self.counts, earlier.counts)),
            total=self.total - earlier.total,
            count=self.count - earlier.count,
        )

    def merge(self, other: "HistogramState") -> "HistogramState":
        """Combine two independent histograms bucket-wise."""
        if other.bounds != self.bounds:
            raise ValueError("histogram merges need identical bucket bounds")
        return HistogramState(
            bounds=self.bounds,
            counts=tuple(a + b for a, b in zip(self.counts, other.counts)),
            total=self.total + other.total,
            count=self.count + other.count,
        )


@dataclass(frozen=True)
class MetricsSnapshot:
    """Plain-data copy of a registry's values at one instant.

    Snapshots are picklable and JSON-friendly, so they cross process
    boundaries in worker results and ride along in run-cache entries.
    """

    counters: dict = field(default_factory=dict)
    gauges: dict = field(default_factory=dict)
    histograms: dict = field(default_factory=dict)

    def delta(self, earlier: "MetricsSnapshot") -> "MetricsSnapshot":
        """What happened between ``earlier`` and this snapshot.

        Counters and histograms subtract; gauges are levels, not flows,
        so the later sample's values are kept as-is.
        """
        counters = {
            name: value - earlier.counters.get(name, 0.0)
            for name, value in self.counters.items()
        }
        histograms = {}
        for name, state in self.histograms.items():
            before = earlier.histograms.get(name)
            histograms[name] = state.delta(before) if before else state
        return MetricsSnapshot(
            counters=counters, gauges=dict(self.gauges), histograms=histograms
        )

    def scoped(self, prefix: str) -> "MetricsSnapshot":
        """The snapshot restricted to instruments named under ``prefix``.

        Convenience for report rendering (e.g. the campaign summary's
        ``core.``-scoped executor table): counters, gauges and
        histograms whose names start with ``prefix`` are kept, the rest
        dropped.  Returns a new snapshot; this one is unchanged.
        """
        return MetricsSnapshot(
            counters={
                name: value
                for name, value in self.counters.items()
                if name.startswith(prefix)
            },
            gauges={
                name: value
                for name, value in self.gauges.items()
                if name.startswith(prefix)
            },
            histograms={
                name: state
                for name, state in self.histograms.items()
                if name.startswith(prefix)
            },
        )

    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """Fold an independent snapshot (another cell, another worker)
        into this one: counters and histograms add, gauges keep the
        maximum level observed."""
        counters = dict(self.counters)
        for name, value in other.counters.items():
            counters[name] = counters.get(name, 0.0) + value
        gauges = dict(self.gauges)
        for name, value in other.gauges.items():
            gauges[name] = max(gauges.get(name, value), value)
        histograms = dict(self.histograms)
        for name, state in other.histograms.items():
            mine = histograms.get(name)
            histograms[name] = mine.merge(state) if mine else state
        return MetricsSnapshot(counters=counters, gauges=gauges, histograms=histograms)

    def to_dict(self) -> dict:
        """JSON-serialisable form (run-cache entries, artifacts)."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                name: {
                    "bounds": list(state.bounds),
                    "counts": list(state.counts),
                    "total": state.total,
                    "count": state.count,
                }
                for name, state in self.histograms.items()
            },
        }

    @staticmethod
    def from_dict(payload: Mapping) -> "MetricsSnapshot":
        """Inverse of :meth:`to_dict`."""
        return MetricsSnapshot(
            counters=dict(payload.get("counters", {})),
            gauges=dict(payload.get("gauges", {})),
            histograms={
                name: HistogramState(
                    bounds=tuple(entry["bounds"]),
                    counts=tuple(entry["counts"]),
                    total=entry["total"],
                    count=entry["count"],
                )
                for name, entry in payload.get("histograms", {}).items()
            },
        )


class MetricsRegistry:
    """Named instruments, created on first use.

    One registry per process; worker processes build their own and ship
    a :class:`MetricsSnapshot` home with each cell result.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter called ``name``, created on first use."""
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter()
        return instrument

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name``, created on first use."""
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge()
        return instrument

    def histogram(self, name: str, bounds: Iterable[float] = DEFAULT_BUCKETS) -> Histogram:
        """The histogram called ``name``, created on first use."""
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(bounds)
        return instrument

    def snapshot(self) -> MetricsSnapshot:
        """Picklable copy of every instrument's current value."""
        return MetricsSnapshot(
            counters={name: c.value for name, c in self._counters.items()},
            gauges={name: g.value for name, g in self._gauges.items()},
            histograms={name: h.state() for name, h in self._histograms.items()},
        )

    def absorb(self, snapshot: MetricsSnapshot) -> None:
        """Fold a worker's snapshot into this registry's instruments."""
        for name, value in snapshot.counters.items():
            self.counter(name).inc(value)
        for name, value in snapshot.gauges.items():
            gauge = self.gauge(name)
            gauge.set(max(gauge.value, value))
        for name, state in snapshot.histograms.items():
            histogram = self.histogram(name, state.bounds)
            for position, count in enumerate(state.counts):
                histogram.counts[position] += count
            histogram.total += state.total
            histogram.count += state.count


# ----------------------------------------------------------------------
# the process-global registry (None = observability off)
# ----------------------------------------------------------------------

_current: MetricsRegistry | None = None


def install(registry: MetricsRegistry | None = None) -> MetricsRegistry:
    """Make ``registry`` (or a fresh one) the process default."""
    global _current
    _current = registry if registry is not None else MetricsRegistry()
    return _current


def uninstall() -> MetricsRegistry | None:
    """Disable metrics collection; returns the registry that was active."""
    global _current
    registry, _current = _current, None
    return registry


def current() -> MetricsRegistry | None:
    """The active registry, or ``None`` when metrics are disabled."""
    return _current


class installed:
    """Context manager installing ``registry`` for the block's duration.

    ``registry=None`` explicitly *disables* metrics inside the block —
    worker processes use this to shadow a registry inherited through
    ``fork`` (whose instruments would silently swallow their counts).
    The previous registry is restored on exit.
    """

    def __init__(self, registry: MetricsRegistry | None) -> None:
        self.registry = registry
        self._previous: MetricsRegistry | None = None

    def __enter__(self) -> MetricsRegistry | None:
        global _current
        self._previous = _current
        _current = self.registry
        return self.registry

    def __exit__(self, *exc_info) -> None:
        global _current
        _current = self._previous


# ----------------------------------------------------------------------
# flat counter-map helpers (the simulator layers' samplers)
# ----------------------------------------------------------------------

def diff_counts(
    after: Mapping[str, float], before: Mapping[str, float]
) -> dict[str, float]:
    """Per-name difference of two cumulative counter samples.

    Names missing from ``before`` count from zero; names that did not
    change are dropped, keeping per-run deltas small.
    """
    delta = {}
    for name, value in after.items():
        change = value - before.get(name, 0.0)
        if change:
            delta[name] = change
    return delta


def merge_counts(*maps: Mapping[str, float] | None) -> dict[str, float]:
    """Sum counter maps name-wise (``None`` entries are skipped)."""
    merged: dict[str, float] = {}
    for counts in maps:
        if not counts:
            continue
        for name, value in counts.items():
            merged[name] = merged.get(name, 0.0) + value
    return merged


__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "HistogramState",
    "MetricsRegistry",
    "MetricsSnapshot",
    "current",
    "diff_counts",
    "install",
    "installed",
    "merge_counts",
    "uninstall",
]
