"""``repro.obs`` — the observability layer: metrics, traces, progress.

The paper's methodology *measures and records every individual IO*
(Section 3.2, design principle 1); this package extends the same
discipline to the simulator's internals.  Three stdlib-only modules:

* :mod:`~repro.obs.metrics` — a registry of counters, gauges and
  histograms with picklable snapshots; the simulator layers expose
  cumulative counters (chip operations, FTL reclamation, cache traffic,
  queue waits) that the campaign executor samples into per-cell deltas;
* :mod:`~repro.obs.tracing` — span-based tracing around campaign →
  prepare/enforce → cell → run boundaries, exportable as Chrome
  trace-event JSON (loadable in Perfetto); spans recorded in worker
  processes are shipped back with the cell result and re-based onto the
  parent timeline;
* :mod:`~repro.obs.progress` — structured ``logging``-based campaign
  progress reporting plus the campaign-end metrics summary table.

Everything is **off by default and zero-cost when disabled**: the
instrumented call sites guard on a process-global registry/tracer being
installed, and the per-IO hot path is never touched — the simulator
already counts its physical work, the observability layer only samples
those counters at run and cell boundaries.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
    diff_counts,
    merge_counts,
)
from repro.obs.progress import (
    ProgressReporter,
    configure_logging,
    get_logger,
    histogram_table,
    metrics_table,
)
from repro.obs.tracing import Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "ProgressReporter",
    "Span",
    "Tracer",
    "configure_logging",
    "diff_counts",
    "get_logger",
    "histogram_table",
    "merge_counts",
    "metrics_table",
]
