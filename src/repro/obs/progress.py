"""Structured campaign progress reporting and the metrics summary.

Replaces the ad-hoc ``print(..., file=sys.stderr)`` status plumbing with
the stdlib ``logging`` machinery: everything user-facing-but-not-a-result
goes through the ``repro`` logger, whose verbosity the CLI's ``-v``/``-q``
flags control.  Results proper (tables, archive paths) stay on stdout.

:class:`ProgressReporter` is the campaign executor's live view: driven
by as-completed futures, it logs one line per finished cell — wall
time, cached/ran state, position — the moment the cell lands, not when
its submit-order predecessors do.
"""

from __future__ import annotations

import logging
import sys
from typing import TYPE_CHECKING, Mapping

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.executor import CellOutcome

LOGGER_NAME = "repro"

#: marker distinguishing our handler from ones the host app installed
_HANDLER_FLAG = "_repro_progress_handler"


def get_logger(name: str = LOGGER_NAME) -> logging.Logger:
    """The package logger (``repro`` or a child like ``repro.campaign``)."""
    return logging.getLogger(name)


def configure_logging(verbosity: int = 0, stream=None) -> logging.Logger:
    """Wire the ``repro`` logger to stderr at a verbosity level.

    ``verbosity`` is ``-v`` count minus ``-q`` count: ``>= 1`` shows
    debug detail, ``0`` (the default) shows progress, ``-1`` warnings
    only, ``<= -2`` errors only.  Idempotent — re-configuring replaces
    the handler this function installed, never ones the host app owns.
    """
    if verbosity >= 1:
        level = logging.DEBUG
    elif verbosity == 0:
        level = logging.INFO
    elif verbosity == -1:
        level = logging.WARNING
    else:
        level = logging.ERROR
    logger = logging.getLogger(LOGGER_NAME)
    logger.setLevel(level)
    for handler in list(logger.handlers):
        if getattr(handler, _HANDLER_FLAG, False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(logging.Formatter("%(message)s"))
    setattr(handler, _HANDLER_FLAG, True)
    logger.addHandler(handler)
    logger.propagate = False
    return logger


class ProgressReporter:
    """Live per-cell campaign progress on the ``repro.campaign`` logger."""

    def __init__(self, total: int, label: str = "", logger: logging.Logger | None = None) -> None:
        self.total = total
        self.label = label
        self.logger = logger or get_logger("repro.campaign")

    def status(self, message: str) -> None:
        """Free-form status line (state preparation, pool start-up)."""
        self.logger.info(message)

    def cell_done(self, outcome: "CellOutcome", done: int, total: int) -> None:
        """One cell landed (cache hit or finished run)."""
        from repro.units import SEC

        state = "cached" if outcome.cached else "ran"
        wall = outcome.wall_usec / SEC
        name = outcome.cell.experiment
        if self.label:
            name = f"{self.label}:{name}"
        self.logger.info(
            "[%d/%d] %-32s %6s %8.2fs", done, total, name, state, wall
        )


def metrics_table(counts: Mapping[str, float], title: str = "metrics") -> str:
    """Render a flat counter map as the campaign-end summary table."""
    from repro.core.report import format_table

    rows = []
    for name in sorted(counts):
        value = counts[name]
        shown = f"{value:.0f}" if float(value).is_integer() else f"{value:.2f}"
        rows.append((name, shown))
    return f"{title}\n{format_table(('metric', 'value'), rows)}"


__all__ = [
    "LOGGER_NAME",
    "ProgressReporter",
    "configure_logging",
    "get_logger",
    "metrics_table",
]
