"""Structured campaign progress reporting and the metrics summary.

Replaces the ad-hoc ``print(..., file=sys.stderr)`` status plumbing with
the stdlib ``logging`` machinery: everything user-facing-but-not-a-result
goes through the ``repro`` logger, whose verbosity the CLI's ``-v``/``-q``
flags control.  Results proper (tables, archive paths) stay on stdout.

:class:`ProgressReporter` is the campaign executor's live view: driven
by as-completed futures, it logs one line per finished cell — wall
time, cached/ran state, position — the moment the cell lands, not when
its submit-order predecessors do.
"""

from __future__ import annotations

import logging
import sys
from typing import TYPE_CHECKING, Mapping

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.executor import CellOutcome

LOGGER_NAME = "repro"

#: marker distinguishing our handler from ones the host app installed
_HANDLER_FLAG = "_repro_progress_handler"


def get_logger(name: str = LOGGER_NAME) -> logging.Logger:
    """The package logger (``repro`` or a child like ``repro.campaign``)."""
    return logging.getLogger(name)


def configure_logging(verbosity: int = 0, stream=None) -> logging.Logger:
    """Wire the ``repro`` logger to stderr at a verbosity level.

    ``verbosity`` is ``-v`` count minus ``-q`` count: ``>= 1`` shows
    debug detail, ``0`` (the default) shows progress, ``-1`` warnings
    only, ``<= -2`` errors only.  Idempotent — re-configuring replaces
    the handler this function installed, never ones the host app owns.
    """
    if verbosity >= 1:
        level = logging.DEBUG
    elif verbosity == 0:
        level = logging.INFO
    elif verbosity == -1:
        level = logging.WARNING
    else:
        level = logging.ERROR
    logger = logging.getLogger(LOGGER_NAME)
    logger.setLevel(level)
    for handler in list(logger.handlers):
        if getattr(handler, _HANDLER_FLAG, False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(logging.Formatter("%(message)s"))
    setattr(handler, _HANDLER_FLAG, True)
    logger.addHandler(handler)
    logger.propagate = False
    return logger


#: smoothing factor of the per-cell wall-time EMA behind the ETA — high
#: enough to track campaigns whose late cells are slower than early ones
_ETA_ALPHA = 0.3


class ProgressReporter:
    """Live per-cell campaign progress on the ``repro.campaign`` logger.

    Each finished cell updates an exponential moving average of cell
    wall times — cached hits and real runs averaged separately, since a
    hit costs milliseconds while a run costs seconds — and the log line
    carries a remaining-time estimate that blends the two EMAs by the
    hit rate observed so far.
    """

    def __init__(self, total: int, label: str = "", logger: logging.Logger | None = None) -> None:
        self.total = total
        self.label = label
        self.logger = logger or get_logger("repro.campaign")
        self._ema: dict[str, float | None] = {"ran": None, "cached": None}
        self._seen: dict[str, int] = {"ran": 0, "cached": 0}

    def status(self, message: str) -> None:
        """Free-form status line (state preparation, pool start-up)."""
        self.logger.info(message)

    def eta_seconds(self, done: int) -> float:
        """Estimated wall seconds until the campaign completes.

        Expected per-cell cost is the cached/ran EMA pair weighted by
        the fraction of cells that landed in each state so far; 0.0
        before any cell has finished or once every cell is done.
        """
        remaining = self.total - done
        finished = self._seen["ran"] + self._seen["cached"]
        if remaining <= 0 or finished <= 0:
            return 0.0
        expected = 0.0
        for state in ("ran", "cached"):
            average = self._ema[state]
            if average is not None:
                expected += (self._seen[state] / finished) * average
        return remaining * expected

    def cell_done(self, outcome: "CellOutcome", done: int, total: int) -> None:
        """One cell landed (cache hit or finished run)."""
        from repro.units import SEC

        state = "cached" if outcome.cached else "ran"
        wall = outcome.wall_usec / SEC
        average = self._ema[state]
        self._ema[state] = (
            wall if average is None
            else _ETA_ALPHA * wall + (1.0 - _ETA_ALPHA) * average
        )
        self._seen[state] += 1
        name = outcome.cell.experiment
        if self.label:
            name = f"{self.label}:{name}"
        self.logger.info(
            "[%d/%d] %-32s %6s %8.2fs  eta %6.1fs",
            done, total, name, state, wall, self.eta_seconds(done),
        )


def metrics_table(counts: Mapping[str, float], title: str = "metrics") -> str:
    """Render a flat counter map as the campaign-end summary table."""
    from repro.core.report import format_table

    rows = []
    for name in sorted(counts):
        value = counts[name]
        shown = f"{value:.0f}" if float(value).is_integer() else f"{value:.2f}"
        rows.append((name, shown))
    return f"{title}\n{format_table(('metric', 'value'), rows)}"


def histogram_table(histograms: Mapping, title: str = "histograms") -> str:
    """Render histogram states as a percentile summary table.

    One row per histogram — count, mean, p50/p95/p99 (interpolated
    within buckets, see :meth:`repro.obs.Histogram.percentile`) — which
    reads far better in a campaign summary than raw bucket counts.
    """
    from repro.core.report import format_table

    def shown(value: float) -> str:
        return f"{value:.0f}" if float(value).is_integer() else f"{value:.2f}"

    rows = []
    for name in sorted(histograms):
        state = histograms[name]
        rows.append(
            (
                name,
                str(state.count),
                shown(state.mean),
                shown(state.percentile(0.50)),
                shown(state.percentile(0.95)),
                shown(state.percentile(0.99)),
            )
        )
    headers = ("histogram", "count", "mean", "p50", "p95", "p99")
    return f"{title}\n{format_table(headers, rows)}"


__all__ = [
    "LOGGER_NAME",
    "ProgressReporter",
    "configure_logging",
    "get_logger",
    "histogram_table",
    "metrics_table",
]
