"""Size and time units used throughout the reproduction.

The paper mixes KB/MB/GB (binary, as is conventional in the storage
literature of the era) with milliseconds and microseconds.  Internally the
simulator uses **bytes** for sizes and addresses and **microseconds**
(floats) for time.  This module centralises the constants and the
human-friendly parsing/formatting helpers so no other module hard-codes
magic numbers.
"""

from __future__ import annotations

import re

# --- sizes (binary units, matching the paper's usage) -----------------------

SECTOR = 512
KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

# --- time (internal unit: microseconds) --------------------------------------

USEC = 1.0
MSEC = 1000.0
SEC = 1_000_000.0

_SIZE_SUFFIXES = {
    "": 1,
    "b": 1,
    "k": KIB,
    "kb": KIB,
    "kib": KIB,
    "m": MIB,
    "mb": MIB,
    "mib": MIB,
    "g": GIB,
    "gb": GIB,
    "gib": GIB,
}

_SIZE_RE = re.compile(r"^\s*([0-9]+(?:\.[0-9]+)?)\s*([a-zA-Z]*)\s*$")


def parse_size(text: str | int) -> int:
    """Parse a human-readable size such as ``"32K"`` or ``"2MiB"`` to bytes.

    Integers pass through unchanged.  Fractional values are allowed as long
    as the result is a whole number of bytes (``"0.5K"`` -> 512).

    >>> parse_size("32K")
    32768
    >>> parse_size("0.5k")
    512
    >>> parse_size(4096)
    4096
    """
    if isinstance(text, int):
        return text
    match = _SIZE_RE.match(text)
    if match is None:
        raise ValueError(f"unparseable size: {text!r}")
    value = float(match.group(1)) * _SIZE_SUFFIXES.get(match.group(2).lower(), -1)
    if value < 0:
        raise ValueError(f"unknown size suffix in {text!r}")
    if value != int(value):
        raise ValueError(f"size {text!r} is not a whole number of bytes")
    return int(value)


def fmt_size(nbytes: int) -> str:
    """Format a byte count with the largest exact binary unit.

    >>> fmt_size(32768)
    '32K'
    >>> fmt_size(512)
    '512B'
    >>> fmt_size(3 * MIB)
    '3M'
    """
    for unit, name in ((GIB, "G"), (MIB, "M"), (KIB, "K")):
        if nbytes >= unit and nbytes % unit == 0:
            return f"{nbytes // unit}{name}"
    return f"{nbytes}B"


def fmt_usec(usec: float) -> str:
    """Format a microsecond duration at a human scale.

    >>> fmt_usec(250.0)
    '250us'
    >>> fmt_usec(5000.0)
    '5.00ms'
    >>> fmt_usec(2_500_000.0)
    '2.50s'
    """
    if usec >= SEC:
        return f"{usec / SEC:.2f}s"
    if usec >= MSEC:
        return f"{usec / MSEC:.2f}ms"
    return f"{usec:.0f}us"


def usec_to_msec(usec: float) -> float:
    """Convert microseconds to milliseconds (the unit used in the figures)."""
    return usec / MSEC
