"""``repro.analysis`` — result analysis: Table 3 derivation, device
classification, design-hint verification and ASCII figure plotting."""

from repro.analysis.attribution import (
    attribution_observations,
    attribution_table,
    inject_device_lanes,
    outcome_component_totals,
    render_attribution_report,
)
from repro.analysis.classify import (
    Classification,
    DeviceTier,
    classify,
    price_performance_note,
)
from repro.analysis.fingerprint import Match, fingerprint, identify
from repro.analysis.hints import ALL_HINTS, HintResult, evaluate_hints
from repro.analysis.summarize import (
    DeviceSummary,
    render_table3,
    summarize_device,
)
from repro.analysis.reportgen import campaign_report, write_campaign_report
from repro.analysis.visualize import plot_series, plot_trace

__all__ = [
    "ALL_HINTS",
    "Classification",
    "DeviceSummary",
    "DeviceTier",
    "HintResult",
    "Match",
    "attribution_observations",
    "attribution_table",
    "campaign_report",
    "classify",
    "evaluate_hints",
    "fingerprint",
    "identify",
    "inject_device_lanes",
    "outcome_component_totals",
    "plot_series",
    "plot_trace",
    "price_performance_note",
    "render_attribution_report",
    "render_table3",
    "summarize_device",
    "write_campaign_report",
]
