"""Dependency-free SVG figures.

The ASCII plots serve the terminal; this module writes the same traces
and series as standalone ``.svg`` files — the publishable form of the
paper's figures — with nothing beyond the standard library.

Supported forms mirror :mod:`~repro.analysis.visualize`:

* :func:`svg_trace` — response time vs IO number (Figures 3-5), with
  optional log-scale y;
* :func:`svg_series` — one line per series over shared axes
  (Figures 6-8), optional log x/y.
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import Sequence

from repro.errors import AnalysisError

#: a small qualitative palette (colour-blind safe-ish)
_COLORS = (
    "#1f77b4",
    "#d62728",
    "#2ca02c",
    "#9467bd",
    "#ff7f0e",
    "#8c564b",
    "#17becf",
)

_WIDTH, _HEIGHT = 640, 400
_MARGIN = 56


def _scale_factory(lo: float, hi: float, out_lo: float, out_hi: float, log: bool):
    if log and lo <= 0:
        raise AnalysisError("log-scale axes require positive values")
    if log:
        lo_t, hi_t = math.log10(lo), math.log10(hi)
    else:
        lo_t, hi_t = lo, hi
    span = (hi_t - lo_t) or 1.0

    def scale(value: float) -> float:
        value_t = math.log10(value) if log else value
        return out_lo + (value_t - lo_t) / span * (out_hi - out_lo)

    return scale


def _axis_ticks(lo: float, hi: float, log: bool, count: int = 5) -> list[float]:
    if log:
        lo_exp = math.floor(math.log10(lo))
        hi_exp = math.ceil(math.log10(hi))
        return [10.0 ** exponent for exponent in range(lo_exp, hi_exp + 1)]
    if hi == lo:
        return [lo]
    step = (hi - lo) / (count - 1)
    return [lo + index * step for index in range(count)]


def _fmt(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 1000 or abs(value) < 0.01:
        return f"{value:.0e}"
    if abs(value) >= 10:
        return f"{value:.0f}"
    return f"{value:.2f}"


def _document(body: list[str], title: str) -> str:
    header = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{_WIDTH}" '
        f'height="{_HEIGHT}" viewBox="0 0 {_WIDTH} {_HEIGHT}">',
        f'<rect width="{_WIDTH}" height="{_HEIGHT}" fill="white"/>',
        f'<text x="{_WIDTH / 2}" y="20" text-anchor="middle" '
        f'font-family="sans-serif" font-size="14">{title}</text>',
    ]
    return "\n".join(header + body + ["</svg>"])


def _frame_and_axes(
    x_lo: float, x_hi: float, y_lo: float, y_hi: float,
    log_x: bool, log_y: bool, x_label: str, y_label: str,
) -> tuple[list[str], object, object]:
    sx = _scale_factory(x_lo, x_hi, _MARGIN, _WIDTH - _MARGIN, log_x)
    sy = _scale_factory(y_lo, y_hi, _HEIGHT - _MARGIN, _MARGIN, log_y)
    body = [
        f'<rect x="{_MARGIN}" y="{_MARGIN}" width="{_WIDTH - 2 * _MARGIN}" '
        f'height="{_HEIGHT - 2 * _MARGIN}" fill="none" stroke="#999"/>'
    ]
    for tick in _axis_ticks(x_lo, x_hi, log_x):
        if not x_lo <= tick <= x_hi:
            continue
        x = sx(tick)
        body.append(
            f'<line x1="{x:.1f}" y1="{_HEIGHT - _MARGIN}" x2="{x:.1f}" '
            f'y2="{_HEIGHT - _MARGIN + 5}" stroke="#666"/>'
        )
        body.append(
            f'<text x="{x:.1f}" y="{_HEIGHT - _MARGIN + 18}" '
            f'text-anchor="middle" font-family="sans-serif" '
            f'font-size="10">{_fmt(tick)}</text>'
        )
    for tick in _axis_ticks(y_lo, y_hi, log_y):
        if not y_lo <= tick <= y_hi:
            continue
        y = sy(tick)
        body.append(
            f'<line x1="{_MARGIN - 5}" y1="{y:.1f}" x2="{_MARGIN}" '
            f'y2="{y:.1f}" stroke="#666"/>'
        )
        body.append(
            f'<text x="{_MARGIN - 8}" y="{y + 3:.1f}" text-anchor="end" '
            f'font-family="sans-serif" font-size="10">{_fmt(tick)}</text>'
        )
    body.append(
        f'<text x="{_WIDTH / 2}" y="{_HEIGHT - 8}" text-anchor="middle" '
        f'font-family="sans-serif" font-size="12">{x_label}</text>'
    )
    body.append(
        f'<text x="14" y="{_HEIGHT / 2}" text-anchor="middle" '
        f'font-family="sans-serif" font-size="12" '
        f'transform="rotate(-90 14 {_HEIGHT / 2})">{y_label}</text>'
    )
    return body, sx, sy


def svg_trace(
    response_usec: Sequence[float],
    title: str = "response time per IO",
    log_y: bool = True,
    path: str | Path | None = None,
) -> str:
    """Render a per-IO response-time trace; optionally write it."""
    if not response_usec:
        raise AnalysisError("cannot plot an empty trace")
    values_ms = [value / 1000.0 for value in response_usec]
    y_lo, y_hi = min(values_ms), max(values_ms)
    if log_y and y_lo <= 0:
        log_y = False
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    body, sx, sy = _frame_and_axes(
        0, len(values_ms) - 1 or 1, y_lo, y_hi, False, log_y,
        "IO number", "response time (ms)",
    )
    for index, value in enumerate(values_ms):
        body.append(
            f'<circle cx="{sx(index):.1f}" cy="{sy(value):.1f}" r="1.6" '
            f'fill="{_COLORS[0]}"/>'
        )
    text = _document(body, title)
    if path is not None:
        Path(path).write_text(text)
    return text


def svg_series(
    series: dict[str, tuple[Sequence[float], Sequence[float]]],
    title: str = "",
    x_label: str = "",
    y_label: str = "ms",
    log_x: bool = False,
    log_y: bool = False,
    path: str | Path | None = None,
) -> str:
    """Render named (x, y) series as polylines; optionally write it."""
    if not series or not any(xs for xs, __ in series.values()):
        raise AnalysisError("no series to plot")
    all_x = [x for xs, __ in series.values() for x in xs]
    all_y = [y for __, ys in series.values() for y in ys]
    x_lo, x_hi = min(all_x), max(all_x)
    y_lo, y_hi = min(all_y), max(all_y)
    if log_x and x_lo <= 0:
        log_x = False
    if log_y and y_lo <= 0:
        log_y = False
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    body, sx, sy = _frame_and_axes(
        x_lo, x_hi, y_lo, y_hi, log_x, log_y, x_label, y_label
    )
    for index, (name, (xs, ys)) in enumerate(series.items()):
        color = _COLORS[index % len(_COLORS)]
        points = " ".join(
            f"{sx(x):.1f},{sy(y):.1f}" for x, y in zip(xs, ys)
        )
        body.append(
            f'<polyline points="{points}" fill="none" stroke="{color}" '
            f'stroke-width="1.8"/>'
        )
        for x, y in zip(xs, ys):
            body.append(
                f'<circle cx="{sx(x):.1f}" cy="{sy(y):.1f}" r="2.4" '
                f'fill="{color}"/>'
            )
        legend_y = _MARGIN + 14 + index * 14
        body.append(
            f'<rect x="{_WIDTH - _MARGIN - 110}" y="{legend_y - 8}" '
            f'width="10" height="10" fill="{color}"/>'
        )
        body.append(
            f'<text x="{_WIDTH - _MARGIN - 95}" y="{legend_y + 1}" '
            f'font-family="sans-serif" font-size="11">{name}</text>'
        )
    text = _document(body, title)
    if path is not None:
        Path(path).write_text(text)
    return text
