"""Programmatic checks of the paper's seven design hints (Section 5.3).

Each hint is evaluated against a live device with a small targeted
experiment; the result records whether the hint holds and the measured
evidence, so the hints bench can print a verdict table per device.

Hint 1  Flash devices do incur latency (per-IO software overhead).
Hint 2  Block size should (currently) be 32 KiB.
Hint 3  Blocks should be aligned to flash pages.
Hint 4  Random writes should be limited to a focused area.
Hint 5  Sequential writes should be limited to a few partitions.
Hint 6  Combining a limited number of patterns is acceptable.
Hint 7  Neither concurrent nor delayed IOs improve performance.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.patterns import (
    LocationKind,
    ParallelSpec,
    PatternSpec,
    baselines,
)
from repro.core.runner import execute, execute_mix, execute_parallel, rest_device
from repro.flashsim.device import FlashDevice
from repro.iotypes import Mode
from repro.units import KIB, MIB, SEC


@dataclass(frozen=True)
class HintResult:
    """Verdict for one design hint on one device."""

    hint: int
    statement: str
    holds: bool
    evidence: str


def _mean(device: FlashDevice, spec: PatternSpec) -> float:
    """Mean response time (us) of a run, followed by a rest."""
    run = execute(device, spec)
    rest_device(device, 5 * SEC)
    return run.stats.mean_usec


def check_hint1_latency(device: FlashDevice, io_count: int = 128) -> HintResult:
    """Per-IO latency exists: halving the IO size must not halve the
    response time (there is a fixed software cost per operation)."""
    big = _mean(
        device,
        PatternSpec(
            mode=Mode.READ,
            location=LocationKind.SEQUENTIAL,
            io_size=32 * KIB,
            io_count=io_count,
        ),
    )
    small = _mean(
        device,
        PatternSpec(
            mode=Mode.READ,
            location=LocationKind.SEQUENTIAL,
            io_size=2 * KIB,
            io_count=io_count,
        ),
    )
    # with zero latency, rt(2K) would be rt(32K)/16
    latency_free = big / 16.0
    holds = small > 1.5 * latency_free
    return HintResult(
        1,
        "Flash devices do incur latency",
        holds,
        f"2K read {small / 1000:.3f} ms vs latency-free extrapolation "
        f"{latency_free / 1000:.3f} ms",
    )


def check_hint2_blocksize(device: FlashDevice, io_count: int = 64) -> HintResult:
    """32 KiB is a good block-size trade-off: write cost per KiB keeps
    improving up to 32 KiB and flattens beyond."""
    costs = {}
    for size in (4 * KIB, 32 * KIB, 128 * KIB):
        mean = _mean(
            device,
            PatternSpec(
                mode=Mode.WRITE,
                location=LocationKind.SEQUENTIAL,
                io_size=size,
                io_count=io_count,
            ),
        )
        costs[size] = mean / (size / KIB)  # usec per KiB
    gain_to_32 = costs[4 * KIB] / costs[32 * KIB]
    gain_beyond = costs[32 * KIB] / costs[128 * KIB]
    holds = gain_to_32 > 1.5 and gain_beyond < gain_to_32
    return HintResult(
        2,
        "Block size should (currently) be 32KB",
        holds,
        f"us/KiB: 4K={costs[4 * KIB]:.1f}, 32K={costs[32 * KIB]:.1f}, "
        f"128K={costs[128 * KIB]:.1f}",
    )


def check_hint3_alignment(device: FlashDevice, io_count: int = 96) -> HintResult:
    """Unaligned IOs cost more than aligned ones.

    Probed with sequential writes (the pattern a DBMS laying out pages
    actually issues): a shifted stream pays read-modify-writes of the
    partially covered pages on every IO, and on commit-boundary devices
    (cheap USB sticks) each IO additionally forces a block copy.
    """
    aligned = _mean(
        device,
        PatternSpec(
            mode=Mode.WRITE,
            location=LocationKind.SEQUENTIAL,
            io_size=32 * KIB,
            io_count=io_count,
        ),
    )
    shifted = _mean(
        device,
        PatternSpec(
            mode=Mode.WRITE,
            location=LocationKind.SEQUENTIAL,
            io_size=32 * KIB,
            io_count=io_count,
            target_offset=(device.capacity // 2 // (32 * KIB)) * 32 * KIB,
            target_size=(io_count - 1) * 32 * KIB,
            io_shift=512,
        ),
    )
    holds = shifted > aligned * 1.05
    return HintResult(
        3,
        "Blocks should be aligned to flash pages",
        holds,
        f"aligned {aligned / 1000:.2f} ms vs shifted {shifted / 1000:.2f} ms",
    )


def check_hint4_focused_random_writes(
    device: FlashDevice, io_count: int = 512
) -> HintResult:
    """Random writes inside a focused (4-16 MiB) area approach
    sequential cost; wide random writes do not.

    Both runs exclude their first third: random writes have a start-up
    phase while background head-room and caches absorb them
    (Section 4.2), and comparing start-ups would tell us nothing.
    """
    small_area = min(4 * MIB, device.capacity // 4)
    wide_area = (device.capacity // (32 * KIB)) * 32 * KIB
    io_ignore = io_count // 3
    focused = _mean(
        device,
        PatternSpec(
            mode=Mode.WRITE,
            location=LocationKind.RANDOM,
            io_size=32 * KIB,
            io_count=io_count,
            io_ignore=io_ignore,
            target_size=small_area,
        ),
    )
    wide = _mean(
        device,
        PatternSpec(
            mode=Mode.WRITE,
            location=LocationKind.RANDOM,
            io_size=32 * KIB,
            io_count=io_count,
            io_ignore=io_ignore,
            target_size=wide_area,
        ),
    )
    holds = focused < wide / 2.0
    return HintResult(
        4,
        "Random writes should be limited to a focused area",
        holds,
        f"focused ({small_area // MIB} MiB) {focused / 1000:.2f} ms vs "
        f"wide {wide / 1000:.2f} ms",
    )


def check_hint5_partitions(device: FlashDevice, io_count: int = 640) -> HintResult:
    """A few (4-8) concurrent sequential-write partitions are fine;
    many degrade towards random writes.

    Each partition must span several erase blocks, and the run must
    outlast any background free-pool head-room that would otherwise
    hide the degradation (Section 4.2's start-up lesson applies here).
    """
    block = device.geometry.block_size
    io_ignore = io_count // 3

    def partitioned(partitions: int) -> float:
        target = partitions * 4 * block
        if target > device.capacity:
            target = (device.capacity // (partitions * block)) * partitions * block
        return _mean(
            device,
            PatternSpec(
                mode=Mode.WRITE,
                location=LocationKind.PARTITIONED,
                io_size=32 * KIB,
                io_count=io_count,
                io_ignore=io_ignore,
                target_size=target,
                partitions=partitions,
            ),
        )

    few = partitioned(4)
    many = partitioned(32)
    holds = many > few * 1.5
    return HintResult(
        5,
        "Sequential writes should be limited to a few partitions",
        holds,
        f"4 partitions {few / 1000:.2f} ms vs 32 partitions {many / 1000:.2f} ms",
    )


def check_hint6_mix(device: FlashDevice, io_count: int = 192) -> HintResult:
    """Mixing two patterns costs about the weighted sum of the parts
    (unlike disks, where mixing is catastrophic)."""
    half = (device.capacity // 2 // (32 * KIB)) * 32 * KIB
    specs = baselines(
        io_size=32 * KIB, io_count=io_count, random_target_size=half,
        sequential_target_size=half,
    )
    sr = _mean(device, specs["SR"])
    rr = _mean(device, specs["RR"].with_(target_offset=half))
    from repro.core.patterns import MixSpec

    mixed = execute_mix(
        device,
        MixSpec(
            primary=specs["SR"],
            secondary=specs["RR"].with_(target_offset=half),
            ratio=1,
            io_count=io_count,
        ),
    )
    rest_device(device, 5 * SEC)
    expected = (sr + rr) / 2.0
    measured = mixed.stats.mean_usec
    holds = abs(measured - expected) <= 0.25 * expected
    return HintResult(
        6,
        "Combining a limited number of patterns is acceptable",
        holds,
        f"SR+RR mix {measured / 1000:.2f} ms vs weighted parts "
        f"{expected / 1000:.2f} ms",
    )


def check_hint7_concurrency(device: FlashDevice, io_count: int = 128) -> HintResult:
    """Neither parallel submission nor inserted pauses reduce the total
    workload time."""
    area = (device.capacity // (32 * KIB) // 16) * 16 * 32 * KIB
    base = PatternSpec(
        mode=Mode.READ,
        location=LocationKind.RANDOM,
        io_size=32 * KIB,
        io_count=io_count,
        target_size=area,
    )
    solo = execute(device, base)
    solo_total = solo.stats.total_usec
    rest_device(device, 5 * SEC)
    par = execute_parallel(device, ParallelSpec(base=base, parallel_degree=4))
    par_total = max(run.trace[-1].completed_at for run in par.runs) - min(
        run.trace[0].submitted_at for run in par.runs
    )
    rest_device(device, 5 * SEC)
    holds = par_total >= solo_total * 0.9
    return HintResult(
        7,
        "Neither concurrent nor delayed IOs improve the performance",
        holds,
        f"solo total {solo_total / 1000:.1f} ms vs 4-way parallel "
        f"{par_total / 1000:.1f} ms",
    )


ALL_HINTS = (
    check_hint1_latency,
    check_hint2_blocksize,
    check_hint3_alignment,
    check_hint4_focused_random_writes,
    check_hint5_partitions,
    check_hint6_mix,
    check_hint7_concurrency,
)


def evaluate_hints(device: FlashDevice) -> list[HintResult]:
    """Run all seven hint checks against a (state-enforced) device."""
    return [check(device) for check in ALL_HINTS]
