"""Device fingerprinting: match a measured device to a known profile.

Section 5.2: *"it can be argued that the results in the table describe
the key characteristics of the devices, and could be used as the basis
for a coarse classification or categorization."*  This module turns a
measured :class:`~repro.analysis.summarize.DeviceSummary` into a
normalised feature vector and matches it against the paper's Table 3 —
the practical question being "which published device does this unknown
black box behave like?"
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.analysis.summarize import DeviceSummary
from repro.errors import AnalysisError
from repro.paperdata import TABLE3, Table3Row

#: features and their extraction from either a summary or a paper row.
#: Costs are compared in log space (a 2x miss on 0.3 ms matters as much
#: as one on 200 ms); derived indicators are compared directly.
_LOG_FEATURES = ("sr", "rr", "sw", "rw")
_FLAG_FEATURES = ("has_pause_effect", "has_locality")
_RATIO_FEATURES = ("rw_over_sw", "in_place_over_sw", "reverse_over_sw")


def _features(
    sr: float,
    rr: float,
    sw: float,
    rw: float,
    pause: bool,
    locality: bool,
    reverse: float,
    in_place: float,
) -> dict[str, float]:
    return {
        "sr": math.log10(sr),
        "rr": math.log10(rr),
        "sw": math.log10(sw),
        "rw": math.log10(rw),
        "has_pause_effect": 1.0 if pause else 0.0,
        "has_locality": 1.0 if locality else 0.0,
        "rw_over_sw": math.log10(rw / sw),
        "in_place_over_sw": math.log10(max(in_place, 0.1)),
        "reverse_over_sw": math.log10(max(reverse, 0.1)),
    }


def summary_features(summary: DeviceSummary) -> dict[str, float]:
    """Feature vector of a measured device."""
    if min(summary.sr, summary.rr, summary.sw, summary.rw) <= 0:
        raise AnalysisError("fingerprinting needs positive baseline costs")
    return _features(
        summary.sr,
        summary.rr,
        summary.sw,
        summary.rw,
        summary.pause_rw is not None,
        summary.locality_mb is not None,
        summary.reverse,
        summary.in_place,
    )


def paper_features(row: Table3Row) -> dict[str, float]:
    """Feature vector of a paper Table 3 row."""
    return _features(
        row.sr,
        row.rr,
        row.sw,
        row.rw,
        row.pause_rw is not None,
        row.locality_mb is not None,
        row.reverse,
        row.in_place,
    )


#: per-feature weights: the derived behaviour flags discriminate device
#: classes more strongly than another 10% on a read latency
_WEIGHTS = {
    "sr": 1.0,
    "rr": 1.0,
    "sw": 1.0,
    "rw": 2.0,
    "has_pause_effect": 1.5,
    "has_locality": 1.0,
    "rw_over_sw": 2.0,
    "in_place_over_sw": 1.5,
    "reverse_over_sw": 1.0,
}


def feature_distance(a: dict[str, float], b: dict[str, float]) -> float:
    """Weighted Euclidean distance between two feature vectors."""
    total = 0.0
    for name, weight in _WEIGHTS.items():
        delta = a[name] - b[name]
        total += weight * delta * delta
    return math.sqrt(total)


@dataclass(frozen=True)
class Match:
    """One candidate match, best first in :func:`fingerprint`'s output."""

    device: str
    distance: float
    paper: Table3Row


def fingerprint(summary: DeviceSummary) -> list[Match]:
    """Rank the paper's seven devices by behavioural similarity."""
    measured = summary_features(summary)
    matches = [
        Match(device=name, distance=feature_distance(measured, paper_features(row)),
              paper=row)
        for name, row in TABLE3.items()
    ]
    matches.sort(key=lambda match: match.distance)
    return matches


def identify(summary: DeviceSummary, max_distance: float = 2.0) -> str | None:
    """The best match's profile name, or None when nothing is close.

    ``max_distance`` is the acceptance radius in weighted log-feature
    space; ~2.0 admits same-class devices and rejects cross-class ones.
    """
    matches = fingerprint(summary)
    best = matches[0]
    return best.device if best.distance <= max_distance else None
