"""ASCII visualization of traces and series (the figures, in text).

The paper ships an interactive visualization tool; the closest portable
equivalent for a terminal harness is a compact ASCII plot.  Two forms:

* :func:`plot_trace` — response time vs IO number, optionally log-scale
  (Figures 3, 4 and 5);
* :func:`plot_series` — one or more (x, y) series on shared axes
  (Figures 6, 7 and 8).
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.errors import AnalysisError

_MARKS = "abcdefghij"


def _scale(value: float, lo: float, hi: float, log: bool) -> float:
    if log:
        if value <= 0 or lo <= 0:
            raise AnalysisError("log-scale plots require positive values")
        return (math.log10(value) - math.log10(lo)) / (
            math.log10(hi) - math.log10(lo) or 1.0
        )
    return (value - lo) / ((hi - lo) or 1.0)


def plot_trace(
    response_usec: Sequence[float],
    title: str = "",
    width: int = 78,
    height: int = 16,
    log_y: bool = True,
    marker: str = "*",
) -> str:
    """Plot a response-time trace (ms on the y axis, IO number on x)."""
    values = [v / 1000.0 for v in response_usec]
    if not values:
        raise AnalysisError("cannot plot an empty trace")
    lo, hi = min(values), max(values)
    if log_y and lo <= 0:
        log_y = False
    grid = [[" "] * width for __ in range(height)]
    n = len(values)
    for index, value in enumerate(values):
        col = min(width - 1, index * width // n)
        level = _scale(value, lo, hi, log_y) if hi > lo else 0.5
        row = height - 1 - min(height - 1, int(level * (height - 1)))
        grid[row][col] = marker
    lines = []
    if title:
        lines.append(title)
    top_label = f"{hi:.2f}ms"
    bottom_label = f"{lo:.2f}ms"
    label_width = max(len(top_label), len(bottom_label))
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = top_label.rjust(label_width)
        elif row_index == height - 1:
            label = bottom_label.rjust(label_width)
        else:
            label = " " * label_width
        lines.append(f"{label} |{''.join(row)}")
    axis = " " * label_width + " +" + "-" * width
    lines.append(axis)
    lines.append(
        " " * label_width
        + f"  0{'IO number'.center(width - 8)}{n - 1}"
    )
    return "\n".join(lines)


def plot_series(
    series: dict[str, tuple[Sequence[float], Sequence[float]]],
    title: str = "",
    width: int = 70,
    height: int = 16,
    log_x: bool = False,
    log_y: bool = False,
    x_label: str = "",
    y_label: str = "ms",
) -> str:
    """Plot several named (x, y) series; each gets a letter marker."""
    if not series:
        raise AnalysisError("no series to plot")
    all_x = [x for xs, __ in series.values() for x in xs]
    all_y = [y for __, ys in series.values() for y in ys]
    if not all_x:
        raise AnalysisError("series contain no points")
    x_lo, x_hi = min(all_x), max(all_x)
    y_lo, y_hi = min(all_y), max(all_y)
    if log_x and x_lo <= 0:
        log_x = False
    if log_y and y_lo <= 0:
        log_y = False
    grid = [[" "] * width for __ in range(height)]
    legend = []
    for series_index, (name, (xs, ys)) in enumerate(series.items()):
        mark = _MARKS[series_index % len(_MARKS)]
        legend.append(f"{mark}={name}")
        for x, y in zip(xs, ys):
            col = min(width - 1, int(_scale(x, x_lo, x_hi, log_x) * (width - 1)))
            row = height - 1 - min(
                height - 1, int(_scale(y, y_lo, y_hi, log_y) * (height - 1))
            )
            grid[row][col] = mark
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(legend))
    top_label = f"{y_hi:.2f}{y_label}"
    bottom_label = f"{y_lo:.2f}{y_label}"
    label_width = max(len(top_label), len(bottom_label))
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = top_label.rjust(label_width)
        elif row_index == height - 1:
            label = bottom_label.rjust(label_width)
        else:
            label = " " * label_width
        lines.append(f"{label} |{''.join(row)}")
    lines.append(" " * label_width + " +" + "-" * width)
    lines.append(
        " " * label_width
        + f"  {x_lo:g}{x_label.center(width - 12)}{x_hi:g}"
    )
    return "\n".join(lines)
