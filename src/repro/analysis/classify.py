"""Device classification from Table 3 indicators (Section 5.3).

The paper's second major conclusion: *the performance difference between
the high-end SSDs and the remainder of the devices is very significant
— not only is their performance better with the basic IO patterns, but
they also cope better with unusual patterns* — and price is not always
indicative, so system designers must classify devices by measurement.

The classifier condenses a :class:`~repro.analysis.summarize.DeviceSummary`
into a tier using the same indicators the paper discusses.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.analysis.summarize import DeviceSummary


class DeviceTier(enum.Enum):
    """The paper's coarse device categories (Section 5.3)."""
    HIGH_END = "high-end"
    MID_RANGE = "mid-range"
    LOW_END = "low-end"


@dataclass(frozen=True)
class Classification:
    """A tier plus the indicator values that led to it."""

    tier: DeviceTier
    rw_penalty: float  # RW / SW cost ratio
    copes_with_unusual: bool  # reverse & in-place near sequential cost
    async_reclamation: bool  # Pause micro-benchmark had an effect
    reasons: tuple[str, ...]


def classify(summary: DeviceSummary) -> Classification:
    """Classify a measured device.

    Thresholds follow the paper's empirical split: high-end devices keep
    random writes within ~20x of sequential writes *and* absorb the
    reverse/in-place patterns; devices whose random writes cost two
    orders of magnitude more than sequential are low-end regardless of
    anything else.
    """
    reasons: list[str] = []
    rw_penalty = summary.rw / summary.sw if summary.sw > 0 else float("inf")
    copes = summary.reverse <= 3.0 and summary.in_place <= 3.0
    has_async = summary.pause_rw is not None

    if rw_penalty <= 20.0 and copes:
        tier = DeviceTier.HIGH_END
        reasons.append(f"random writes only x{rw_penalty:.0f} sequential")
        reasons.append("absorbs reverse/in-place patterns")
        if has_async:
            reasons.append("asynchronous reclamation (pause helps)")
    elif rw_penalty >= 50.0:
        tier = DeviceTier.LOW_END
        reasons.append(f"random writes x{rw_penalty:.0f} sequential")
        if summary.in_place > 10.0:
            reasons.append(f"pathological in-place writes (x{summary.in_place:.0f})")
        if summary.locality_mb is None:
            reasons.append("no locality benefit")
    else:
        tier = DeviceTier.MID_RANGE
        reasons.append(f"random writes x{rw_penalty:.0f} sequential")
        if not copes:
            reasons.append("struggles with reverse/in-place patterns")

    return Classification(
        tier=tier,
        rw_penalty=rw_penalty,
        copes_with_unusual=copes,
        async_reclamation=has_async,
        reasons=tuple(reasons),
    )


def price_performance_note(
    summaries_and_prices: list[tuple[DeviceSummary, int]],
) -> str:
    """The paper's caveat: price is not always indicative of performance.

    Returns a short report flagging any device that costs more than
    another while having worse random-write performance.
    """
    flagged = []
    items = sorted(summaries_and_prices, key=lambda pair: pair[1], reverse=True)
    for i, (summary, price) in enumerate(items):
        for other, other_price in items[i + 1 :]:
            if price > other_price and summary.rw > other.rw * 1.5:
                flagged.append(
                    f"{summary.name} (${price}) has worse random writes than "
                    f"{other.name} (${other_price}): "
                    f"{summary.rw:.1f} ms vs {other.rw:.1f} ms"
                )
    if not flagged:
        return "price ordering matches random-write performance"
    return "\n".join(flagged)
