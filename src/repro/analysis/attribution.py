"""Campaign-level latency attribution: ground truth behind the curves.

uFLIP infers FTL mechanics from black-box response-time shapes; the
flight recorder (:mod:`repro.flashsim.recorder`) records the ground
truth per IO.  This module aggregates those per-IO decompositions over
a campaign's cells into:

* an **attribution table** — per (profile, experiment) component shares
  of device time, rendered with the standard report table;
* **observations** — derived statements of the paper's findings from
  ground truth instead of curve shape (e.g. *random-write cost is 97%
  merge copies*), worded against the Table 3 tier split that
  :mod:`repro.analysis.classify` applies to the measured curves;
* **device-time lanes** for the Chrome trace export — one synthetic
  lane per device channel, each cell's IOs drawn inside the wall-clock
  interval of the cell span that produced them, with reclamation work
  (GC/merge/wear/cache) as nested slices.

Everything here consumes executor outcomes whose payloads carry
attributed traces (campaign ``--attribution``); cells without
attribution are skipped silently, so the report composes with cache
hits from older, unattributed entries.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.report import format_table
from repro.flashsim.recorder import COMPONENTS

#: synthetic Chrome-trace thread ids for device channels, far above any
#: plausible OS pid so they can never collide with a worker lane
DEVICE_LANE_BASE = 1 << 22

#: components that represent FTL-internal (non-host) work
INTERNAL_COMPONENTS = ("gc", "merge", "wear", "cache")

_ATTR_KEYS = tuple(f"attr_{name}_usec" for name in COMPONENTS)


def _iter_attributed_traces(outcome) -> Iterable[dict]:
    """The attributed trace payloads inside one executor outcome."""
    for row in outcome.payload.get("rows", ()):
        for trace_payload in row.get("traces", ()):
            if "attribution" in trace_payload:
                yield trace_payload


def outcome_component_totals(outcome) -> dict[str, int]:
    """Total integer µs per component across one cell's attributed IOs.

    Returns an empty dict when the outcome carries no attribution (the
    cell ran without a flight recorder, e.g. an old cache entry).
    """
    totals = dict.fromkeys(COMPONENTS, 0)
    ios = 0
    for trace_payload in _iter_attributed_traces(outcome):
        attribution = trace_payload["attribution"]
        for name, key in zip(COMPONENTS, _ATTR_KEYS):
            totals[name] += sum(attribution[key])
        ios += len(attribution["channel"])
    if not ios:
        return {}
    totals["ios"] = ios
    return totals


def _share(part: float, whole: float) -> str:
    return f"{100.0 * part / whole:5.1f}%" if whole else "    -"


def attribution_table(outcomes: Sequence) -> str:
    """Per-cell component shares of device time, as a report table.

    One row per attributed cell plus a campaign-total row.  Shares are
    of the summed response time (which the components partition
    exactly); ``other`` folds controller, transfer, interference and
    noise together.
    """
    shown = ("wait", "read", "program", "gc", "merge", "wear", "cache")
    headers = ("profile", "experiment", "ios", "total ms") + shown + ("other",)
    rows = []
    grand = dict.fromkeys(COMPONENTS, 0)
    grand_ios = 0
    for outcome in outcomes:
        totals = outcome_component_totals(outcome)
        if not totals:
            continue
        ios = totals.pop("ios")
        whole = sum(totals.values())
        other = whole - sum(totals[name] for name in shown)
        rows.append(
            (
                outcome.cell.profile,
                outcome.cell.experiment,
                str(ios),
                f"{whole / 1000:.2f}",
                *(_share(totals[name], whole) for name in shown),
                _share(other, whole),
            )
        )
        for name in COMPONENTS:
            grand[name] += totals[name]
        grand_ios += ios
    if not rows:
        return "no attributed cells (run with --attribution)"
    whole = sum(grand.values())
    other = whole - sum(grand[name] for name in shown)
    rows.append(
        (
            "TOTAL",
            "",
            str(grand_ios),
            f"{whole / 1000:.2f}",
            *(_share(grand[name], whole) for name in shown),
            _share(other, whole),
        )
    )
    return format_table(headers, rows)


def attribution_observations(outcomes: Sequence) -> list[str]:
    """Ground-truth statements of the paper's observations, per profile.

    Where :func:`repro.analysis.classify.classify` infers a device tier
    from response-time *ratios* (random vs sequential writes), these
    lines state the *cause* directly from the recorded decomposition:
    the share of device time spent on FTL-internal reclamation, and the
    cell where it peaks.  A reclamation-dominated profile corroborates
    a low-end/mid-range classification; a profile whose internal share
    is negligible corroborates high-end.
    """
    by_profile: dict[str, list] = {}
    for outcome in outcomes:
        totals = outcome_component_totals(outcome)
        if totals:
            totals.pop("ios")
            by_profile.setdefault(outcome.cell.profile, []).append(
                (outcome.cell.experiment, totals)
            )
    lines = []
    for profile in sorted(by_profile):
        cells = by_profile[profile]
        whole = sum(sum(t.values()) for _, t in cells)
        internal = sum(
            sum(t[name] for name in INTERNAL_COMPONENTS) for _, t in cells
        )
        if not whole:
            continue
        internal_pct = 100.0 * internal / whole

        def cell_internal_share(item) -> float:
            _, totals = item
            cell_whole = sum(totals.values())
            if not cell_whole:
                return 0.0
            return sum(totals[name] for name in INTERNAL_COMPONENTS) / cell_whole

        peak_experiment, peak_totals = max(cells, key=cell_internal_share)
        peak_whole = sum(peak_totals.values())
        peak_name, peak_usec = max(
            ((name, peak_totals[name]) for name in INTERNAL_COMPONENTS),
            key=lambda pair: pair[1],
        )
        lines.append(
            f"{profile}: {internal_pct:.0f}% of device time is FTL-internal "
            f"work (gc/merge/wear/cache); peak cell {peak_experiment} is "
            f"{_share(peak_usec, peak_whole).strip()} {peak_name}"
        )
        if internal_pct >= 50.0:
            lines.append(
                f"  -> reclamation-dominated: corroborates a low-end "
                f"classification (classify's rw_penalty >= 50 regime)"
            )
        elif internal_pct <= 10.0:
            lines.append(
                f"  -> internal work negligible: corroborates a high-end "
                f"classification (classify's rw_penalty <= 20 regime)"
            )
    return lines


def render_attribution_report(outcomes: Sequence) -> str:
    """The full campaign-end attribution report (table + observations)."""
    sections = ["per-IO latency attribution (ground truth, exact to the µs)"]
    sections.append(attribution_table(outcomes))
    observations = attribution_observations(outcomes)
    if observations:
        sections.append("")
        sections.extend(observations)
    return "\n".join(sections)


# ----------------------------------------------------------------------
# Chrome-trace device lanes
# ----------------------------------------------------------------------

def _cell_spans(tracer) -> dict[tuple[str, str], object]:
    """Map (profile, experiment) to the recorded ``cell`` span."""
    spans = {}
    for span in tracer.spans:
        if span.name == "cell":
            key = (span.args.get("profile"), span.args.get("experiment"))
            spans[key] = span
    return spans


def inject_device_lanes(tracer, outcomes: Sequence, max_ios_per_cell: int = 5000) -> int:
    """Add simulated device-time lanes to a tracer's Chrome export.

    For every attributed cell that also has a recorded ``cell`` span,
    the cell's IOs are drawn on one synthetic lane per device channel,
    linearly mapped from simulated time onto the span's wall-clock
    interval — so in Perfetto each channel's activity appears nested
    under the cell that produced it, and FTL-internal work (gc, merge,
    wear, cache) shows as slices nested inside the owning IO.  Returns
    the number of events injected; cells whose IO count exceeds
    ``max_ios_per_cell`` are truncated to keep the document loadable.
    """
    spans = _cell_spans(tracer)
    events: list[dict] = []
    channels_seen: set[int] = set()
    for outcome in outcomes:
        span = spans.get((outcome.cell.profile, outcome.cell.experiment))
        if span is None:
            continue
        traces = list(_iter_attributed_traces(outcome))
        if not traces:
            continue
        sim_lo = min(min(t["submitted_at"]) for t in traces if t["submitted_at"])
        sim_hi = max(max(t["completed_at"]) for t in traces if t["completed_at"])
        extent = sim_hi - sim_lo
        scale = span.dur_usec / extent if extent > 0 else 1.0
        budget = max_ios_per_cell
        for trace_payload in traces:
            attribution = trace_payload["attribution"]
            submitted = trace_payload["submitted_at"]
            started = trace_payload["started_at"]
            completed = trace_payload["completed_at"]
            writes = trace_payload["write"]
            lbas = trace_payload["lba"]
            sizes = trace_payload["size"]
            channels = attribution["channel"]
            count = min(len(channels), budget)
            budget -= count
            for i in range(count):
                channel = int(channels[i])
                channels_seen.add(channel)
                tid = DEVICE_LANE_BASE + channel
                ts = span.start_usec + (started[i] - sim_lo) * scale
                dur = max(completed[i] - started[i], 0.0) * scale
                args = {
                    "lba": lbas[i],
                    "size": sizes[i],
                    "experiment": outcome.cell.experiment,
                }
                for name, key in zip(COMPONENTS, _ATTR_KEYS):
                    value = attribution[key][i]
                    if value:
                        args[name] = value
                events.append(
                    {
                        "name": "write" if writes[i] else "read",
                        "cat": "device",
                        "ph": "X",
                        "ts": ts,
                        "dur": dur,
                        "tid": tid,
                        "args": args,
                    }
                )
                # FTL-internal work as slices nested inside the IO
                offset = 0.0
                for name in INTERNAL_COMPONENTS:
                    value = attribution[f"attr_{name}_usec"][i]
                    if not value:
                        continue
                    nested_dur = min(value * scale, dur - offset)
                    if nested_dur <= 0:
                        break
                    events.append(
                        {
                            "name": name,
                            "cat": "device.internal",
                            "ph": "X",
                            "ts": ts + offset,
                            "dur": nested_dur,
                            "tid": tid,
                            "args": {"usec": value},
                        }
                    )
                    offset += nested_dur
            if budget <= 0:
                break
    for channel in channels_seen:
        tracer.add_lane(DEVICE_LANE_BASE + channel, f"device ch{channel}")
    tracer.add_events(events)
    return len(events)


__all__ = [
    "DEVICE_LANE_BASE",
    "INTERNAL_COMPONENTS",
    "attribution_observations",
    "attribution_table",
    "inject_device_lanes",
    "outcome_component_totals",
    "render_attribution_report",
]
