"""Derive the paper's Table 3 — key device characteristics — by running
the relevant micro-benchmarks and condensing their results.

Table 3 columns and how each is measured (Section 5.2):

* **SR/RR/SW/RW** — mean 32 KiB response times of the baselines, start-up
  phase excluded;
* **Pause RW** — RW with an inserted pause equal to its own mean cost;
  reported only when it helps (asynchronous reclamation present);
* **Locality** — largest TargetSize whose random writes stay within a
  factor of sequential writes, and the factor inside that area;
* **Partitioning** — the largest number of concurrent sequential-write
  partitions without significant degradation, and their relative cost;
* **Ordered** — reverse (Incr = −1) and in-place (Incr = 0) writes
  relative to SW, and large-increment writes relative to RW.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.experiment import run_experiment
from repro.core.microbench import BenchContext, locality
from repro.core.patterns import PatternSpec, TimingKind, baselines
from repro.core.phases import detect_phases
from repro.core.plan import TargetAllocator
from repro.core.report import format_table
from repro.core.runner import execute, rest_device
from repro.flashsim.device import FlashDevice
from repro.paperdata import TABLE3, Table3Row
from repro.units import KIB, MIB, SEC


@dataclass
class DeviceSummary:
    """One device's measured Table 3 row (times in ms, area in MiB)."""

    name: str
    sr: float
    rr: float
    sw: float
    rw: float
    pause_rw: float | None
    locality_mb: float | None
    locality_factor: float | None
    partitions: int
    partitions_factor: float
    reverse: float
    in_place: float
    large_incr: float
    startup_rw: int = 0

    def as_row(self) -> list:
        """Format the summary as one printable Table 3 row."""
        def fmt(value, places=1):
            return "-" if value is None else f"{value:.{places}f}"

        locality = (
            "No"
            if self.locality_mb is None
            else f"{self.locality_mb:.0f} (x{self.locality_factor:.1f})"
        )
        return [
            self.name,
            fmt(self.sr),
            fmt(self.rr),
            fmt(self.sw),
            fmt(self.rw, 0) if self.rw >= 10 else fmt(self.rw),
            fmt(self.pause_rw),
            locality,
            f"{self.partitions} (x{self.partitions_factor:.1f})",
            f"x{self.reverse:.1f}",
            f"x{self.in_place:.1f}",
            f"x{self.large_incr:.1f}",
        ]


def _steady_mean_msec(device: FlashDevice, spec: PatternSpec) -> tuple[float, int]:
    """Mean response time (ms) after the detected start-up phase."""
    run = execute(device, spec)
    responses = np.asarray(run.trace.response_times())
    phases = detect_phases(responses)
    rest_device(device, 10 * SEC)
    return float(responses[phases.startup :].mean() / 1000.0), phases.startup


def summarize_device(
    device: FlashDevice,
    name: str,
    io_count: int = 256,
    io_size: int = 32 * KIB,
    seed: int = 42,
    locality_threshold: float = 3.5,
    partition_threshold: float = 2.5,
) -> DeviceSummary:
    """Measure one (already state-enforced) device's Table 3 row.

    ``io_count`` is the number of *steady-state* IOs each measurement
    keeps; the RW start-up phase is measured first and excluded from
    every random-write run (Section 4.2's methodology).
    ``locality_threshold`` / ``partition_threshold`` define "near
    sequential cost": the factor over SW below which an area / partition
    count still counts as beneficial.
    """
    capacity = device.capacity
    area = (capacity // io_size) * io_size

    base = baselines(
        io_size=io_size,
        io_count=max(768, io_count),
        random_target_size=area,
        sequential_target_size=area,
        seed=seed,
    )
    sr, __ = _steady_mean_msec(device, base["SR"])
    rr, __ = _steady_mean_msec(device, base["RR"])
    sw, __ = _steady_mean_msec(device, base["SW"])
    rw, startup_rw = _steady_mean_msec(device, base["RW"])

    # Every later write experiment ignores the start-up phase and runs
    # long enough past it to converge.
    io_ignore = startup_rw + 16
    ctx = BenchContext(
        capacity=capacity,
        io_size=io_size,
        io_count=io_ignore + io_count,
        io_ignore=io_ignore,
        seed=seed,
    )
    allocator = TargetAllocator(capacity, device.geometry.block_size)

    pause_rw = _measure_pause_effect(device, base["RW"], io_ignore, sw, rw)
    # "Beneficial" means well below the wide-random-write cost as well
    # as within a small factor of sequential writes (the paper's Table 3
    # reports areas with factors from "=" up to x20 for devices whose
    # random writes are catastrophically slower).
    locality_cutoff = max(locality_threshold * sw, rw / 3.0)
    locality_mb, locality_factor = _measure_locality(device, ctx, sw, locality_cutoff)
    partitions, partitions_factor = _measure_partitioning(
        device, allocator, ctx, partition_threshold, rw
    )
    reverse, in_place, large_incr = _measure_order(device, ctx, allocator, sw, rw)

    return DeviceSummary(
        name=name,
        sr=sr,
        rr=rr,
        sw=sw,
        rw=rw,
        pause_rw=pause_rw,
        locality_mb=locality_mb,
        locality_factor=locality_factor,
        partitions=partitions,
        partitions_factor=partitions_factor,
        reverse=reverse,
        in_place=in_place,
        large_incr=large_incr,
        startup_rw=startup_rw,
    )


def _measure_pause_effect(
    device: FlashDevice,
    rw_spec: PatternSpec,
    io_ignore: int,
    sw_msec: float,
    rw_msec: float,
) -> float | None:
    """The Pause column: the smallest inter-IO pause that makes random
    writes behave like sequential writes (None when pauses never help —
    no asynchronous reclamation).

    The paper observes that, when it exists, this pause is precisely the
    average random-write cost itself: the reclamation still happens, it
    just moves into the gaps.
    """
    spec = rw_spec.with_(io_count=io_ignore + 192, io_ignore=io_ignore)
    for pause_msec in (rw_msec / 2.0, rw_msec, 2.0 * rw_msec, 4.0 * rw_msec):
        run = execute(
            device,
            spec.with_(timing=TimingKind.PAUSE, pause_usec=pause_msec * 1000.0),
        )
        rest_device(device, 10 * SEC)
        if run.stats.mean_usec / 1000.0 <= 2.5 * sw_msec:
            return pause_msec
    return None


def _measure_locality(
    device: FlashDevice,
    ctx: BenchContext,
    sw_msec: float,
    cutoff_msec: float,
) -> tuple[float | None, float | None]:
    """Largest random-write area still under ``cutoff_msec``, and the
    cost inside it relative to sequential writes."""
    experiment = locality(ctx).experiment("RW")
    result = run_experiment(device, experiment, pause_usec=5 * SEC)
    best_area: float | None = None
    best_factor: float | None = None
    for row in result.rows:
        area_bytes = row.value * ctx.io_size
        if area_bytes >= MIB and row.mean_msec <= cutoff_msec:
            area_mb = area_bytes / MIB
            if best_area is None or area_mb > best_area:
                factor = row.mean_msec / sw_msec if sw_msec > 0 else float("inf")
                best_area, best_factor = area_mb, max(1.0, factor)
    return best_area, best_factor


def _measure_partitioning(
    device: FlashDevice,
    allocator: TargetAllocator,
    ctx: BenchContext,
    threshold: float,
    rw_msec: float = float("inf"),
) -> tuple[int, float]:
    """Largest partition count within ``threshold`` x the 1-partition cost.

    Each partition must span several erase blocks, otherwise the pattern
    degenerates into a single short sequential run and every count looks
    fine; the driver sizes io_count so every partition covers two blocks.
    """
    from repro.core.patterns import LocationKind
    from repro.iotypes import Mode

    block = device.geometry.block_size
    span = 4 * block  # per-partition footprint; the pattern wraps
    counts = [1, 2, 4, 8, 16, 32]
    # long enough to outlast any background free-pool head-room, which
    # would otherwise hide the degradation on high-end devices
    io_count = ctx.io_count + ctx.io_ignore
    means: dict[int, float] = {}
    for partitions in counts:
        target = partitions * span
        if target > device.capacity:
            break
        spec = PatternSpec(
            mode=Mode.WRITE,
            location=LocationKind.PARTITIONED,
            io_size=ctx.io_size,
            io_count=io_count,
            io_ignore=ctx.io_ignore,
            target_size=target,
            partitions=partitions,
            seed=ctx.seed,
        )
        placed = _allocate_fn(allocator)(spec)
        run = execute(device, placed)
        rest_device(device, 5 * SEC)
        means[partitions] = run.stats.mean_usec / 1000.0
    single = means[1]
    cutoff = max(threshold * single, rw_msec / 3.0)
    best_count, best_factor = 1, 1.0
    for partitions, mean in means.items():
        if mean <= cutoff and partitions > best_count:
            factor = mean / single if single > 0 else float("inf")
            best_count, best_factor = partitions, max(1.0, factor)
    return best_count, best_factor


def _measure_order(
    device: FlashDevice,
    ctx: BenchContext,
    allocator: TargetAllocator,
    sw_msec: float,
    rw_msec: float,
) -> tuple[float, float, float]:
    """Reverse / in-place (vs SW) and large-increment (vs RW) factors.

    Each ordered run is preceded by a random-write warm-up (no rest in
    between) so the measurement reflects the steady running phase rather
    than a background-replenished free pool; the large-increment run is
    sized so its strided footprint never wraps (a wrap would revisit
    cached LBAs and underestimate the cost — a scaled-capacity artefact
    the paper's 16-32 GB devices do not have).
    """
    from repro.core.patterns import LocationKind
    from repro.iotypes import Mode

    area = (device.capacity // ctx.io_size) * ctx.io_size
    warm = PatternSpec(
        mode=Mode.WRITE,
        location=LocationKind.RANDOM,
        io_size=ctx.io_size,
        io_count=ctx.io_ignore + 16,
        target_size=area,
        seed=ctx.seed + 99,
    )
    large = 32  # a 1 MiB gap at 32 KiB IOs — the paper probes 1-8 MiB gaps
    max_large_count = max(8, device.capacity // (large * ctx.io_size) - 1)

    def measure(incr: int, io_count: int, warm_first: bool = False) -> float:
        if warm_first:
            execute(device, warm)
        span = max(1, abs(incr)) * io_count * ctx.io_size
        target = min(span, area)
        spec = PatternSpec(
            mode=Mode.WRITE,
            location=LocationKind.ORDERED,
            io_size=ctx.io_size,
            io_count=io_count,
            target_size=target,
            incr=incr,
            seed=ctx.seed,
        )
        placed = _allocate_fn(allocator)(spec)
        run = execute(device, placed)
        rest_device(device, 10 * SEC)
        return run.stats.mean_usec / 1000.0

    # Reverse and in-place follow the paper's protocol: pause-separated
    # runs (the rest before each run lets asynchronous reclamation
    # replenish, exactly as on the authors' testbed).  The strided run
    # is warmed first because its no-wrap length is too short to drain
    # the free pool by itself.
    reverse = measure(-1, 192) / sw_msec
    in_place = measure(0, 192) / sw_msec
    large_incr = measure(large, min(192, max_large_count), warm_first=True) / rw_msec
    return reverse, in_place, large_incr


def _allocate_fn(allocator: TargetAllocator):
    """Allocator callback that tolerates exhaustion by wrapping around
    (the Table 3 driver re-uses space rather than re-enforcing; the
    random state is only mildly disturbed and factors are relative)."""

    def allocate(spec):
        placed = allocator.place(spec)
        if placed is None:
            allocator.reset()
            placed = allocator.place(spec)
        return placed if placed is not None else spec

    return allocate


def render_table3(
    summaries: list[DeviceSummary], with_paper: bool = True
) -> str:
    """Render measured summaries (and the paper's rows) as Table 3."""
    headers = [
        "Device",
        "SR(ms)",
        "RR(ms)",
        "SW(ms)",
        "RW(ms)",
        "Pause RW",
        "Locality MB",
        "Partitions",
        "Rev",
        "InPlace",
        "LargeIncr",
    ]
    rows = []
    for summary in summaries:
        rows.append(summary.as_row())
        if with_paper and summary.name in TABLE3:
            rows.append(_paper_row(TABLE3[summary.name]))
    return format_table(headers, rows)


def _paper_row(paper: Table3Row) -> list:
    locality = (
        "No"
        if paper.locality_mb is None
        else f"{paper.locality_mb:.0f} (x{paper.locality_factor:.1f})"
    )
    return [
        f"  (paper: {paper.device})",
        f"{paper.sr:.1f}",
        f"{paper.rr:.1f}",
        f"{paper.sw:.1f}",
        f"{paper.rw:.0f}",
        "-" if paper.pause_rw is None else f"{paper.pause_rw:.1f}",
        locality,
        f"{paper.partitions} (x{paper.partitions_factor:.1f})",
        f"x{paper.reverse:.1f}",
        f"x{paper.in_place:.1f}",
        f"x{paper.large_incr:.1f}",
    ]
