"""Markdown report generation for archived campaigns.

The paper shipped a visualization web site (uflip.org, Section 6); the
repository equivalent is a self-contained Markdown report: campaign
metadata, one section per experiment with its result table and an ASCII
plot, and an optional comparison section against a second campaign.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.visualize import plot_series
from repro.core.archive import Campaign, compare_campaigns, render_comparison
from repro.core.experiment import ExperimentResult
from repro.errors import AnalysisError


def _experiment_section(name: str, result: ExperimentResult) -> str:
    lines = [f"## {name}", ""]
    lines.append(f"varying `{result.experiment.parameter}`")
    lines.append("")
    lines.append(f"| {result.experiment.parameter} | pattern | mean (ms) | max (ms) |")
    lines.append("|---|---|---|---|")
    for row in result.rows:
        lines.append(
            f"| {row.value} | {row.label} | {row.mean_msec:.3f} "
            f"| {row.max_usec / 1000:.3f} |"
        )
    values, means = result.series()
    numeric = all(isinstance(value, (int, float)) for value in values)
    if numeric and len(values) >= 2:
        lines.append("")
        lines.append("```")
        lines.append(
            plot_series(
                {result.experiment.parameter: (list(values), means)},
                x_label=result.experiment.parameter,
                width=60,
                height=10,
            )
        )
        lines.append("```")
    lines.append("")
    return "\n".join(lines)


def campaign_report(
    campaign: Campaign, compare_to: Campaign | None = None
) -> str:
    """Render one campaign (optionally compared to another) as Markdown."""
    if not campaign.results:
        raise AnalysisError("cannot report an empty campaign")
    lines = [
        f"# uFLIP campaign: {campaign.label}",
        "",
        f"* device: `{campaign.device}`",
    ]
    for key, value in sorted(campaign.metadata.items()):
        lines.append(f"* {key}: {value}")
    lines.append(f"* experiments: {len(campaign.results)}")
    lines.append("")
    for name in campaign.experiment_names():
        lines.append(_experiment_section(name, campaign.results[name]))
    if compare_to is not None:
        deltas = compare_campaigns(campaign, compare_to)
        lines.append("## Comparison")
        lines.append("")
        lines.append("```")
        lines.append(render_comparison(campaign, compare_to, deltas))
        lines.append("```")
        lines.append("")
        regressions = [d for d in deltas if d.max_regression > 1.25]
        if regressions:
            lines.append(
                "regressions (>1.25x slower in "
                f"`{compare_to.label}`): "
                + ", ".join(d.name for d in regressions)
            )
        else:
            lines.append("no experiment regressed by more than 1.25x")
        lines.append("")
    return "\n".join(lines)


def write_campaign_report(
    campaign: Campaign,
    path: str | Path,
    compare_to: Campaign | None = None,
) -> Path:
    """Render and write the report; returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(campaign_report(campaign, compare_to))
    return path
