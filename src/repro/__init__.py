"""uFLIP: Understanding Flash IO Patterns — full reproduction.

Reproduces Bouganim, Jónsson & Bonnet, *uFLIP: Understanding Flash IO
Patterns*, CIDR 2009, on a simulated flash-device substrate:

* :mod:`repro.flashsim` — NAND chips, three FTL families, caches,
  controller, and the eleven benchmarked devices as calibrated profiles;
* :mod:`repro.core` — the uFLIP benchmark: IO pattern algebra, the nine
  micro-benchmarks, and the benchmarking methodology (state enforcement,
  two-phase analysis, interference probing, benchmark plans);
* :mod:`repro.analysis` — Table 3 derivation, device classification,
  the seven design hints, ASCII figures;
* :mod:`repro.paperdata` — the paper's reference numbers.

Quickstart::

    from repro import build_device, enforce_random_state, baselines, execute

    device = build_device("memoright")
    enforce_random_state(device)
    run = execute(device, baselines(io_count=256)["RW"])
    print(run.stats.summary())
"""

from repro.core import (
    BenchContext,
    BenchmarkPlan,
    Experiment,
    MixSpec,
    ParallelSpec,
    PatternSpec,
    baselines,
    build_microbenchmark,
    determine_pause,
    detect_phases,
    enforce_random_state,
    enforce_sequential_state,
    execute,
    execute_mix,
    execute_parallel,
    measure_phases,
    rest_device,
    run_control_for,
    run_experiment,
)
from repro.flashsim import build_device, get_profile, profile_names
from repro.iotypes import CompletedIO, IORequest, Mode

__version__ = "1.0.0"

__all__ = [
    "BenchContext",
    "BenchmarkPlan",
    "CompletedIO",
    "Experiment",
    "IORequest",
    "MixSpec",
    "Mode",
    "ParallelSpec",
    "PatternSpec",
    "__version__",
    "baselines",
    "build_device",
    "build_microbenchmark",
    "determine_pause",
    "detect_phases",
    "enforce_random_state",
    "enforce_sequential_state",
    "execute",
    "execute_mix",
    "execute_parallel",
    "get_profile",
    "measure_phases",
    "profile_names",
    "rest_device",
    "run_control_for",
    "run_experiment",
]
