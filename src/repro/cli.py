"""Command-line interface: ``uflip`` / ``python -m repro``.

Subcommands mirror the benchmarking workflow:

* ``devices`` — list the Table 2 device profiles;
* ``run`` — execute one pattern against a device and print its stats;
* ``microbench`` — run one of the nine micro-benchmarks;
* ``phases`` — measure start-up/running phases of the four baselines;
* ``pause`` — run the Figure 5 interference probe;
* ``table3`` — derive the Table 3 summary for one or more devices;
* ``hints`` — evaluate the seven design hints against a device.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.analysis import (
    campaign_report,
    classify,
    evaluate_hints,
    plot_trace,
    render_table3,
    summarize_device,
)
from repro.core import (
    BenchContext,
    autotune_run,
    baselines,
    build_microbenchmark,
    determine_pause,
    enforce_random_state,
    execute,
    measure_phases,
    rest_device,
    run_experiment,
)
from repro.core.microbench import MICROBENCHMARKS
from repro.core.patterns import LocationKind, PatternSpec
from repro.core.report import format_table, render_experiment
from repro.flashsim import ALL_PROFILES, build_device, get_profile
from repro.flashsim.power import MLC_POWER, SLC_POWER, measure_run_energy
from repro.flashsim.wear import project_lifetime, wear_report
from repro.iotypes import Mode
from repro.obs.progress import ProgressReporter, configure_logging, get_logger
from repro.units import MIB, SEC, fmt_size, parse_size

_log = get_logger("repro.cli")


def _add_device_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--device",
        default="memoright",
        help="device profile name (see `uflip devices`); the campaign "
             "subcommand also accepts a comma-separated list of profiles",
    )
    parser.add_argument(
        "--capacity",
        default=None,
        help="override the scaled capacity (e.g. 32M)",
    )
    parser.add_argument(
        "--skip-state",
        action="store_true",
        help="skip random-state enforcement (out-of-the-box device)",
    )


def _build_ready_device(args: argparse.Namespace):
    capacity = parse_size(args.capacity) if args.capacity else None
    device = build_device(args.device, logical_bytes=capacity)
    if not args.skip_state:
        _log.info("enforcing random state on %s ...", device.name)
        report = enforce_random_state(device)
        _log.info(
            "  %d IOs, %s written (%.0fs simulated)",
            report.io_count,
            fmt_size(report.bytes_written),
            report.elapsed_usec / SEC,
        )
        rest_device(device, 30 * SEC)
    return device


def _cmd_devices(_args: argparse.Namespace) -> int:
    rows = []
    for profile in ALL_PROFILES:
        rows.append(
            (
                profile.name,
                profile.brand,
                profile.model,
                profile.kind,
                fmt_size(profile.real_capacity),
                f"${profile.price_usd}" if profile.price_usd else "-",
                fmt_size(profile.sim_logical_bytes),
                profile.ftl_kind,
                "yes" if profile.highlighted else "",
            )
        )
    print(
        format_table(
            (
                "profile",
                "brand",
                "model",
                "type",
                "size",
                "price",
                "sim size",
                "ftl",
                "in paper figs",
            ),
            rows,
        )
    )
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    device = _build_ready_device(args)
    location = LocationKind(args.location)
    mode = Mode(args.mode)
    io_size = parse_size(args.io_size)
    area = (device.capacity // io_size) * io_size
    spec = PatternSpec(
        mode=mode,
        location=location,
        io_size=io_size,
        io_count=args.count,
        io_ignore=args.ignore,
        target_size=area if location is LocationKind.RANDOM else min(
            args.count * io_size, area
        ),
        incr=args.incr,
        partitions=args.partitions,
        seed=args.seed,
    )
    run = execute(device, spec)
    print(f"{spec.label} on {device.name}: {run.stats.summary()}")
    if args.plot:
        print(plot_trace(run.trace.response_times(), title=f"{spec.label} trace"))
    return 0


def _cmd_microbench(args: argparse.Namespace) -> int:
    device = _build_ready_device(args)
    ctx = BenchContext(
        capacity=device.capacity,
        io_size=parse_size(args.io_size),
        io_count=args.count,
        io_ignore=args.ignore,
    )
    bench = build_microbenchmark(args.name, ctx)
    for experiment in bench.experiments:
        if args.pattern and not experiment.name.endswith(f"/{args.pattern}"):
            continue
        result = run_experiment(device, experiment, pause_usec=args.pause * SEC)
        print(render_experiment(result))
        print()
    return 0


def _cmd_phases(args: argparse.Namespace) -> int:
    device = _build_ready_device(args)
    specs = baselines(
        io_size=parse_size(args.io_size),
        io_count=args.count,
        random_target_size=device.capacity // MIB * MIB,
        sequential_target_size=device.capacity // MIB * MIB,
    )
    profile = measure_phases(device, specs)
    rows = [
        (label, analysis.summary())
        for label, analysis in profile.analyses.items()
    ]
    print(format_table(("pattern", "phases"), rows))
    print(
        f"bounds: startup={profile.startup_bound} period={profile.period_bound}"
    )
    return 0


def _cmd_pause(args: argparse.Namespace) -> int:
    device = _build_ready_device(args)
    result = determine_pause(device, reads_after=args.reads_after)
    print(f"{device.name}: {result.summary()}")
    if args.plot:
        combined = result.reads_before + result.writes + result.reads_after
        print(plot_trace(combined, title="SR / RW / SR probe (Figure 5)"))
    return 0


def _cmd_table3(args: argparse.Namespace) -> int:
    summaries = []
    names = args.names or [
        "memoright",
        "mtron",
        "samsung",
        "transcend_module",
        "transcend32",
        "kingston_dthx",
        "kingston_dti",
    ]
    for name in names:
        get_profile(name)  # fail fast on typos
        device = build_device(name)
        _log.info("measuring %s ...", name)
        enforce_random_state(device)
        summary = summarize_device(device, name)
        summaries.append(summary)
    print(render_table3(summaries, with_paper=not args.no_paper))
    if args.classify:
        print()
        for summary in summaries:
            result = classify(summary)
            print(f"{summary.name}: {result.tier.value} ({'; '.join(result.reasons)})")
    return 0


def _cmd_hints(args: argparse.Namespace) -> int:
    device = _build_ready_device(args)
    rows = []
    for result in evaluate_hints(device):
        rows.append(
            (
                result.hint,
                result.statement,
                "HOLDS" if result.holds else "differs",
                result.evidence,
            )
        )
    print(format_table(("#", "hint", "verdict", "evidence"), rows))
    return 0


def _cmd_autotune(args: argparse.Namespace) -> int:
    device = _build_ready_device(args)
    specs = baselines(
        io_size=parse_size(args.io_size),
        io_count=1,
        random_target_size=device.capacity,
    )
    rows = []
    for label in ("SR", "RR", "SW", "RW"):
        result = autotune_run(
            device, specs[label], relative_ci=args.ci, max_ios=args.max_ios
        )
        rows.append((label, result.summary()))
        rest_device(device, 30 * SEC)
    print(format_table(("pattern", "autotune"), rows))
    return 0


def _cmd_energy(args: argparse.Namespace) -> int:
    device = _build_ready_device(args)
    power = SLC_POWER if get_profile(args.device).slc else MLC_POWER
    io_size = parse_size(args.io_size)
    specs = baselines(
        io_size=io_size,
        io_count=args.count,
        random_target_size=device.capacity,
        sequential_target_size=device.capacity,
    )
    rows = []
    for label in ("SR", "RR", "SW", "RW"):
        run = execute(device, specs[label])
        meter = measure_run_energy(run.trace, power)
        rows.append(
            (
                label,
                f"{meter.mean_uj_per_io:.0f}",
                f"{meter.uj_per_mib(args.count * io_size) / 1000:.2f}",
            )
        )
        rest_device(device, 30 * SEC)
    print(format_table(("pattern", "uJ per IO", "mJ per MiB"), rows))
    return 0


def _cmd_lifetime(args: argparse.Namespace) -> int:
    device = _build_ready_device(args)
    io_size = parse_size(args.io_size)
    spec = baselines(
        io_size=io_size,
        io_count=args.count,
        random_target_size=device.capacity,
        sequential_target_size=device.capacity,
    )[args.pattern]
    before = wear_report(device)
    run = execute(device, spec)
    after = wear_report(device)
    elapsed = run.trace[-1].completed_at - run.trace[0].submitted_at
    projection = project_lifetime(
        device, before, after, elapsed, args.count * io_size
    )
    print(f"wear now: {after.summary()}")
    print(f"projection under sustained {args.pattern}: {projection.summary()}")
    if projection.projected_bytes != float("inf"):
        print(
            f"host data until worst-block exhaustion: "
            f"{projection.projected_bytes / (1 << 40):.1f} TiB"
        )
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    if args.profile is None:
        return _run_campaign(args)
    # Profile the whole campaign (planning, enforcement, execution,
    # archiving).  With --jobs > 1 only the parent process is profiled;
    # use --jobs 1 to see the simulator hot path itself.
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    try:
        return profiler.runcall(_run_campaign, args)
    finally:
        stats = pstats.Stats(profiler)
        stats.sort_stats("cumulative").print_stats(20)
        if args.profile:
            profiler.dump_stats(args.profile)
            print(f"profile stats written to {args.profile}")


def _run_campaign(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.core import (
        Campaign,
        CampaignExecutor,
        plan_cells,
        results_by_experiment,
    )
    from repro.core.executor import merge_outcome_metrics
    from repro.obs import metrics as obs_metrics
    from repro.obs import tracing as obs_tracing
    from repro.obs.progress import histogram_table, metrics_table

    profiles = [name.strip() for name in args.device.split(",") if name.strip()]
    capacity = parse_size(args.capacity) if args.capacity else None
    legacy = getattr(args, "dispatch", "warm") == "legacy"
    executor = CampaignExecutor(
        jobs=args.jobs,
        cache=args.cache or None,
        enforce=not args.skip_state,
        enforce_seed=97,
        attribution=args.attribution,
        share_snapshots=not legacy,
        warm_workers=not legacy,
        pipeline_prepare=not legacy,
    )
    registry = obs_metrics.install() if args.metrics else None
    tracer = obs_tracing.install() if args.trace else None
    all_outcomes = []
    try:
        # One cell list across every profile, executed in a single pass:
        # with jobs > 1 the executor then enforces independent profiles
        # concurrently while early-prepared profiles already run cells,
        # instead of serializing the campaign profile by profile.
        cells = []
        for profile in profiles:
            cells.extend(
                plan_cells(
                    profile,
                    capacity,
                    args.benchmarks,
                    io_size=parse_size(args.io_size),
                    io_count=args.count,
                    io_ignore=args.ignore,
                    pause_usec=args.pause * SEC,
                )
            )
        reporter = ProgressReporter(total=len(cells), label=",".join(profiles))
        outcomes = executor.execute(
            cells, status=reporter.status, progress=reporter.cell_done
        )
        all_outcomes.extend(outcomes)
        for profile in profiles:
            profile_outcomes = [
                outcome for outcome in outcomes if outcome.cell.profile == profile
            ]
            cached = sum(1 for outcome in profile_outcomes if outcome.cached)
            label = args.label if len(profiles) == 1 else f"{args.label}-{profile}"
            campaign = Campaign(
                device=profile,
                label=label,
                results=results_by_experiment(profile_outcomes),
                metadata={
                    "io_size": args.io_size,
                    "io_count": str(args.count),
                    "benchmarks": ",".join(args.benchmarks),
                    "jobs": str(args.jobs),
                    "cells_run": str(len(profile_outcomes) - cached),
                    "cells_cached": str(cached),
                },
            )
            path = campaign.save(Path(args.out))
            print(
                f"campaign archived to {path} "
                f"({len(profile_outcomes) - cached} cell(s) run, "
                f"{cached} from cache)"
            )
            if args.metrics:
                merged = merge_outcome_metrics(profile_outcomes)
                if merged:
                    print(metrics_table(merged, title=f"device metrics: {profile}"))
        if executor.cache is not None:
            cache = executor.cache
            total = cache.hits + cache.misses
            rate = cache.hits / total if total else 0.0
            print(
                f"run cache: {cache.hits} hit(s), {cache.misses} miss(es) "
                f"({rate:.0%} hit rate), {fmt_size(cache.bytes_saved)} of "
                f"simulated IO not re-measured"
            )
            if args.metrics and cache.profiles:
                rows = []
                for profile in sorted(cache.profiles):
                    stats = cache.profiles[profile]
                    looked = stats["hits"] + stats["misses"]
                    rows.append(
                        (
                            profile,
                            str(stats["hits"]),
                            str(stats["misses"]),
                            f"{stats['hits'] / looked:.0%}" if looked else "-",
                            fmt_size(stats["bytes_saved"]),
                            fmt_size(stats["payload_bytes"]),
                        )
                    )
                print(
                    format_table(
                        (
                            "profile",
                            "hits",
                            "misses",
                            "hit rate",
                            "sim IO saved",
                            "payload stored",
                        ),
                        rows,
                    )
                )
        if args.metrics and registry is not None:
            snapshot = registry.snapshot()
            core = snapshot.scoped("core.")
            if core.counters:
                print(metrics_table(core.counters, title="executor metrics"))
            if snapshot.histograms:
                print(
                    histogram_table(
                        snapshot.histograms, title="latency percentiles"
                    )
                )
        if args.attribution:
            from repro.analysis import render_attribution_report

            report = render_attribution_report(all_outcomes)
            print(report)
            if args.attribution_out:
                Path(args.attribution_out).write_text(report + "\n")
                print(f"attribution report written to {args.attribution_out}")
    finally:
        executor.close()
        if args.trace and tracer is not None:
            obs_tracing.uninstall()
            if args.attribution and all_outcomes:
                from repro.analysis import inject_device_lanes

                injected = inject_device_lanes(tracer, all_outcomes)
                _log.info("injected %d device-lane event(s)", injected)
            tracer.write(args.trace)
            _log.info("trace written to %s", args.trace)
        if args.metrics:
            obs_metrics.uninstall()
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.core import Campaign

    campaign = Campaign.load(Path(args.archive))
    compare_to = Campaign.load(Path(args.compare)) if args.compare else None
    text = campaign_report(campaign, compare_to=compare_to)
    if args.out:
        Path(args.out).write_text(text)
        print(f"report written to {args.out}")
    else:
        print(text)
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    from repro.core.replay import ReplayMode, remap_rows, replay
    from repro.flashsim.trace import IOTrace

    device = _build_ready_device(args)
    rows = IOTrace.load_csv(args.trace)
    if args.remap:
        rows = remap_rows(rows, device.capacity, device.geometry.block_size)
    mode = ReplayMode.TIMED if args.timed else ReplayMode.CLOSED_LOOP
    result = replay(device, rows, mode=mode, io_ignore=args.ignore)
    print(
        f"replayed {len(result.trace)} IOs on {device.name} "
        f"({result.mode.value}): {result.stats.summary()}"
    )
    print(
        f"span {result.replay_span_usec / SEC:.2f}s vs original "
        f"{result.original_span_usec / SEC:.2f}s "
        f"(speedup x{result.speedup:.1f})"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the full argparse tree for the ``uflip`` command."""
    parser = argparse.ArgumentParser(
        prog="uflip",
        description="uFLIP flash IO pattern benchmark (CIDR 2009) on a "
        "simulated flash substrate",
    )
    parser.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="more progress detail on stderr (repeatable)",
    )
    parser.add_argument(
        "-q", "--quiet", action="count", default=0,
        help="less progress detail on stderr (repeatable)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("devices", help="list device profiles").set_defaults(
        func=_cmd_devices
    )

    run_parser = subparsers.add_parser("run", help="run one IO pattern")
    _add_device_argument(run_parser)
    run_parser.add_argument("--mode", choices=("read", "write"), default="write")
    run_parser.add_argument(
        "--location",
        choices=tuple(kind.value for kind in LocationKind),
        default="random",
    )
    run_parser.add_argument("--io-size", default="32K")
    run_parser.add_argument("--count", type=int, default=256)
    run_parser.add_argument("--ignore", type=int, default=0)
    run_parser.add_argument("--incr", type=int, default=1)
    run_parser.add_argument("--partitions", type=int, default=1)
    run_parser.add_argument("--seed", type=int, default=42)
    run_parser.add_argument("--plot", action="store_true")
    run_parser.set_defaults(func=_cmd_run)

    micro_parser = subparsers.add_parser(
        "microbench", help="run one of the nine micro-benchmarks"
    )
    _add_device_argument(micro_parser)
    micro_parser.add_argument("name", choices=tuple(MICROBENCHMARKS))
    micro_parser.add_argument("--pattern", default="", help="e.g. SW to filter")
    micro_parser.add_argument("--io-size", default="32K")
    micro_parser.add_argument("--count", type=int, default=128)
    micro_parser.add_argument("--ignore", type=int, default=0)
    micro_parser.add_argument("--pause", type=float, default=1.0, help="inter-run pause (s)")
    micro_parser.set_defaults(func=_cmd_microbench)

    phases_parser = subparsers.add_parser(
        "phases", help="measure start-up and running phases"
    )
    _add_device_argument(phases_parser)
    phases_parser.add_argument("--io-size", default="32K")
    phases_parser.add_argument("--count", type=int, default=1024)
    phases_parser.set_defaults(func=_cmd_phases)

    pause_parser = subparsers.add_parser(
        "pause", help="determine the inter-run pause (Figure 5 probe)"
    )
    _add_device_argument(pause_parser)
    pause_parser.add_argument("--reads-after", type=int, default=4096)
    pause_parser.add_argument("--plot", action="store_true")
    pause_parser.set_defaults(func=_cmd_pause)

    table3_parser = subparsers.add_parser(
        "table3", help="derive the Table 3 device summary"
    )
    table3_parser.add_argument("names", nargs="*", help="device profiles")
    table3_parser.add_argument("--no-paper", action="store_true")
    table3_parser.add_argument("--classify", action="store_true")
    table3_parser.set_defaults(func=_cmd_table3)

    hints_parser = subparsers.add_parser(
        "hints", help="evaluate the seven design hints"
    )
    _add_device_argument(hints_parser)
    hints_parser.set_defaults(func=_cmd_hints)

    autotune_parser = subparsers.add_parser(
        "autotune", help="adaptively tune IOIgnore/IOCount (Section 6)"
    )
    _add_device_argument(autotune_parser)
    autotune_parser.add_argument("--io-size", default="32K")
    autotune_parser.add_argument("--ci", type=float, default=0.10,
                                 help="target relative confidence interval")
    autotune_parser.add_argument("--max-ios", type=int, default=4096)
    autotune_parser.set_defaults(func=_cmd_autotune)

    energy_parser = subparsers.add_parser(
        "energy", help="energy per IO pattern (extension)"
    )
    _add_device_argument(energy_parser)
    energy_parser.add_argument("--io-size", default="32K")
    energy_parser.add_argument("--count", type=int, default=256)
    energy_parser.set_defaults(func=_cmd_energy)

    lifetime_parser = subparsers.add_parser(
        "lifetime", help="wear report + lifetime projection (extension)"
    )
    _add_device_argument(lifetime_parser)
    lifetime_parser.add_argument("--pattern", choices=("SR", "RR", "SW", "RW"),
                                 default="RW")
    lifetime_parser.add_argument("--io-size", default="32K")
    lifetime_parser.add_argument("--count", type=int, default=512)
    lifetime_parser.set_defaults(func=_cmd_lifetime)

    campaign_parser = subparsers.add_parser(
        "campaign", help="run micro-benchmarks under a plan and archive them"
    )
    _add_device_argument(campaign_parser)
    campaign_parser.add_argument(
        "benchmarks", nargs="+", choices=tuple(MICROBENCHMARKS),
        help="micro-benchmarks to include",
    )
    campaign_parser.add_argument("--label", default="campaign")
    campaign_parser.add_argument("--out", default="campaign_results")
    campaign_parser.add_argument("--io-size", default="32K")
    campaign_parser.add_argument("--count", type=int, default=128)
    campaign_parser.add_argument("--ignore", type=int, default=0)
    campaign_parser.add_argument("--pause", type=float, default=1.0)
    campaign_parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for campaign cells (1 = run inline; "
             "results are identical either way)",
    )
    campaign_parser.add_argument(
        "--dispatch", choices=("warm", "legacy"), default="warm",
        help="parallel dispatch mode: 'warm' (default) shares enforced "
             "snapshots through shared memory, keeps worker devices "
             "resident and pipelines state enforcement; 'legacy' ships a "
             "pickled snapshot per cell to cold workers (results are "
             "identical either way)",
    )
    campaign_parser.add_argument(
        "--cache", default="",
        help="run-cache directory; already-measured cells are served "
             "from it instead of re-running",
    )
    campaign_parser.add_argument(
        "--metrics", action="store_true",
        help="collect device/executor metrics and print a campaign-end "
             "summary table",
    )
    campaign_parser.add_argument(
        "--trace", default="",
        help="record campaign/cell/run spans and write Chrome trace-event "
             "JSON to this path (load in Perfetto or chrome://tracing)",
    )
    campaign_parser.add_argument(
        "--attribution", action="store_true",
        help="attach a flight recorder to every cell: traces gain exact "
             "per-IO latency-attribution columns, a campaign-end "
             "attribution table is printed, and --trace gains simulated "
             "device-time lanes",
    )
    campaign_parser.add_argument(
        "--attribution-out", default="",
        help="also write the attribution report to this path",
    )
    campaign_parser.add_argument(
        "--profile", nargs="?", const="", default=None, metavar="STATS",
        help="run under cProfile and print the top 20 functions by "
             "cumulative time; with a path, also dump pstats data there "
             "(inspect with 'python -m pstats STATS')",
    )
    campaign_parser.set_defaults(func=_cmd_campaign)

    report_parser = subparsers.add_parser(
        "report", help="render an archived campaign as Markdown"
    )
    report_parser.add_argument("archive", help="campaign .json file")
    report_parser.add_argument("--compare", default="",
                               help="second campaign .json to diff against")
    report_parser.add_argument("--out", default="", help="output .md path")
    report_parser.set_defaults(func=_cmd_report)

    replay_parser = subparsers.add_parser(
        "replay", help="replay an archived IO trace against a device"
    )
    _add_device_argument(replay_parser)
    replay_parser.add_argument("trace", help="trace CSV (IOTrace.to_csv)")
    replay_parser.add_argument("--timed", action="store_true",
                               help="preserve recorded arrival times")
    replay_parser.add_argument("--remap", action="store_true",
                               help="fold LBAs into the target capacity")
    replay_parser.add_argument("--ignore", type=int, default=0)
    replay_parser.set_defaults(func=_cmd_replay)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    configure_logging(args.verbose - args.quiet)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
